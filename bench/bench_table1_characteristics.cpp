// E2 — regenerates Table I: characteristics of the 8 selected benchmarks —
// dynamic instruction count, static code size, and L1I miss ratios solo and
// under the two probes.
//
// Paper reference (hw counters): perlbench 1.99/2.39/3.12, gcc
// 1.56/1.99/3.09, mcf 0.00/0.05/0.08, gobmk 2.73/4.56/6.96, povray
// 2.10/3.01/4.38, sjeng 0.60/2.13/4.68, omnetpp 0.37/1.66/3.44, xalancbmk
// 1.53/2.92/5.02. Our substrate matches the solo column closely and the
// co-run ordering (gamess > gcc > solo) everywhere; dynamic counts are
// scaled down ~1000x (simulated traces, not full reference runs).
#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiments.hpp"
#include "support/format.hpp"

using namespace codelayout;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  Lab lab(bench_lab_options(args));
  std::printf(
      "Table I: characteristics of the 8 selected benchmarks\n"
      "(instr counts are simulator-scale; the paper's are full SPEC runs)\n\n");
  TextTable table({"Prog.", "Dynamic Instr", "Static (Bytes)", "Solo",
                   "Co-run Gcc", "Co-run Gamess"});
  for (const Table1Row& row : table1_rows(lab, args.hierarchy())) {
    table.add_row({row.name, fmt_count(row.dynamic_instructions),
                   fmt_bytes(row.static_bytes), fmt_pct(row.solo),
                   fmt_pct(row.corun_gcc), fmt_pct(row.corun_gamess)});
  }
  std::printf("%s", table.render().c_str());
  finish_bench(args, "table1_characteristics", lab);
  return 0;
}
