// E10 — ablation on trace pruning and sampling (paper Sec. II-F).
//
// The paper prunes basic-block traces to the 10,000 most frequent blocks
// (which "typically keeps over 90% of the original trace") and samples
// sub-traces. This bench sweeps the pruning budget and the sampling stride
// and reports (a) the fraction of the trace retained and (b) the quality of
// the BB-affinity optimizer built from the reduced trace.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/lab.hpp"
#include "support/format.hpp"
#include "trace/prune.hpp"
#include "workloads/spec.hpp"

using namespace codelayout;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  const HierarchySpec hierarchy = args.hierarchy();
  const std::string target = "403.gcc";  // the paper's worst-case trace

  std::printf("Ablation (paper Sec. II-F): trace pruning on %s\n\n",
              target.c_str());

  TextTable table({"prune top-K", "kept fraction", "hot blocks", "solo miss",
                   "solo miss red."});
  for (std::size_t top_k : {std::size_t{100}, std::size_t{400},
                            std::size_t{1000}, std::size_t{4000},
                            std::size_t{10000}}) {
    PipelineConfig config;
    config.prune_top_k = top_k;
    Lab lab(bench_lab_options(args).pipeline(config));
    const std::vector<EvalRequest> requests = {
        EvalRequest::solo(target, std::nullopt, Measure::kHardware,
                          hierarchy),
        EvalRequest::solo(target, kBBAffinity, Measure::kHardware,
                          hierarchy)};
    lab.evaluate_all(requests);
    const PreparedWorkload& w = lab.workload(target);
    const double base =
        lab.solo(target, std::nullopt, Measure::kHardware, hierarchy)
            .miss_ratio();
    const double opt =
        lab.solo(target, kBBAffinity, Measure::kHardware, hierarchy)
            .miss_ratio();
    table.add_row({fmt_count(top_k), fmt_pct(w.prune_kept_fraction, 1),
                   std::to_string(w.profile_blocks.distinct_count()),
                   fmt_pct(opt), fmt_pct(base > 0 ? 1.0 - opt / base : 0, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Window sampling of the pruned trace (window 4096):\n");
  TextTable stable({"stride", "events kept", "solo miss red."});
  Lab base_lab(bench_lab_options(args));
  const PreparedWorkload& full = base_lab.workload(target);
  const double base =
      base_lab.solo(target, std::nullopt, Measure::kHardware, hierarchy)
          .miss_ratio();
  for (std::size_t stride : {std::size_t{4096}, std::size_t{8192},
                             std::size_t{16384}, std::size_t{65536}}) {
    // Re-run the model on a sampled profile trace, transform, re-simulate.
    PreparedWorkload sampled = base_lab.workload(target);
    sampled.profile_blocks = sample_windows(full.profile_blocks, 4096, stride);
    const CodeLayout layout =
        optimize_layout(sampled, kBBAffinity, base_lab.pipeline());
    SimOptions sim_options = hardware_proxy_options();
    sim_options.hierarchy = hierarchy;
    const SimResult sim = simulate_solo(sampled.module, layout,
                                        sampled.eval_blocks, sim_options);
    stable.add_row({fmt_count(stride),
                    fmt_count(sampled.profile_blocks.size()),
                    fmt_pct(base > 0 ? 1.0 - sim.miss_ratio() / base : 0, 1)});
  }
  std::printf("%s", stable.render().c_str());
  finish_bench(args, "ablation_pruning", base_lab);
  return 0;
}
