// E5 — regenerates Figure 6: per-pairing co-run speedups of the three
// optimizers. Each bar is the speedup of an optimized program co-running
// with an unmodified probe, normalized to the original+original pairing.
//
// Paper shape: speedups range ~0.98-1.12; affinity optimizers occasionally
// lose a single pairing but improve every program on average; function TRG
// is consistently beneficial except for one program where it is consistently
// harmful.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "harness/experiments.hpp"
#include "support/format.hpp"
#include "support/stats.hpp"

using namespace codelayout;

namespace {

void render(Lab& lab, Optimizer opt, const HierarchySpec& hierarchy,
            const char* caption) {
  std::printf("%s\n", caption);
  const auto cells = fig6_cells(lab, opt, hierarchy);
  std::map<std::string, std::vector<const Fig6Cell*>> by_program;
  for (const Fig6Cell& c : cells) by_program[c.program].push_back(&c);
  for (const auto& [program, row] : by_program) {
    RunningStats stats;
    std::vector<std::pair<std::string, double>> bars;
    for (const Fig6Cell* c : row) {
      stats.add(c->speedup);
      bars.emplace_back(c->probe, (c->speedup - 1.0) * 100);
    }
    std::printf("%s (avg %s):\n%s", program.c_str(),
                fmt_signed_pct(stats.mean() - 1.0).c_str(),
                ascii_bars(bars, 30, "%").c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  Lab lab(bench_lab_options(args));
  const HierarchySpec hierarchy = args.hierarchy();
  render(lab, kFuncAffinity, hierarchy,
         "(a) Function layout opt based on affinity model");
  render(lab, kBBAffinity, hierarchy,
         "(b) BB layout opt based on affinity model");
  render(lab, kFuncTrg, hierarchy,
         "(c) Function layout opt based on TRG model");
  finish_bench(args, "fig6_corun_speedup", lab);
  return 0;
}
