// E1 — regenerates Figure 4: L1 instruction cache miss ratios of all 29
// suite programs under solo-run and under co-run with the gcc and gamess
// probes.
//
// Paper shape: miss ratios range 0-5%; roughly 30% of the suite shows
// non-trivial solo ratios; both probes raise nearly every program, gamess
// more than gcc.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiments.hpp"
#include "support/format.hpp"

using namespace codelayout;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  Lab lab(bench_lab_options(args));
  auto rows = fig4_rows(lab, args.hierarchy());
  std::sort(rows.begin(), rows.end(), [](const Fig4Row& a, const Fig4Row& b) {
    return a.solo > b.solo;
  });

  std::printf(
      "Figure 4: L1I miss ratios of the 29-program suite (sorted by solo)\n"
      "(paper: 0-5%% range, ~30%% of programs non-trivial, gamess probe "
      "worse than gcc)\n\n");
  TextTable table({"program", "solo", "403.gcc probe", "416.gamess probe"});
  std::size_t nontrivial = 0;
  for (const Fig4Row& row : rows) {
    if (row.solo >= 0.005) ++nontrivial;
    table.add_row({row.name, fmt_pct(row.solo), fmt_pct(row.probe_gcc),
                   fmt_pct(row.probe_gamess)});
  }
  std::printf("%s\n", table.render().c_str());

  std::vector<std::pair<std::string, double>> bars;
  for (const Fig4Row& row : rows) bars.emplace_back(row.name, row.solo * 100);
  std::printf("solo miss ratio (%%):\n%s\n", ascii_bars(bars, 40).c_str());
  std::printf("%zu of %zu programs have non-trivial (>=0.5%%) solo ratios\n",
              nontrivial, rows.size());
  finish_bench(args, "fig4_miss_ratios", lab);
  return 0;
}
