// E7 — regenerates the Sec. III-F experiment ("Combining Defensiveness and
// Politeness"): the three most-improving programs under function affinity
// are co-run optimized+optimized and compared against optimized+baseline.
//
// Paper finding (negative result): optimized-optimized shows only
// negligible further improvement over optimized-baseline — and no slowdown —
// because one optimized program already leaves no instruction-cache
// contention to remove.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiments.hpp"
#include "support/format.hpp"
#include "support/stats.hpp"

using namespace codelayout;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  Lab lab(bench_lab_options(args));
  const auto programs = top_improving_programs(lab, 3);
  std::printf("Top-3 programs by function-affinity co-run speedup:");
  for (const auto& p : programs) std::printf(" %s", p.c_str());
  std::printf("\n\nSec. III-F: optimized+baseline vs optimized+optimized "
              "co-run speedups\n(paper: negligible additional improvement, "
              "no slowdown)\n\n");

  TextTable table({"program", "peer", "opt+base speedup", "opt+opt speedup",
                   "additional"});
  RunningStats additional;
  for (const Sec3FRow& row : sec3f_rows(lab, 3, args.hierarchy())) {
    const double add = row.opt_opt_speedup / row.opt_base_speedup - 1.0;
    additional.add(add);
    table.add_row({row.program, row.peer,
                   fmt_fixed(row.opt_base_speedup, 4),
                   fmt_fixed(row.opt_opt_speedup, 4),
                   fmt_signed_pct(add)});
  }
  std::printf("%s\navg additional improvement from optimizing the peer too: "
              "%s (min %s, max %s)\n",
              table.render().c_str(),
              fmt_signed_pct(additional.mean()).c_str(),
              fmt_signed_pct(additional.min()).c_str(),
              fmt_signed_pct(additional.max()).c_str());
  finish_bench(args, "sec3f_defensive_polite", lab);
  return 0;
}
