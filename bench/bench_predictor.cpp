// Validates the analytic co-run predictor (perfmodel/corun_predictor.hpp)
// against the bit-exact simulator across the workload pair matrix, and
// measures the screening speedup the closed form buys.
//
// The full matrix is N solo-profile builds (one footprint kernel pass per
// workload, memoized by the Lab) plus N^2 closed-form pairing predictions;
// the simulation side is N^2 co-run cells. For every measured ordered pair
// (self, peer) the bench compares the predicted per-instruction co-run miss
// ratio of `self` with the simulated one and reports the mean / p95 / max
// absolute error, plus the solo-prediction error per workload. Predictions
// are always evaluated for the whole matrix (they are microseconds each) and
// hashed into `matrix_checksum`, so a sampled CI run still pins the exact
// model output; --sample S restricts only the simulated (verification) side
// to S deterministically-spread pairs, with the full-matrix simulation wall
// extrapolated from the sampled per-pair cost.
//
//   bench_predictor [--sample S] [--workload A,B,...] [--json] [--threads N]
//                   [--geometry G] [--l2 G]
//
// --json emits the one-line machine-readable report (linted before printing;
// exit 3 on lint failure) after the engine-metrics line; the report is the
// last JSON line, which is what tools/bench_compare.py reads. The
// --predictor-floor gate checks corun_err_max and screening_speedup from it.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "harness/lab.hpp"
#include "json_lint.hpp"
#include "support/cli.hpp"
#include "workloads/spec.hpp"

namespace {

using namespace codelayout;

constexpr std::uint64_t kFnvSeed = 14695981039346656037ull;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a_double(std::uint64_t h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  return fnv1a(h, bits);
}

double wall_ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct PairError {
  std::size_t self = 0;
  std::size_t peer = 0;
  double predicted = 0.0;
  double simulated = 0.0;

  [[nodiscard]] double abs_error() const {
    return std::abs(predicted - simulated);
  }
};

struct ErrorStats {
  double mean = 0.0;
  double p95 = 0.0;
  double worst = 0.0;
};

ErrorStats summarize(std::vector<double> errors) {
  ErrorStats stats;
  if (errors.empty()) return stats;
  double sum = 0.0;
  for (const double e : errors) sum += e;
  stats.mean = sum / static_cast<double>(errors.size());
  std::sort(errors.begin(), errors.end());
  const std::size_t p95_index =
      (errors.size() * 95 + 99) / 100 == 0
          ? 0
          : std::min(errors.size() - 1, (errors.size() * 95 + 99) / 100 - 1);
  stats.p95 = errors[p95_index];
  stats.worst = errors.back();
  return stats;
}

void append_format(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

std::vector<std::string> parse_names(const std::string& list) {
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string name = list.substr(start, comma - start);
    if (!name.empty()) names.push_back(find_spec(name).name);
    start = comma + 1;
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  std::uint64_t sample = 0;
  std::string workload_list;
  CliOptions cli(argv[0],
                 "analytic co-run predictor vs the bit-exact simulator");
  add_bench_flags(cli, args);
  cli.option_u64("--sample", &sample, 1, ~std::uint64_t{0}, "S",
                 "simulate only S deterministically-spread pairs "
                 "(default: the full matrix)");
  cli.option("--workload", &workload_list, "A,B,...",
             "workload subset (default: the full 29-program suite)");
  cli.parse_or_exit(argc, argv);
  apply_bench_observability(args);

  const HierarchySpec hierarchy = args.hierarchy();
  Lab lab(bench_lab_options(args));

  std::vector<std::string> names;
  if (workload_list.empty()) {
    for (const WorkloadSpec& spec : spec_suite()) names.push_back(spec.name);
  } else {
    names = parse_names(workload_list);
  }
  const std::size_t n = names.size();
  const std::size_t pairs_total = n * n;

  // The sampled pair set: every k-th index of the row-major matrix, spread
  // evenly and deterministically (the same S always picks the same pairs).
  std::vector<std::size_t> measured;
  if (sample == 0 || sample >= pairs_total) {
    measured.resize(pairs_total);
    for (std::size_t i = 0; i < pairs_total; ++i) measured[i] = i;
  } else {
    measured.reserve(sample);
    for (std::uint64_t k = 0; k < sample; ++k) {
      measured.push_back(static_cast<std::size_t>(
          k * static_cast<std::uint64_t>(pairs_total) / sample));
    }
  }

  // Both sides start from prepared workloads and memoized fetch plans —
  // the screening and simulation timings below isolate what each adds.
  lab.prepare_all(names);
  for (const std::string& name : names) {
    (void)lab.fetch_plan(name, std::nullopt, hierarchy.l1.line_bytes);
  }

  // --- Screening: N profile builds + N^2 closed-form predictions -------------
  const auto profile_start = std::chrono::steady_clock::now();
  for (const std::string& name : names) {
    (void)lab.solo_profile(name, std::nullopt, hierarchy.l1.line_bytes);
  }
  const double profile_wall_ms = wall_ms_since(profile_start);

  std::vector<CorunPrediction> predictions(pairs_total);
  const auto predict_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      predictions[i * n + j] = lab.predict_corun(names[i], std::nullopt,
                                                 names[j], std::nullopt,
                                                 hierarchy);
    }
  }
  const double predict_wall_ms = wall_ms_since(predict_start);
  const double screen_wall_ms = profile_wall_ms + predict_wall_ms;

  // The exact model output, pinned: a sampled CI run hashes the same full
  // matrix as the checked-in baseline, so model drift fails the checksum
  // gate even when only a few pairs are simulated.
  std::uint64_t matrix_checksum = fnv1a(kFnvSeed, pairs_total);
  for (const CorunPrediction& p : predictions) {
    matrix_checksum = fnv1a_double(matrix_checksum, p.self.corun_miss_ratio);
    matrix_checksum = fnv1a_double(matrix_checksum, p.self.solo_miss_ratio);
  }

  // --- Verification: simulate the measured pairs -----------------------------
  std::vector<EvalRequest> sim_requests;
  sim_requests.reserve(measured.size() + n);
  for (const std::size_t index : measured) {
    sim_requests.push_back(EvalRequest::corun(
        names[index / n], std::nullopt, names[index % n], std::nullopt,
        Measure::kSimulator, hierarchy));
  }
  const auto sim_start = std::chrono::steady_clock::now();
  lab.evaluate_all(sim_requests);
  const double sim_wall_ms = wall_ms_since(sim_start);
  const double sim_wall_est_ms =
      sim_wall_ms * static_cast<double>(pairs_total) /
      static_cast<double>(measured.size());

  std::vector<EvalRequest> solo_requests;
  for (const std::string& name : names) {
    solo_requests.push_back(EvalRequest::solo(name, std::nullopt,
                                              Measure::kSimulator, hierarchy));
  }
  lab.evaluate_all(solo_requests);

  // --- Error envelope --------------------------------------------------------
  std::vector<PairError> pair_errors;
  pair_errors.reserve(measured.size());
  std::vector<double> corun_errors;
  for (const std::size_t index : measured) {
    const std::size_t i = index / n;
    const std::size_t j = index % n;
    const CorunResult& sim =
        lab.corun(names[i], std::nullopt, names[j], std::nullopt,
                  Measure::kSimulator, hierarchy);
    PairError error{i, j, predictions[index].self.corun_miss_ratio,
                    sim.self.miss_ratio()};
    corun_errors.push_back(error.abs_error());
    pair_errors.push_back(error);
  }
  std::vector<double> solo_errors;
  for (std::size_t i = 0; i < n; ++i) {
    const SimResult& sim =
        lab.solo(names[i], std::nullopt, Measure::kSimulator, hierarchy);
    solo_errors.push_back(std::abs(
        predictions[i * n + i].self.solo_miss_ratio - sim.miss_ratio()));
  }
  const ErrorStats corun_stats = summarize(corun_errors);
  const ErrorStats solo_stats = summarize(solo_errors);
  const double screening_speedup =
      screen_wall_ms > 0.0 ? sim_wall_est_ms / screen_wall_ms : 0.0;

  // --- Report ----------------------------------------------------------------
  std::printf(
      "Analytic co-run screening: %zu workloads, %zu/%zu pairs simulated "
      "(geometry %s)\n\n",
      n, measured.size(), pairs_total, hierarchy.to_string().c_str());
  std::printf("  profiles     %10.1f ms  (%zu builds)\n", profile_wall_ms, n);
  std::printf("  predictions  %10.1f ms  (%zu pairs, %.2f us each)\n",
              predict_wall_ms, pairs_total,
              1e3 * predict_wall_ms / static_cast<double>(pairs_total));
  std::printf("  simulations  %10.1f ms  (%zu pairs%s)\n", sim_wall_ms,
              measured.size(),
              measured.size() == pairs_total ? "" : ", sampled");
  std::printf("  screening speedup %.0fx (est. full-matrix sim %.0f ms vs "
              "%.1f ms screen)\n\n",
              screening_speedup, sim_wall_est_ms, screen_wall_ms);
  std::printf("  co-run miss-ratio error: mean %.5f  p95 %.5f  max %.5f\n",
              corun_stats.mean, corun_stats.p95, corun_stats.worst);
  std::printf("  solo   miss-ratio error: mean %.5f  max %.5f\n",
              solo_stats.mean, solo_stats.worst);

  std::sort(pair_errors.begin(), pair_errors.end(),
            [](const PairError& a, const PairError& b) {
              if (a.abs_error() != b.abs_error())
                return a.abs_error() > b.abs_error();
              if (a.self != b.self) return a.self < b.self;
              return a.peer < b.peer;
            });
  std::printf("\n  worst pairs (predicted vs simulated co-run miss ratio):\n");
  for (std::size_t k = 0; k < std::min<std::size_t>(5, pair_errors.size());
       ++k) {
    const PairError& e = pair_errors[k];
    std::printf("    %-14s vs %-14s  %.5f vs %.5f  (err %.5f)\n",
                names[e.self].c_str(), names[e.peer].c_str(), e.predicted,
                e.simulated, e.abs_error());
  }

  if (args.json) {
    emit_metrics_json(args, "predictor", lab);
    std::string out;
    append_format(out,
                  "{\"bench\": \"predictor\", \"host_cores\": %u,"
                  " \"workloads\": %zu, \"pairs_total\": %zu,"
                  " \"pairs_measured\": %zu, \"geometry\": \"%s\","
                  " \"profile_wall_ms\": %.3f, \"predict_wall_ms\": %.3f,"
                  " \"sim_wall_ms\": %.3f, \"sim_wall_est_ms\": %.3f,"
                  " \"screening_speedup\": %.1f,"
                  " \"predict_per_pair_us\": %.3f,"
                  " \"corun_err_mean\": %.6f, \"corun_err_p95\": %.6f,"
                  " \"corun_err_max\": %.6f, \"solo_err_mean\": %.6f,"
                  " \"solo_err_max\": %.6f,"
                  " \"matrix_checksum\": \"0x%016llx\"}",
                  std::thread::hardware_concurrency(), n, pairs_total,
                  measured.size(), hierarchy.to_string().c_str(),
                  profile_wall_ms, predict_wall_ms, sim_wall_ms,
                  sim_wall_est_ms, screening_speedup,
                  1e3 * predict_wall_ms / static_cast<double>(pairs_total),
                  corun_stats.mean, corun_stats.p95, corun_stats.worst,
                  solo_stats.mean, solo_stats.worst,
                  static_cast<unsigned long long>(matrix_checksum));
    codelayout::testing::JsonLinter linter(out);
    if (!linter.valid()) {
      std::fprintf(stderr, "FATAL: generated JSON failed the linter: %s\n",
                   linter.error().c_str());
      return 3;
    }
    std::printf("%s\n", out.c_str());
  }
  finish_observability(args, "predictor");
  return 0;
}
