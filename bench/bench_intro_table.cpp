// E0 — regenerates the introduction table: average L1I miss ratio of the
// programs with non-trivial miss ratios, solo and under the two co-run
// probes.
//
// Paper reference values:   solo 1.5% | co-run 1 2.5% (+67%) | co-run 2 3.8%
// (+153%), over 9 of 29 SPEC CPU2006 programs.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiments.hpp"
#include "support/format.hpp"

using namespace codelayout;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  Lab lab(bench_lab_options(args));
  const IntroTable table = intro_table(lab, 0.005, args.hierarchy());

  std::printf(
      "Introduction table: avg L1I miss ratio of the %zu non-trivial "
      "programs\n(paper: 9 programs; solo 1.5%%, co-run1 2.5%% (+67%%), "
      "co-run2 3.8%% (+153%%))\n\n",
      table.programs.size());

  TextTable out({"", "avg. miss ratio", "increase over solo"});
  out.add_row({"solo", fmt_pct(table.avg_solo, 1), "—"});
  out.add_row({"co-run 1 (gcc)", fmt_pct(table.avg_corun1, 1),
               fmt_pct(table.increase1(), 0)});
  out.add_row({"co-run 2 (gamess)", fmt_pct(table.avg_corun2, 1),
               fmt_pct(table.increase2(), 0)});
  std::printf("%s\nNon-trivial programs:", out.render().c_str());
  for (const auto& p : table.programs) std::printf(" %s", p.c_str());
  std::printf("\n");
  finish_bench(args, "intro_table", lab);
  return 0;
}
