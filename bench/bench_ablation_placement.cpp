// Ablation — reorder vs. pad: the design choice behind the paper's TRG
// adaptation.
//
// Gloy & Smith's original procedure aligns code to chosen cache sets by
// inserting padding; the paper's TRG reduction instead emits a new order
// with no inserted space (Sec. II-C: "Instead of adding space between
// functions, we find a new order"). This bench runs both on the same
// workloads and reports miss ratios and code-size bloat — the padding
// variant buys conflict freedom at a large address-space cost.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "harness/lab.hpp"
#include "support/format.hpp"
#include "trg/placement.hpp"
#include "workloads/spec.hpp"

using namespace codelayout;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  Lab lab(bench_lab_options(args));
  const HierarchySpec hierarchy = args.hierarchy();
  const std::vector<std::string> names = {"403.gcc", "458.sjeng",
                                          "471.omnetpp", "483.xalancbmk"};
  std::vector<EvalRequest> requests;
  for (const std::string& name : names) {
    requests.push_back(EvalRequest::solo(name, std::nullopt,
                                         Measure::kHardware, hierarchy));
    requests.push_back(
        EvalRequest::solo(name, kBBTrg, Measure::kHardware, hierarchy));
  }
  lab.evaluate_all(requests);
  std::printf(
      "Ablation: TRG reduction (reorder, the paper) vs Gloy-Smith padded "
      "placement\n(solo hw miss ratio; BB granularity)\n\n");
  TextTable table({"program", "original", "reorder (paper)", "padded",
                   "reorder bytes", "padded bytes", "padding"});
  for (const std::string& name : names) {
    const PreparedWorkload& w = lab.workload(name);
    const double base =
        lab.solo(name, std::nullopt, Measure::kHardware, hierarchy)
            .miss_ratio();
    const CodeLayout& reorder = lab.layout(name, kBBTrg);
    const double reorder_miss =
        lab.solo(name, kBBTrg, Measure::kHardware, hierarchy).miss_ratio();

    const Trg graph = Trg::build(
        w.profile_blocks,
        TrgConfig{.window_entries = trg_window_entries(32 * 1024, 64)});
    const PlacementResult padded = gloy_smith_placement(w.module, graph);
    SimOptions padded_options = hardware_proxy_options();
    padded_options.hierarchy = hierarchy;
    const SimResult padded_sim = simulate_solo(
        w.module, padded.layout, w.eval_blocks, padded_options);

    table.add_row({name, fmt_pct(base), fmt_pct(reorder_miss),
                   fmt_pct(padded_sim.miss_ratio()),
                   fmt_bytes(reorder.total_bytes()),
                   fmt_bytes(padded.layout.total_bytes()),
                   fmt_bytes(padded.padding_bytes)});
  }
  std::printf("%s\nThe padded variant inflates the binary by the padding "
              "column —\nthe cost that motivated the paper's switch to pure "
              "reordering.\n",
              table.render().c_str());
  finish_bench(args, "ablation_placement", lab);
  return 0;
}
