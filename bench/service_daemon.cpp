// The layout-optimization daemon (DESIGN.md §12): wraps the Lab in a
// long-lived service that accepts jobs over a unix-domain socket, with
// admission control, three-class prioritization, a cross-request response
// cache, and graceful drain on SIGINT/SIGTERM.
//
//   service_daemon [--socket PATH] [--workers N] [--queue-depth N]
//                  [--cache-entries N] [--cache-bytes N] [--no-cache]
//                  [--threads N] [--metrics-out FILE] [--trace-out FILE]
//
// Drive it with bench_service --connect PATH (the load generator), or any
// client speaking the protocol in src/service/protocol.hpp.
#include <csignal>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace codelayout;
  using namespace codelayout::service;

  BenchArgs bench;
  std::string socket_path = "codelayout-service.sock";
  unsigned workers = 2;
  unsigned queue_depth = 64;
  std::uint64_t cache_entries = 1024;
  std::uint64_t cache_bytes = 16u << 20;
  bool no_cache = false;

  CliOptions cli(argv[0],
                 "Layout-optimization service daemon: serves solo / layout / "
                 "co-run / trace-stats jobs over a unix socket until SIGINT "
                 "or SIGTERM, then drains in-flight jobs and exits.");
  add_bench_flags(cli, bench);
  cli.option("--socket", &socket_path, "PATH",
             "unix socket to listen on (unlinks any stale one)");
  cli.option_uint("--workers", &workers, 1, 256,
                  "N", "dedicated job threads (jobs parallelize internally "
                       "via the engine pool)");
  cli.option_uint("--queue-depth", &queue_depth, 1, 1u << 20, "N",
                  "bounded queue depth; further jobs are rejected");
  cli.option_u64("--cache-entries", &cache_entries, 1, 1u << 30, "N",
                 "response cache capacity in entries");
  cli.option_u64("--cache-bytes", &cache_bytes, 1, 1ull << 40, "BYTES",
                 "response cache footprint budget");
  cli.flag("--no-cache", &no_cache, "disable the cross-request cache");
  cli.parse_or_exit(argc, argv);
  apply_bench_observability(bench);

  // Block the shutdown signals before any thread exists so workers inherit
  // the mask and sigwait below owns delivery.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &signals, nullptr);

  ServerConfig config;
  config.workers = workers;
  config.queue_depth = queue_depth;
  config.cache_enabled = !no_cache;
  config.cache.max_entries = static_cast<std::size_t>(cache_entries);
  config.cache.max_bytes = static_cast<std::size_t>(cache_bytes);

  ServiceServer server(config,
                       std::make_unique<LabExecutor>(bench_lab_options(bench)));
  server.listen_unix(socket_path);
  std::fprintf(stderr,
               "service daemon listening on %s (%u workers, queue depth %u, "
               "cache %s)\n",
               socket_path.c_str(), workers, queue_depth,
               no_cache ? "off" : "on");

  int signal_number = 0;
  sigwait(&signals, &signal_number);
  std::fprintf(stderr, "signal %d: draining and shutting down\n",
               signal_number);
  server.shutdown();

  const ServiceServer::Stats stats = server.stats();
  const ResponseCache::Stats cache = server.cache_stats();
  std::fprintf(stderr,
               "served %llu jobs (%llu completed, %llu cache hits, %llu "
               "rejected, %llu during drain); cache %zu entries / %zu bytes, "
               "%llu evictions\n",
               static_cast<unsigned long long>(stats.submitted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.cache_hits),
               static_cast<unsigned long long>(stats.rejected),
               static_cast<unsigned long long>(stats.shutdown_rejected),
               cache.entries, cache.bytes,
               static_cast<unsigned long long>(cache.evictions));
  finish_observability(bench, "service_daemon");
  return 0;
}
