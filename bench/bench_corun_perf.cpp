// Co-run engine throughput: events/s of the production shared-cache co-run
// simulation (fetch plans + packed tag-probe cache + run-aware collapse,
// DESIGN.md §11) against the pre-optimization per-event loop restated
// longhand — module/layout lookups per event, rotate-prefix LRU cache,
// per-round credit and stall arithmetic. The baseline is the bit-identical
// reference: for every kernel the report carries the FNV checksum of the
// production result *and* of the reference replay, and the bench fails
// (exit 4) if they differ, so the speedup numbers are only ever reported
// for provably identical outputs.
//
// Workloads form (self, peer) pairs from consecutive entries of --workload;
// "+spin" selects the bench-local spin variant (long same-block runs, the
// shape the collapse engine is built for). Spin pairs show the collapse
// speedup; plain suite pairs run mostly per-event and stay near 1x — both
// shapes are reported, with the engine's rounds_fast / rounds_fallback
// counters per kernel.
//
// --sweep-threads fans independent co-run cells over a thread pool at each
// requested width and reports per-width throughput plus a combined checksum;
// unequal checksums across widths exit 5. All JSON output is validated with
// the test suite's JSON linter before it is printed.
//
// --sweep-geometry re-runs each pair under a list of cache hierarchies
// ("SIZE/ASSOC/LINE" with an optional "+l2=SIZE/ASSOC/LINE" shared level,
// DESIGN.md §13). Each geometry reports events/s, the FNV checksum of the
// co-run cell results, and per-party AMAT; the cell set is also re-run at
// the widest --sweep-threads width and a serial/parallel checksum mismatch
// exits 5 — geometry must never interact with scheduling.
//
//   bench_corun_perf [--workload A,B,C,D] [--events N] [--json]
//                    [--sweep-threads 1,2,8]
//                    [--sweep-geometry 32K/4/64,16K/2/64+l2=256K/8/64]
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/icache_sim.hpp"
#include "exec/interpreter.hpp"
#include "json_lint.hpp"
#include "support/cli.hpp"
#include "layout/layout.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "workloads/spec.hpp"

namespace {

using namespace codelayout;

// ---- FNV checksums (same scheme as the test suite's golden hashes) ----------

constexpr std::uint64_t kFnvSeed = 14695981039346656037ull;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_sim(std::uint64_t h, const SimResult& r) {
  h = fnv1a(h, r.instructions);
  h = fnv1a(h, r.overhead_instructions);
  h = fnv1a(h, r.line_probes);
  h = fnv1a(h, r.demand_misses);
  h = fnv1a(h, r.wrong_path_misses);
  return fnv1a(h, r.blocks);
}

std::uint64_t hash_results(const std::vector<SimResult>& results) {
  std::uint64_t h = fnv1a(kFnvSeed, results.size());
  for (const SimResult& r : results) h = hash_sim(h, r);
  return h;
}

// ---- The pre-optimization per-event engine, restated longhand ---------------

/// The old cache representation: per-set ways in recency order, linear probe,
/// prefix rotation on hit.
class RotateCache {
 public:
  explicit RotateCache(const CacheGeometry& geom)
      : set_mask_(geom.sets() - 1),
        assoc_(geom.associativity),
        ways_(geom.sets() * geom.associativity, ~std::uint64_t{0}) {}

  bool access(std::uint64_t line) { return touch(line); }
  void prefill(std::uint64_t line) { touch(line); }

 private:
  bool touch(std::uint64_t line) {
    std::uint64_t* base = &ways_[(line & set_mask_) * assoc_];
    for (std::uint32_t i = 0; i < assoc_; ++i) {
      if (base[i] == line) {
        for (std::uint32_t j = i; j > 0; --j) base[j] = base[j - 1];
        base[0] = line;
        return true;
      }
    }
    for (std::uint32_t j = assoc_ - 1; j > 0; --j) base[j] = base[j - 1];
    base[0] = line;
    return false;
  }

  std::uint64_t set_mask_;
  std::uint32_t assoc_;
  std::vector<std::uint64_t> ways_;
};

struct RefParty {
  const Module* module;
  const CodeLayout* layout;
  const Trace* trace;
  double speed = 1.0;
};

/// Per-event co-run stream: flat symbols, three indexed lookups per event.
class RefStream {
 public:
  RefStream(const RefParty& party, std::uint64_t line_namespace,
            const SimOptions& options, std::uint64_t rng_stream)
      : module_(party.module),
        layout_(party.layout),
        symbols_(party.trace->symbols()),
        namespace_(line_namespace),
        options_(options),
        rng_(Rng(options.seed).fork(rng_stream)) {}

  bool step(RotateCache& cache) {
    if (debt_ >= 1.0) {
      debt_ -= 1.0;
      return false;
    }
    const BlockId b(symbols_[pos_]);
    const BasicBlock& bb = module_->block(b);
    const auto span = layout_->lines_of(b, options_.geometry().line_bytes);
    const auto& place = layout_->placement(b);
    ++stats_.blocks;
    stats_.instructions += place.bytes / kInstrBytes;
    stats_.overhead_instructions += (place.bytes - bb.size_bytes) / kInstrBytes;
    for (std::uint32_t i = 0; i < span.line_count; ++i) {
      const std::uint64_t line = namespace_ + span.first_line + i;
      ++stats_.line_probes;
      if (!cache.access(line)) {
        ++stats_.demand_misses;
        debt_ += options_.miss_stall_blocks;
        if (options_.next_line_prefetch) cache.prefill(line + 1);
      }
    }
    if (options_.wrong_path_rate > 0.0 && bb.successors.size() > 1 &&
        rng_.chance(options_.wrong_path_rate)) {
      const std::uint64_t line = namespace_ + span.first_line + span.line_count;
      if (!cache.access(line)) ++stats_.wrong_path_misses;
    }
    if (++pos_ == symbols_.size()) {
      pos_ = 0;
      return true;
    }
    return false;
  }

  [[nodiscard]] const SimResult& stats() const { return stats_; }

 private:
  const Module* module_;
  const CodeLayout* layout_;
  std::span<const Symbol> symbols_;
  std::uint64_t namespace_;
  SimOptions options_;
  Rng rng_;
  std::size_t pos_ = 0;
  double debt_ = 0.0;
  SimResult stats_;
};

std::vector<SimResult> reference_corun(const std::vector<RefParty>& parties,
                                       const SimOptions& options) {
  RotateCache cache(options.geometry());
  std::vector<RefStream> streams;
  streams.reserve(parties.size());
  std::vector<double> credit(parties.size(), 0.0);
  for (std::size_t i = 0; i < parties.size(); ++i) {
    streams.emplace_back(parties[i], static_cast<std::uint64_t>(i) << 40,
                         options, /*rng_stream=*/i + 1);
  }
  for (;;) {
    const bool done = streams[0].step(cache);
    for (std::size_t i = 1; i < parties.size(); ++i) {
      credit[i] += parties[i].speed;
      while (credit[i] >= 1.0) {
        streams[i].step(cache);
        credit[i] -= 1.0;
      }
    }
    if (done) break;
  }
  std::vector<SimResult> results;
  results.reserve(streams.size());
  for (const RefStream& s : streams) results.push_back(s.stats());
  return results;
}

// ---- Measurement ------------------------------------------------------------

/// Times `fn`, repeating until at least ~50 ms of work, and returns events/s.
template <typename Fn>
double measure_events_per_sec(std::uint64_t events, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  double elapsed = 0.0;
  std::uint64_t iterations = 0;
  do {
    const auto start = clock::now();
    fn();
    elapsed += std::chrono::duration<double>(clock::now() - start).count();
    ++iterations;
  } while (elapsed < 0.05 && iterations < 1000);
  return static_cast<double>(events) * static_cast<double>(iterations) /
         elapsed;
}

struct SweepPoint {
  unsigned threads = 1;
  double events_per_sec = 0.0;
  std::uint64_t checksum = 0;
};

struct KernelReport {
  const char* name;
  double events_per_sec = 0.0;
  double baseline_events_per_sec = 0.0;  ///< 0 when no reference was timed
  std::uint64_t checksum = 0;
  std::uint64_t baseline_checksum = 0;
  std::uint64_t rounds_fast = 0;
  std::uint64_t rounds_fallback = 0;
  std::vector<SweepPoint> sweep{};
};

struct PreparedWorkloadBench {
  std::string name;
  Module module;
  CodeLayout layout;
  Trace trace;
  std::unique_ptr<FetchPlan> sim_plan;  ///< both flavours share line size

  explicit PreparedWorkloadBench(const WorkloadSpec& spec,
                                 std::uint64_t max_events)
      : name(spec.name),
        module(build_workload(spec)),
        layout(original_layout(module)),
        trace(profile(module, /*seed=*/101,
                      {.max_events = std::min(max_events, spec.profile_events),
                       .max_call_depth = 64})
                  .block_trace) {
    sim_plan = std::make_unique<FetchPlan>(module, layout, kL1I.line_bytes);
    (void)trace.symbols();  // materialize outside the timed regions
  }

  [[nodiscard]] RefParty ref_party(double speed = 1.0) const {
    return RefParty{&module, &layout, &trace, speed};
  }
  [[nodiscard]] PlannedParty planned_party(double speed = 1.0) const {
    return PlannedParty{sim_plan.get(), &trace, speed};
  }
  /// A fetch plan for a sweep geometry's line size (the default plan is
  /// only valid for 64B lines). Built outside the timed regions.
  [[nodiscard]] std::unique_ptr<FetchPlan> plan_for(
      std::uint32_t line_bytes) const {
    return std::make_unique<FetchPlan>(module, layout, line_bytes);
  }
};

/// One cache hierarchy of the --sweep-geometry axis.
struct GeometryPoint {
  std::string geometry;  ///< HierarchySpec::to_string() form
  double events_per_sec = 0.0;
  std::uint64_t checksum = 0;  ///< FNV over the co-run cell results
  double self_amat = 0.0;
  double peer_amat = 0.0;
};

struct PairReport {
  std::string self;
  std::string peer;
  std::uint64_t events = 0;  ///< blocks executed per two-way simulation
  double self_compression = 1.0;
  double peer_compression = 1.0;
  std::vector<KernelReport> kernels;
  std::vector<GeometryPoint> geometry_sweep;
};

bool g_checksums_ok = true;
bool g_geometry_sweep_ok = true;

std::uint64_t total_blocks(const std::vector<SimResult>& results) {
  std::uint64_t blocks = 0;
  for (const SimResult& r : results) blocks += r.blocks;
  return blocks;
}

/// Measures production vs per-event reference for one party mix under one
/// flavour, verifying bit-identity of the outputs.
KernelReport measure_corun_kernel(const char* name, const CorunSpec& spec,
                                  const std::vector<RefParty>& ref_parties) {
  KernelReport report{.name = name};
  CorunStats stats;
  const std::vector<SimResult> produced = simulate_corun(spec, &stats);
  const std::uint64_t events = total_blocks(produced);
  report.checksum = hash_results(produced);
  report.rounds_fast = stats.rounds_fast;
  report.rounds_fallback = stats.rounds_fallback;
  report.events_per_sec = measure_events_per_sec(events, [&] {
    const auto r = simulate_corun(spec);
    if (hash_results(r) != report.checksum) g_checksums_ok = false;
  });
  report.baseline_checksum =
      hash_results(reference_corun(ref_parties, spec.options));
  report.baseline_events_per_sec = measure_events_per_sec(events, [&] {
    const auto r = reference_corun(ref_parties, spec.options);
    if (hash_results(r) != report.baseline_checksum) g_checksums_ok = false;
  });
  if (report.checksum != report.baseline_checksum) {
    std::fprintf(stderr,
                 "FATAL: %s: production and per-event reference disagree "
                 "(0x%016llx vs 0x%016llx)\n",
                 name, static_cast<unsigned long long>(report.checksum),
                 static_cast<unsigned long long>(report.baseline_checksum));
    g_checksums_ok = false;
  }
  return report;
}

/// Fans independent co-run cells over a pool at each sweep width; the cell
/// results are hashed in cell order, so the combined checksum must be equal
/// at every width.
KernelReport measure_cell_sweep(const PreparedWorkloadBench& a,
                                const PreparedWorkloadBench& b,
                                const std::vector<unsigned>& thread_counts) {
  std::vector<CorunSpec> cells;
  for (const bool hw : {false, true}) {
    for (const std::uint64_t seed : {1ull, 2ull}) {
      SimOptions options = hw ? hardware_proxy_options(seed) : SimOptions{};
      options.seed = seed;
      cells.push_back(
          CorunSpec{{a.planned_party(), b.planned_party(1.3)}, options});
      cells.push_back(
          CorunSpec{{b.planned_party(), a.planned_party(0.7)}, options});
    }
  }

  std::uint64_t events = 0;
  for (const CorunSpec& cell : cells) {
    events += total_blocks(simulate_corun(cell));
  }

  const auto run_cells = [&](ThreadPool* pool, unsigned threads) {
    std::vector<std::uint64_t> sums(cells.size(), 0);
    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
      for (std::size_t i; (i = next.fetch_add(1)) < cells.size();) {
        sums[i] = hash_results(simulate_corun(cells[i]));
      }
    };
    if (pool == nullptr) {
      worker();
    } else {
      std::vector<std::future<void>> helpers;
      for (unsigned t = 0; t + 1 < threads; ++t) {
        helpers.push_back(pool->submit(worker));
      }
      worker();  // the calling thread participates
      for (auto& h : helpers) h.get();
    }
    std::uint64_t h = fnv1a(kFnvSeed, sums.size());
    for (const std::uint64_t s : sums) h = fnv1a(h, s);
    return h;
  };

  KernelReport report{.name = "corun_cells"};
  for (const unsigned threads : thread_counts) {
    const std::unique_ptr<ThreadPool> pool =
        threads > 1 ? std::make_unique<ThreadPool>(threads - 1) : nullptr;
    SweepPoint point{.threads = threads};
    point.events_per_sec = measure_events_per_sec(
        events, [&] { point.checksum = run_cells(pool.get(), threads); });
    report.sweep.push_back(point);
  }
  report.baseline_events_per_sec = report.sweep.front().events_per_sec;
  report.events_per_sec = report.sweep.back().events_per_sec;
  report.checksum = report.sweep.front().checksum;
  for (const SweepPoint& p : report.sweep) {
    if (p.checksum != report.checksum) {
      std::fprintf(stderr,
                   "FATAL: corun_cells checksum diverges at %u threads\n",
                   p.threads);
      g_checksums_ok = false;
    }
  }
  return report;
}

/// Re-runs the pair's co-run cell set under each hierarchy of the geometry
/// sweep. Per geometry: events/s and the combined FNV checksum of the cell
/// results, plus each party's AMAT under that hierarchy. The same cells are
/// then fanned over `cross_check_threads` workers; a serial/parallel
/// checksum mismatch is fatal (geometry must not interact with scheduling).
std::vector<GeometryPoint> measure_geometry_sweep(
    const PreparedWorkloadBench& a, const PreparedWorkloadBench& b,
    const std::vector<HierarchySpec>& hierarchies,
    unsigned cross_check_threads) {
  std::vector<GeometryPoint> points;
  for (const HierarchySpec& hierarchy : hierarchies) {
    const std::unique_ptr<FetchPlan> plan_a =
        a.plan_for(hierarchy.l1.line_bytes);
    const std::unique_ptr<FetchPlan> plan_b =
        b.plan_for(hierarchy.l1.line_bytes);
    std::vector<CorunSpec> cells;
    for (const bool hw : {false, true}) {
      for (const std::uint64_t seed : {1ull, 2ull}) {
        SimOptions options = hw ? hardware_proxy_options(seed) : SimOptions{};
        options.seed = seed;
        options.hierarchy = hierarchy;
        cells.push_back(CorunSpec{{PlannedParty{plan_a.get(), &a.trace, 1.0},
                                   PlannedParty{plan_b.get(), &b.trace, 1.3}},
                                  options});
      }
    }

    const auto run_cells = [&](ThreadPool* pool) {
      std::vector<std::uint64_t> sums(cells.size(), 0);
      std::atomic<std::size_t> next{0};
      const auto worker = [&] {
        for (std::size_t i; (i = next.fetch_add(1)) < cells.size();) {
          sums[i] = hash_results(simulate_corun(cells[i]));
        }
      };
      if (pool == nullptr) {
        worker();
      } else {
        std::vector<std::future<void>> helpers;
        for (unsigned t = 0; t + 1 < cross_check_threads; ++t) {
          helpers.push_back(pool->submit(worker));
        }
        worker();
        for (auto& h : helpers) h.get();
      }
      std::uint64_t h = fnv1a(kFnvSeed, sums.size());
      for (const std::uint64_t s : sums) h = fnv1a(h, s);
      return h;
    };

    GeometryPoint point{.geometry = hierarchy.to_string()};
    const std::vector<SimResult> produced = simulate_corun(cells.front());
    point.self_amat = amat(produced[0], hierarchy);
    point.peer_amat = amat(produced[1], hierarchy);
    std::uint64_t events = 0;
    for (const CorunSpec& cell : cells) {
      events += total_blocks(simulate_corun(cell));
    }
    point.events_per_sec = measure_events_per_sec(
        events, [&] { point.checksum = run_cells(nullptr); });

    if (cross_check_threads > 1) {
      ThreadPool pool(cross_check_threads - 1);
      const std::uint64_t parallel = run_cells(&pool);
      if (parallel != point.checksum) {
        std::fprintf(stderr,
                     "FATAL: %s vs %s: geometry %s checksum diverges between "
                     "1 and %u threads (0x%016llx vs 0x%016llx)\n",
                     a.name.c_str(), b.name.c_str(), point.geometry.c_str(),
                     cross_check_threads,
                     static_cast<unsigned long long>(point.checksum),
                     static_cast<unsigned long long>(parallel));
        g_geometry_sweep_ok = false;
      }
    }
    points.push_back(std::move(point));
  }
  return points;
}

PairReport measure_pair(const PreparedWorkloadBench& a,
                        const PreparedWorkloadBench& b,
                        const std::vector<unsigned>& sweep_threads,
                        const std::vector<HierarchySpec>& sweep_geometries) {
  PairReport report{.self = a.name,
                    .peer = b.name,
                    .events = 0,
                    .self_compression = a.trace.run_compression(),
                    .peer_compression = b.trace.run_compression(),
                    .kernels = {},
                    .geometry_sweep = {}};

  const CorunSpec pair_sim{{a.planned_party(), b.planned_party(1.3)},
                           SimOptions{}};
  const CorunSpec pair_hw{{a.planned_party(), b.planned_party(1.3)},
                          hardware_proxy_options()};
  const std::vector<RefParty> ref_pair = {a.ref_party(), b.ref_party(1.3)};
  report.events = total_blocks(simulate_corun(pair_sim));

  report.kernels.push_back(
      measure_corun_kernel("corun_sim", pair_sim, ref_pair));
  report.kernels.push_back(measure_corun_kernel("corun_hw", pair_hw, ref_pair));

  const CorunSpec four{{a.planned_party(), b.planned_party(1.3),
                        a.planned_party(0.5), b.planned_party(1.7)},
                       hardware_proxy_options()};
  const std::vector<RefParty> ref_four = {a.ref_party(), b.ref_party(1.3),
                                          a.ref_party(0.5), b.ref_party(1.7)};
  report.kernels.push_back(
      measure_corun_kernel("corun_many4_hw", four, ref_four));

  report.kernels.push_back(measure_cell_sweep(a, b, sweep_threads));
  if (!sweep_geometries.empty()) {
    report.geometry_sweep =
        measure_geometry_sweep(a, b, sweep_geometries, sweep_threads.back());
  }
  return report;
}

// ---- Reporting --------------------------------------------------------------

void append_format(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

std::string json_report(const std::vector<PairReport>& pairs) {
  // host_cores gates cross-machine throughput comparison downstream
  // (tools/bench_compare.py); checksums stay exact everywhere.
  std::string out;
  append_format(out,
                "{\"bench\": \"corun_perf\", \"host_cores\": %u,"
                " \"pairs\": [\n",
                std::thread::hardware_concurrency());
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const PairReport& r = pairs[p];
    append_format(out,
                  "%s  {\"self\": \"%s\", \"peer\": \"%s\", \"events\": %llu,"
                  " \"self_run_compression\": %.3f,"
                  " \"peer_run_compression\": %.3f, \"kernels\": [",
                  p ? ",\n" : "", r.self.c_str(), r.peer.c_str(),
                  static_cast<unsigned long long>(r.events),
                  r.self_compression, r.peer_compression);
    for (std::size_t i = 0; i < r.kernels.size(); ++i) {
      const KernelReport& k = r.kernels[i];
      append_format(out, "%s{\"name\": \"%s\", \"events_per_sec\": %.0f",
                    i ? ", " : "", k.name, k.events_per_sec);
      if (k.baseline_events_per_sec > 0.0) {
        append_format(out,
                      ", \"baseline_events_per_sec\": %.0f, \"speedup\": %.2f",
                      k.baseline_events_per_sec,
                      k.events_per_sec / k.baseline_events_per_sec);
      }
      // Checksums as hex strings: 64-bit values do not survive the
      // double-precision number path of most JSON consumers.
      append_format(out, ", \"checksum\": \"0x%016llx\"",
                    static_cast<unsigned long long>(k.checksum));
      if (k.sweep.empty()) {
        append_format(out,
                      ", \"baseline_checksum\": \"0x%016llx\","
                      " \"rounds_fast\": %llu, \"rounds_fallback\": %llu",
                      static_cast<unsigned long long>(k.baseline_checksum),
                      static_cast<unsigned long long>(k.rounds_fast),
                      static_cast<unsigned long long>(k.rounds_fallback));
      } else {
        append_format(out, ", \"sweep\": [");
        for (std::size_t j = 0; j < k.sweep.size(); ++j) {
          const SweepPoint& point = k.sweep[j];
          append_format(out,
                        "%s{\"threads\": %u, \"events_per_sec\": %.0f,"
                        " \"checksum\": \"0x%016llx\"}",
                        j ? ", " : "", point.threads, point.events_per_sec,
                        static_cast<unsigned long long>(point.checksum));
        }
        append_format(out, "]");
      }
      append_format(out, "}");
    }
    append_format(out, "]");
    if (!r.geometry_sweep.empty()) {
      append_format(out, ", \"geometry_sweep\": [");
      for (std::size_t i = 0; i < r.geometry_sweep.size(); ++i) {
        const GeometryPoint& g = r.geometry_sweep[i];
        append_format(out,
                      "%s{\"geometry\": \"%s\", \"events_per_sec\": %.0f,"
                      " \"checksum\": \"0x%016llx\", \"self_amat\": %.4f,"
                      " \"peer_amat\": %.4f}",
                      i ? ", " : "", g.geometry.c_str(), g.events_per_sec,
                      static_cast<unsigned long long>(g.checksum),
                      g.self_amat, g.peer_amat);
      }
      append_format(out, "]");
    }
    append_format(out, "}");
  }
  out += "\n]}\n";
  return out;
}

void print_text(const PairReport& r) {
  std::printf("%s vs %s  (%llu blocks/sim, compression %.2fx / %.2fx)\n",
              r.self.c_str(), r.peer.c_str(),
              static_cast<unsigned long long>(r.events), r.self_compression,
              r.peer_compression);
  for (const KernelReport& k : r.kernels) {
    std::printf("    %-14s %12.0f events/s", k.name, k.events_per_sec);
    if (k.baseline_events_per_sec > 0.0) {
      std::printf(k.sweep.empty()
                      ? "   (per-event %12.0f, speedup %5.2fx)"
                      : "   (1-thread  %12.0f, scaling %5.2fx)",
                  k.baseline_events_per_sec,
                  k.events_per_sec / k.baseline_events_per_sec);
    }
    if (k.sweep.empty()) {
      std::printf("   fast/fallback rounds %llu/%llu",
                  static_cast<unsigned long long>(k.rounds_fast),
                  static_cast<unsigned long long>(k.rounds_fallback));
    }
    std::printf("\n");
    for (const SweepPoint& p : k.sweep) {
      std::printf("        %2u thread%s %12.0f events/s  checksum "
                  "0x%016llx\n",
                  p.threads, p.threads == 1 ? " " : "s", p.events_per_sec,
                  static_cast<unsigned long long>(p.checksum));
    }
  }
  for (const GeometryPoint& g : r.geometry_sweep) {
    std::printf("    geometry %-28s %12.0f events/s  checksum 0x%016llx"
                "  amat %.3f / %.3f\n",
                g.geometry.c_str(), g.events_per_sec,
                static_cast<unsigned long long>(g.checksum), g.self_amat,
                g.peer_amat);
  }
}

// ---- CLI --------------------------------------------------------------------

/// "name+spin" = the test suite's spin variant (prob 0.7, repeat 48);
/// "name+spin:P:R" overrides both knobs (e.g. "470.lbm+spin:0.9:192" for
/// long spin runs, the shape the collapse engine targets).
WorkloadSpec spin_variant(const std::string& base, const std::string& params) {
  WorkloadSpec spec = find_spec(base);
  spec.name = base + "+spin" + params;
  spec.spin_prob = 0.7;
  spec.spin_repeat = 48.0;
  if (!params.empty()) {
    char* cursor = nullptr;
    spec.spin_prob = std::strtod(params.c_str() + 1, &cursor);
    if (cursor == nullptr || *cursor != ':' ||
        !(spec.spin_prob > 0.0 && spec.spin_prob <= 1.0)) {
      std::fprintf(stderr, "bad spin parameters \"%s\" (want :prob:repeat)\n",
                   params.c_str());
      std::exit(2);
    }
    spec.spin_repeat = std::strtod(cursor + 1, nullptr);
  }
  return spec;
}

std::vector<WorkloadSpec> parse_workloads(const std::string& list) {
  std::vector<WorkloadSpec> specs;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string name = list.substr(start, comma - start);
    if (!name.empty()) {
      const auto plus = name.rfind("+spin");
      if (plus != std::string::npos) {
        specs.push_back(
            spin_variant(name.substr(0, plus), name.substr(plus + 5)));
      } else {
        specs.push_back(find_spec(name));
      }
    }
    start = comma + 1;
  }
  return specs;
}

std::vector<unsigned> parse_thread_counts(const std::string& list) {
  std::vector<unsigned> counts;
  const char* cursor = list.c_str();
  while (*cursor != '\0') {
    char* end = nullptr;
    const unsigned long value = std::strtoul(cursor, &end, 10);
    if (end == cursor || value == 0 ||
        (!counts.empty() && value <= counts.back())) {
      std::fprintf(stderr,
                   "--sweep-threads wants a strictly ascending list of "
                   "positive counts, got \"%s\"\n",
                   list.c_str());
      std::exit(2);
    }
    counts.push_back(static_cast<unsigned>(value));
    cursor = *end == ',' ? end + 1 : end;
  }
  if (counts.empty()) counts.push_back(1);
  return counts;
}

std::vector<HierarchySpec> parse_geometry_list(const std::string& list) {
  std::vector<HierarchySpec> specs;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string text = list.substr(start, comma - start);
    if (!text.empty()) specs.push_back(parse_hierarchy(text));
    start = comma + 1;
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string workload =
      "470.lbm+spin:0.9:192,403.gcc+spin:0.9:192,"
      "470.lbm+spin,403.gcc+spin,403.gcc,416.gamess";
  std::string sweep = "1";
  std::uint64_t max_events = ~std::uint64_t{0};
  CliOptions cli(argv[0],
                 "co-run engine throughput vs the per-event reference");
  cli.flag("--json", &json, "emit the machine-readable report");
  cli.option("--workload", &workload, "A,B,...",
             "consecutive entries form (self, peer) pairs; +spin[:p:r] "
             "selects the spin variant");
  cli.option_u64("--events", &max_events, 1, ~std::uint64_t{0}, "N",
                 "truncate each trace to N events");
  std::string sweep_geometry;
  cli.option("--sweep-threads", &sweep, "1,2,8",
             "fan independent co-run cells out at each width");
  cli.option("--sweep-geometry", &sweep_geometry, "G1,G2,...",
             "re-run each pair under these cache hierarchies "
             "(SIZE/ASSOC/LINE[+l2=SIZE/ASSOC/LINE])");
  cli.parse_or_exit(argc, argv);
  const std::vector<unsigned> thread_counts = parse_thread_counts(sweep);
  const std::vector<HierarchySpec> sweep_geometries =
      parse_geometry_list(sweep_geometry);
  const std::vector<WorkloadSpec> specs = parse_workloads(workload);
  if (specs.size() < 2) {
    std::fprintf(stderr, "--workload needs at least two entries\n");
    return 2;
  }
  if (specs.size() % 2 != 0) {
    std::fprintf(stderr, "odd workload list: the last entry is ignored\n");
  }

  std::vector<PairReport> pairs;
  for (std::size_t i = 0; i + 1 < specs.size(); i += 2) {
    const PreparedWorkloadBench a(specs[i], max_events);
    const PreparedWorkloadBench b(specs[i + 1], max_events);
    pairs.push_back(measure_pair(a, b, thread_counts, sweep_geometries));
    if (!json) print_text(pairs.back());
  }

  if (json) {
    const std::string out = json_report(pairs);
    codelayout::testing::JsonLinter linter(out);
    if (!linter.valid()) {
      std::fprintf(stderr, "FATAL: generated JSON failed the linter: %s\n",
                   linter.error().c_str());
      return 3;
    }
    std::fputs(out.c_str(), stdout);
  }
  if (!g_checksums_ok) return 4;
  return g_geometry_sweep_ok ? 0 : 5;
}
