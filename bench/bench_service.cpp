// Throughput / latency bench for the layout-optimization service
// (BENCH_service.json): drives a daemon with N concurrent load-generator
// clients over a unix socket and reports p50/p90/p99 round-trip latency and
// jobs/s.
//
//   bench_service [--clients N] [--jobs N] [--connect PATH] [--json] ...
//
// By default it self-hosts a daemon in-process (real socket, real framing,
// real queue); --connect PATH drives an externally started service_daemon
// instead — the CI smoke job uses that mode. The job mix cycles solo,
// layout, co-run, and trace-stats jobs across all three priority classes,
// so repeats exercise the cross-request response cache while first
// occurrences exercise the full pipeline. A warm-up pass (one client, one
// pass through the mix) populates the Lab's memo tables first, so the
// measured distribution reflects steady-state service latency rather than
// one giant first-compute outlier. --json output is validated with the test
// suite's JSON linter (exit 3 on invalid).
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "json_lint.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"
#include "support/metrics.hpp"
#include "workloads/spec.hpp"

namespace {

using namespace codelayout;
using namespace codelayout::service;

/// The benched job mix: every job kind, both measurement flavours, all three
/// priority classes. Solo and co-run jobs carry `hierarchy` (--geometry /
/// --l2), so a non-default spec exercises the v2 wire field and per-geometry
/// memo keys end to end.
std::vector<JobRequest> build_mix(const HierarchySpec& hierarchy) {
  std::vector<JobRequest> mix;

  auto solo = [&](const char* workload, std::optional<Optimizer> optimizer,
                  Measure measure) {
    JobRequest job;
    job.kind = JobKind::kSolo;
    job.workload = workload;
    job.optimizer = optimizer;
    job.measure = measure;
    job.hierarchy = hierarchy;
    mix.push_back(std::move(job));
  };
  solo(kProbe1, std::nullopt, Measure::kHardware);
  solo(kProbe1, kBBAffinity, Measure::kHardware);
  solo(kProbe2, kFuncTrg, Measure::kSimulator);

  JobRequest layout;
  layout.kind = JobKind::kLayout;
  layout.workload = kProbe2;
  layout.optimizer = kBBAffinity;
  mix.push_back(std::move(layout));

  JobRequest corun;
  corun.kind = JobKind::kCorun;
  corun.measure = Measure::kHardware;
  corun.hierarchy = hierarchy;
  corun.parties.push_back({kProbe1, kBBAffinity, 1.0});
  corun.parties.push_back({kProbe2, std::nullopt, 1.0});
  mix.push_back(std::move(corun));

  JobRequest stats;
  stats.kind = JobKind::kTraceStats;
  for (std::uint32_t i = 0; i < 512; ++i) {
    stats.trace.push_run(i % 23, 3 + i % 9);
  }
  mix.push_back(std::move(stats));

  constexpr JobPriority kPriorities[] = {
      JobPriority::kInteractive, JobPriority::kNormal, JobPriority::kBatch};
  for (std::size_t i = 0; i < mix.size(); ++i) {
    mix[i].priority = kPriorities[i % 3];
  }
  return mix;
}

std::string json_report(const LoadGenOptions& load, const LoadGenReport& report,
                        const ServiceServer* server,
                        const HierarchySpec& hierarchy) {
  JsonWriter json;
  json.field("bench", "service");
  // Cross-machine throughput comparison is refused downstream when core
  // counts differ (tools/bench_compare.py).
  json.field("host_cores",
             static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.field("geometry", hierarchy.to_string());
  json.field("clients", load.clients);
  json.field("jobs_per_client", load.jobs_per_client);
  json.field("jobs", report.jobs);
  json.field("ok", report.ok);
  json.field("errors", report.errors);
  json.field("rejected", report.rejected);
  json.field("wall_seconds", report.wall_seconds);
  json.field("jobs_per_sec", report.jobs_per_sec);
  json.begin_object("latency_ms");
  json.field("mean", report.latency.mean() / 1e6);
  json.field("p50", report.latency.p50 / 1e6);
  json.field("p90", report.latency.p90 / 1e6);
  json.field("p99", report.latency.p99 / 1e6);
  json.field("max", static_cast<double>(report.latency.max) / 1e6);
  json.end_object();
  json.begin_object("cost");
  json.field("events", report.cost.events);
  json.field("rounds_fast", report.cost.rounds_fast);
  json.field("rounds_fallback", report.cost.rounds_fallback);
  json.field("cache_probes", report.cost.cache_probes);
  json.field("l2_probes", report.cost.l2_probes);
  json.field("memo_hits", report.cost.memo_hits);
  json.field("memo_misses", report.cost.memo_misses);
  json.field("bytes_decoded", report.cost.bytes_decoded);
  json.field("queue_wait_ms",
             static_cast<double>(report.cost.queue_wait_nanos) / 1e6);
  json.field("exec_wall_ms",
             static_cast<double>(report.cost.wall_nanos) / 1e6);
  json.field("cached_jobs", report.cost.cached_jobs);
  // v4 receipts: adaptive-dispatch decisions summed over every kOk response.
  json.field("dispatch_run", report.cost.dispatch_run);
  json.field("dispatch_flat", report.cost.dispatch_flat);
  // v5 receipts: closed-form predictor work summed over every kOk response.
  json.field("predict_calls", report.cost.predict_calls);
  json.field("profile_memo_hits", report.cost.profile_memo_hits);
  json.end_object();
  if (server != nullptr) {
    const ServiceServer::Stats stats = server->stats();
    const ResponseCache::Stats cache = server->cache_stats();
    json.begin_object("server");
    json.field("submitted", stats.submitted);
    json.field("completed", stats.completed);
    json.field("cache_hits", stats.cache_hits);
    json.field("introspected", stats.introspected);
    json.field("queue_peak", static_cast<std::uint64_t>(stats.queue_peak));
    json.field("cache_entries", static_cast<std::uint64_t>(cache.entries));
    json.field("cache_evictions", cache.evictions);
    json.end_object();
  }
  return json.finish();
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs bench;
  unsigned clients = 4;
  unsigned jobs_per_client = 24;
  std::string connect;

  CliOptions cli(argv[0],
                 "Service load generator: p50/p99 job latency and jobs/s "
                 "under concurrent clients.");
  add_bench_flags(cli, bench);
  cli.option_uint("--clients", &clients, 1, 256, "N",
                  "concurrent client connections");
  cli.option_uint("--jobs", &jobs_per_client, 1, 1u << 20, "N",
                  "jobs per client");
  cli.option("--connect", &connect, "PATH",
             "drive an external daemon at PATH instead of self-hosting");
  cli.parse_or_exit(argc, argv);
  apply_bench_observability(bench);

  std::optional<ServiceServer> server;
  std::string socket_path = connect;
  if (connect.empty()) {
    ServerConfig config;
    config.workers = 2;
    config.queue_depth = 4096;  // benching latency, not admission control
    server.emplace(config,
                   std::make_unique<LabExecutor>(bench_lab_options(bench)));
    socket_path = "bench-service.sock";
    server->listen_unix(socket_path);
  }

  LoadGenOptions load;
  load.socket_path = socket_path;
  load.clients = clients;
  load.jobs_per_client = jobs_per_client;
  load.mix = build_mix(bench.hierarchy());

  // Warm-up: populate the Lab memo tables (and the response cache) so the
  // measured run reports steady-state latency.
  LoadGenOptions warmup = load;
  warmup.clients = 1;
  warmup.jobs_per_client = static_cast<unsigned>(load.mix.size());
  const LoadGenReport warm = run_load_generator(warmup);
  if (warm.errors != 0) {
    std::fprintf(stderr, "warm-up reported %llu job errors\n",
                 static_cast<unsigned long long>(warm.errors));
    return 2;
  }

  const LoadGenReport report = run_load_generator(load);

  TextTable table({"metric", "value"});
  table.add_row({"clients", std::to_string(clients)});
  table.add_row({"jobs", fmt_count(report.jobs)});
  table.add_row({"ok / errors / rejected",
                 fmt_count(report.ok) + " / " + fmt_count(report.errors) +
                     " / " + fmt_count(report.rejected)});
  table.add_row({"wall", fmt_fixed(report.wall_seconds, 3) + " s"});
  table.add_row({"jobs/s", fmt_fixed(report.jobs_per_sec, 1)});
  table.add_row({"latency p50", fmt_fixed(report.latency.p50 / 1e6, 3) + " ms"});
  table.add_row({"latency p90", fmt_fixed(report.latency.p90 / 1e6, 3) + " ms"});
  table.add_row({"latency p99", fmt_fixed(report.latency.p99 / 1e6, 3) + " ms"});
  table.add_row({"latency max",
                 fmt_fixed(static_cast<double>(report.latency.max) / 1e6, 3) +
                     " ms"});
  std::printf("%s", table.render().c_str());

  // Where the daemon's time and simulated work went, summed over every kOk
  // response's CostReceipt (all-zero against a pre-v3 daemon).
  TextTable cost({"cost", "total"});
  cost.add_row({"events simulated", fmt_count(report.cost.events)});
  cost.add_row({"rounds fast / fallback",
                fmt_count(report.cost.rounds_fast) + " / " +
                    fmt_count(report.cost.rounds_fallback)});
  cost.add_row({"cache probes", fmt_count(report.cost.cache_probes)});
  cost.add_row({"l2 probes", fmt_count(report.cost.l2_probes)});
  cost.add_row({"memo hits / misses",
                fmt_count(report.cost.memo_hits) + " / " +
                    fmt_count(report.cost.memo_misses)});
  cost.add_row({"request bytes decoded",
                fmt_bytes(report.cost.bytes_decoded)});
  cost.add_row({"queue wait",
                fmt_fixed(static_cast<double>(report.cost.queue_wait_nanos) /
                              1e6,
                          3) +
                    " ms"});
  cost.add_row({"execute wall",
                fmt_fixed(static_cast<double>(report.cost.wall_nanos) / 1e6,
                          3) +
                    " ms"});
  cost.add_row({"jobs served from cache",
                fmt_count(report.cost.cached_jobs)});
  cost.add_row({"predict calls / memo hits",
                fmt_count(report.cost.predict_calls) + " / " +
                    fmt_count(report.cost.profile_memo_hits)});
  std::printf("%s", cost.render().c_str());

  const std::string json =
      json_report(load, report, server ? &*server : nullptr,
                  bench.hierarchy());
  if (bench.json) std::printf("%s\n", json.c_str());
  std::string json_error;
  if (!codelayout::testing::json_is_valid(json, &json_error)) {
    std::fprintf(stderr, "invalid JSON report: %s\n", json_error.c_str());
    return 3;
  }

  if (server) server->shutdown();

  // Two-process trace: against an external daemon, fetch its absolute-
  // timestamp export over the wire and splice it with our own so one
  // Perfetto file shows the whole job — client service_call spans (pid 1)
  // and daemon cache-lookup/queue-wait/execute spans (pid 2) joined by
  // trace id. Self-hosted runs share one recorder, so the plain export
  // already holds both sides.
  if (!connect.empty() && !bench.trace_out.empty()) {
    ServiceClient stat_client = ServiceClient::connect_unix(connect);
    const std::string daemon_trace =
        stat_client.introspect(IntrospectKind::kTraceExport);
    TraceExportOptions local_options;
    local_options.pid = 1;
    local_options.process_name = "bench_service";
    local_options.absolute_timestamps = true;
    const std::string local_trace =
        TraceRecorder::instance().export_chrome_trace(local_options);
    const std::string merged =
        merge_chrome_traces(local_trace, daemon_trace);
    std::string merged_error;
    if (!codelayout::testing::json_is_valid(merged, &merged_error)) {
      std::fprintf(stderr, "invalid merged trace: %s\n",
                   merged_error.c_str());
      return 3;
    }
    std::ofstream out(bench.trace_out, std::ios::binary);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   bench.trace_out.c_str());
      return 3;
    }
    out << merged;
    std::fprintf(stderr, "merged two-process trace written to %s\n",
                 bench.trace_out.c_str());
    bench.trace_out.clear();  // finish_observability must not overwrite it
  }

  finish_observability(bench, "bench_service");
  if (report.errors != 0) {
    std::fprintf(stderr, "%llu jobs reported errors\n",
                 static_cast<unsigned long long>(report.errors));
    return 4;
  }
  return 0;
}
