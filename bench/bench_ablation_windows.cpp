// E9 — ablation on the models' window parameters.
//
// The paper observes (Sec. III-C) that "TRG is sensitive to the window size
// 2C; its improvement is fragile as we try to pick the value that gives the
// best performance", while affinity examines a *range* of window sizes far
// smaller than 2C. This bench sweeps (a) the TRG co-occurrence window and
// (b) the affinity w-grid upper bound, and reports the resulting solo and
// average co-run miss reductions on a selected benchmark.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/lab.hpp"
#include "support/format.hpp"
#include "support/stats.hpp"
#include "workloads/spec.hpp"

using namespace codelayout;

namespace {

/// Batches the sweep point's full cell set (solos + co-runs vs every probe)
/// before any row math touches the memo.
void submit_sweep_point(Lab& lab, const std::string& name, Optimizer opt,
                        const HierarchySpec& hierarchy) {
  std::vector<EvalRequest> requests = {
      EvalRequest::solo(name, std::nullopt, Measure::kHardware, hierarchy),
      EvalRequest::solo(name, opt, Measure::kHardware, hierarchy)};
  for (const std::string& probe : selected_benchmarks()) {
    requests.push_back(EvalRequest::corun(name, std::nullopt, probe,
                                          std::nullopt, Measure::kHardware,
                                          hierarchy));
    requests.push_back(EvalRequest::corun(name, opt, probe, std::nullopt,
                                          Measure::kHardware, hierarchy));
  }
  lab.evaluate_all(requests);
}

double avg_corun_reduction(Lab& lab, const std::string& name, Optimizer opt,
                           const HierarchySpec& hierarchy) {
  RunningStats stats;
  for (const std::string& probe : selected_benchmarks()) {
    const double base =
        lab.corun(name, std::nullopt, probe, std::nullopt, Measure::kHardware,
                  hierarchy)
            .self.miss_ratio();
    const double with_opt =
        lab.corun(name, opt, probe, std::nullopt, Measure::kHardware,
                  hierarchy)
            .self.miss_ratio();
    stats.add(base > 0 ? 1.0 - with_opt / base : 0.0);
  }
  return stats.mean();
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  const HierarchySpec hierarchy = args.hierarchy();
  const std::string target = "458.sjeng";

  std::printf(
      "Ablation (paper Sec. III-C): window-size sensitivity on %s\n\n",
      target.c_str());

  // --- (a) TRG window sweep: 0.5C, 1C, 2C (paper default), 4C, 8C --------
  std::printf("(a) Function TRG vs co-occurrence window (paper default "
              "2C):\n");
  TextTable trg_table({"window", "solo miss red.", "avg co-run miss red."});
  const double factors[] = {0.5, 1.0, 2.0, 4.0, 8.0};
  for (double f : factors) {
    PipelineConfig config;
    // trg window entries derive from trg_cache_bytes as 2C/S; scale C so the
    // examined window is f*C.
    config.trg_cache_bytes =
        static_cast<std::uint64_t>(32 * 1024 * f / 2.0);
    Lab lab(bench_lab_options(args).pipeline(config));
    submit_sweep_point(lab, target, kFuncTrg, hierarchy);
    const double solo_base =
        lab.solo(target, std::nullopt, Measure::kHardware, hierarchy)
            .miss_ratio();
    const double solo_opt =
        lab.solo(target, kFuncTrg, Measure::kHardware, hierarchy)
            .miss_ratio();
    trg_table.add_row(
        {fmt_fixed(f, 1) + "C",
         fmt_pct(solo_base > 0 ? 1.0 - solo_opt / solo_base : 0.0, 1),
         fmt_pct(avg_corun_reduction(lab, target, kFuncTrg, hierarchy), 1)});
  }
  std::printf("%s\n", trg_table.render().c_str());

  // --- (b) affinity w-grid sweep ------------------------------------------
  std::printf("(b) BB affinity vs w-grid upper bound (paper uses w in "
              "[2,20]):\n");
  TextTable aff_table({"w grid", "solo miss red.", "avg co-run miss red."});
  const std::vector<std::pair<std::string, std::vector<std::uint32_t>>>
      grids = {
          {"{2,3,4}", {2, 3, 4}},
          {"{2..8}", {2, 3, 4, 6, 8}},
          {"{2..20} (default)", {2, 3, 4, 6, 8, 12, 16, 20}},
          {"{2..64}", {2, 3, 4, 6, 8, 12, 16, 20, 32, 48, 64}},
      };
  for (const auto& [label, grid] : grids) {
    PipelineConfig config;
    config.affinity.w_values = grid;
    Lab lab(bench_lab_options(args).pipeline(config));
    submit_sweep_point(lab, target, kBBAffinity, hierarchy);
    const double solo_base =
        lab.solo(target, std::nullopt, Measure::kHardware, hierarchy)
            .miss_ratio();
    const double solo_opt =
        lab.solo(target, kBBAffinity, Measure::kHardware, hierarchy)
            .miss_ratio();
    aff_table.add_row(
        {label, fmt_pct(solo_base > 0 ? 1.0 - solo_opt / solo_base : 0.0, 1),
         fmt_pct(avg_corun_reduction(lab, target, kBBAffinity, hierarchy),
                 1)});
  }
  std::printf("%s", aff_table.render().c_str());
  finish_observability(args, "bench_ablation_windows");
  return 0;
}
// (Per-sweep-point Labs are short-lived, so there is no single --json engine
// metrics dump; --trace-out / --metrics-out still cover the whole sweep.)
