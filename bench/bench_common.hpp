// Shared command-line handling for the bench binaries, built on the typed
// support/cli options API (so service binaries compose their own flags with
// the standard set instead of re-parsing argv).
//
//   --threads N | --threads=N   engine width (N >= 1; omit for one worker
//                               per hardware thread)
//   --json                      append a one-line JSON metrics dump (per-
//                               stage cache hits/computes/waits, wall & CPU
//                               time, dedup counts) after the table output
//   --trace-out FILE            record scoped spans (Lab stages, pipeline
//                               phases, ThreadPool queue-wait/run) and write
//                               a Chrome trace-event / Perfetto JSON file
//   --metrics-out FILE          enable the metrics registry and write its
//                               counters + latency histograms (p50/p90/p99)
//                               as JSON
//
// (bench_analysis_perf is the exception: it is a google-benchmark binary
// with its own --benchmark_* flags and JSON format; it composes via the CLI
// passthrough mode.)
#pragma once

#include <cstdio>
#include <string>

#include "cache/hierarchy.hpp"
#include "harness/lab.hpp"
#include "support/cli.hpp"
#include "support/registry.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout {

struct BenchArgs {
  unsigned threads = 0;  ///< 0 = one worker per hardware thread
  bool json = false;
  std::string trace_out;    ///< empty = tracing off
  std::string metrics_out;  ///< empty = metrics registry off
  std::string geometry;     ///< L1 geometry text; empty = the paper's 32K/4/64
  std::string l2;           ///< shared L2 geometry text; empty = no L2

  /// The cache hierarchy the flags describe (validated; latencies default).
  [[nodiscard]] HierarchySpec hierarchy() const {
    HierarchySpec spec;
    if (!geometry.empty()) spec.l1 = parse_geometry(geometry);
    if (!l2.empty()) spec.l2 = parse_geometry(l2);
    spec.validate();
    return spec;
  }
};

/// Declares the standard bench flags on `cli`, bound to `args`. Binaries
/// with extra flags declare them on the same parser before parse_or_exit.
inline void add_bench_flags(CliOptions& cli, BenchArgs& args) {
  cli.option_uint("--threads", &args.threads, 1, 4096, "N",
                  "engine width (default: one worker per hardware thread)");
  cli.flag("--json", &args.json,
           "append a one-line JSON engine-metrics dump after the output");
  cli.option("--trace-out", &args.trace_out, "FILE",
             "record scoped spans and write a Perfetto/Chrome trace JSON");
  cli.option("--metrics-out", &args.metrics_out, "FILE",
             "enable the metrics registry and write counters + histograms");
  cli.option("--geometry", &args.geometry, "SIZE/ASSOC/LINE",
             "L1I geometry, e.g. 32K/4/64 (default: the paper's 32K/4/64)");
  cli.option("--l2", &args.l2, "SIZE/ASSOC/LINE",
             "add a shared L2 behind private L1s, e.g. 256K/8/64");
}

/// Flips the observability switches before any Lab work happens so the first
/// pipeline phase is already covered.
inline void apply_bench_observability(const BenchArgs& args) {
  if (!args.trace_out.empty()) {
    TraceRecorder::instance().enable();
    TraceRecorder::instance().set_thread_name("main");
  }
  if (!args.metrics_out.empty()) {
    MetricsRegistry::global().set_enabled(true);
  }
}

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  CliOptions cli(argv[0]);
  add_bench_flags(cli, args);
  cli.parse_or_exit(argc, argv);
  apply_bench_observability(args);
  return args;
}

inline LabOptions bench_lab_options(const BenchArgs& args) {
  return LabOptions().threads(args.threads).metrics(true);
}

/// Prints the engine metrics as one JSON line when --json was given.
inline void emit_metrics_json(const BenchArgs& args, const char* bench,
                              const Lab& lab) {
  if (!args.json) return;
  std::printf("%s\n", lab.metrics().to_json(bench).c_str());
}

/// Writes the --trace-out / --metrics-out files (no engine JSON line). For
/// benches without one long-lived Lab; most call finish_bench instead.
inline void finish_observability(const BenchArgs& args, const char* bench) {
  if (!args.trace_out.empty()) {
    TraceRecorder::instance().write_chrome_trace(args.trace_out);
    std::fprintf(stderr, "trace written to %s (%llu spans, %llu dropped)\n",
                 args.trace_out.c_str(),
                 static_cast<unsigned long long>(
                     TraceRecorder::instance().recorded_spans()),
                 static_cast<unsigned long long>(
                     TraceRecorder::instance().dropped_spans()));
  }
  if (!args.metrics_out.empty()) {
    MetricsRegistry::global().write_json(args.metrics_out, bench);
    std::fprintf(stderr, "metrics written to %s\n", args.metrics_out.c_str());
  }
}

/// End-of-main hook: the --json line plus the --trace-out / --metrics-out
/// files. Every table bench calls this exactly once, after its output.
inline void finish_bench(const BenchArgs& args, const char* bench,
                         const Lab& lab) {
  emit_metrics_json(args, bench, lab);
  finish_observability(args, bench);
}

}  // namespace codelayout
