// Shared command-line handling for the bench binaries.
//
//   --threads N | --threads=N   engine width (N >= 1; omit for one worker
//                               per hardware thread)
//   --json                      append a one-line JSON metrics dump (per-
//                               stage cache hits/computes/waits, wall & CPU
//                               time, dedup counts) after the table output
//   --trace-out FILE            record scoped spans (Lab stages, pipeline
//                               phases, ThreadPool queue-wait/run) and write
//                               a Chrome trace-event / Perfetto JSON file
//   --metrics-out FILE          enable the metrics registry and write its
//                               counters + latency histograms (p50/p90/p99)
//                               as JSON
//
// (bench_analysis_perf is the exception: it is a google-benchmark binary
// with its own --benchmark_* flags and JSON format.)
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/lab.hpp"
#include "support/registry.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout {

struct BenchArgs {
  unsigned threads = 0;  ///< 0 = one worker per hardware thread
  bool json = false;
  std::string trace_out;    ///< empty = tracing off
  std::string metrics_out;  ///< empty = metrics registry off
};

namespace bench_detail {

[[noreturn]] inline void usage_error(const char* argv0, const std::string& why) {
  std::fprintf(stderr, "%s: %s\n", argv0, why.c_str());
  std::fprintf(stderr,
               "usage: %s [--threads N] [--json] [--trace-out FILE] "
               "[--metrics-out FILE]\n",
               argv0);
  std::exit(2);
}

/// Strict positive-integer parse: rejects empty, non-digit, zero, and
/// out-of-range values instead of strtoul's silent 0.
inline unsigned parse_threads(const char* argv0, const std::string& text) {
  bool all_digits = !text.empty();
  for (const char c : text) {
    all_digits = all_digits && std::isdigit(static_cast<unsigned char>(c));
  }
  if (!all_digits) {
    usage_error(argv0, "invalid --threads value '" + text +
                           "': expected a positive integer");
  }
  errno = 0;
  const unsigned long value = std::strtoul(text.c_str(), nullptr, 10);
  if (errno != 0 || value == 0 || value > 4096) {
    usage_error(argv0, "invalid --threads value '" + text +
                           "': expected an integer in [1, 4096]");
  }
  return static_cast<unsigned>(value);
}

/// Consumes "--flag VALUE" / "--flag=VALUE"; returns true when `arg` matched
/// `flag` and `out` was filled.
inline bool parse_value_flag(const char* argv0, const char* flag,
                             const std::string& arg, int argc, char** argv,
                             int& i, std::string& out) {
  const std::size_t flag_len = std::strlen(flag);
  if (arg == flag) {
    if (i + 1 >= argc) {
      usage_error(argv0, std::string(flag) + " requires a value");
    }
    out = argv[++i];
  } else if (arg.rfind(std::string(flag) + "=", 0) == 0) {
    out = arg.substr(flag_len + 1);
  } else {
    return false;
  }
  if (out.empty()) usage_error(argv0, std::string(flag) + " requires a value");
  return true;
}

}  // namespace bench_detail

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--json") {
      args.json = true;
    } else if (bench_detail::parse_value_flag(argv[0], "--threads", arg, argc,
                                              argv, i, value)) {
      args.threads = bench_detail::parse_threads(argv[0], value);
    } else if (bench_detail::parse_value_flag(argv[0], "--trace-out", arg,
                                              argc, argv, i, args.trace_out)) {
    } else if (bench_detail::parse_value_flag(argv[0], "--metrics-out", arg,
                                              argc, argv, i,
                                              args.metrics_out)) {
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--threads N] [--json] [--trace-out FILE] "
          "[--metrics-out FILE]\n",
          argv[0]);
      std::exit(0);
    } else {
      bench_detail::usage_error(argv[0], "unknown argument: " + arg);
    }
  }
  // Flip the observability switches before any Lab work happens so the first
  // pipeline phase is already covered.
  if (!args.trace_out.empty()) {
    TraceRecorder::instance().enable();
    TraceRecorder::instance().set_thread_name("main");
  }
  if (!args.metrics_out.empty()) {
    MetricsRegistry::global().set_enabled(true);
  }
  return args;
}

inline LabOptions bench_lab_options(const BenchArgs& args) {
  return LabOptions().threads(args.threads).metrics(true);
}

/// Prints the engine metrics as one JSON line when --json was given.
inline void emit_metrics_json(const BenchArgs& args, const char* bench,
                              const Lab& lab) {
  if (!args.json) return;
  std::printf("%s\n", lab.metrics().to_json(bench).c_str());
}

/// Writes the --trace-out / --metrics-out files (no engine JSON line). For
/// benches without one long-lived Lab; most call finish_bench instead.
inline void finish_observability(const BenchArgs& args, const char* bench) {
  if (!args.trace_out.empty()) {
    TraceRecorder::instance().write_chrome_trace(args.trace_out);
    std::fprintf(stderr, "trace written to %s (%llu spans, %llu dropped)\n",
                 args.trace_out.c_str(),
                 static_cast<unsigned long long>(
                     TraceRecorder::instance().recorded_spans()),
                 static_cast<unsigned long long>(
                     TraceRecorder::instance().dropped_spans()));
  }
  if (!args.metrics_out.empty()) {
    MetricsRegistry::global().write_json(args.metrics_out, bench);
    std::fprintf(stderr, "metrics written to %s\n", args.metrics_out.c_str());
  }
}

/// End-of-main hook: the --json line plus the --trace-out / --metrics-out
/// files. Every table bench calls this exactly once, after its output.
inline void finish_bench(const BenchArgs& args, const char* bench,
                         const Lab& lab) {
  emit_metrics_json(args, bench, lab);
  finish_observability(args, bench);
}

}  // namespace codelayout
