// Shared command-line handling for the bench binaries.
//
//   --threads N | --threads=N   engine width (0 = one per hardware thread)
//   --json                      append a one-line JSON metrics dump (per-
//                               stage cache hits/computes/waits, wall & CPU
//                               time, dedup counts) after the table output
//
// (bench_analysis_perf is the exception: it is a google-benchmark binary
// with its own --benchmark_* flags and JSON format.)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/lab.hpp"

namespace codelayout {

struct BenchArgs {
  unsigned threads = 0;  ///< 0 = one worker per hardware thread
  bool json = false;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      args.json = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      args.threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg.rfind("--threads=", 0) == 0) {
      args.threads = static_cast<unsigned>(
          std::strtoul(arg.c_str() + std::strlen("--threads="), nullptr, 10));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--threads N] [--json]\n", argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

inline LabOptions bench_lab_options(const BenchArgs& args) {
  return LabOptions().threads(args.threads).metrics(true);
}

/// Prints the engine metrics as one JSON line when --json was given.
inline void emit_metrics_json(const BenchArgs& args, const char* bench,
                              const Lab& lab) {
  if (!args.json) return;
  std::printf("%s\n", lab.metrics().to_json(bench).c_str());
}

}  // namespace codelayout
