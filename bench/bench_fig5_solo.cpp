// E3 — regenerates Figure 5: the solo-run effect of the two affinity
// optimizers — (a) performance speedup and (b) hw-counted instruction-cache
// miss-ratio reduction, per selected benchmark.
//
// Paper shape: speedups are modest (function reordering -1%..2%, BB
// 0%..3%) while miss reductions are dramatic (up to 34% function, 37% BB);
// BB entries for perlbench and povray are N/A (their compiler erred there).
#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiments.hpp"
#include "support/format.hpp"

using namespace codelayout;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  Lab lab(bench_lab_options(args));
  std::printf(
      "Figure 5: solo-run effect of the affinity optimizers\n"
      "(paper: speedups -1%%..3%%; hw miss reductions up to ~37%%)\n\n");
  TextTable table({"program", "func speedup", "func miss red.", "BB speedup",
                   "BB miss red."});
  std::vector<std::pair<std::string, double>> speedup_bars;
  for (const Fig5Row& row : fig5_rows(lab, args.hierarchy())) {
    table.add_row(
        {row.name, fmt_fixed(row.func_speedup, 4),
         fmt_pct(row.func_miss_reduction, 1),
         row.bb_supported ? fmt_fixed(row.bb_speedup, 4) : "N/A",
         row.bb_supported ? fmt_pct(row.bb_miss_reduction, 1) : "N/A"});
    speedup_bars.emplace_back(row.name, (row.func_speedup - 1.0) * 100);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("(a) function-affinity solo speedup (%%):\n%s",
              ascii_bars(speedup_bars, 40).c_str());
  finish_bench(args, "fig5_solo", lab);
  return 0;
}
