// Extension — the paper's Sec. III-F conjecture, tested; plus the fleet
// version of the question as an optimization problem.
//
// "We conjecture that in cases where the active code size is large ... and
// the number of co-run programs is high, combining defensiveness and
// politeness should see a synergistic improvement."
//
// Default mode: with two hyper-threads the paper found no synergy —
// optimizing one program already removes the contention. Here we scale the
// co-run to 3 and 4 SMT threads per core (Power-7/8 style) and measure the
// miss ratio of one program as progressively more of its peers are
// layout-optimized. If the conjecture holds, the marginal benefit of
// optimizing each additional peer stays positive at higher thread counts,
// unlike the 2-thread saturation.
//
// Scheduling mode (--programs A,B,... --slots M): instead of a fixed mix,
// treat the mix as the decision: given N programs and M SMT pair slots,
// which programs should share? The analytic predictor screens every pairing
// in closed form (perfmodel/scheduler.hpp), the greedy + local-search
// assignment minimizes total predicted front-level misses, and the K
// costliest chosen pairs are verified against the bit-exact co-run
// simulator. The same optimization is exposed as the service's co_schedule
// job kind; tests pin the two paths byte-identical.
//
// --json appends the one-line self-linted data report (exit 3 on lint
// failure) after the engine-metrics line in both modes.
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "harness/lab.hpp"
#include "json_lint.hpp"
#include "perfmodel/scheduler.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"
#include "workloads/spec.hpp"

using namespace codelayout;

namespace {

void append_format(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

/// Lints `doc` and prints it as the bench's final JSON line; exits 3 when
/// the generated document does not parse (self-validation, as
/// bench_corun_perf does).
void emit_linted(const std::string& doc) {
  codelayout::testing::JsonLinter linter(doc);
  if (!linter.valid()) {
    std::fprintf(stderr, "FATAL: generated JSON failed the linter: %s\n",
                 linter.error().c_str());
    std::exit(3);
  }
  std::printf("%s\n", doc.c_str());
}

std::vector<std::string> parse_names(const std::string& list) {
  std::vector<std::string> names;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string name = list.substr(start, comma - start);
    if (!name.empty()) names.push_back(find_spec(name).name);
    start = comma + 1;
  }
  return names;
}

/// The N-way conjecture sweep (the original extension).
int run_conjecture(const BenchArgs& args, Lab& lab,
                   const HierarchySpec& hierarchy) {
  // Cache-sensitive programs with moderate footprints.
  const std::vector<std::string> names = {"458.sjeng", "471.omnetpp",
                                          "403.gcc", "483.xalancbmk"};
  // Everything the N-way co-runs below consume: prepared workloads plus the
  // baseline and BB-affinity layouts, as one up-front batch.
  std::vector<EvalRequest> requests;
  for (const std::string& name : names) {
    requests.push_back(EvalRequest::layout(name, std::nullopt));
    requests.push_back(EvalRequest::layout(name, kBBAffinity));
  }
  lab.evaluate_all(requests);

  std::printf(
      "Extension: N-way SMT co-run, optimizing peers one at a time\n"
      "(measured program: %s; optimizer: BB affinity; miss ratio of the\n"
      "measured program under the hw proxy)\n\n",
      names[0].c_str());

  struct Cell {
    std::size_t threads, optimized;
    double base_self, opt_self, marginal;
  };
  std::vector<Cell> cells;
  TextTable table({"threads", "peers optimized", "self miss (base self)",
                   "self miss (opt self)", "marginal gain"});
  for (std::size_t threads = 2; threads <= 4; ++threads) {
    double prev_opt = -1.0;
    for (std::size_t optimized = 0; optimized < threads; ++optimized) {
      auto run = [&](bool optimize_self) {
        // One CorunSpec carries parties, speeds, and the hw-proxy flags;
        // fetch plans come memoized from the Lab (one per layout, shared
        // across every N-way cell below).
        CorunSpec spec;
        spec.options = hardware_proxy_options();
        spec.options.hierarchy = hierarchy;
        for (std::size_t i = 0; i < threads; ++i) {
          const std::string& name = names[i % names.size()];
          const PreparedWorkload& w = lab.workload(name);
          const bool use_opt =
              (i == 0 && optimize_self) || (i > 0 && i <= optimized);
          const std::optional<Optimizer> opt =
              use_opt ? std::optional<Optimizer>(kBBAffinity) : std::nullopt;
          spec.parties.push_back(CorunSpec::Party{
              &lab.fetch_plan(name, opt, hierarchy.l1.line_bytes),
              &w.eval_blocks, 1.0});
        }
        return simulate_corun(spec)[0].miss_ratio();
      };
      const double base_self = run(false);
      const double opt_self = run(true);
      const double marginal =
          prev_opt < 0 ? 0.0 : 1.0 - opt_self / prev_opt;
      table.add_row({std::to_string(threads), std::to_string(optimized),
                     fmt_pct(base_self), fmt_pct(opt_self),
                     prev_opt < 0 ? "—" : fmt_pct(marginal, 1)});
      cells.push_back({threads, optimized, base_self, opt_self,
                       prev_opt < 0 ? 0.0 : marginal});
      prev_opt = opt_self;
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: the baseline contention grows with the thread count (the\n"
      "base-self column), and optimizing each additional peer keeps\n"
      "lowering the measured program's miss ratio at 3-4 threads — the\n"
      "politeness of every peer matters once the cache is oversubscribed,\n"
      "supporting the paper's synergy conjecture for higher thread counts.\n"
      "(Runtime synergy at 2 threads remains negligible, as in Sec. III-F;\n"
      "see bench_sec3f_defensive_polite.)\n");
  finish_bench(args, "ext_multiprogram", lab);
  if (args.json) {
    std::string out;
    append_format(out,
                  "{\"bench\": \"ext_multiprogram\", \"mode\": \"conjecture\","
                  " \"host_cores\": %u, \"measured\": \"%s\", \"cells\": [",
                  std::thread::hardware_concurrency(), names[0].c_str());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      append_format(out,
                    "%s{\"threads\": %zu, \"optimized\": %zu,"
                    " \"base_self\": %.6f, \"opt_self\": %.6f,"
                    " \"marginal\": %.6f}",
                    i == 0 ? "" : ", ", c.threads, c.optimized, c.base_self,
                    c.opt_self, c.marginal);
    }
    out += "]}";
    emit_linted(out);
  }
  return 0;
}

/// The scheduling mode: minimize total predicted misses over pair slots,
/// then verify the costliest chosen pairs bit-exactly.
int run_schedule(const BenchArgs& args, Lab& lab,
                 const HierarchySpec& hierarchy,
                 const std::vector<std::string>& names, std::size_t slots,
                 std::size_t verify_top) {
  lab.prepare_all(names);
  std::vector<const SoloProfile*> profiles;
  profiles.reserve(names.size());
  for (const std::string& name : names) {
    profiles.push_back(
        &lab.solo_profile(name, std::nullopt, hierarchy.l1.line_bytes));
  }
  const PairCostMatrix costs =
      compute_pair_costs(profiles, hierarchy, lab.perf());
  const ScheduleResult schedule = schedule_corun(costs, slots);

  std::printf(
      "Co-scheduling %zu programs onto %zu SMT pair slots (geometry %s):\n"
      "minimize total predicted front-level misses; %zu closed-form pairing\n"
      "predictions, %u local-search refinement pass(es).\n\n",
      names.size(), slots, hierarchy.to_string().c_str(),
      names.size() * (names.size() - 1) / 2, schedule.refine_passes);

  TextTable table({"slot", "programs", "predicted misses"});
  std::size_t slot = 0;
  for (const SchedulePair& pair : schedule.pairs) {
    table.add_row({std::to_string(slot++),
                   names[pair.a] + " + " + names[pair.b],
                   fmt_count(static_cast<std::uint64_t>(pair.predicted_misses))});
  }
  for (const std::size_t index : schedule.unpaired) {
    table.add_row({std::to_string(slot++), names[index] + " (alone)",
                   fmt_count(static_cast<std::uint64_t>(costs.solo[index]))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("predicted total misses: %.0f\n\n",
              schedule.predicted_total_misses);

  // Bit-exact verification of the K costliest chosen pairs: both directions
  // of the pairing, each party measured over its full trace — the exact
  // quantity the predictor's objective sums.
  struct Verified {
    std::size_t a, b;
    double predicted, simulated;
  };
  std::vector<Verified> verified;
  for (const std::size_t pair_index : top_k_pairs(schedule, verify_top)) {
    const SchedulePair& pair = schedule.pairs[pair_index];
    const CorunResult& ab =
        lab.corun(names[pair.a], std::nullopt, names[pair.b], std::nullopt,
                  Measure::kSimulator, hierarchy);
    const CorunResult& ba =
        lab.corun(names[pair.b], std::nullopt, names[pair.a], std::nullopt,
                  Measure::kSimulator, hierarchy);
    verified.push_back({pair.a, pair.b, pair.predicted_misses,
                        static_cast<double>(ab.self.misses()) +
                            static_cast<double>(ba.self.misses())});
  }
  if (!verified.empty()) {
    std::printf("verification (bit-exact simulator, %zu costliest pairs):\n",
                verified.size());
    for (const Verified& v : verified) {
      const double rel =
          v.simulated > 0.0 ? (v.predicted - v.simulated) / v.simulated : 0.0;
      std::printf("  %-14s + %-14s  predicted %.0f vs simulated %.0f"
                  "  (%+.1f%%)\n",
                  names[v.a].c_str(), names[v.b].c_str(), v.predicted,
                  v.simulated, 100.0 * rel);
    }
  }
  finish_bench(args, "ext_multiprogram", lab);
  if (args.json) {
    std::string out;
    append_format(out,
                  "{\"bench\": \"ext_multiprogram\", \"mode\": \"schedule\","
                  " \"host_cores\": %u, \"slots\": %zu,"
                  " \"predicted_total_misses\": %.3f, \"refine_passes\": %u,"
                  " \"pairs\": [",
                  std::thread::hardware_concurrency(), slots,
                  schedule.predicted_total_misses, schedule.refine_passes);
    for (std::size_t i = 0; i < schedule.pairs.size(); ++i) {
      const SchedulePair& pair = schedule.pairs[i];
      append_format(out,
                    "%s{\"self\": \"%s\", \"peer\": \"%s\","
                    " \"predicted_misses\": %.3f}",
                    i == 0 ? "" : ", ", names[pair.a].c_str(),
                    names[pair.b].c_str(), pair.predicted_misses);
    }
    out += "], \"unpaired\": [";
    for (std::size_t i = 0; i < schedule.unpaired.size(); ++i) {
      append_format(out, "%s\"%s\"", i == 0 ? "" : ", ",
                    names[schedule.unpaired[i]].c_str());
    }
    out += "], \"verified\": [";
    for (std::size_t i = 0; i < verified.size(); ++i) {
      const Verified& v = verified[i];
      append_format(out,
                    "%s{\"self\": \"%s\", \"peer\": \"%s\","
                    " \"predicted_misses\": %.3f,"
                    " \"simulated_misses\": %.0f}",
                    i == 0 ? "" : ", ", names[v.a].c_str(), names[v.b].c_str(),
                    v.predicted, v.simulated);
    }
    out += "]}";
    emit_linted(out);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  std::string programs;
  std::uint64_t slots = 0;
  std::uint64_t verify_top = 2;
  CliOptions cli(argv[0],
                 "N-way SMT co-run extension; with --programs/--slots, "
                 "predictor-driven co-scheduling");
  add_bench_flags(cli, args);
  cli.option("--programs", &programs, "A,B,...",
             "co-schedule these workloads (enables the scheduling mode; "
             "requires --slots)");
  cli.option_u64("--slots", &slots, 1, 64, "M",
                 "SMT pair slots for the scheduling mode");
  cli.option_u64("--verify-top", &verify_top, 0, 64, "K",
                 "bit-exact verify the K costliest chosen pairs (default 2)");
  cli.parse_or_exit(argc, argv);
  apply_bench_observability(args);

  const HierarchySpec hierarchy = args.hierarchy();
  Lab lab(bench_lab_options(args));
  if (programs.empty() && slots == 0) {
    return run_conjecture(args, lab, hierarchy);
  }
  if (programs.empty() || slots == 0) {
    std::fprintf(stderr,
                 "error: the scheduling mode needs both --programs and "
                 "--slots\n%s\n",
                 cli.usage().c_str());
    return 2;
  }
  return run_schedule(args, lab, hierarchy, parse_names(programs),
                      static_cast<std::size_t>(slots),
                      static_cast<std::size_t>(verify_top));
}
