// Extension — the paper's Sec. III-F conjecture, tested.
//
// "We conjecture that in cases where the active code size is large ... and
// the number of co-run programs is high, combining defensiveness and
// politeness should see a synergistic improvement."
//
// With two hyper-threads the paper found no synergy: optimizing one program
// already removes the contention. Here we scale the co-run to 3 and 4
// SMT threads per core (Power-7/8 style) and measure the miss ratio of one
// program as progressively more of its peers are layout-optimized. If the
// conjecture holds, the marginal benefit of optimizing each additional peer
// stays positive at higher thread counts, unlike the 2-thread saturation.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "harness/lab.hpp"
#include "support/format.hpp"
#include "workloads/spec.hpp"

using namespace codelayout;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  const HierarchySpec hierarchy = args.hierarchy();
  Lab lab(bench_lab_options(args));
  // Cache-sensitive programs with moderate footprints.
  const std::vector<std::string> names = {"458.sjeng", "471.omnetpp",
                                          "403.gcc", "483.xalancbmk"};
  // Everything the N-way co-runs below consume: prepared workloads plus the
  // baseline and BB-affinity layouts, as one up-front batch.
  std::vector<EvalRequest> requests;
  for (const std::string& name : names) {
    requests.push_back(EvalRequest::layout(name, std::nullopt));
    requests.push_back(EvalRequest::layout(name, kBBAffinity));
  }
  lab.evaluate_all(requests);

  std::printf(
      "Extension: N-way SMT co-run, optimizing peers one at a time\n"
      "(measured program: %s; optimizer: BB affinity; miss ratio of the\n"
      "measured program under the hw proxy)\n\n",
      names[0].c_str());

  TextTable table({"threads", "peers optimized", "self miss (base self)",
                   "self miss (opt self)", "marginal gain"});
  for (std::size_t threads = 2; threads <= 4; ++threads) {
    double prev_opt = -1.0;
    for (std::size_t optimized = 0; optimized < threads; ++optimized) {
      auto run = [&](bool optimize_self) {
        // One CorunSpec carries parties, speeds, and the hw-proxy flags;
        // fetch plans come memoized from the Lab (one per layout, shared
        // across every N-way cell below).
        CorunSpec spec;
        spec.options = hardware_proxy_options();
        spec.options.hierarchy = hierarchy;
        for (std::size_t i = 0; i < threads; ++i) {
          const std::string& name = names[i % names.size()];
          const PreparedWorkload& w = lab.workload(name);
          const bool use_opt =
              (i == 0 && optimize_self) || (i > 0 && i <= optimized);
          const std::optional<Optimizer> opt =
              use_opt ? std::optional<Optimizer>(kBBAffinity) : std::nullopt;
          spec.parties.push_back(CorunSpec::Party{
              &lab.fetch_plan(name, opt, hierarchy.l1.line_bytes),
              &w.eval_blocks, 1.0});
        }
        return simulate_corun(spec)[0].miss_ratio();
      };
      const double base_self = run(false);
      const double opt_self = run(true);
      const double marginal =
          prev_opt < 0 ? 0.0 : 1.0 - opt_self / prev_opt;
      table.add_row({std::to_string(threads), std::to_string(optimized),
                     fmt_pct(base_self), fmt_pct(opt_self),
                     prev_opt < 0 ? "—" : fmt_pct(marginal, 1)});
      prev_opt = opt_self;
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: the baseline contention grows with the thread count (the\n"
      "base-self column), and optimizing each additional peer keeps\n"
      "lowering the measured program's miss ratio at 3-4 threads — the\n"
      "politeness of every peer matters once the cache is oversubscribed,\n"
      "supporting the paper's synergy conjecture for higher thread counts.\n"
      "(Runtime synergy at 2 threads remains negligible, as in Sec. III-F;\n"
      "see bench_sec3f_defensive_polite.)\n");
  finish_bench(args, "ext_multiprogram", lab);
  return 0;
}
