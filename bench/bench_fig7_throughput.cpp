// E6 — regenerates Figure 7: (a) the throughput improvement of baseline
// co-run over solo-run (the benefit of hyper-threading) for the 28 program
// pairs, and (b) the magnifying effect of function-affinity optimization on
// that improvement.
//
// Paper shape: (a) finishing both programs is 15% to over 30% faster
// co-run; (b) the magnification exceeds 5.6% for 16/28 pairs and 10% for
// 9/28, the largest is 26%, the arithmetic average 7.9%, with exactly one
// degradation (-8%, the 453-453 pair).
#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiments.hpp"
#include "support/format.hpp"
#include "support/stats.hpp"

using namespace codelayout;

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  Lab lab(bench_lab_options(args));
  const auto pairs = fig7_pairs(lab, args.hierarchy());

  std::printf(
      "Figure 7(a): throughput improvement of baseline co-run over "
      "solo-run\n(paper: 15%% to over 30%%)\n\n");
  std::vector<std::pair<std::string, double>> base_bars, mag_bars;
  RunningStats base_stats, mag_stats;
  std::size_t over56 = 0, over10 = 0, degradations = 0;
  for (const Fig7Pair& p : pairs) {
    const std::string label = p.a.substr(0, 3) + "-" + p.b.substr(0, 3);
    base_bars.emplace_back(label, p.baseline_improvement * 100);
    mag_bars.emplace_back(label, p.magnification() * 100);
    base_stats.add(p.baseline_improvement);
    mag_stats.add(p.magnification());
    if (p.magnification() > 0.056) ++over56;
    if (p.magnification() >= 0.10) ++over10;
    if (p.magnification() < 0.0) ++degradations;
  }
  std::printf("%s\n", ascii_bars(base_bars, 36, "%").c_str());
  std::printf("min %s  avg %s  max %s\n\n",
              fmt_pct(base_stats.min(), 1).c_str(),
              fmt_pct(base_stats.mean(), 1).c_str(),
              fmt_pct(base_stats.max(), 1).c_str());

  std::printf(
      "Figure 7(b): magnifying effect of function-affinity optimization\n"
      "(paper: avg 7.9%%, max 26%%, one degradation)\n\n%s\n",
      ascii_bars(mag_bars, 36, "%").c_str());
  std::printf(
      "pairs over 5.6%%: %zu/%zu   pairs >= 10%%: %zu/%zu   degradations: "
      "%zu\navg magnification %s   max %s\n",
      over56, pairs.size(), over10, pairs.size(), degradations,
      fmt_pct(mag_stats.mean(), 1).c_str(),
      fmt_pct(mag_stats.max(), 1).c_str());
  finish_bench(args, "fig7_throughput", lab);
  return 0;
}
