// E4 — regenerates Table II: average co-run speedup and miss-ratio
// reduction (hardware-counted and simulated) for the three reported
// optimizers (BB TRG is omitted as unprofitable, as in the paper).
//
// Paper shape: BB affinity is the most robust and best performing (avg
// speedups 1%..5%); function affinity is robust but modest; function TRG is
// occasionally spectacular but fragile (miss ratio can even worsen);
// hardware-counted reductions are smaller than simulated ones.
#include <cstdio>

#include "bench_common.hpp"
#include "harness/experiments.hpp"
#include "support/format.hpp"
#include "support/stats.hpp"

using namespace codelayout;

namespace {

std::vector<std::string> cell_columns(const Table2Cell& cell) {
  if (!cell.available) return {"N/A", "N/A", "N/A"};
  return {fmt_signed_pct(cell.speedup - 1.0), fmt_pct(cell.miss_reduction_hw, 1),
          fmt_pct(cell.miss_reduction_sim, 1)};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = parse_bench_args(argc, argv);
  Lab lab(bench_lab_options(args));
  std::printf(
      "Table II: average co-run speedup and miss ratio reduction by the "
      "three optimizers\n(speedup | hw-counted miss red. | simulated miss "
      "red.)\n\n");
  TextTable table({"Benchmarks", "FA speedup", "FA hw", "FA sim",
                   "BA speedup", "BA hw", "BA sim", "FT speedup", "FT hw",
                   "FT sim", "best"});
  RunningStats fa, ba, ft;
  for (const Table2Row& row : table2_rows(lab, args.hierarchy())) {
    auto f = cell_columns(row.func_affinity);
    auto b = cell_columns(row.bb_affinity);
    auto t = cell_columns(row.func_trg);
    double best = row.func_affinity.speedup;
    std::string who = "FuncAffinity";
    if (row.bb_affinity.available && row.bb_affinity.speedup > best) {
      best = row.bb_affinity.speedup;
      who = "BBAffinity";
    }
    if (row.func_trg.speedup > best) {
      best = row.func_trg.speedup;
      who = "FuncTRG";
    }
    table.add_row({row.name, f[0], f[1], f[2], b[0], b[1], b[2], t[0], t[1],
                   t[2], who});
    fa.add(row.func_affinity.speedup);
    if (row.bb_affinity.available) ba.add(row.bb_affinity.speedup);
    ft.add(row.func_trg.speedup);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("average co-run speedup: FuncAffinity %s, BBAffinity %s, "
              "FuncTRG %s\n",
              fmt_signed_pct(fa.mean() - 1.0).c_str(),
              fmt_signed_pct(ba.mean() - 1.0).c_str(),
              fmt_signed_pct(ft.mean() - 1.0).c_str());
  finish_bench(args, "table2_corun_avg", lab);
  return 0;
}
