// E8 — google-benchmark timings backing the paper's complexity claims
// (Sec. II-B/C): the fast stack-based affinity analysis scales as O(W*N)
// versus the naive Algorithm 1's O(W*N*B); TRG construction is O(N*Q); TRG
// reduction is polynomial in the node count. Run standalone: prints
// wall-clock per analysis over synthetic traces of growing length.
//
// A second mode measures the run-length-encoded trace core over the workload
// suite: per-kernel events/s for the run-aware production kernels, paired
// with per-event reference replays where the flat loop is cheap to restate
// (LRU stack, reuse, I-cache sim), plus the run-compression ratio of every
// trace. Spin variants (a polling loop grafted onto a suite workload) show
// the collapse paths on traces with real same-block runs.
//
// The suite also measures the parallel analysis front end: the `affinity`
// and `trg_build` kernels run the production fan-out (affinity w-grid over a
// shared pool; sharded TRG build) at every thread count in --sweep-threads,
// reporting per-count throughput plus an FNV checksum of the result — equal
// checksums across counts are the bit-identity proof, and CI asserts it.
// Each measurement uses a pool of (threads - 1) workers because the calling
// thread participates (help-first), keeping the OS thread count equal to the
// nominal sweep value.
//
// Every dispatchable kernel is measured three ways — forced run-aware,
// forced straight-line, and the dispatched cell production sees (auto, or
// --force-path=run|flat) — with the two paths' checksums cross-checked in
// process: a divergence exits 5, so the bench run itself is a cross-path
// bit-identity proof. The JSON report records host_cores, the per-kernel
// dispatch decision, both paths' throughput, and the per-workload count of
// flat-view materializations inside the timed regions (asserted zero: the
// lazy SoA view is hoisted once per trace, never rebuilt per sweep cell).
//
//   bench_analysis_perf --suite [--events N] [--json] [--sweep-threads 1,2,8]
//   bench_analysis_perf --workload 470.lbm+spin [--events N] [--json]
//   bench_analysis_perf --workload 429.mcf,458.sjeng --sweep-threads 1,2,8
//   bench_analysis_perf --suite --force-path=flat --json
//
// Without these flags the google-benchmark harness runs as before.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "affinity/analysis.hpp"
#include "affinity/naive.hpp"
#include "cache/icache_sim.hpp"
#include "support/cli.hpp"
#include "exec/interpreter.hpp"
#include "harness/pipeline.hpp"
#include "layout/layout.hpp"
#include "locality/footprint.hpp"
#include "locality/lru_stack.hpp"
#include "locality/reuse.hpp"
#include "support/registry.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "trace/dispatch.hpp"
#include "trg/graph.hpp"
#include "trg/reduction.hpp"
#include "workloads/spec.hpp"

namespace {

using namespace codelayout;

/// A loop-structured synthetic trace with `blocks` distinct symbols.
Trace synthetic_trace(std::size_t events, Symbol blocks, std::uint64_t seed) {
  Rng rng(seed);
  Trace t(Trace::Granularity::kBlock);
  t.reserve(events);
  Symbol last = blocks;  // out-of-range sentinel
  while (t.size() < events) {
    // Zipf-biased working sets with local runs, like hot loops.
    const auto base = static_cast<Symbol>(rng.zipf(blocks, 1.1));
    const std::size_t run = 3 + rng.below(6);
    for (std::size_t i = 0; i < run && t.size() < events; ++i) {
      Symbol s = static_cast<Symbol>((base + i) % blocks);
      if (s == last) s = (s + 1) % blocks;
      t.push_symbol(s);
      last = s;
    }
  }
  return t;
}

void BM_AffinityFast(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const Trace trace = synthetic_trace(events, 256, 42).trimmed();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_affinity(trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AffinityFast)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AffinityNaive(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const Trace trace = synthetic_trace(events, 64, 42).trimmed();
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_hierarchy(trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AffinityNaive)->Arg(250)->Arg(500)->Arg(1000);

void BM_TrgBuild(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const Trace trace = synthetic_trace(events, 512, 42).trimmed();
  const TrgConfig config{.window_entries = trg_window_entries(32 * 1024, 64)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Trg::build(trace, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TrgBuild)->Arg(10000)->Arg(100000)->Arg(400000);

void BM_TrgReduce(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const Trace trace = synthetic_trace(events, 512, 42).trimmed();
  const Trg graph = Trg::build(
      trace, TrgConfig{.window_entries = trg_window_entries(32 * 1024, 64)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce_trg(graph, 128));
  }
}
BENCHMARK(BM_TrgReduce)->Arg(10000)->Arg(100000);

void BM_FullPipeline(benchmark::State& state) {
  // End-to-end optimizer cost on a real workload: the paper reports the
  // added compilation time is "a couple of times" the original compile.
  const WorkloadSpec& spec = find_spec("458.sjeng");
  const PreparedWorkload prepared = prepare_workload(spec);
  const Optimizer opt = state.range(0) == 0 ? kFuncAffinity : kBBAffinity;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_layout(prepared, opt));
  }
}
BENCHMARK(BM_FullPipeline)->Arg(0)->Arg(1);

// ---- Run-aware kernel suite mode --------------------------------------------

/// One point of a thread-scaling sweep: throughput at `threads` OS threads
/// plus the FNV checksum of the kernel's result at that width (equal
/// checksums across the sweep are the bit-identity evidence).
struct SweepPoint {
  unsigned threads = 1;
  double events_per_sec = 0.0;
  std::uint64_t checksum = 0;
};

/// One measured kernel: dispatched-cell throughput, and optionally a
/// per-event reference replay's throughput for the run-aware speedup.
/// Parallel kernels additionally carry the thread sweep; for those,
/// events_per_sec is the widest point and baseline_events_per_sec the
/// single-thread point, so the reported speedup is the thread-scaling
/// factor. Dispatchable kernels also carry both forced paths' throughput,
/// the dispatch decision, and the (cross-path-asserted) result checksum.
struct KernelReport {
  const char* name;
  double events_per_sec = 0.0;
  double baseline_events_per_sec = 0.0;  ///< 0 when no reference exists
  double run_events_per_sec = 0.0;       ///< forced run-aware path
  double flat_events_per_sec = 0.0;      ///< forced straight-line path
  double auto_events_per_sec = 0.0;      ///< dispatched cell, same harness
  double dispatch_ratio = 1.0;  ///< median paired chosen/other-path ratio
  const char* dispatch = nullptr;        ///< "run"/"flat" dispatched decision
  std::uint64_t checksum = 0;            ///< equal on both paths (asserted)
  std::vector<SweepPoint> sweep{};
};

// FNV checksums of the parallel kernels' outputs (same scheme as the test
// suite's golden hashes: FNV-1a over little-endian 64-bit words).

constexpr std::uint64_t kFnvSeed = 14695981039346656037ull;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_hierarchy(const AffinityHierarchy& hierarchy) {
  std::uint64_t h = fnv1a(kFnvSeed, hierarchy.nodes().size());
  for (const AffinityGroup& g : hierarchy.nodes()) {
    h = fnv1a(h, g.id);
    h = fnv1a(h, g.formed_at_w);
    h = fnv1a(h, g.first_occurrence);
    h = fnv1a(h, g.occurrences);
    for (const Symbol s : g.members) h = fnv1a(h, s);
    for (const std::uint32_t c : g.children) h = fnv1a(h, c);
  }
  for (const std::uint32_t r : hierarchy.roots()) h = fnv1a(h, r);
  return h;
}

std::uint64_t hash_trg(const Trg& graph) {
  std::uint64_t h = fnv1a(kFnvSeed, graph.node_count());
  for (const Trg::Edge& e : graph.edges_by_weight()) {
    h = fnv1a(h, e.a);
    h = fnv1a(h, e.b);
    h = fnv1a(h, e.weight);
  }
  return h;
}

std::uint64_t hash_sim_result(const SimResult& r) {
  std::uint64_t h = fnv1a(kFnvSeed, r.instructions);
  h = fnv1a(h, r.overhead_instructions);
  h = fnv1a(h, r.line_probes);
  h = fnv1a(h, r.demand_misses);
  h = fnv1a(h, r.wrong_path_misses);
  h = fnv1a(h, r.blocks);
  h = fnv1a(h, r.l2_probes);
  return fnv1a(h, r.l2_misses);
}

std::uint64_t hash_reuse_profile(const ReuseProfile& profile) {
  std::uint64_t h = fnv1a(kFnvSeed, profile.cold_accesses);
  h = fnv1a(h, profile.total_accesses);
  h = fnv1a(h, profile.distance_histogram.size());
  for (const std::uint64_t v : profile.distance_histogram) h = fnv1a(h, v);
  h = fnv1a(h, profile.time_histogram.size());
  for (const std::uint64_t v : profile.time_histogram) h = fnv1a(h, v);
  return h;
}

std::uint64_t hash_footprint(const FootprintCurve& curve) {
  // Bit patterns, not rounded values: the run/flat bit-identity claim is
  // exact double equality, so the checksum must see every mantissa bit.
  std::uint64_t h = fnv1a(kFnvSeed, curve.values().size());
  for (const double v : curve.values()) {
    h = fnv1a(h, std::bit_cast<std::uint64_t>(v));
  }
  return h;
}

bool g_geometry_checksums_ok = true;
bool g_path_checksums_ok = true;
bool g_flat_view_hoisted = true;

/// One cache hierarchy of the icache kernel's --sweep-geometry axis.
struct GeometryPoint {
  std::string geometry;  ///< HierarchySpec::to_string() form
  double events_per_sec = 0.0;
  std::uint64_t checksum = 0;  ///< FNV over the full SimResult
  double amat_cycles = 0.0;
};

struct WorkloadReport {
  std::string name;
  std::uint64_t events = 0;
  std::uint64_t runs = 0;
  double run_compression = 1.0;
  /// Flat-view materializations inside the timed regions. Asserted zero:
  /// both traces' SoA views are built once, before any measurement.
  std::uint64_t flat_view_builds = 0;
  std::vector<KernelReport> kernels;
  std::vector<GeometryPoint> geometry_sweep;
};

/// Times `fn`, repeating until at least ~`window` seconds of work (default
/// ~50 ms), and returns events/s.
template <typename Fn>
double measure_events_per_sec(std::uint64_t events, Fn&& fn,
                              double window = 0.05) {
  using clock = std::chrono::steady_clock;
  double elapsed = 0.0;
  std::uint64_t iterations = 0;
  do {
    const auto start = clock::now();
    fn();
    elapsed += std::chrono::duration<double>(clock::now() - start).count();
    ++iterations;
  } while (elapsed < window && iterations < 1000);
  return static_cast<double>(events) * static_cast<double>(iterations) /
         elapsed;
}

/// Bennett–Kruskal reuse, one Fenwick update/query per event — the
/// pre-refactor loop restated as a reference baseline.
std::uint64_t per_event_reuse(const Trace& trace) {
  const std::span<const Symbol> symbols = trace.symbols();
  std::vector<std::int64_t> tree(trace.size() + 1, 0);
  const auto add = [&](std::size_t pos, int delta) {
    for (std::size_t i = pos + 1; i < tree.size(); i += i & (~i + 1)) {
      tree[i] += delta;
    }
  };
  const auto prefix = [&](std::size_t pos) {
    std::int64_t s = 0;
    for (std::size_t i = pos; i > 0; i -= i & (~i + 1)) s += tree[i];
    return s;
  };
  std::vector<std::uint64_t> last(trace.symbol_space(), kColdReuse);
  std::uint64_t checksum = 0;
  for (std::size_t t = 0; t < symbols.size(); ++t) {
    const Symbol s = symbols[t];
    const std::uint64_t prev = last[s];
    if (prev != kColdReuse) {
      checksum += static_cast<std::uint64_t>(prefix(tree.size() - 1) -
                                             prefix(prev + 1));
      add(prev, -1);
    }
    add(t, +1);
    last[s] = t;
  }
  return checksum;
}

/// The pre-refactor per-event solo fetch loop as a reference baseline,
/// accumulating the same statistics as the production kernel.
SimResult per_event_solo(const Module& module, const CodeLayout& layout,
                         const Trace& trace, const SimOptions& options) {
  SetAssocCache cache(options.geometry());
  Rng rng = Rng(options.seed).fork(1);
  SimResult stats;
  for (const Symbol sym : trace.symbols()) {
    const BlockId b(sym);
    const BasicBlock& bb = module.block(b);
    const auto span = layout.lines_of(b, options.geometry().line_bytes);
    const auto& place = layout.placement(b);
    ++stats.blocks;
    stats.instructions += place.bytes / kInstrBytes;
    stats.overhead_instructions += (place.bytes - bb.size_bytes) / kInstrBytes;
    for (std::uint32_t i = 0; i < span.line_count; ++i) {
      const std::uint64_t line = span.first_line + i;
      ++stats.line_probes;
      if (!cache.access(line)) {
        ++stats.demand_misses;
        if (options.next_line_prefetch) cache.prefill(line + 1);
      }
    }
    if (options.wrong_path_rate > 0.0 && bb.successors.size() > 1 &&
        rng.chance(options.wrong_path_rate)) {
      if (!cache.access(span.first_line + span.line_count)) {
        ++stats.wrong_path_misses;
      }
    }
  }
  return stats;
}

/// Sweeps `run(pool, checksum_out)` over the requested thread counts. Each
/// count gets a pool of (threads - 1) workers — the calling thread
/// participates via the help-first task sets, so `threads` is the true OS
/// thread count — and threads == 1 runs the serial path (null pool).
template <typename RunFn>
std::vector<SweepPoint> sweep_kernel(std::uint64_t events,
                                     const std::vector<unsigned>& thread_counts,
                                     RunFn&& run) {
  std::vector<SweepPoint> sweep;
  sweep.reserve(thread_counts.size());
  for (const unsigned threads : thread_counts) {
    const std::unique_ptr<ThreadPool> pool =
        threads > 1 ? std::make_unique<ThreadPool>(threads - 1) : nullptr;
    SweepPoint point{.threads = threads};
    point.events_per_sec = measure_events_per_sec(
        events, [&] { point.checksum = run(pool.get()); });
    sweep.push_back(point);
  }
  return sweep;
}

/// Measures one dispatchable kernel three ways — forced run-aware, forced
/// straight-line, and the dispatched (auto or --force-path) cell production
/// sees — and cross-checks the two paths' checksums. `invoke(dispatch)`
/// runs the kernel, `hash(result)` folds its output to 64 bits. A checksum
/// divergence is a correctness bug: it flags the run for exit code 5.
template <typename Invoke, typename Hash>
KernelReport measure_paths(const char* name, DispatchKernel kernel,
                           const Trace& trace, const AnalysisDispatch& base,
                           std::uint64_t events, Invoke&& invoke,
                           Hash&& hash) {
  AnalysisDispatch run = base;
  run.force = ForcedPath::kRun;
  AnalysisDispatch flat = base;
  flat.force = ForcedPath::kFlat;

  KernelReport report{.name = name};
  report.checksum = hash(invoke(run));
  const std::uint64_t flat_checksum = hash(invoke(flat));
  if (flat_checksum != report.checksum) {
    std::fprintf(stderr,
                 "FATAL: %s: run/flat paths diverge (run 0x%016llx, flat "
                 "0x%016llx)\n",
                 name, static_cast<unsigned long long>(report.checksum),
                 static_cast<unsigned long long>(flat_checksum));
    g_path_checksums_ok = false;
  }
  // The three timed cells are measured interleaved over three rounds and
  // the best round kept per cell: a single ~50 ms sample carries
  // double-digit noise on small shared hosts. The per-round run/flat
  // samples are also kept individually — the dispatch floor compares the
  // two paths, and comparing the maxima of independently drawn noisy
  // samples flakes on near-ties (the loser's best draw beats the winner's
  // by more than the floor margin). Adjacent samples from the same round
  // share the host's throttle state, so the per-round *ratio* is far more
  // stable than either absolute rate; the floor gates on its median.
  std::vector<double> run_samples;
  std::vector<double> flat_samples;
  // Alternate which path goes first within a round so any systematic
  // first-vs-second advantage (frequency ramp, cache warmth) cancels
  // across the median instead of biasing the ratio one way.
  const auto paired_round = [&](double window) {
    const bool run_first = (run_samples.size() % 2) == 0;
    const auto measure_run = [&] {
      run_samples.push_back(measure_events_per_sec(
          events, [&] { benchmark::DoNotOptimize(invoke(run)); }, window));
    };
    const auto measure_flat = [&] {
      flat_samples.push_back(measure_events_per_sec(
          events, [&] { benchmark::DoNotOptimize(invoke(flat)); }, window));
    };
    if (run_first) {
      measure_run();
      measure_flat();
    } else {
      measure_flat();
      measure_run();
    }
  };
  for (int round = 0; round < 3; ++round) {
    paired_round(0.05);
    report.auto_events_per_sec =
        std::max(report.auto_events_per_sec,
                 measure_events_per_sec(
                     events, [&] { benchmark::DoNotOptimize(invoke(base)); }));
  }
  const KernelPath chosen = choose_path(base, kernel, trace);
  report.dispatch = kernel_path_name(chosen);
  std::vector<double>& chosen_samples =
      chosen == KernelPath::kRunAware ? run_samples : flat_samples;
  std::vector<double>& other_samples =
      chosen == KernelPath::kRunAware ? flat_samples : run_samples;
  const auto median_ratio = [&] {
    std::vector<double> ratios;
    for (std::size_t i = 0; i < chosen_samples.size(); ++i) {
      ratios.push_back(chosen_samples[i] / other_samples[i]);
    }
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    return ratios[ratios.size() / 2];
  };
  // If the unchosen path paces the chosen one round for round, the
  // decision looks wrong — a mistuned threshold, or a near-tie where the
  // short windows can't separate the paths. Give that comparison better
  // data: two more paired rounds at 4x the window, and two further at
  // 8x when the median still sits inside the floor's decision band.
  // Near-ties converge to parity; a genuinely misdispatched kernel keeps
  // failing the floor no matter how long it is measured.
  if (median_ratio() < 1.0) {
    paired_round(0.2);
    paired_round(0.2);
    if (median_ratio() < 0.97) {
      paired_round(0.4);
      paired_round(0.4);
    }
  }
  report.run_events_per_sec =
      *std::max_element(run_samples.begin(), run_samples.end());
  report.flat_events_per_sec =
      *std::max_element(flat_samples.begin(), flat_samples.end());
  report.dispatch_ratio = median_ratio();
  // The dispatched cell executes exactly the chosen path's code (plus one
  // O(1) compression comparison), so its samples pool with that forced
  // cell's: auto's headline rate is the chosen path's best.
  report.auto_events_per_sec = std::max(
      report.auto_events_per_sec,
      *std::max_element(chosen_samples.begin(), chosen_samples.end()));
  report.events_per_sec = report.auto_events_per_sec;
  return report;
}

/// Attaches a thread sweep to a dispatchable kernel's report: throughput
/// convention (events_per_sec at the widest point, baseline at the
/// narrowest) plus the cross-thread/cross-path checksum assertion — every
/// sweep cell must reproduce the forced-path checksum bit for bit.
void attach_sweep(KernelReport& report, std::vector<SweepPoint> sweep) {
  for (const SweepPoint& point : sweep) {
    if (point.checksum != report.checksum) {
      std::fprintf(stderr,
                   "FATAL: %s: %u-thread sweep cell diverges from the "
                   "forced-path result (0x%016llx vs 0x%016llx)\n",
                   report.name, point.threads,
                   static_cast<unsigned long long>(point.checksum),
                   static_cast<unsigned long long>(report.checksum));
      g_path_checksums_ok = false;
    }
  }
  report.baseline_events_per_sec = sweep.front().events_per_sec;
  report.events_per_sec = sweep.back().events_per_sec;
  report.sweep = std::move(sweep);
}

WorkloadReport measure_workload(const WorkloadSpec& spec,
                                std::uint64_t max_events,
                                const std::vector<unsigned>& sweep_threads,
                                const std::vector<HierarchySpec>&
                                    sweep_geometries,
                                const AnalysisDispatch& base) {
  const Module module = build_workload(spec);
  const std::uint64_t events = std::min(max_events, spec.profile_events);
  const Trace trace =
      profile(module, /*seed=*/101, {.max_events = events, .max_call_depth = 64})
          .block_trace;
  const CodeLayout layout = original_layout(module);
  const Symbol space = trace.symbol_space();
  const Trace trimmed = trace.trimmed();
  // Materialize both traces' flat views outside the timed regions, then pin
  // that no timed region ever rebuilds one (the counter delta is asserted
  // zero below): a sweep cell paying the O(n) build would be charged for
  // work the production engine does once per trace.
  (void)trace.symbols();
  (void)trimmed.symbols();
  MetricsRegistry& registry = MetricsRegistry::global();
  const std::uint64_t builds_before =
      registry.counter("trace.flat_view.builds").value();

  WorkloadReport report{.name = spec.name,
                        .events = trace.size(),
                        .runs = trace.run_count(),
                        .run_compression = trace.run_compression(),
                        .flat_view_builds = 0,
                        .kernels = {},
                        .geometry_sweep = {}};
  const auto n = trace.size();

  KernelReport lru = measure_paths(
      "lru_stack", DispatchKernel::kLruStack, trace, base, n,
      [&](const AnalysisDispatch& d) {
        LruStack stack(space);
        return replay_lru_hits(trace, stack, d);
      },
      [](std::uint64_t hits) { return fnv1a(kFnvSeed, hits); });
  // The straight-line path *is* the per-event reference for LRU (one touch
  // per event), so the flat cell doubles as the baseline.
  lru.baseline_events_per_sec = lru.flat_events_per_sec;
  report.kernels.push_back(lru);

  KernelReport reuse = measure_paths(
      "reuse", DispatchKernel::kReuse, trace, base, n,
      [&](const AnalysisDispatch& d) { return compute_reuse(trace, d); },
      hash_reuse_profile);
  reuse.baseline_events_per_sec = measure_events_per_sec(
      n, [&] { benchmark::DoNotOptimize(per_event_reuse(trace)); });
  report.kernels.push_back(reuse);

  report.kernels.push_back(measure_paths(
      "footprint", DispatchKernel::kFootprint, trace, base, n,
      [&](const AnalysisDispatch& d) {
        return FootprintCurve::compute(trace, {}, d);
      },
      hash_footprint));

  const TrgConfig trg_config{.window_entries =
                                 trg_window_entries(32 * 1024, 64)};
  report.kernels.push_back(measure_paths(
      "trg", DispatchKernel::kTrg, trace, base, n,
      [&](const AnalysisDispatch& d) {
        return Trg::build(trace,
                          TrgConfig{.window_entries = trg_config.window_entries,
                                    .dispatch = d});
      },
      [](const Trg& graph) { return hash_trg(graph); }));

  // Parallel analysis front end: the same production entry points the Lab
  // drives, swept over thread counts with the dispatched configuration. The
  // forced-path serial cells come first; every sweep cell's checksum must
  // then match them (attach_sweep), which is the bit-identity proof across
  // both axes at once.
  KernelReport affinity = measure_paths(
      "affinity", DispatchKernel::kAffinity, trimmed, base, n,
      [&](const AnalysisDispatch& d) {
        AffinityConfig config;
        config.dispatch = d;
        return analyze_affinity(trimmed, config);
      },
      [](const AffinityHierarchy& h) { return hash_hierarchy(h); });
  attach_sweep(affinity,
               sweep_kernel(n, sweep_threads, [&](ThreadPool* pool) {
                 AffinityConfig config;
                 config.pool = pool;
                 config.dispatch = base;
                 return hash_hierarchy(analyze_affinity(trimmed, config));
               }));
  report.kernels.push_back(std::move(affinity));

  KernelReport trg_build = measure_paths(
      "trg_build", DispatchKernel::kTrg, trace, base, n,
      [&](const AnalysisDispatch& d) {
        return Trg::build(trace,
                          TrgConfig{.window_entries = trg_config.window_entries,
                                    .dispatch = d});
      },
      [](const Trg& graph) { return hash_trg(graph); });
  attach_sweep(trg_build,
               sweep_kernel(n, sweep_threads, [&](ThreadPool* pool) {
                 return hash_trg(Trg::build(
                     trace,
                     TrgConfig{.window_entries = trg_config.window_entries,
                               .pool = pool, .dispatch = base}));
               }));
  report.kernels.push_back(std::move(trg_build));

  // Bare-LRU simulation (the paper's Pin-simulator flavour): no per-event
  // wrong-path draws, so a run collapses to O(1) in the fast path.
  const SimOptions sim_options{};
  KernelReport sim = measure_paths(
      "icache_sim", DispatchKernel::kIcacheSolo, trace, base, n,
      [&](const AnalysisDispatch& d) {
        SimOptions options = sim_options;
        options.dispatch = d;
        return simulate_solo(module, layout, trace, options);
      },
      hash_sim_result);
  sim.baseline_events_per_sec = measure_events_per_sec(n, [&] {
    benchmark::DoNotOptimize(per_event_solo(module, layout, trace, sim_options));
  });
  report.kernels.push_back(sim);

  // Geometry axis for the icache kernel: the same trace under each swept
  // hierarchy (DESIGN.md §13), with a checksum over the full SimResult —
  // per-level counters included — so each geometry's output is pinned.
  for (const HierarchySpec& hierarchy : sweep_geometries) {
    SimOptions options;
    options.hierarchy = hierarchy;
    options.dispatch = base;
    GeometryPoint point{.geometry = hierarchy.to_string()};
    const SimResult pinned = simulate_solo(module, layout, trace, options);
    point.checksum = hash_sim_result(pinned);
    point.amat_cycles = amat(pinned, hierarchy);
    point.events_per_sec = measure_events_per_sec(n, [&] {
      const SimResult r = simulate_solo(module, layout, trace, options);
      benchmark::DoNotOptimize(r);
      if (hash_sim_result(r) != point.checksum) {
        std::fprintf(stderr, "FATAL: %s: icache checksum not deterministic "
                             "under geometry %s\n",
                     spec.name.c_str(), point.geometry.c_str());
        g_geometry_checksums_ok = false;
      }
    });
    report.geometry_sweep.push_back(std::move(point));
  }

  report.flat_view_builds =
      registry.counter("trace.flat_view.builds").value() - builds_before;
  if (report.flat_view_builds != 0) {
    std::fprintf(stderr,
                 "FATAL: %s: %llu flat-view build(s) inside the timed "
                 "regions — the SoA view must be hoisted, not rebuilt per "
                 "cell\n",
                 spec.name.c_str(),
                 static_cast<unsigned long long>(report.flat_view_builds));
    g_flat_view_hoisted = false;
  }
  return report;
}

/// Bench-local spin variants (not part of spec_suite): a polling/latch loop
/// grafted onto a suite workload, producing the long same-block runs the
/// run-aware fast paths collapse.
WorkloadSpec spin_variant(const std::string& base) {
  WorkloadSpec spec = find_spec(base);
  spec.name = base + "+spin";
  spec.spin_prob = 0.7;
  spec.spin_repeat = 48.0;
  return spec;
}

void print_report(const WorkloadReport& r, bool json, bool first) {
  if (json) {
    std::printf("%s  {\"workload\": \"%s\", \"events\": %llu, \"runs\": %llu,"
                " \"run_compression\": %.3f, \"flat_view_builds\": %llu,"
                " \"kernels\": [",
                first ? "" : ",\n", r.name.c_str(),
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.runs), r.run_compression,
                static_cast<unsigned long long>(r.flat_view_builds));
    for (std::size_t i = 0; i < r.kernels.size(); ++i) {
      const KernelReport& k = r.kernels[i];
      std::printf("%s{\"name\": \"%s\", \"events_per_sec\": %.0f",
                  i ? ", " : "", k.name, k.events_per_sec);
      if (k.dispatch != nullptr) {
        // Checksums as hex strings: 64-bit values do not survive the
        // double-precision number path of most JSON consumers.
        std::printf(", \"dispatch\": \"%s\", \"run_events_per_sec\": %.0f,"
                    " \"flat_events_per_sec\": %.0f,"
                    " \"auto_events_per_sec\": %.0f,"
                    " \"dispatch_ratio\": %.3f,"
                    " \"checksum\": \"0x%016llx\"",
                    k.dispatch, k.run_events_per_sec, k.flat_events_per_sec,
                    k.auto_events_per_sec, k.dispatch_ratio,
                    static_cast<unsigned long long>(k.checksum));
      }
      if (k.baseline_events_per_sec > 0.0) {
        std::printf(", \"baseline_events_per_sec\": %.0f, \"speedup\": %.2f",
                    k.baseline_events_per_sec,
                    k.events_per_sec / k.baseline_events_per_sec);
      }
      if (!k.sweep.empty()) {
        std::printf(", \"sweep\": [");
        for (std::size_t j = 0; j < k.sweep.size(); ++j) {
          const SweepPoint& p = k.sweep[j];
          std::printf("%s{\"threads\": %u, \"events_per_sec\": %.0f,"
                      " \"dispatch\": \"%s\", \"checksum\": \"0x%016llx\"}",
                      j ? ", " : "", p.threads, p.events_per_sec,
                      k.dispatch != nullptr ? k.dispatch : "run",
                      static_cast<unsigned long long>(p.checksum));
        }
        std::printf("]");
      }
      std::printf("}");
    }
    std::printf("]");
    if (!r.geometry_sweep.empty()) {
      std::printf(", \"geometry_sweep\": [");
      for (std::size_t i = 0; i < r.geometry_sweep.size(); ++i) {
        const GeometryPoint& g = r.geometry_sweep[i];
        std::printf("%s{\"geometry\": \"%s\", \"events_per_sec\": %.0f,"
                    " \"checksum\": \"0x%016llx\", \"amat\": %.4f}",
                    i ? ", " : "", g.geometry.c_str(), g.events_per_sec,
                    static_cast<unsigned long long>(g.checksum),
                    g.amat_cycles);
      }
      std::printf("]");
    }
    std::printf("}");
    return;
  }
  std::printf("%-18s %10llu events  %8llu runs  compression %6.2fx\n",
              r.name.c_str(), static_cast<unsigned long long>(r.events),
              static_cast<unsigned long long>(r.runs), r.run_compression);
  for (const KernelReport& k : r.kernels) {
    std::printf("    %-12s %12.0f events/s", k.name, k.events_per_sec);
    if (k.dispatch != nullptr) {
      std::printf("  [%s: run %11.0f, flat %11.0f]", k.dispatch,
                  k.run_events_per_sec, k.flat_events_per_sec);
    }
    if (k.baseline_events_per_sec > 0.0) {
      std::printf(k.sweep.empty()
                      ? "   (per-event %12.0f, speedup %5.2fx)"
                      : "   (1-thread  %12.0f, scaling %5.2fx)",
                  k.baseline_events_per_sec,
                  k.events_per_sec / k.baseline_events_per_sec);
    }
    std::printf("\n");
    for (const SweepPoint& p : k.sweep) {
      std::printf("        %2u thread%s %12.0f events/s  checksum "
                  "0x%016llx\n",
                  p.threads, p.threads == 1 ? " " : "s", p.events_per_sec,
                  static_cast<unsigned long long>(p.checksum));
    }
  }
  for (const GeometryPoint& g : r.geometry_sweep) {
    std::printf("    geometry %-28s %12.0f events/s  checksum 0x%016llx"
                "  amat %.3f\n",
                g.geometry.c_str(), g.events_per_sec,
                static_cast<unsigned long long>(g.checksum), g.amat_cycles);
  }
}

/// "429.mcf,458.sjeng+spin" -> specs; "+spin" selects the bench-local spin
/// variant of the base workload.
std::vector<WorkloadSpec> parse_workloads(const std::string& list) {
  std::vector<WorkloadSpec> specs;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string name = list.substr(start, comma - start);
    if (!name.empty()) {
      const auto plus = name.rfind("+spin");
      if (plus != std::string::npos && plus == name.size() - 5) {
        specs.push_back(spin_variant(name.substr(0, plus)));
      } else {
        specs.push_back(find_spec(name));
      }
    }
    start = comma + 1;
  }
  return specs;
}

/// "1,2,8" -> {1, 2, 8}; enforced nonempty, positive, strictly ascending so
/// the sweep's first point is the serial baseline and the last the widest.
std::vector<unsigned> parse_thread_counts(const std::string& list) {
  std::vector<unsigned> counts;
  const char* cursor = list.c_str();
  while (*cursor != '\0') {
    char* end = nullptr;
    const unsigned long value = std::strtoul(cursor, &end, 10);
    if (end == cursor || value == 0 ||
        (!counts.empty() && value <= counts.back())) {
      std::fprintf(stderr,
                   "--sweep-threads wants a strictly ascending list of "
                   "positive counts, got \"%s\"\n",
                   list.c_str());
      std::exit(2);
    }
    counts.push_back(static_cast<unsigned>(value));
    cursor = *end == ',' ? end + 1 : end;
  }
  if (counts.empty()) counts.push_back(1);
  return counts;
}

/// "32K/4/64,16K/2/64+l2=256K/8/64" -> hierarchy specs for the icache
/// kernel's geometry axis.
std::vector<HierarchySpec> parse_geometry_list(const std::string& list) {
  std::vector<HierarchySpec> specs;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string text = list.substr(start, comma - start);
    if (!text.empty()) specs.push_back(parse_hierarchy(text));
    start = comma + 1;
  }
  return specs;
}

const char* forced_path_label(ForcedPath force) {
  switch (force) {
    case ForcedPath::kRun: return "run";
    case ForcedPath::kFlat: return "flat";
    case ForcedPath::kAuto: break;
  }
  return "auto";
}

int run_suite_mode(const std::string& workload, std::uint64_t max_events,
                   bool json, const std::vector<unsigned>& sweep_threads,
                   const std::vector<HierarchySpec>& sweep_geometries,
                   const AnalysisDispatch& dispatch) {
  // The flat-view hoist assertion reads the trace.flat_view.builds counter,
  // which only accrues with metrics on.
  MetricsRegistry::global().set_enabled(true);
  std::vector<WorkloadSpec> specs;
  if (!workload.empty()) {
    specs = parse_workloads(workload);
  } else {
    specs = spec_suite();
    specs.push_back(spin_variant("470.lbm"));
    specs.push_back(spin_variant("403.gcc"));
  }
  if (json) {
    // host_cores gates cross-machine throughput comparison downstream
    // (tools/bench_compare.py refuses to compare throughput across core
    // counts; checksums stay exact everywhere).
    std::printf("{\"bench\": \"analysis_perf\", \"host_cores\": %u,"
                " \"force_path\": \"%s\", \"workloads\": [\n",
                std::thread::hardware_concurrency(),
                forced_path_label(dispatch.force));
  }
  bool first = true;
  for (const WorkloadSpec& spec : specs) {
    print_report(measure_workload(spec, max_events, sweep_threads,
                                  sweep_geometries, dispatch),
                 json, first);
    first = false;
  }
  if (json) std::printf("\n]}\n");
  return g_geometry_checksums_ok && g_path_checksums_ok && g_flat_view_hoisted
             ? 0
             : 5;
}

}  // namespace

int main(int argc, char** argv) {
  bool suite = false;
  bool json = false;
  std::string workload;
  std::string sweep;
  std::uint64_t max_events = ~std::uint64_t{0};
  std::vector<std::string> leftover;
  CliOptions cli(argv[0], "run-aware analysis kernel throughput");
  cli.flag("--suite", &suite, "events/s suite mode (implied by the "
                              "flags below); default is google-benchmark");
  cli.flag("--json", &json, "suite mode with the machine-readable report");
  cli.option("--workload", &workload, "A,B,...",
             "suite mode over the named workloads (+spin variants allowed)");
  cli.option_u64("--events", &max_events, 1, ~std::uint64_t{0}, "N",
                 "truncate each trace to N events");
  std::string sweep_geometry;
  cli.option("--sweep-threads", &sweep, "1,2,8",
             "suite mode: per-width events/s for the parallel kernels");
  cli.option("--sweep-geometry", &sweep_geometry, "G1,G2,...",
             "suite mode: run the icache kernel under these hierarchies "
             "(SIZE/ASSOC/LINE[+l2=SIZE/ASSOC/LINE])");
  std::string force_path;
  cli.option("--force-path", &force_path, "run|flat|auto",
             "suite mode: pin the dispatched cell to one kernel path "
             "(default auto, or CODELAYOUT_FORCE_PATH)");
  cli.passthrough(&leftover);  // --benchmark_* flags pass through
  cli.parse_or_exit(argc, argv);
  AnalysisDispatch dispatch;
  if (!force_path.empty()) {
    const std::optional<ForcedPath> parsed = parse_forced_path(force_path);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "--force-path wants run|flat|auto, got \"%s\"\n",
                   force_path.c_str());
      return 2;
    }
    dispatch.force = *parsed;
  }
  suite =
      suite || json || !workload.empty() || !sweep.empty() ||
      !sweep_geometry.empty() || !force_path.empty();
  if (suite) {
    return run_suite_mode(workload, max_events, json,
                          parse_thread_counts(sweep.empty() ? "1" : sweep),
                          parse_geometry_list(sweep_geometry), dispatch);
  }

  std::vector<char*> bench_argv{argv[0]};
  for (std::string& arg : leftover) bench_argv.push_back(arg.data());
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
