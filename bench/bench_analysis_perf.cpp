// E8 — google-benchmark timings backing the paper's complexity claims
// (Sec. II-B/C): the fast stack-based affinity analysis scales as O(W*N)
// versus the naive Algorithm 1's O(W*N*B); TRG construction is O(N*Q); TRG
// reduction is polynomial in the node count. Run standalone: prints
// wall-clock per analysis over synthetic traces of growing length.
#include <benchmark/benchmark.h>

#include "affinity/analysis.hpp"
#include "affinity/naive.hpp"
#include "exec/interpreter.hpp"
#include "harness/pipeline.hpp"
#include "support/rng.hpp"
#include "trg/graph.hpp"
#include "trg/reduction.hpp"
#include "workloads/spec.hpp"

namespace {

using namespace codelayout;

/// A loop-structured synthetic trace with `blocks` distinct symbols.
Trace synthetic_trace(std::size_t events, Symbol blocks, std::uint64_t seed) {
  Rng rng(seed);
  Trace t(Trace::Granularity::kBlock);
  t.reserve(events);
  Symbol last = blocks;  // out-of-range sentinel
  while (t.size() < events) {
    // Zipf-biased working sets with local runs, like hot loops.
    const auto base = static_cast<Symbol>(rng.zipf(blocks, 1.1));
    const std::size_t run = 3 + rng.below(6);
    for (std::size_t i = 0; i < run && t.size() < events; ++i) {
      Symbol s = static_cast<Symbol>((base + i) % blocks);
      if (s == last) s = (s + 1) % blocks;
      t.push_symbol(s);
      last = s;
    }
  }
  return t;
}

void BM_AffinityFast(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const Trace trace = synthetic_trace(events, 256, 42).trimmed();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_affinity(trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AffinityFast)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AffinityNaive(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const Trace trace = synthetic_trace(events, 64, 42).trimmed();
  for (auto _ : state) {
    benchmark::DoNotOptimize(naive_hierarchy(trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AffinityNaive)->Arg(250)->Arg(500)->Arg(1000);

void BM_TrgBuild(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const Trace trace = synthetic_trace(events, 512, 42).trimmed();
  const TrgConfig config{.window_entries = trg_window_entries(32 * 1024, 64)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(Trg::build(trace, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TrgBuild)->Arg(10000)->Arg(100000)->Arg(400000);

void BM_TrgReduce(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  const Trace trace = synthetic_trace(events, 512, 42).trimmed();
  const Trg graph = Trg::build(
      trace, TrgConfig{.window_entries = trg_window_entries(32 * 1024, 64)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce_trg(graph, 128));
  }
}
BENCHMARK(BM_TrgReduce)->Arg(10000)->Arg(100000);

void BM_FullPipeline(benchmark::State& state) {
  // End-to-end optimizer cost on a real workload: the paper reports the
  // added compilation time is "a couple of times" the original compile.
  const WorkloadSpec& spec = find_spec("458.sjeng");
  const PreparedWorkload prepared = prepare_workload(spec);
  const Optimizer opt = state.range(0) == 0 ? kFuncAffinity : kBBAffinity;
  for (auto _ : state) {
    benchmark::DoNotOptimize(optimize_layout(prepared, opt));
  }
}
BENCHMARK(BM_FullPipeline)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
