// Live introspection CLI for a running service daemon: polls the kIntrospect
// surface (served inline, never queued — it works even when every worker is
// busy) and renders the stats snapshot as a TextTable, or dumps the raw
// introspection documents.
//
//   service_stat --connect PATH                 one-shot stats table
//   service_stat --connect PATH --watch         live table every --interval-ms
//   service_stat --connect PATH --json          raw stats JSON snapshot
//   service_stat --connect PATH --prometheus    Prometheus text exposition
//   service_stat --connect PATH --recent        last-completed-jobs ring
//   service_stat --connect PATH --trace-out F   daemon-side Perfetto export
//
// Every JSON document is validated with the test suite's linter and the
// Prometheus dump with the exposition-format linter (exit 3 on invalid), so
// CI can use this binary as a protocol check as well as an ops tool.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "json_lint.hpp"
#include "prom_lint.hpp"
#include "service/client.hpp"
#include "support/cli.hpp"
#include "support/format.hpp"

namespace {

using namespace codelayout;
using namespace codelayout::service;

/// Flat scanner over the daemon's stats JSON: finds the value after the
/// first `"key":` occurrence. The introspection documents are single-level
/// enough (and their keys unique enough) that a full parser buys nothing.
std::string find_raw(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return "";
  std::size_t i = at + needle.size();
  if (i < json.size() && json[i] == '"') {
    const std::size_t end = json.find('"', i + 1);
    if (end == std::string::npos) return "";
    return json.substr(i + 1, end - i - 1);
  }
  std::size_t end = i;
  while (end < json.size() && json[end] != ',' && json[end] != '}' &&
         json[end] != ']') {
    ++end;
  }
  return json.substr(i, end - i);
}

std::uint64_t find_u64(const std::string& json, const std::string& key) {
  const std::string raw = find_raw(json, key);
  return raw.empty() ? 0 : std::strtoull(raw.c_str(), nullptr, 10);
}

int lint_json_or_die(const std::string& doc, const char* what) {
  std::string error;
  if (!codelayout::testing::json_is_valid(doc, &error)) {
    std::fprintf(stderr, "daemon returned invalid %s JSON: %s\n", what,
                 error.c_str());
    return 3;
  }
  return 0;
}

std::string render_stats_table(const std::string& stats) {
  TextTable table({"metric", "value"});
  table.add_row({"status", find_raw(stats, "status")});
  table.add_row({"uptime",
                 fmt_fixed(static_cast<double>(find_u64(stats, "uptime_ns")) /
                               1e9,
                           1) +
                     " s"});
  table.add_row({"workers", fmt_count(find_u64(stats, "workers"))});
  table.add_row({"queued / depth",
                 fmt_count(find_u64(stats, "queued")) + " / " +
                     fmt_count(find_u64(stats, "queue_depth"))});
  table.add_row({"inflight", fmt_count(find_u64(stats, "inflight"))});
  table.add_row({"jobs submitted", fmt_count(find_u64(stats, "submitted"))});
  table.add_row({"jobs completed", fmt_count(find_u64(stats, "completed"))});
  table.add_row({"jobs introspected",
                 fmt_count(find_u64(stats, "introspected"))});
  table.add_row({"jobs rejected",
                 fmt_count(find_u64(stats, "rejected") +
                           find_u64(stats, "shutdown_rejected"))});
  table.add_row({"queue peak", fmt_count(find_u64(stats, "queue_peak"))});
  table.add_row({"cache hits / misses",
                 fmt_count(find_u64(stats, "cache_hits")) + " / " +
                     fmt_count(find_u64(stats, "misses"))});
  table.add_row({"cache entries", fmt_count(find_u64(stats, "entries"))});
  table.add_row({"cache bytes", fmt_bytes(find_u64(stats, "bytes"))});
  table.add_row({"cache evictions", fmt_count(find_u64(stats, "evictions"))});
  return table.render();
}

std::string render_recent_table(const std::string& doc) {
  TextTable table({"id", "kind", "status", "trace_id", "queue_wait",
                   "wall", "cached", "dispatch", "compress", "predict"});
  // Walk the "recent" array object by object; the documents contain no
  // nested braces inside these objects.
  std::size_t pos = doc.find("\"recent\":[");
  if (pos != std::string::npos) {
    pos += 10;
    while (true) {
      const std::size_t open = doc.find('{', pos);
      const std::size_t close = doc.find('}', pos);
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        break;
      }
      const std::string job = doc.substr(open, close - open + 1);
      table.add_row(
          {std::to_string(find_u64(job, "id")), find_raw(job, "kind"),
           find_raw(job, "status"), std::to_string(find_u64(job, "trace_id")),
           fmt_fixed(static_cast<double>(find_u64(job, "queue_wait_ns")) /
                         1e6,
                     3) +
               " ms",
           fmt_fixed(static_cast<double>(find_u64(job, "wall_ns")) / 1e6, 3) +
               " ms",
           find_raw(job, "cached"),
           // Adaptive-dispatch attribution (wire v4): how many kernels took
           // the run-aware vs straight-line path, and the compression ratio
           // the decisions were based on.
           std::to_string(find_u64(job, "dispatch_run")) + "r/" +
               std::to_string(find_u64(job, "dispatch_flat")) + "f",
           fmt_fixed(std::strtod(find_raw(job, "run_compression").c_str(),
                                 nullptr),
                     3),
           // Predictor attribution (wire v5): closed-form predictions the
           // job ran vs solo-profile memo hits it was served.
           std::to_string(find_u64(job, "predict_calls")) + "p/" +
               std::to_string(find_u64(job, "profile_memo_hits")) + "h"});
      pos = close + 1;
    }
  }
  return table.render();
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  bool watch = false;
  bool json = false;
  bool prometheus = false;
  bool recent = false;
  unsigned interval_ms = 1000;
  unsigned iterations = 0;
  std::string trace_out;

  CliOptions cli(argv[0],
                 "Live daemon introspection: stats table, Prometheus dump, "
                 "recent jobs, daemon-side trace export.");
  cli.option("--connect", &connect, "PATH",
             "unix socket of the running service daemon (required)");
  cli.flag("--watch", &watch, "poll and re-render until interrupted");
  cli.option_uint("--interval-ms", &interval_ms, 1, 60000, "MS",
                  "--watch poll interval (default 1000)");
  cli.option_uint("--iterations", &iterations, 0, 1u << 20, "N",
                  "stop --watch after N polls (0 = until interrupted)");
  cli.flag("--json", &json, "print the raw stats JSON snapshot");
  cli.flag("--prometheus", &prometheus,
           "print the Prometheus text exposition");
  cli.flag("--recent", &recent, "print the recent-jobs ring");
  cli.option("--trace-out", &trace_out, "FILE",
             "fetch the daemon-side Perfetto trace export and write it");
  cli.parse_or_exit(argc, argv);

  if (connect.empty()) {
    std::fprintf(stderr, "service_stat: --connect PATH is required\n%s\n",
                 cli.usage().c_str());
    return 2;
  }

  ServiceClient client = ServiceClient::connect_unix(connect);

  if (!trace_out.empty()) {
    const std::string trace = client.introspect(IntrospectKind::kTraceExport);
    if (const int rc = lint_json_or_die(trace, "trace export")) return rc;
    std::ofstream out(trace_out, std::ios::binary);
    if (!out.is_open()) {
      std::fprintf(stderr, "cannot open %s for writing\n", trace_out.c_str());
      return 2;
    }
    out << trace;
    std::fprintf(stderr, "daemon trace written to %s (%zu bytes)\n",
                 trace_out.c_str(), trace.size());
  }

  if (prometheus) {
    const std::string dump = client.introspect(IntrospectKind::kPrometheus);
    std::string error;
    if (!codelayout::testing::prom_is_valid(dump, &error)) {
      std::fprintf(stderr, "daemon returned an invalid Prometheus dump: %s\n",
                   error.c_str());
      return 3;
    }
    std::printf("%s", dump.c_str());
    return 0;
  }

  if (recent) {
    const std::string doc = client.introspect(IntrospectKind::kRecentJobs);
    if (const int rc = lint_json_or_die(doc, "recent-jobs")) return rc;
    if (json) {
      std::printf("%s\n", doc.c_str());
    } else {
      std::printf("%s", render_recent_table(doc).c_str());
    }
    return 0;
  }

  const unsigned polls = watch ? iterations : 1;
  for (unsigned i = 0; polls == 0 || i < polls; ++i) {
    if (i != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    const std::string stats = client.introspect(IntrospectKind::kStats);
    if (const int rc = lint_json_or_die(stats, "stats")) return rc;
    if (json) {
      std::printf("%s\n", stats.c_str());
    } else {
      if (i != 0) std::printf("\n");
      std::printf("%s", render_stats_table(stats).c_str());
    }
    std::fflush(stdout);
    if (!watch) break;
  }
  return 0;
}
