// Example: the paper's three worked examples, executed live.
//
//   Figure 1 — the w-window affinity hierarchy of B1 B4 B2 B4 B2 B3 B5 B1 B4
//   Figure 2 — TRG reduction over three code slots -> sequence A B E F C
//   Figure 3 — inter-procedural BB reordering of the correlated X/Y program
#include <cstdio>

#include "affinity/analysis.hpp"
#include "affinity/naive.hpp"
#include "ir/builder.hpp"
#include "layout/layout.hpp"
#include "trg/reduction.hpp"

using namespace codelayout;

namespace {

void figure1() {
  std::printf("=== Figure 1: hierarchical w-window affinity ===\n");
  Trace trace(Trace::Granularity::kBlock);
  for (Symbol s : {1, 4, 2, 4, 2, 3, 5, 1, 4}) {
    trace.push_symbol(s);
  }
  std::printf("trace: B1 B4 B2 B4 B2 B3 B5 B1 B4\n\n");

  const AffinityHierarchy h =
      analyze_affinity(trace, AffinityConfig{.w_values = {2, 3, 4, 5}});
  for (std::uint32_t w = 1; w <= 5; ++w) {
    std::printf("w=%u partition: ", w);
    for (std::uint32_t id : h.partition_at(w)) {
      std::printf("(");
      const auto& members = h.node(id).members;
      for (std::size_t i = 0; i < members.size(); ++i) {
        std::printf("%sB%u", i ? "," : "", members[i]);
      }
      std::printf(") ");
    }
    std::printf("\n");
  }
  std::printf("output sequence: ");
  for (Symbol s : h.layout_order()) std::printf("B%u ", s);
  std::printf("  (paper: B1 B4 B2 B3 B5)\n\n");
}

void figure2() {
  std::printf("=== Figure 2: TRG reduction over 3 code slots ===\n");
  // The Fig. 2 instance (A=0 B=1 C=2 E=3 F=4).
  Trg g;
  g.add_edge(0, 1, 40);
  g.add_edge(3, 4, 35);
  g.add_edge(2, 0, 30);
  g.add_edge(1, 4, 15);
  g.add_edge(2, 1, 12);
  g.add_edge(2, 3, 10);
  g.add_edge(0, 4, 10);

  const TrgReduction r = reduce_trg(g, 3);
  const char* names = "ABCEF";
  for (std::size_t k = 0; k < r.slots.size(); ++k) {
    std::printf("code slot %zu:", k + 1);
    for (Symbol s : r.slots[k]) std::printf(" %c", names[s]);
    std::printf("\n");
  }
  std::printf("output sequence: ");
  for (Symbol s : r.order) std::printf("%c ", names[s]);
  std::printf("  (paper: A B E F C)\n\n");
}

void figure3() {
  std::printf("=== Figure 3: inter-procedural BB reordering ===\n");
  ModuleBuilder mb("fig3");
  auto x = mb.function("X");
  const BlockId x1 = x.block(16, "X1");
  const BlockId x2 = x.block(16, "X2");
  const BlockId x3 = x.block(16, "X3");
  x.branch(x1, x3, x2, 0.5);
  auto y = mb.function("Y");
  const BlockId y1 = y.block(16, "Y1");
  const BlockId y2 = y.block(16, "Y2");
  const BlockId y3 = y.block(16, "Y3");
  y.branch(y1, y3, y2, 0.5);
  auto main_fn = mb.function("main");
  const BlockId loop = main_fn.block(16, "loop");
  const BlockId done = main_fn.block(16, "done");
  main_fn.call(loop, x.id());
  main_fn.call(loop, y.id());
  main_fn.loop(loop, loop, done, 0.99);
  Module m = std::move(mb).build();
  m.set_entry_function(*m.find_function("main"));

  // The global variable b correlates the two branches; emulate the
  // correlated trace the paper's loop produces.
  Trace trace(Trace::Granularity::kBlock);
  for (int i = 0; i < 100; ++i) {
    trace.push(loop);
    trace.push(x1);
    trace.push(i % 2 ? x2 : x3);
    trace.push(y1);
    trace.push(i % 2 ? y2 : y3);
  }

  const auto order = analyze_affinity(trace).layout_order();
  const CodeLayout opt = bb_reordering(m, order);
  std::printf("optimized layout (X2,Y2 and X3,Y3 extracted together):\n%s",
              opt.describe(m, 8).c_str());
  std::printf("added jumps: %u fix-ups + %zu entry trampolines = %llu bytes\n\n",
              opt.fixup_count(), m.function_count(),
              static_cast<unsigned long long>(opt.overhead_bytes()));
}

}  // namespace

int main() {
  figure1();
  figure2();
  figure3();
  return 0;
}
