// Example: explore every layout strategy on one suite workload — the four
// paper optimizers, the Gloy-Smith padded placement, the hotness-ordered
// affinity variant, and a random worst case — solo and under a gamess
// co-run.
//
// Usage: layout_explorer [workload]   (default 458.sjeng)
#include <cstdio>
#include <optional>

#include "harness/lab.hpp"
#include "support/format.hpp"
#include "trg/placement.hpp"
#include "workloads/spec.hpp"

using namespace codelayout;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "458.sjeng";
  Lab lab;
  const PreparedWorkload& w = lab.workload(name);

  std::printf("Layout explorer: %s (%zu functions, %zu blocks, %s)\n\n",
              name.c_str(), w.module.function_count(), w.module.block_count(),
              fmt_bytes(w.module.static_bytes()).c_str());

  TextTable table({"layout", "bytes", "overhead", "solo miss",
                   "co-run miss (gamess)"});
  auto evaluate = [&](const std::string& label, const CodeLayout& layout) {
    const SimResult solo = simulate_solo(w.module, layout, w.eval_blocks,
                                         hardware_proxy_options());
    const PreparedWorkload& peer = lab.workload(kProbe2);
    const CorunResult corun = simulate_corun(
        w.module, layout, w.eval_blocks, peer.module,
        lab.layout(kProbe2, std::nullopt), peer.eval_blocks,
        hardware_proxy_options());
    table.add_row({label, fmt_bytes(layout.total_bytes()),
                   fmt_bytes(layout.overhead_bytes()),
                   fmt_pct(solo.miss_ratio()),
                   fmt_pct(corun.self.miss_ratio())});
  };

  evaluate("original", w.original);
  for (const Optimizer opt : kAllOptimizers) {
    if (opt.granularity == Granularity::kBlock &&
        !Lab::bb_reordering_supported(name)) {
      continue;
    }
    evaluate(opt.name(), lab.layout(name, opt));
  }
  // Hotness-ordered affinity: groups sorted by execution count instead of
  // first appearance.
  {
    const AffinityHierarchy h = analyze_affinity(w.profile_blocks);
    evaluate("BB Affinity (hotness)",
             bb_reordering(w.module, h.layout_order(
                                          AffinityHierarchy::Order::kHotness)));
  }
  // Gloy-Smith padded placement.
  {
    const Trg graph = Trg::build(
        w.profile_blocks,
        TrgConfig{.window_entries = trg_window_entries(32 * 1024, 64)});
    evaluate("Gloy-Smith padded",
             gloy_smith_placement(w.module, graph).layout);
  }
  evaluate("random", random_layout(w.module, 1234));

  std::printf("%s", table.render().c_str());
  return 0;
}
