// Quickstart: build a small program, profile it, run the two locality
// models, apply the two transformations, and measure the instruction-cache
// effect of each layout — the library's whole pipeline in ~80 lines.
#include <cstdio>

#include "affinity/analysis.hpp"
#include "cache/icache_sim.hpp"
#include "exec/interpreter.hpp"
#include "ir/builder.hpp"
#include "layout/layout.hpp"
#include "support/format.hpp"
#include "trg/graph.hpp"
#include "trg/reduction.hpp"

using namespace codelayout;

int main() {
  // 1. A program: eight hot functions called from a loop, with bulky cold
  //    error-handling functions between them in source order and a cold
  //    side inside every function body.
  ModuleBuilder mb("quickstart");
  std::vector<FuncId> hot;
  for (int i = 0; i < 8; ++i) {
    auto cold = mb.function("cold_error_path" + std::to_string(i));
    cold.chain(24, 160);  // never executed, bloats the address space
    auto f = mb.function("hot" + std::to_string(i));
    // A biased diamond per function: the cold side sits between the hot
    // blocks in source order, wasting cache lines in the original layout.
    const BlockId entry = f.block(48);
    const BlockId hot_side = f.block(112);
    const BlockId cold_side = f.block(256);
    const BlockId ret = f.block(48);
    f.branch(entry, cold_side, hot_side, 0.05);
    f.jump(hot_side, ret, /*fallthrough=*/false);
    f.jump(cold_side, ret);
    hot.push_back(f.id());
  }
  auto main_fn = mb.function("main");
  const BlockId loop = main_fn.block(32);
  const BlockId done = main_fn.block(16);
  for (FuncId f : hot) main_fn.call(loop, f, 0.95);
  main_fn.loop(loop, loop, done, 0.999);
  Module module = std::move(mb).build();
  module.set_entry_function(*module.find_function("main"));

  // 2. Profile a test-input run (the instrumentation step of the paper).
  const ProfileResult prof = profile(module, /*seed=*/42,
                                     {.max_events = 200'000});
  std::printf("profiled %zu block events, %s instructions\n",
              prof.block_trace.size(),
              fmt_count(prof.dynamic_instructions).c_str());

  // 3. Locality models: w-window affinity and TRG, at block granularity.
  const Trace trimmed = prof.block_trace.trimmed();
  const auto affinity_order = analyze_affinity(trimmed).layout_order();
  const Trg trg = Trg::build(trimmed);
  const auto trg_order = reduce_trg(trg, trg_slot_count(32 * 1024, 4, 64, 64))
                             .order;

  // 4. Transformations + evaluation in a tiny 2KB cache so the layout
  //    difference is visible at this scale.
  SimOptions options;
  options.hierarchy.l1 = CacheGeometry{2048, 4, 64};
  auto evaluate = [&](const char* name, const CodeLayout& layout) {
    const SimResult sim =
        simulate_solo(module, layout, prof.block_trace, options);
    std::printf("  %-22s %8s bytes  miss ratio %s\n", name,
                fmt_count(layout.total_bytes()).c_str(),
                fmt_pct(sim.miss_ratio()).c_str());
  };

  std::printf("\nlayout comparison (2KB 4-way L1I):\n");
  evaluate("original", original_layout(module));
  evaluate("BB affinity", bb_reordering(module, affinity_order));
  evaluate("BB TRG", bb_reordering(module, trg_order));
  evaluate("random (worst case)", random_layout(module, 7));

  // 5. Peek at the affinity hierarchy driving the layout.
  std::printf("\naffinity hierarchy (top groups):\n%s",
              analyze_affinity(trimmed).to_string().substr(0, 600).c_str());
  return 0;
}
