// Example: the formal defensiveness/politeness analysis of paper Sec. II-A.
//
// Computes the all-window instruction footprint of two workloads (Eq. 2
// operates on the footprint of fetched cache lines), composes them through
// the shared-cache model P(self.miss) = P(self.FP + peer.FP >= C), and
// reports the defensiveness and politeness losses before and after layout
// optimization — showing that code layout optimization improves both at
// once, unlike QoS throttling (peer-dependent politeness) or defensive
// tiling (defensiveness only).
#include <cstdio>

#include "cache/icache_sim.hpp"
#include "harness/lab.hpp"
#include "locality/missmodel.hpp"
#include "support/format.hpp"
#include "workloads/spec.hpp"

using namespace codelayout;

namespace {

FootprintCurve line_footprint(Lab& lab, const std::string& name,
                              std::optional<Optimizer> opt) {
  const PreparedWorkload& w = lab.workload(name);
  const Trace lines = line_trace(w.module, lab.layout(name, opt),
                                 w.eval_blocks, kL1I.line_bytes);
  return FootprintCurve::compute(lines);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string self_name = argc > 1 ? argv[1] : "458.sjeng";
  const std::string peer_name = argc > 2 ? argv[2] : "416.gamess";
  const double capacity = static_cast<double>(kL1I.lines());

  Lab lab;
  std::printf("Eq. 1/2 shared-cache analysis: %s vs %s (C = %.0f lines)\n\n",
              self_name.c_str(), peer_name.c_str(), capacity);

  const FootprintCurve peer = line_footprint(lab, peer_name, std::nullopt);

  auto report = [&](const char* label, std::optional<Optimizer> opt) {
    const FootprintCurve self = line_footprint(lab, self_name, opt);
    const SharedCacheAssessment a = assess_corun(self, peer, capacity);
    std::printf("%s\n", label);
    std::printf("  instruction footprint fp(1e4) = %.0f lines, max = %.0f\n",
                self.at(1e4), self.max_footprint());
    std::printf("  P(self.miss): solo %s -> co-run %s  (defensiveness loss %s)\n",
                fmt_pct(a.self_solo, 3).c_str(),
                fmt_pct(a.self_corun, 3).c_str(),
                fmt_pct(a.defensiveness_loss(), 3).c_str());
    std::printf("  P(peer.miss): solo %s -> co-run %s  (politeness loss %s)\n\n",
                fmt_pct(a.peer_solo, 3).c_str(),
                fmt_pct(a.peer_corun, 3).c_str(),
                fmt_pct(a.politeness_loss(), 3).c_str());
  };

  report("original layout:", std::nullopt);
  report("function affinity layout:", kFuncAffinity);
  if (Lab::bb_reordering_supported(self_name)) {
    report("BB affinity layout:", kBBAffinity);
  }

  std::printf(
      "Layout optimization shrinks self's footprint at every window size,\n"
      "so it reduces the defensiveness loss (goal 2) AND the politeness\n"
      "loss (goal 3) simultaneously — it is peer-independent (Sec. IV).\n");
  return 0;
}
