// Example: survey the workload suite the way the paper's first experiment
// does (Sec. I / Fig. 4) — solo and co-run L1I miss ratios per program —
// plus the effect of each optimizer on one selected program.
//
// Usage: suite_survey [workload ...]
//   With no arguments, surveys the 8 selected benchmarks plus the probes.
#include <cstdio>
#include <string>
#include <vector>

#include "harness/lab.hpp"
#include "support/stats.hpp"
#include "support/format.hpp"
#include "workloads/spec.hpp"

using namespace codelayout;

int main(int argc, char** argv) {
  std::vector<std::string> names;
  for (int i = 1; i < argc; ++i) names.emplace_back(argv[i]);
  if (names.empty()) {
    names = selected_benchmarks();
    names.push_back(kProbe2);
  }

  Lab lab;
  // Submit the whole survey to the evaluation engine up front; the render
  // loop below then reads entirely from the warm memo.
  std::vector<EvalRequest> requests;
  for (const auto& name : names) {
    requests.push_back(
        EvalRequest::solo(name, std::nullopt, Measure::kSimulator));
    requests.push_back(
        EvalRequest::solo(name, std::nullopt, Measure::kHardware));
    requests.push_back(EvalRequest::corun(name, std::nullopt, kProbe1,
                                          std::nullopt, Measure::kHardware));
    requests.push_back(EvalRequest::corun(name, std::nullopt, kProbe2,
                                          std::nullopt, Measure::kHardware));
  }
  lab.evaluate_all(requests);

  TextTable table({"program", "static", "blocks", "trace", "kept%", "solo",
                   "solo(hw)", "co-gcc", "co-gamess"});
  for (const auto& name : names) {
    const PreparedWorkload& w = lab.workload(name);
    const SimResult& solo_sim = lab.solo(name, std::nullopt, Measure::kSimulator);
    const SimResult& solo_hw = lab.solo(name, std::nullopt, Measure::kHardware);
    const CorunResult& vs_gcc =
        lab.corun(name, std::nullopt, kProbe1, std::nullopt, Measure::kHardware);
    const CorunResult& vs_gamess =
        lab.corun(name, std::nullopt, kProbe2, std::nullopt, Measure::kHardware);
    table.add_row({name, fmt_bytes(w.module.static_bytes()),
                   std::to_string(w.module.block_count()),
                   fmt_count(w.eval_blocks.size()),
                   fmt_pct(w.prune_kept_fraction, 1),
                   fmt_pct(solo_sim.miss_ratio()),
                   fmt_pct(solo_hw.miss_ratio()),
                   fmt_pct(vs_gcc.self.miss_ratio()),
                   fmt_pct(vs_gamess.self.miss_ratio())});
  }
  std::printf("L1I miss-ratio survey (32KB 4-way 64B lines)\n\n%s\n",
              table.render().c_str());

  // Optimizer effect on the first surveyed program.
  const std::string target = names.front();
  std::printf("Optimizer effect on %s (solo, hw measurement):\n", target.c_str());
  const double base = lab.solo(target, std::nullopt, Measure::kHardware).miss_ratio();
  const double base_cycles = lab.solo_cycles(target, std::nullopt);
  for (const Optimizer opt : kAllOptimizers) {
    if (opt.granularity == Granularity::kBlock &&
        !Lab::bb_reordering_supported(target)) {
      std::printf("  %-18s N/A (paper compiler error, reproduced)\n",
                  opt.name().c_str());
      continue;
    }
    const double ratio = lab.solo(target, opt, Measure::kHardware).miss_ratio();
    const double cycles = lab.solo_cycles(target, opt);
    std::printf("  %-18s miss %s -> %s (reduction %s), speedup %s\n",
                opt.name().c_str(), fmt_pct(base).c_str(),
                fmt_pct(ratio).c_str(),
                fmt_pct(base > 0 ? 1.0 - ratio / base : 0.0, 1).c_str(),
                fmt_fixed(base_cycles / cycles, 4).c_str());
  }

  // Co-run effect (paper Sec. III-C): optimized+original vs original+original.
  std::printf("\nCo-run effect on %s (averaged over %zu probes):\n",
              target.c_str(), names.size());
  for (const Optimizer opt : kAllOptimizers) {
    if (opt.granularity == Granularity::kBlock &&
        !Lab::bb_reordering_supported(target)) {
      std::printf("  %-18s N/A\n", opt.name().c_str());
      continue;
    }
    RunningStats speedups, reductions;
    for (const auto& probe : names) {
      const double base_c =
          lab.corun_self_cycles(target, std::nullopt, probe, std::nullopt);
      const double opt_c =
          lab.corun_self_cycles(target, opt, probe, std::nullopt);
      speedups.add(base_c / opt_c);
      const double m0 =
          lab.corun(target, std::nullopt, probe, std::nullopt, Measure::kHardware)
              .self.miss_ratio();
      const double m1 =
          lab.corun(target, opt, probe, std::nullopt, Measure::kHardware)
              .self.miss_ratio();
      reductions.add(m0 > 0 ? 1.0 - m1 / m0 : 0.0);
    }
    std::printf("  %-18s avg speedup %s, avg hw miss reduction %s\n",
                opt.name().c_str(), fmt_fixed(speedups.mean(), 4).c_str(),
                fmt_pct(reductions.mean(), 1).c_str());
  }
  return 0;
}
