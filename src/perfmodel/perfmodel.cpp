#include "perfmodel/perfmodel.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace codelayout {

double solo_cycles(const SimResult& sim, double data_stall_cpi,
                   const PerfParams& params) {
  CL_CHECK(data_stall_cpi >= 0.0);
  const auto program = static_cast<double>(sim.instructions -
                                           sim.overhead_instructions);
  const auto overhead = static_cast<double>(sim.overhead_instructions);
  return program * (params.base_cpi + data_stall_cpi) +
         overhead * params.jump_cpi +
         static_cast<double>(sim.misses()) * params.l1i_miss_penalty;
}

double corun_cycles(const SimResult& sim, std::uint64_t full_instructions,
                    double data_stall_cpi, const PerfParams& params) {
  CL_CHECK(sim.instructions > 0);
  const double miss_per_instr = static_cast<double>(sim.misses()) /
                                static_cast<double>(sim.instructions);
  const double overhead_share =
      static_cast<double>(sim.overhead_instructions) /
      static_cast<double>(sim.instructions);
  const auto instructions = static_cast<double>(full_instructions);
  const double program = instructions * (1.0 - overhead_share);
  const double overhead = instructions * overhead_share;
  return (program * (params.base_cpi + data_stall_cpi) +
          overhead * params.jump_cpi) *
             params.smt_cpi_inflation +
         instructions * miss_per_instr * params.corun_miss_penalty;
}

double solo_cycles(const SimResult& sim, double data_stall_cpi,
                   const PerfParams& params, const HierarchySpec& hierarchy) {
  double cycles = solo_cycles(sim, data_stall_cpi, params);
  if (hierarchy.multi_level()) {
    // Demand misses that fell through the L2 pay the memory gap on top of
    // the L2-hit penalty the base model already charged.
    cycles += static_cast<double>(sim.l2_misses) *
              (hierarchy.memory_cycles - hierarchy.l2_hit_cycles);
  }
  return cycles;
}

double corun_cycles(const SimResult& sim, std::uint64_t full_instructions,
                    double data_stall_cpi, const PerfParams& params,
                    const HierarchySpec& hierarchy) {
  double cycles = corun_cycles(sim, full_instructions, data_stall_cpi, params);
  if (hierarchy.multi_level()) {
    // Same per-instruction scaling as the base model: the measured L2 miss
    // rate extrapolates to the full trace.
    const double mem_per_instr = static_cast<double>(sim.l2_misses) /
                                 static_cast<double>(sim.instructions);
    cycles += static_cast<double>(full_instructions) * mem_per_instr *
              (hierarchy.memory_cycles - hierarchy.l2_hit_cycles);
  }
  return cycles;
}

double speedup(double baseline_cycles, double improved_cycles) {
  CL_CHECK(baseline_cycles > 0.0 && improved_cycles > 0.0);
  return baseline_cycles / improved_cycles;
}

ThroughputResult corun_throughput(double solo_cycles_1, double corun_cycles_1,
                                  double solo_cycles_2,
                                  double corun_cycles_2) {
  CL_CHECK(solo_cycles_1 > 0.0 && solo_cycles_2 > 0.0);
  CL_CHECK(corun_cycles_1 > 0.0 && corun_cycles_2 > 0.0);
  const double serial = solo_cycles_1 + solo_cycles_2;

  // Both run concurrently until the shorter co-run finishes; the survivor's
  // unfinished fraction then runs alone at its solo rate.
  const double first = std::min(corun_cycles_1, corun_cycles_2);
  const double survivor_corun = std::max(corun_cycles_1, corun_cycles_2);
  const double survivor_solo =
      corun_cycles_1 >= corun_cycles_2 ? solo_cycles_1 : solo_cycles_2;
  const double remaining_fraction = 1.0 - first / survivor_corun;
  const double total = first + remaining_fraction * survivor_solo;
  return ThroughputResult{serial, total};
}

}  // namespace codelayout
