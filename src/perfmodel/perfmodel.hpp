// Timing model converting simulated cache behaviour into cycles, speedups
// and hyper-threading throughput (paper Sec. III).
//
// SPEC-class programs are data-bound: instruction-cache misses contribute a
// minor share of CPI, which is exactly why the paper's dramatic miss-ratio
// reductions translate into single-digit speedups. The model is
//
//   cycles = I * (base_cpi + data_stall_cpi) + L1I_misses * miss_penalty
//
// with `data_stall_cpi` a per-workload constant (the data-side memory
// behaviour is out of scope of code layout and unchanged by it). Under SMT
// co-run the two hyper-threads share the fetch/issue resources of one core,
// inflating the compute part of CPI by `smt_cpi_inflation`; the cache
// component reflects the shared-L1I interference measured by the co-run
// simulation.
#pragma once

#include "cache/icache_sim.hpp"

namespace codelayout {

struct PerfParams {
  double base_cpi = 0.8;
  /// Cost of a layout-added unconditional jump (trampolines, fall-through
  /// fix-ups): direct jumps are predicted and folded in the fetch stage, so
  /// they are far cheaper than ordinary instructions.
  double jump_cpi = 0.25;
  /// L1I demand-miss penalty in cycles (an L2 hit; fetch-ahead hides part).
  double l1i_miss_penalty = 6.0;
  /// L1I miss penalty under SMT co-run: the two hyper-threads contend for
  /// shared L2 bandwidth and ports, so a miss costs more than in solo run.
  double corun_miss_penalty = 22.0;
  /// CPI inflation from sharing one physical core between two hyper-threads.
  double smt_cpi_inflation = 1.40;
};

/// Cycles for a full solo run measured by `sim`.
double solo_cycles(const SimResult& sim, double data_stall_cpi,
                   const PerfParams& params = {});

/// Cycles for the same program under SMT co-run, using the co-run miss
/// statistics. Scales to the full trace even if `sim` covers a wrapped or
/// partial replay (rates are per-instruction).
double corun_cycles(const SimResult& sim, std::uint64_t full_instructions,
                    double data_stall_cpi, const PerfParams& params = {});

/// Hierarchy-aware composition of the same models. Under a flat spec these
/// are numerically identical to the overloads above (every L1I miss costs
/// the familiar penalty). With an L2 in the spec, the SimResult's per-level
/// counters split the demand misses: an L2 hit costs the familiar penalty,
/// while a miss that went on to memory additionally pays the spec's
/// `memory_cycles - l2_hit_cycles` gap. Wrong-path misses are charged at the
/// front-level penalty either way (they never carry a demand fetch to
/// completion).
double solo_cycles(const SimResult& sim, double data_stall_cpi,
                   const PerfParams& params, const HierarchySpec& hierarchy);
double corun_cycles(const SimResult& sim, std::uint64_t full_instructions,
                    double data_stall_cpi, const PerfParams& params,
                    const HierarchySpec& hierarchy);

/// speedup = baseline / improved (1.04 = 4% faster).
double speedup(double baseline_cycles, double improved_cycles);

/// Hyper-threading throughput (paper Fig. 7): time to finish both programs.
/// Serial: t1 + t2 on one thread. Co-run: both start together; when the
/// shorter finishes, the survivor's remaining work continues at solo speed.
struct ThroughputResult {
  double serial_cycles;
  double corun_cycles;
  /// (serial - corun) / serial, the paper's "throughput improvement".
  [[nodiscard]] double improvement() const {
    return serial_cycles > 0.0
               ? (serial_cycles - corun_cycles) / serial_cycles
               : 0.0;
  }
};

ThroughputResult corun_throughput(double solo_cycles_1, double corun_cycles_1,
                                  double solo_cycles_2, double corun_cycles_2);

}  // namespace codelayout
