// Analytic co-run screening: the paper's Eq. 1/2 evaluated in closed form
// from solo profiles, so any pairing's shared-cache interference can be
// predicted without simulating the pair (DESIGN.md §16).
//
// A SoloProfile distills one (workload, layout) into the inputs of the HOTL
// composition: the all-window footprint curve of its cache-line fetch stream
// plus the instruction/probe totals that convert the model's per-probe miss
// probabilities into the simulator's per-instruction miss ratios. Profiles
// are pure functions of the layout — one kernel pass per program — and
// predict_corun composes two of them under any HierarchySpec:
//
//   flat shared front:  P(self.miss) = P(self.FP + peer.FP >= C)   (Eq. 1/2)
//   private L1 + shared L2: each party keeps its solo L1 miss ratio
//     (the front is private, so no interference there) and the Eq. 1/2
//     composition moves down to the shared L2 capacity.
//
// A full N x N pairing matrix therefore costs N profile builds plus N^2
// closed-form evaluations instead of N^2 simulations; bench_predictor
// records the resulting screening speedup and the predicted-vs-simulated
// error envelope in BENCH_predictor.json.
#pragma once

#include <cstdint>
#include <string>

#include "cache/fetch_plan.hpp"
#include "cache/hierarchy.hpp"
#include "locality/footprint.hpp"
#include "perfmodel/perfmodel.hpp"
#include "trace/trace.hpp"

namespace codelayout {

/// Everything the analytic model needs to know about one program running a
/// given layout: the line-granular footprint curve of its evaluation fetch
/// stream and the totals that scale per-probe probabilities to the
/// simulator's per-instruction miss ratios.
struct SoloProfile {
  std::string workload;
  std::uint32_t line_bytes = 64;
  /// All-window average footprint of the cache-line trace, in lines.
  FootprintCurve lines;
  std::uint64_t instructions = 0;  ///< fetched, including layout overhead
  std::uint64_t overhead_instructions = 0;  ///< layout-added jumps
  std::uint64_t line_probes = 0;   ///< demand line probes (= window count)
  double data_stall_cpi = 0.0;     ///< workload's data-side CPI constant

  /// Converts the model's per-window (per line-probe) miss probabilities to
  /// per-instruction miss ratios, the unit SimResult::miss_ratio() reports.
  [[nodiscard]] double probes_per_instruction() const {
    return instructions == 0 ? 0.0
                             : static_cast<double>(line_probes) /
                                   static_cast<double>(instructions);
  }
  /// Distinct lines the program ever touches.
  [[nodiscard]] double max_footprint_lines() const {
    return lines.max_footprint();
  }
};

/// Builds the profile with one pass over the evaluation block trace: each
/// block run streams its fetch-plan line span straight into the footprint
/// kernel (FootprintBuilder), so the cache-line trace is never materialized
/// and a block's consecutive repeats collapse to O(span width) histogram
/// updates. The same pass accumulates the instruction totals. Deterministic,
/// and independent of measurement flavour (the model sees the bare fetch
/// stream). `line_bytes` must match the plan's.
[[nodiscard]] SoloProfile build_solo_profile(std::string workload,
                                             const FetchPlan& plan,
                                             const Trace& eval_blocks,
                                             double data_stall_cpi,
                                             std::uint32_t line_bytes);

/// One party's predicted behaviour, solo and under the pairing. Miss ratios
/// are per fetched instruction (SimResult units); the L2 rates are zero
/// under a flat hierarchy.
struct PartyPrediction {
  double solo_miss_ratio = 0.0;   ///< front-level misses / instruction, alone
  double corun_miss_ratio = 0.0;  ///< same, sharing the hierarchy with peer
  double solo_l2_miss_rate = 0.0;   ///< memory fetches / instruction, alone
  double corun_l2_miss_rate = 0.0;  ///< same, sharing the L2 with peer
  double solo_cycles = 0.0;   ///< modeled full-trace runtime, alone
  double corun_cycles = 0.0;  ///< modeled full-trace runtime, paired
  /// Predicted front-level misses over the party's full trace when paired.
  double predicted_misses = 0.0;

  /// Modeled co-run dilation (>= 1 in practice; 1.0 for an empty program).
  [[nodiscard]] double slowdown() const {
    return solo_cycles > 0.0 ? corun_cycles / solo_cycles : 1.0;
  }
  /// The party's defensiveness loss under this pairing (Sec. II-A).
  [[nodiscard]] double miss_ratio_increase() const {
    return corun_miss_ratio - solo_miss_ratio;
  }
};

/// predict_corun's output: both parties' predictions plus the relative fetch
/// speed used for the window scaling (parties progress inversely to their
/// CPIs, exactly as the co-run simulator interleaves them).
struct CorunPrediction {
  PartyPrediction self;  ///< party `a`
  PartyPrediction peer;  ///< party `b`
  double peer_speed = 1.0;  ///< b's fetch rate relative to a

  /// The co-scheduler's objective contribution of this pairing: predicted
  /// front-level misses of both parties over their full traces.
  [[nodiscard]] double total_predicted_misses() const {
    return self.predicted_misses + peer.predicted_misses;
  }
};

/// The relative fetch speed of `peer` as seen by `self`: SMT threads
/// progress inversely to their CPIs, clamped to the same [0.25, 4.0] band
/// the bit-exact co-run simulation uses.
[[nodiscard]] double corun_peer_speed(const SoloProfile& self,
                                      const SoloProfile& peer,
                                      const PerfParams& params = {});

/// Composes the two solo profiles into per-party predicted miss ratios and
/// modeled runtimes under `hierarchy` (Eq. 1/2 for a flat shared front;
/// private-L1 fronts with the composition at the shared L2 otherwise).
/// Closed form — microseconds per call — and deterministic. Bumps the
/// `perfmodel.predict.calls` registry counter and the ambient job's
/// predict_calls cost counter.
[[nodiscard]] CorunPrediction predict_corun(const SoloProfile& a,
                                            const SoloProfile& b,
                                            const HierarchySpec& hierarchy = {},
                                            const PerfParams& params = {});

/// Predicted solo front-level misses over the program's full trace — the
/// objective contribution of a program left unpaired by the co-scheduler.
[[nodiscard]] double predicted_solo_misses(const SoloProfile& profile,
                                           const HierarchySpec& hierarchy = {});

}  // namespace codelayout
