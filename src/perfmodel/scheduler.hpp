// Cache-aware co-scheduling over the analytic predictor (DESIGN.md §16).
//
// Given N programs and M SMT pair slots, choose which programs share a core
// so the total predicted front-level misses are minimized. A slot runs one
// or two programs; N <= 2M is required, so at least max(0, N - M) pairs are
// forced. Pairing never reduces misses (co-run interference only adds), so
// the optimum uses exactly that many pairs and the search is over *which*
// programs absorb the sharing.
//
// The search is greedy seeding + local-search refinement, entirely over the
// predictor's closed-form pair costs: the full cost matrix is N^2
// predictions (microseconds each), the greedy pass picks the cheapest
// disjoint pairs, and the refinement loop applies first-improvement swap
// moves (exchange members between two pairs, or swap a paired program with
// an unpaired one) to a deterministic fixpoint. Simulation is reserved for
// verification of the chosen assignment's top-k costliest pairs — the
// caller (Lab, service executor, bench) runs the bit-exact co-run simulator
// on exactly those pairs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cache/hierarchy.hpp"
#include "perfmodel/corun_predictor.hpp"

namespace codelayout {

/// Pairwise predicted costs for a program set: cost(i, j) is the total
/// predicted misses of co-running i and j (symmetric), solo(i) the predicted
/// misses of i running alone.
struct PairCostMatrix {
  std::size_t programs = 0;
  std::vector<double> pair;  ///< programs x programs, row-major; diag unused
  std::vector<double> solo;  ///< predicted solo misses per program

  [[nodiscard]] double cost(std::size_t i, std::size_t j) const {
    return pair[i * programs + j];
  }
};

/// Evaluates the full matrix: N predicted-solo costs and N*(N-1)/2 pairing
/// predictions (stored symmetrically). Closed form — no simulation.
[[nodiscard]] PairCostMatrix compute_pair_costs(
    const std::vector<const SoloProfile*>& profiles,
    const HierarchySpec& hierarchy = {}, const PerfParams& params = {});

/// One chosen pairing: indices into the program set, a < b.
struct SchedulePair {
  std::size_t a = 0;
  std::size_t b = 0;
  double predicted_misses = 0.0;  ///< pair cost from the matrix

  friend bool operator==(const SchedulePair&, const SchedulePair&) = default;
};

struct ScheduleResult {
  /// Chosen pairs, sorted by first index — max(0, N - M) of them.
  std::vector<SchedulePair> pairs;
  /// Programs running alone (ascending index order).
  std::vector<std::size_t> unpaired;
  /// The objective: predicted misses over all pairs plus all solo programs.
  double predicted_total_misses = 0.0;
  /// Local-search refinement passes until fixpoint (0 = greedy was optimal
  /// under the move set).
  std::uint32_t refine_passes = 0;
};

/// Greedy + local-search assignment of N programs to M pair slots. Throws
/// ContractError when N > 2M (infeasible) or M == 0 with N > 0.
/// Deterministic: ties break on ascending indices and the refinement visits
/// moves in a fixed order.
[[nodiscard]] ScheduleResult schedule_corun(const PairCostMatrix& costs,
                                            std::size_t slots);

/// The indices of the `k` costliest chosen pairs (by predicted misses,
/// descending; ties by ascending pair order) — the verification set the
/// bit-exact simulator replays. Returns fewer when the schedule has fewer
/// pairs.
[[nodiscard]] std::vector<std::size_t> top_k_pairs(
    const ScheduleResult& schedule, std::size_t k);

}  // namespace codelayout
