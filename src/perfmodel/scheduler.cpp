#include "perfmodel/scheduler.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"

namespace codelayout {
namespace {

/// Improvement threshold for local-search moves: strictly better by more
/// than a relative epsilon, so floating-point noise cannot cycle the search.
bool improves(double candidate, double incumbent) {
  const double scale = std::max(1.0, std::abs(incumbent));
  return candidate < incumbent - 1e-12 * scale;
}

}  // namespace

PairCostMatrix compute_pair_costs(
    const std::vector<const SoloProfile*>& profiles,
    const HierarchySpec& hierarchy, const PerfParams& params) {
  const std::size_t n = profiles.size();
  PairCostMatrix costs;
  costs.programs = n;
  costs.pair.assign(n * n, 0.0);
  costs.solo.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    CL_CHECK(profiles[i] != nullptr);
    costs.solo[i] = predicted_solo_misses(*profiles[i], hierarchy);
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const CorunPrediction prediction =
          predict_corun(*profiles[i], *profiles[j], hierarchy, params);
      const double cost = prediction.total_predicted_misses();
      costs.pair[i * n + j] = cost;
      costs.pair[j * n + i] = cost;
    }
  }
  return costs;
}

ScheduleResult schedule_corun(const PairCostMatrix& costs, std::size_t slots) {
  const std::size_t n = costs.programs;
  CL_CHECK_MSG(n <= 2 * slots, "cannot place " << n << " programs on "
                                               << slots << " pair slots");
  const std::size_t need_pairs = n > slots ? n - slots : 0;

  ScheduleResult result;
  std::vector<std::size_t> partner(n, n);  ///< n = unpaired

  if (need_pairs > 0) {
    // Greedy seed: pick the disjoint pairs with the smallest pairing delta
    // (pair cost minus the two solo costs it replaces), ascending index
    // tie-break for determinism.
    struct Candidate {
      double delta;
      std::size_t a, b;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(n * (n - 1) / 2);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        candidates.push_back(
            {costs.cost(i, j) - costs.solo[i] - costs.solo[j], i, j});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& x, const Candidate& y) {
                if (x.delta != y.delta) return x.delta < y.delta;
                if (x.a != y.a) return x.a < y.a;
                return x.b < y.b;
              });
    std::size_t picked = 0;
    for (const Candidate& c : candidates) {
      if (picked == need_pairs) break;
      if (partner[c.a] != n || partner[c.b] != n) continue;
      partner[c.a] = c.b;
      partner[c.b] = c.a;
      ++picked;
    }
    CL_CHECK(picked == need_pairs);

    // Local search: first-improvement over two move families until no move
    // helps. Fixed visiting order keeps the fixpoint deterministic.
    bool moved = true;
    while (moved) {
      moved = false;
      ++result.refine_passes;
      // Move 1: re-partner across two pairs. Pairs (a,b) and (c,d) can
      // re-form as (a,c)(b,d) or (a,d)(b,c).
      for (std::size_t a = 0; a < n && !moved; ++a) {
        if (partner[a] == n || partner[a] < a) continue;
        const std::size_t b = partner[a];
        for (std::size_t c = a + 1; c < n && !moved; ++c) {
          if (c == b || partner[c] == n || partner[c] < c) continue;
          const std::size_t d = partner[c];
          const double current = costs.cost(a, b) + costs.cost(c, d);
          const double cross1 = costs.cost(a, c) + costs.cost(b, d);
          const double cross2 = costs.cost(a, d) + costs.cost(b, c);
          if (improves(cross1, current) &&
              (cross1 <= cross2 || !improves(cross2, current))) {
            partner[a] = c;
            partner[c] = a;
            partner[b] = d;
            partner[d] = b;
            moved = true;
          } else if (improves(cross2, current)) {
            partner[a] = d;
            partner[d] = a;
            partner[b] = c;
            partner[c] = b;
            moved = true;
          }
        }
      }
      // Move 2: swap a paired program with an unpaired one. Pair (a,b) and
      // solo u re-form as pair (a,u) with b solo (or (b,u) with a solo).
      for (std::size_t a = 0; a < n && !moved; ++a) {
        if (partner[a] == n || partner[a] < a) continue;
        const std::size_t b = partner[a];
        for (std::size_t u = 0; u < n && !moved; ++u) {
          if (partner[u] != n) continue;
          const double current = costs.cost(a, b) + costs.solo[u];
          const double swap_b = costs.cost(a, u) + costs.solo[b];
          const double swap_a = costs.cost(b, u) + costs.solo[a];
          if (improves(swap_b, current) &&
              (swap_b <= swap_a || !improves(swap_a, current))) {
            partner[a] = u;
            partner[u] = a;
            partner[b] = n;
            moved = true;
          } else if (improves(swap_a, current)) {
            partner[b] = u;
            partner[u] = b;
            partner[a] = n;
            moved = true;
          }
        }
      }
      if (moved) continue;
      // The pass that found nothing is not a refinement pass.
      --result.refine_passes;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (partner[i] == n) {
      result.unpaired.push_back(i);
      result.predicted_total_misses += costs.solo[i];
    } else if (partner[i] > i) {
      result.pairs.push_back({i, partner[i], costs.cost(i, partner[i])});
      result.predicted_total_misses += costs.cost(i, partner[i]);
    }
  }
  return result;
}

std::vector<std::size_t> top_k_pairs(const ScheduleResult& schedule,
                                     std::size_t k) {
  std::vector<std::size_t> order(schedule.pairs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    const double cx = schedule.pairs[x].predicted_misses;
    const double cy = schedule.pairs[y].predicted_misses;
    if (cx != cy) return cx > cy;
    return x < y;
  });
  if (order.size() > k) order.resize(k);
  return order;
}

}  // namespace codelayout
