#include "perfmodel/corun_predictor.hpp"

#include <algorithm>

#include "cache/icache_sim.hpp"
#include "locality/missmodel.hpp"
#include "support/check.hpp"
#include "support/registry.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout {
namespace {

/// Modeled full-trace runtime from predicted (fractional) miss counts — the
/// perfmodel solo/corun formulas with the simulator's integer counters
/// replaced by the model's expectations.
double modeled_solo_cycles(const SoloProfile& p, double front_misses,
                           double l2_misses, const PerfParams& params,
                           const HierarchySpec& hierarchy) {
  const double program =
      static_cast<double>(p.instructions - p.overhead_instructions);
  const double overhead = static_cast<double>(p.overhead_instructions);
  double cycles = program * (params.base_cpi + p.data_stall_cpi) +
                  overhead * params.jump_cpi +
                  front_misses * params.l1i_miss_penalty;
  if (hierarchy.multi_level()) {
    cycles += l2_misses * (hierarchy.memory_cycles - hierarchy.l2_hit_cycles);
  }
  return cycles;
}

double modeled_corun_cycles(const SoloProfile& p, double front_misses,
                            double l2_misses, const PerfParams& params,
                            const HierarchySpec& hierarchy) {
  const double program =
      static_cast<double>(p.instructions - p.overhead_instructions);
  const double overhead = static_cast<double>(p.overhead_instructions);
  double cycles = (program * (params.base_cpi + p.data_stall_cpi) +
                   overhead * params.jump_cpi) *
                      params.smt_cpi_inflation +
                  front_misses * params.corun_miss_penalty;
  if (hierarchy.multi_level()) {
    cycles += l2_misses * (hierarchy.memory_cycles - hierarchy.l2_hit_cycles);
  }
  return cycles;
}

/// One party's prediction against a peer running at `peer_speed` relative to
/// it. Per-probe model probabilities are scaled by the party's
/// probes-per-instruction to land in SimResult units.
PartyPrediction predict_party(const SoloProfile& self,
                              const SoloProfile& peer, double peer_speed,
                              const HierarchySpec& hierarchy,
                              const PerfParams& params) {
  const double l1_capacity = static_cast<double>(hierarchy.l1.lines());
  const double ppi = self.probes_per_instruction();

  PartyPrediction out;
  double solo_front_probe = 0.0;
  double corun_front_probe = 0.0;
  double solo_l2_probe = 0.0;
  double corun_l2_probe = 0.0;
  if (hierarchy.multi_level()) {
    // The L1 front is private per hardware thread: the peer never displaces
    // lines there, so the front miss ratio is the solo one in both modes and
    // the Eq. 1/2 composition moves down to the shared L2 capacity. The L2
    // only sees the front's miss stream, so its memory rate is capped by the
    // front rate.
    const double l2_capacity = static_cast<double>(hierarchy.l2->lines());
    solo_front_probe = solo_miss_ratio(self.lines, l1_capacity);
    corun_front_probe = solo_front_probe;
    solo_l2_probe =
        std::min(solo_miss_ratio(self.lines, l2_capacity), solo_front_probe);
    corun_l2_probe = std::min(
        corun_miss_ratio(self.lines, peer.lines, l2_capacity, peer_speed),
        corun_front_probe);
  } else {
    // Flat spec: the front itself is shared (the paper's SMT L1I model).
    solo_front_probe = solo_miss_ratio(self.lines, l1_capacity);
    corun_front_probe =
        corun_miss_ratio(self.lines, peer.lines, l1_capacity, peer_speed);
  }

  out.solo_miss_ratio = solo_front_probe * ppi;
  out.corun_miss_ratio = corun_front_probe * ppi;
  out.solo_l2_miss_rate = solo_l2_probe * ppi;
  out.corun_l2_miss_rate = corun_l2_probe * ppi;

  const double instructions = static_cast<double>(self.instructions);
  out.predicted_misses = out.corun_miss_ratio * instructions;
  out.solo_cycles = modeled_solo_cycles(
      self, out.solo_miss_ratio * instructions,
      out.solo_l2_miss_rate * instructions, params, hierarchy);
  out.corun_cycles = modeled_corun_cycles(
      self, out.predicted_misses, out.corun_l2_miss_rate * instructions,
      params, hierarchy);
  return out;
}

}  // namespace

SoloProfile build_solo_profile(std::string workload, const FetchPlan& plan,
                               const Trace& eval_blocks, double data_stall_cpi,
                               std::uint32_t line_bytes) {
  CL_CHECK_MSG(plan.line_bytes() == line_bytes,
               "fetch plan built for line size " << plan.line_bytes()
                                                 << ", profile wants "
                                                 << line_bytes);
  SoloProfile profile;
  profile.workload = std::move(workload);
  profile.line_bytes = line_bytes;
  profile.data_stall_cpi = data_stall_cpi;

  // The cache-line symbol space of this layout: one past the last line any
  // block fetches.
  std::uint64_t line_space = 0;
  for (const BlockPlan& block : plan.blocks()) {
    line_space = std::max(line_space,
                          block.first_line + std::uint64_t{block.line_count});
  }

  // One fused pass: instruction totals and the footprint stream, straight
  // from the plan's per-block line spans — the line trace itself is never
  // materialized.
  FootprintBuilder builder(static_cast<Symbol>(line_space));
  for (const Run& run : eval_blocks.runs()) {
    const BlockPlan& block = plan.block(BlockId(run.symbol));
    profile.instructions +=
        static_cast<std::uint64_t>(block.instr_count) * run.length;
    profile.overhead_instructions +=
        static_cast<std::uint64_t>(block.overhead_instrs) * run.length;
    builder.span(static_cast<Symbol>(block.first_line), block.line_count,
                 run.length);
  }
  profile.line_probes = builder.positions();
  profile.lines = std::move(builder).finish();
  return profile;
}

double corun_peer_speed(const SoloProfile& self, const SoloProfile& peer,
                        const PerfParams& params) {
  const double self_cpi = params.base_cpi + self.data_stall_cpi;
  const double peer_cpi = params.base_cpi + peer.data_stall_cpi;
  return std::clamp(self_cpi / peer_cpi, 0.25, 4.0);
}

CorunPrediction predict_corun(const SoloProfile& a, const SoloProfile& b,
                              const HierarchySpec& hierarchy,
                              const PerfParams& params) {
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) registry.counter("perfmodel.predict.calls").add(1);
  if (CostCounters* cost = current_job_context().cost) {
    cost->predict_calls.fetch_add(1, std::memory_order_relaxed);
  }

  CorunPrediction out;
  // Each party sees the other at the window scale of their CPI ratio — the
  // same clamped band the bit-exact interleaving uses for fetch speeds.
  out.peer_speed = corun_peer_speed(a, b, params);
  out.self = predict_party(a, b, out.peer_speed, hierarchy, params);
  out.peer =
      predict_party(b, a, corun_peer_speed(b, a, params), hierarchy, params);
  return out;
}

double predicted_solo_misses(const SoloProfile& profile,
                             const HierarchySpec& hierarchy) {
  const double capacity = static_cast<double>(hierarchy.l1.lines());
  return solo_miss_ratio(profile.lines, capacity) *
         profile.probes_per_instruction() *
         static_cast<double>(profile.instructions);
}

}  // namespace codelayout
