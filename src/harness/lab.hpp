// Lab: the parallel, dependency-aware evaluation engine behind the benches.
//
// Every bench regenerates paper tables from the same primitives — prepared
// workloads, optimized layouts, solo and co-run cache simulations under the
// two measurement flavours — forming a natural DAG:
//
//   prepare workload ── optimize layout ──┬── solo sim
//                                         └── co-run sim (x peer's layout)
//
// The Lab computes each cell exactly once, keyed by a typed EvalKey, with
// per-cell latches instead of a global lock: independent cells simulate
// concurrently on a shared thread pool while duplicate requests block only
// on their own key. Callers either demand-drive single cells through the
// stage getters, or submit a whole table/figure workload up front through
// evaluate_all(requests); both go through the same memo tables, so results
// are identical (and deterministic) at any thread count. Every stage is
// instrumented — cache hits / computes / dedup-waits, wall and CPU time —
// exposed as a LabMetrics snapshot (see the benches' --json flag).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cache/fetch_plan.hpp"
#include "harness/eval.hpp"
#include "harness/memo.hpp"
#include "harness/options.hpp"
#include "harness/pipeline.hpp"
#include "perfmodel/corun_predictor.hpp"
#include "perfmodel/perfmodel.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace codelayout {

/// Point-in-time snapshot of the engine's instrumentation.
struct LabMetrics {
  unsigned threads = 1;
  StageSnapshot prepare;
  StageSnapshot layout;
  StageSnapshot solo;
  StageSnapshot corun;
  std::uint64_t batches = 0;             ///< evaluate_all calls
  std::uint64_t requests_submitted = 0;  ///< requests across all batches
  std::uint64_t engine_wall_nanos = 0;   ///< wall time inside evaluate_all

  /// Memo cells actually computed, across all stages.
  [[nodiscard]] std::uint64_t tasks_executed() const;
  /// Lookups served without computing (cache hits + waits on in-flight
  /// cells).
  [[nodiscard]] std::uint64_t tasks_deduplicated() const;

  /// One JSON object; `bench` (if non-empty) is recorded as the dump's name.
  [[nodiscard]] std::string to_json(std::string_view bench = {}) const;
};

class Lab {
 public:
  Lab() : Lab(LabOptions{}) {}
  /// Validates the options (throws ContractError on nonsense configs).
  explicit Lab(LabOptions options);

  [[nodiscard]] const PipelineConfig& pipeline() const {
    return options_.pipeline();
  }
  [[nodiscard]] const PerfParams& perf() const { return options_.perf(); }
  /// Resolved engine width (>= 1).
  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Materializes every requested cell, fanning independent cells out over
  /// the thread pool (inline when threads() == 1). Returns when all are
  /// done; rethrows the first failure (in request order) after the batch has
  /// settled.
  void evaluate_all(std::span<const EvalRequest> requests);

  /// evaluate_all with per-cell status instead of a batch-aborting throw:
  /// every request runs to completion and reports ok or its own failure
  /// message. Failures are memoized like values (deterministic computes
  /// would fail identically on retry), so a failed cell reports the same
  /// error to every later requester.
  std::vector<EvalOutcome> evaluate_all_checked(
      std::span<const EvalRequest> requests);

  /// Prepares the named workloads concurrently (optional warm-up).
  void prepare_all(const std::vector<std::string>& names);

  const PreparedWorkload& workload(const std::string& name);

  /// nullopt = the original (baseline) layout.
  const CodeLayout& layout(const std::string& name,
                           std::optional<Optimizer> optimizer);

  /// The memoized fetch plan for (workload, optimizer) at the paper's line
  /// size — both measurement flavours run the same line size, so one plan
  /// serves every solo and co-run simulation of that layout. Hit/compute
  /// counts are exported as `cache.fetch_plan.hits` /
  /// `cache.fetch_plan.misses`.
  const FetchPlan& fetch_plan(const std::string& name,
                              std::optional<Optimizer> optimizer);
  /// Same, for an explicit line size: plans are memoized per (workload,
  /// optimizer, line size), so a geometry sweep shares plans per line size
  /// instead of rebuilding them per cell.
  const FetchPlan& fetch_plan(const std::string& name,
                              std::optional<Optimizer> optimizer,
                              std::uint32_t line_bytes);

  /// The memoized analytic solo profile of (workload, optimizer) — the
  /// footprint curve + totals the co-run predictor composes. One kernel pass
  /// per (workload, optimizer, line size): a full N x N screening matrix
  /// costs N profile builds, every pairing after that is closed-form.
  /// Hit/compute counts are exported as `perfmodel.predict.profile_memo_hits`
  /// / `perfmodel.predict.profile_builds`.
  const SoloProfile& solo_profile(const std::string& name,
                                  std::optional<Optimizer> optimizer);
  const SoloProfile& solo_profile(const std::string& name,
                                  std::optional<Optimizer> optimizer,
                                  std::uint32_t line_bytes);

  /// Closed-form pairing prediction (perfmodel/corun_predictor.hpp) from the
  /// memoized solo profiles — no simulation. The screening counterpart of
  /// corun(): same parties, same hierarchy semantics, microseconds instead
  /// of a bit-exact replay.
  CorunPrediction predict_corun(const std::string& self_name,
                                std::optional<Optimizer> self_opt,
                                const std::string& peer_name,
                                std::optional<Optimizer> peer_opt,
                                const HierarchySpec& hierarchy = {});

  const SimResult& solo(const std::string& name,
                        std::optional<Optimizer> optimizer, Measure measure,
                        const HierarchySpec& hierarchy = {});

  /// Co-run of `self` (full trace, measured) against wrapping `peer`.
  const CorunResult& corun(const std::string& self_name,
                           std::optional<Optimizer> self_opt,
                           const std::string& peer_name,
                           std::optional<Optimizer> peer_opt,
                           Measure measure,
                           const HierarchySpec& hierarchy = {});

  /// Modeled runtimes (hardware flavour, per the paper's wall-clock timing).
  /// A multi-level hierarchy adds the memory-gap term for demand misses that
  /// fell through the shared L2 (perfmodel Eq. 1/2 composition).
  double solo_cycles(const std::string& name,
                     std::optional<Optimizer> optimizer,
                     const HierarchySpec& hierarchy = {});
  double corun_self_cycles(const std::string& self_name,
                           std::optional<Optimizer> self_opt,
                           const std::string& peer_name,
                           std::optional<Optimizer> peer_opt,
                           const HierarchySpec& hierarchy = {});

  /// Whether the paper's BB-reordering compiler handled this program
  /// (it failed on perlbench and povray; reproduced as N/A).
  static bool bb_reordering_supported(const std::string& name);

  [[nodiscard]] LabMetrics metrics() const;

 private:
  void execute(const EvalRequest& request);
  /// Shared batch driver: one exception_ptr slot per request (null = ok).
  std::vector<std::exception_ptr> run_batch(
      std::span<const EvalRequest> requests);
  ThreadPool& pool();
  StageCounters* counters(Stage stage);
  SimOptions sim_options(Measure measure, const HierarchySpec& hierarchy) const;

  LabOptions options_;
  unsigned threads_ = 1;

  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;

  MemoTable<PreparedWorkload> workloads_;
  MemoTable<CodeLayout> layouts_;
  MemoTable<FetchPlan> plans_;
  MemoTable<SoloProfile> profiles_;
  MemoTable<SimResult> solos_;
  MemoTable<CorunResult> coruns_;

  StageCounters prepare_counters_;
  StageCounters layout_counters_;
  StageCounters solo_counters_;
  StageCounters corun_counters_;
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> requests_submitted_{0};
  std::atomic<std::uint64_t> engine_wall_nanos_{0};
};

}  // namespace codelayout
