// Lab: a memoizing experiment context shared by the bench binaries.
//
// Every bench regenerates paper tables from the same primitives — prepared
// workloads, optimized layouts, solo and co-run cache simulations under the
// two measurement flavours — so the Lab computes each once and caches it.
// Preparation across workloads is embarrassingly parallel and runs on a
// thread pool.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "harness/pipeline.hpp"
#include "perfmodel/perfmodel.hpp"

namespace codelayout {

/// The paper's two instruments (Sec. III-A): PAPI hardware counters on the
/// Xeon, and the Pin-based cache simulator.
enum class Measure { kSimulator, kHardware };

class Lab {
 public:
  explicit Lab(PipelineConfig pipeline = {}, PerfParams perf = {});

  [[nodiscard]] const PipelineConfig& pipeline() const { return pipeline_; }
  [[nodiscard]] const PerfParams& perf() const { return perf_; }

  /// Prepares the named workloads concurrently (optional warm-up).
  void prepare_all(const std::vector<std::string>& names);

  const PreparedWorkload& workload(const std::string& name);

  /// nullopt = the original (baseline) layout.
  const CodeLayout& layout(const std::string& name,
                           std::optional<Optimizer> optimizer);

  const SimResult& solo(const std::string& name,
                        std::optional<Optimizer> optimizer, Measure measure);

  /// Co-run of `self` (full trace, measured) against wrapping `peer`.
  const CorunResult& corun(const std::string& self_name,
                           std::optional<Optimizer> self_opt,
                           const std::string& peer_name,
                           std::optional<Optimizer> peer_opt,
                           Measure measure);

  /// Modeled runtimes (hardware flavour, per the paper's wall-clock timing).
  double solo_cycles(const std::string& name,
                     std::optional<Optimizer> optimizer);
  double corun_self_cycles(const std::string& self_name,
                           std::optional<Optimizer> self_opt,
                           const std::string& peer_name,
                           std::optional<Optimizer> peer_opt);

  /// Whether the paper's BB-reordering compiler handled this program
  /// (it failed on perlbench and povray; reproduced as N/A).
  static bool bb_reordering_supported(const std::string& name);

 private:
  static std::string opt_key(std::optional<Optimizer> optimizer);
  SimOptions sim_options(Measure measure) const;

  PipelineConfig pipeline_;
  PerfParams perf_;
  std::mutex mutex_;
  std::map<std::string, std::unique_ptr<PreparedWorkload>> workloads_;
  std::map<std::string, std::unique_ptr<CodeLayout>> layouts_;
  std::map<std::string, std::unique_ptr<SimResult>> solos_;
  std::map<std::string, std::unique_ptr<CorunResult>> coruns_;
};

}  // namespace codelayout
