// The typed request API of the evaluation engine.
//
// Every cell the Lab can compute is identified by an EvalKey — workload,
// optional optimizer (nullopt = the original layout), optional peer (engaged
// = a co-run), and the measurement flavour. An EvalRequest names a stage of
// the evaluation DAG (prepare -> layout -> solo | co-run) plus the key to
// materialize; batches of requests are Lab::evaluate_all's unit of work.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "cache/hierarchy.hpp"
#include "harness/pipeline.hpp"

namespace codelayout {

/// The paper's two instruments (Sec. III-A): PAPI hardware counters on the
/// Xeon, and the Pin-based cache simulator.
enum class Measure : std::uint8_t { kSimulator, kHardware };

/// Stages of the evaluation DAG, in dependency order.
enum class Stage : std::uint8_t { kPrepare, kLayout, kSolo, kCorun };

[[nodiscard]] const char* stage_name(Stage stage);

struct EvalKey {
  std::string workload;
  std::optional<Optimizer> optimizer;       ///< nullopt = original layout
  std::optional<std::string> peer;          ///< engaged = co-run vs this peer
  std::optional<Optimizer> peer_optimizer;  ///< the peer's layout
  Measure measure = Measure::kHardware;
  /// Cache shape the cell is evaluated under; the default is the paper's
  /// flat L1I, so legacy keys hash and print exactly as before.
  HierarchySpec hierarchy{};

  friend bool operator==(const EvalKey&, const EvalKey&) = default;
  friend auto operator<=>(const EvalKey&, const EvalKey&) = default;

  /// "458.sjeng|BB Affinity|vs|403.gcc|Original|hw" — for logs and errors.
  /// A non-default hierarchy appends "|g=<spec>".
  [[nodiscard]] std::string to_string() const;
};

struct EvalKeyHash {
  std::size_t operator()(const EvalKey& key) const noexcept;
};

/// One unit of batch work for Lab::evaluate_all. Use the factories: they
/// populate exactly the key fields the stage consumes.
struct EvalRequest {
  Stage stage = Stage::kSolo;
  EvalKey key;

  static EvalRequest prepare(std::string workload);
  static EvalRequest layout(std::string workload,
                            std::optional<Optimizer> optimizer);
  static EvalRequest solo(std::string workload,
                          std::optional<Optimizer> optimizer, Measure measure,
                          HierarchySpec hierarchy = {});
  static EvalRequest corun(std::string self, std::optional<Optimizer> self_opt,
                           std::string peer, std::optional<Optimizer> peer_opt,
                           Measure measure, HierarchySpec hierarchy = {});

  friend bool operator==(const EvalRequest&, const EvalRequest&) = default;
  friend auto operator<=>(const EvalRequest&, const EvalRequest&) = default;
};

/// Terminal state of one request in a checked batch.
enum class CellStatus : std::uint8_t { kOk, kFailed };

/// Per-request result of Lab::evaluate_all_checked: the request, whether its
/// cell materialized, and the failure message when it did not. A failed cell
/// never aborts the rest of the batch — the service daemon turns one bad job
/// into one error response while its neighbours complete.
struct EvalOutcome {
  EvalRequest request;
  CellStatus status = CellStatus::kOk;
  std::string error;  ///< empty when ok

  [[nodiscard]] bool ok() const { return status == CellStatus::kOk; }
};

}  // namespace codelayout
