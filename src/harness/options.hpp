// Validated, builder-style configuration for the Lab.
//
// Replaces the old positional (PipelineConfig, PerfParams) constructor pair:
// options chain fluently, and Lab's constructor rejects nonsensical configs
// (zero pruning budget, zero cache bytes, SMT that speeds threads up, ...)
// with a ContractError naming every problem, instead of silently producing
// degenerate layouts or negative cycle counts.
#pragma once

#include "harness/pipeline.hpp"
#include "perfmodel/perfmodel.hpp"

namespace codelayout {

class LabOptions {
 public:
  LabOptions& pipeline(PipelineConfig config) {
    pipeline_ = std::move(config);
    return *this;
  }
  LabOptions& perf(PerfParams params) {
    perf_ = params;
    return *this;
  }
  /// Worker threads for the evaluation engine; 0 (the default) resolves to
  /// one per hardware thread.
  LabOptions& threads(unsigned count) {
    threads_ = count;
    return *this;
  }
  /// Per-stage counters and timings; on by default (the counters are
  /// relaxed atomics, far off every hot path).
  LabOptions& metrics(bool enabled) {
    metrics_ = enabled;
    return *this;
  }

  [[nodiscard]] const PipelineConfig& pipeline() const { return pipeline_; }
  [[nodiscard]] const PerfParams& perf() const { return perf_; }
  [[nodiscard]] unsigned threads() const { return threads_; }
  [[nodiscard]] bool metrics() const { return metrics_; }

  /// The worker count after resolving 0 = hardware concurrency.
  [[nodiscard]] unsigned resolved_threads() const;

  /// Throws ContractError listing every invalid setting.
  void validate() const;

 private:
  PipelineConfig pipeline_{};
  PerfParams perf_{};
  unsigned threads_ = 0;
  bool metrics_ = true;
};

}  // namespace codelayout
