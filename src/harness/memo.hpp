// Per-key once-execution memo table — the concurrency core of the Lab.
//
// The first thread to request a key claims its cell and computes the value
// inline, off the table lock; every other thread requesting the same key
// blocks only on that cell's latch (never on a global mutex), so independent
// keys compute fully concurrently while duplicates deduplicate. Because an
// in-progress cell is always being actively computed by the thread that
// claimed it, and the stage graph is acyclic, waiters always wait on a
// thread making progress: no idle-owner deadlock is possible even when every
// pool worker blocks.
#pragma once

#include <exception>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "harness/eval.hpp"
#include "support/metrics.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout {

template <typename Value>
class MemoTable {
 public:
  /// Returns the cached value for `key`, computing it via `compute()` if
  /// this is the first request. Stable reference (valid for the table's
  /// lifetime). A throwing compute is cached as that exception and rethrown
  /// to every requester (computations here are deterministic, so retrying
  /// would fail identically). `counters` may be null (metrics disabled).
  template <typename Compute>
  const Value& get_or_compute(const EvalKey& key, StageCounters* counters,
                              Compute&& compute) {
    std::shared_ptr<Entry> entry;
    bool owner = false;
    {
      std::scoped_lock lock(mutex_);
      auto [it, inserted] = map_.try_emplace(key);
      if (inserted) {
        it->second = std::make_shared<Entry>();
        owner = true;
      }
      entry = it->second;
    }
    // Per-job cost attribution: the ambient job's accumulator (when one is
    // installed) counts owner-computes as misses and hit/wait as hits.
    CostCounters* cost = current_job_context().cost;
    if (owner) {
      if (cost) cost->memo_misses.fetch_add(1, std::memory_order_relaxed);
      const std::uint64_t wall0 = counters ? wall_nanos_now() : 0;
      const std::uint64_t cpu0 = counters ? thread_cpu_nanos_now() : 0;
      try {
        entry->value = std::make_unique<Value>(compute());
      } catch (...) {
        entry->error = std::current_exception();
      }
      if (counters) {
        counters->record_compute(wall_nanos_now() - wall0,
                                 thread_cpu_nanos_now() - cpu0);
      }
      entry->done.store(true, std::memory_order_release);
      entry->latch.set_value();
    } else {
      if (cost) cost->memo_hits.fetch_add(1, std::memory_order_relaxed);
      if (entry->done.load(std::memory_order_acquire)) {
        if (counters) counters->record_hit();
      } else {
        if (counters) counters->record_wait();
        entry->ready.wait();
      }
    }
    if (entry->error) std::rethrow_exception(entry->error);
    return *entry->value;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return map_.size();
  }

 private:
  struct Entry {
    Entry() : ready(latch.get_future().share()) {}
    std::promise<void> latch;
    std::shared_future<void> ready;
    std::atomic<bool> done{false};
    std::unique_ptr<Value> value;
    std::exception_ptr error;
  };

  mutable std::mutex mutex_;
  std::unordered_map<EvalKey, std::shared_ptr<Entry>, EvalKeyHash> map_;
};

}  // namespace codelayout
