#include "harness/options.hpp"

#include <string>
#include <vector>

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace codelayout {

unsigned LabOptions::resolved_threads() const {
  return threads_ == 0 ? ThreadPool::default_threads() : threads_;
}

void LabOptions::validate() const {
  std::vector<std::string> problems;

  if (pipeline_.prune_top_k == 0) {
    problems.push_back(
        "prune_top_k must be positive (0 would prune away the whole trace)");
  }
  if (pipeline_.trg_cache_bytes == 0) {
    problems.push_back("trg_cache_bytes must be positive");
  }
  if (pipeline_.trg_block_bytes == 0) {
    problems.push_back("trg_block_bytes must be positive");
  }
  if (pipeline_.trg_function_bytes == 0) {
    problems.push_back("trg_function_bytes must be positive");
  }
  if (pipeline_.trg_cache_bytes > 0 &&
      pipeline_.trg_block_bytes > pipeline_.trg_cache_bytes) {
    problems.push_back(
        "trg_block_bytes exceeds trg_cache_bytes: the TRG window would "
        "examine less than one block");
  }
  if (!pipeline_.affinity.valid()) {
    problems.push_back(
        "affinity w_values must be a non-empty ascending grid of values >= 2");
  }
  if (!pipeline_.dispatch.valid()) {
    problems.push_back(
        "dispatch thresholds must all be finite and >= 1 (compression ratios "
        "are never below 1)");
  }
  if (!(perf_.base_cpi > 0.0)) {
    problems.push_back("base_cpi must be positive");
  }
  if (perf_.jump_cpi < 0.0) {
    problems.push_back("jump_cpi must be non-negative");
  }
  if (perf_.l1i_miss_penalty < 0.0) {
    problems.push_back("l1i_miss_penalty must be non-negative");
  }
  if (perf_.corun_miss_penalty < 0.0) {
    problems.push_back("corun_miss_penalty must be non-negative");
  }
  if (perf_.smt_cpi_inflation < 1.0) {
    problems.push_back(
        "smt_cpi_inflation must be >= 1 (sharing a core cannot speed a "
        "thread up)");
  }

  if (problems.empty()) return;
  std::string message = "invalid LabOptions:";
  for (const std::string& p : problems) {
    message += "\n  - ";
    message += p;
  }
  throw ContractError(message);
}

}  // namespace codelayout
