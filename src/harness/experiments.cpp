#include "harness/experiments.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/stats.hpp"
#include "workloads/spec.hpp"

namespace codelayout {
namespace {

double corun_miss(Lab& lab, const std::string& self,
                  std::optional<Optimizer> self_opt, const std::string& peer,
                  Measure measure, const HierarchySpec& hierarchy) {
  return lab.corun(self, self_opt, peer, std::nullopt, measure, hierarchy)
      .self.miss_ratio();
}

// Request-list builders: each driver submits its full table/figure workload
// to the engine up front (Lab::evaluate_all), so independent cells simulate
// concurrently; the row-assembly loops below then run entirely off the warm
// memo and emit rows in the fixed reporting order.

void push_probe_coruns(std::vector<EvalRequest>& requests,
                       const std::string& name, const std::string& probe,
                       const HierarchySpec& hierarchy) {
  requests.push_back(EvalRequest::corun(name, std::nullopt, probe,
                                        std::nullopt, Measure::kHardware,
                                        hierarchy));
}

/// The cells corun_average() consumes for one (name, opt) Table II cell.
void push_table2_cell(std::vector<EvalRequest>& requests,
                      const std::string& name, Optimizer opt,
                      const std::vector<std::string>& probes,
                      const HierarchySpec& hierarchy) {
  if (opt.granularity == Granularity::kBlock &&
      !Lab::bb_reordering_supported(name)) {
    return;
  }
  for (const std::string& probe : probes) {
    for (const Measure measure : {Measure::kHardware, Measure::kSimulator}) {
      requests.push_back(EvalRequest::corun(name, std::nullopt, probe,
                                            std::nullopt, measure,
                                            hierarchy));
      requests.push_back(EvalRequest::corun(name, opt, probe, std::nullopt,
                                            measure, hierarchy));
    }
  }
}

/// Average co-run speedup/miss reductions of `opt` for `name` across probes.
Table2Cell corun_average(Lab& lab, const std::string& name, Optimizer opt,
                         const std::vector<std::string>& probes,
                         const HierarchySpec& hierarchy) {
  Table2Cell cell;
  if (opt.granularity == Granularity::kBlock &&
      !Lab::bb_reordering_supported(name)) {
    cell.available = false;
    return cell;
  }
  RunningStats speedup_stats, hw_stats, sim_stats;
  for (const auto& probe : probes) {
    const double base_cycles = lab.corun_self_cycles(
        name, std::nullopt, probe, std::nullopt, hierarchy);
    const double opt_cycles =
        lab.corun_self_cycles(name, opt, probe, std::nullopt, hierarchy);
    speedup_stats.add(base_cycles / opt_cycles);
    const double hw0 = corun_miss(lab, name, std::nullopt, probe,
                                  Measure::kHardware, hierarchy);
    const double hw1 =
        corun_miss(lab, name, opt, probe, Measure::kHardware, hierarchy);
    hw_stats.add(hw0 > 0 ? 1.0 - hw1 / hw0 : 0.0);
    const double sim0 = corun_miss(lab, name, std::nullopt, probe,
                                   Measure::kSimulator, hierarchy);
    const double sim1 =
        corun_miss(lab, name, opt, probe, Measure::kSimulator, hierarchy);
    sim_stats.add(sim0 > 0 ? 1.0 - sim1 / sim0 : 0.0);
  }
  cell.speedup = speedup_stats.mean();
  cell.miss_reduction_hw = hw_stats.mean();
  cell.miss_reduction_sim = sim_stats.mean();
  return cell;
}

}  // namespace

IntroTable intro_table(Lab& lab, double nontrivial_threshold,
                       const HierarchySpec& hierarchy) {
  // Two dependency-ordered batches: every solo first (the threshold filter
  // needs them), then the co-runs of the programs that qualify.
  std::vector<EvalRequest> requests;
  for (const WorkloadSpec& spec : spec_suite()) {
    requests.push_back(EvalRequest::solo(spec.name, std::nullopt,
                                         Measure::kHardware, hierarchy));
  }
  lab.evaluate_all(requests);
  requests.clear();
  for (const WorkloadSpec& spec : spec_suite()) {
    if (lab.solo(spec.name, std::nullopt, Measure::kHardware, hierarchy)
            .miss_ratio() < nontrivial_threshold) {
      continue;
    }
    push_probe_coruns(requests, spec.name, kProbe1, hierarchy);
    push_probe_coruns(requests, spec.name, kProbe2, hierarchy);
  }
  lab.evaluate_all(requests);

  IntroTable out{};
  RunningStats solo, c1, c2;
  for (const WorkloadSpec& spec : spec_suite()) {
    const double s =
        lab.solo(spec.name, std::nullopt, Measure::kHardware, hierarchy)
            .miss_ratio();
    if (s < nontrivial_threshold) continue;
    out.programs.push_back(spec.name);
    solo.add(s);
    c1.add(corun_miss(lab, spec.name, std::nullopt, kProbe1,
                      Measure::kHardware, hierarchy));
    c2.add(corun_miss(lab, spec.name, std::nullopt, kProbe2,
                      Measure::kHardware, hierarchy));
  }
  CL_CHECK_MSG(solo.count() > 0, "no program crosses the threshold");
  out.avg_solo = solo.mean();
  out.avg_corun1 = c1.mean();
  out.avg_corun2 = c2.mean();
  return out;
}

std::vector<Fig4Row> fig4_rows(Lab& lab, const HierarchySpec& hierarchy) {
  std::vector<EvalRequest> requests;
  for (const WorkloadSpec& spec : spec_suite()) {
    requests.push_back(EvalRequest::solo(spec.name, std::nullopt,
                                         Measure::kHardware, hierarchy));
    push_probe_coruns(requests, spec.name, kProbe1, hierarchy);
    push_probe_coruns(requests, spec.name, kProbe2, hierarchy);
  }
  lab.evaluate_all(requests);

  std::vector<Fig4Row> rows;
  for (const WorkloadSpec& spec : spec_suite()) {
    rows.push_back(Fig4Row{
        .name = spec.name,
        .solo =
            lab.solo(spec.name, std::nullopt, Measure::kHardware, hierarchy)
                .miss_ratio(),
        .probe_gcc =
            corun_miss(lab, spec.name, std::nullopt, kProbe1,
                       Measure::kHardware, hierarchy),
        .probe_gamess =
            corun_miss(lab, spec.name, std::nullopt, kProbe2,
                       Measure::kHardware, hierarchy)});
  }
  return rows;
}

std::vector<Table1Row> table1_rows(Lab& lab,
                                   const HierarchySpec& hierarchy) {
  std::vector<EvalRequest> requests;
  for (const std::string& name : selected_benchmarks()) {
    requests.push_back(EvalRequest::solo(name, std::nullopt,
                                         Measure::kHardware, hierarchy));
    push_probe_coruns(requests, name, kProbe1, hierarchy);
    push_probe_coruns(requests, name, kProbe2, hierarchy);
  }
  lab.evaluate_all(requests);

  std::vector<Table1Row> rows;
  for (const std::string& name : selected_benchmarks()) {
    const PreparedWorkload& w = lab.workload(name);
    rows.push_back(Table1Row{
        .name = name,
        .dynamic_instructions = w.eval_instructions,
        .static_bytes = w.module.static_bytes(),
        .solo = lab.solo(name, std::nullopt, Measure::kHardware, hierarchy)
                    .miss_ratio(),
        .corun_gcc = corun_miss(lab, name, std::nullopt, kProbe1,
                                Measure::kHardware, hierarchy),
        .corun_gamess = corun_miss(lab, name, std::nullopt, kProbe2,
                                   Measure::kHardware, hierarchy)});
  }
  return rows;
}

std::vector<Fig5Row> fig5_rows(Lab& lab, const HierarchySpec& hierarchy) {
  std::vector<EvalRequest> requests;
  for (const std::string& name : selected_benchmarks()) {
    requests.push_back(EvalRequest::solo(name, std::nullopt,
                                         Measure::kHardware, hierarchy));
    requests.push_back(EvalRequest::solo(name, kFuncAffinity,
                                         Measure::kHardware, hierarchy));
    if (Lab::bb_reordering_supported(name)) {
      requests.push_back(EvalRequest::solo(name, kBBAffinity,
                                           Measure::kHardware, hierarchy));
    }
  }
  lab.evaluate_all(requests);

  std::vector<Fig5Row> rows;
  for (const std::string& name : selected_benchmarks()) {
    Fig5Row row{.name = name,
                .bb_supported = Lab::bb_reordering_supported(name),
                .func_speedup = 0,
                .func_miss_reduction = 0,
                .bb_speedup = 0,
                .bb_miss_reduction = 0};
    const double base_cycles = lab.solo_cycles(name, std::nullopt, hierarchy);
    const double base_miss =
        lab.solo(name, std::nullopt, Measure::kHardware, hierarchy)
            .miss_ratio();
    row.func_speedup =
        base_cycles / lab.solo_cycles(name, kFuncAffinity, hierarchy);
    const double func_miss =
        lab.solo(name, kFuncAffinity, Measure::kHardware, hierarchy)
            .miss_ratio();
    row.func_miss_reduction =
        base_miss > 0 ? 1.0 - func_miss / base_miss : 0.0;
    if (row.bb_supported) {
      row.bb_speedup =
          base_cycles / lab.solo_cycles(name, kBBAffinity, hierarchy);
      const double bb_miss =
          lab.solo(name, kBBAffinity, Measure::kHardware, hierarchy)
              .miss_ratio();
      row.bb_miss_reduction = base_miss > 0 ? 1.0 - bb_miss / base_miss : 0.0;
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<Table2Row> table2_rows(Lab& lab,
                                   const HierarchySpec& hierarchy) {
  const auto& probes = selected_benchmarks();
  std::vector<EvalRequest> requests;
  for (const std::string& name : selected_benchmarks()) {
    for (const Optimizer opt : {kFuncAffinity, kBBAffinity, kFuncTrg}) {
      push_table2_cell(requests, name, opt, probes, hierarchy);
    }
  }
  lab.evaluate_all(requests);

  std::vector<Table2Row> rows;
  for (const std::string& name : selected_benchmarks()) {
    rows.push_back(Table2Row{
        .name = name,
        .func_affinity =
            corun_average(lab, name, kFuncAffinity, probes, hierarchy),
        .bb_affinity = corun_average(lab, name, kBBAffinity, probes,
                                     hierarchy),
        .func_trg = corun_average(lab, name, kFuncTrg, probes, hierarchy)});
  }
  return rows;
}

std::vector<Fig6Cell> fig6_cells(Lab& lab, Optimizer optimizer,
                                 const HierarchySpec& hierarchy) {
  std::vector<EvalRequest> requests;
  for (const std::string& name : selected_benchmarks()) {
    if (optimizer.granularity == Granularity::kBlock &&
        !Lab::bb_reordering_supported(name)) {
      continue;
    }
    for (const std::string& probe : selected_benchmarks()) {
      requests.push_back(EvalRequest::corun(name, std::nullopt, probe,
                                            std::nullopt, Measure::kHardware,
                                            hierarchy));
      requests.push_back(EvalRequest::corun(name, optimizer, probe,
                                            std::nullopt, Measure::kHardware,
                                            hierarchy));
    }
  }
  lab.evaluate_all(requests);

  std::vector<Fig6Cell> cells;
  for (const std::string& name : selected_benchmarks()) {
    if (optimizer.granularity == Granularity::kBlock &&
        !Lab::bb_reordering_supported(name)) {
      continue;
    }
    for (const std::string& probe : selected_benchmarks()) {
      const double base = lab.corun_self_cycles(name, std::nullopt, probe,
                                                std::nullopt, hierarchy);
      const double opt = lab.corun_self_cycles(name, optimizer, probe,
                                               std::nullopt, hierarchy);
      cells.push_back(Fig6Cell{name, probe, base / opt});
    }
  }
  return cells;
}

const std::vector<std::string>& fig7_programs() {
  // The 28 pairs of Fig. 7 span 7 programs: the selected 8 minus gobmk.
  static const std::vector<std::string> programs = [] {
    std::vector<std::string> out;
    for (const std::string& name : selected_benchmarks()) {
      if (name != "445.gobmk") out.push_back(name);
    }
    return out;
  }();
  return programs;
}

std::vector<Fig7Pair> fig7_pairs(Lab& lab, const HierarchySpec& hierarchy) {
  const auto& programs = fig7_programs();
  std::vector<EvalRequest> requests;
  for (const std::string& name : programs) {
    requests.push_back(EvalRequest::solo(name, std::nullopt,
                                         Measure::kHardware, hierarchy));
    requests.push_back(EvalRequest::solo(name, kFuncAffinity,
                                         Measure::kHardware, hierarchy));
  }
  for (std::size_t i = 0; i < programs.size(); ++i) {
    for (std::size_t j = i; j < programs.size(); ++j) {
      const std::string& a = programs[i];
      const std::string& b = programs[j];
      requests.push_back(EvalRequest::corun(a, std::nullopt, b, std::nullopt,
                                            Measure::kHardware, hierarchy));
      requests.push_back(EvalRequest::corun(b, std::nullopt, a, std::nullopt,
                                            Measure::kHardware, hierarchy));
      requests.push_back(EvalRequest::corun(a, kFuncAffinity, b, std::nullopt,
                                            Measure::kHardware, hierarchy));
      requests.push_back(EvalRequest::corun(b, std::nullopt, a, kFuncAffinity,
                                            Measure::kHardware, hierarchy));
    }
  }
  lab.evaluate_all(requests);

  std::vector<Fig7Pair> pairs;
  for (std::size_t i = 0; i < programs.size(); ++i) {
    for (std::size_t j = i; j < programs.size(); ++j) {
      const std::string& a = programs[i];
      const std::string& b = programs[j];
      const double solo_a = lab.solo_cycles(a, std::nullopt, hierarchy);
      const double solo_b = lab.solo_cycles(b, std::nullopt, hierarchy);

      const double base_a = lab.corun_self_cycles(a, std::nullopt, b,
                                                  std::nullopt, hierarchy);
      const double base_b = lab.corun_self_cycles(b, std::nullopt, a,
                                                  std::nullopt, hierarchy);
      const auto baseline =
          corun_throughput(solo_a, base_a, solo_b, base_b);

      // Function affinity applied to program a (optimized+baseline co-run).
      const double opt_solo_a = lab.solo_cycles(a, kFuncAffinity, hierarchy);
      const double opt_a = lab.corun_self_cycles(a, kFuncAffinity, b,
                                                 std::nullopt, hierarchy);
      const double peer_b = lab.corun_self_cycles(b, std::nullopt, a,
                                                  kFuncAffinity, hierarchy);
      const auto optimized =
          corun_throughput(opt_solo_a, opt_a, solo_b, peer_b);

      pairs.push_back(Fig7Pair{.a = a,
                               .b = b,
                               .baseline_improvement = baseline.improvement(),
                               .optimized_improvement =
                                   optimized.improvement()});
    }
  }
  return pairs;
}

std::vector<std::string> top_improving_programs(
    Lab& lab, std::size_t n, const HierarchySpec& hierarchy) {
  const auto rows = table2_rows(lab, hierarchy);
  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& row : rows) {
    ranked.emplace_back(row.func_affinity.speedup, row.name);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  std::vector<std::string> out;
  for (std::size_t i = 0; i < n && i < ranked.size(); ++i) {
    out.push_back(ranked[i].second);
  }
  return out;
}

std::vector<Sec3FRow> sec3f_rows(Lab& lab, std::size_t top_n,
                                 const HierarchySpec& hierarchy) {
  const auto programs = top_improving_programs(lab, top_n, hierarchy);
  std::vector<EvalRequest> requests;
  for (const std::string& a : programs) {
    for (const std::string& b : programs) {
      requests.push_back(EvalRequest::corun(a, std::nullopt, b, std::nullopt,
                                            Measure::kHardware, hierarchy));
      requests.push_back(EvalRequest::corun(a, kFuncAffinity, b, std::nullopt,
                                            Measure::kHardware, hierarchy));
      requests.push_back(EvalRequest::corun(a, kFuncAffinity, b,
                                            kFuncAffinity, Measure::kHardware,
                                            hierarchy));
    }
  }
  lab.evaluate_all(requests);

  std::vector<Sec3FRow> rows;
  for (const std::string& a : programs) {
    for (const std::string& b : programs) {
      const double base = lab.corun_self_cycles(a, std::nullopt, b,
                                                std::nullopt, hierarchy);
      const double opt_base = lab.corun_self_cycles(a, kFuncAffinity, b,
                                                    std::nullopt, hierarchy);
      const double opt_opt = lab.corun_self_cycles(a, kFuncAffinity, b,
                                                   kFuncAffinity, hierarchy);
      rows.push_back(Sec3FRow{.program = a,
                              .peer = b,
                              .opt_base_speedup = base / opt_base,
                              .opt_opt_speedup = base / opt_opt});
    }
  }
  return rows;
}

}  // namespace codelayout
