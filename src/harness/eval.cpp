#include "harness/eval.hpp"

#include <functional>

namespace codelayout {
namespace {

/// 0 for the original layout, 1..4 for the four optimizers.
std::size_t optimizer_code(const std::optional<Optimizer>& optimizer) {
  if (!optimizer) return 0;
  return 1 + (static_cast<std::size_t>(optimizer->model) << 1) +
         static_cast<std::size_t>(optimizer->granularity);
}

void mix(std::size_t& h, std::size_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

}  // namespace

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kPrepare: return "prepare";
    case Stage::kLayout: return "layout";
    case Stage::kSolo: return "solo";
    case Stage::kCorun: return "corun";
  }
  return "?";
}

std::string EvalKey::to_string() const {
  std::string out = workload;
  out += '|';
  out += optimizer ? optimizer->name() : "Original";
  if (peer) {
    out += "|vs|";
    out += *peer;
    out += '|';
    out += peer_optimizer ? peer_optimizer->name() : "Original";
  }
  out += measure == Measure::kHardware ? "|hw" : "|sim";
  if (hierarchy != HierarchySpec{}) {
    out += "|g=";
    out += hierarchy.to_string();
  }
  return out;
}

std::size_t EvalKeyHash::operator()(const EvalKey& key) const noexcept {
  std::size_t h = std::hash<std::string>{}(key.workload);
  mix(h, optimizer_code(key.optimizer));
  mix(h, key.peer ? std::hash<std::string>{}(*key.peer) + 1 : 0);
  mix(h, optimizer_code(key.peer_optimizer));
  mix(h, static_cast<std::size_t>(key.measure));
  mix(h, static_cast<std::size_t>(key.hierarchy.hash()));
  return h;
}

EvalRequest EvalRequest::prepare(std::string workload) {
  EvalRequest out;
  out.stage = Stage::kPrepare;
  out.key.workload = std::move(workload);
  return out;
}

EvalRequest EvalRequest::layout(std::string workload,
                                std::optional<Optimizer> optimizer) {
  EvalRequest out;
  out.stage = Stage::kLayout;
  out.key.workload = std::move(workload);
  out.key.optimizer = optimizer;
  return out;
}

EvalRequest EvalRequest::solo(std::string workload,
                              std::optional<Optimizer> optimizer,
                              Measure measure, HierarchySpec hierarchy) {
  EvalRequest out;
  out.stage = Stage::kSolo;
  out.key.workload = std::move(workload);
  out.key.optimizer = optimizer;
  out.key.measure = measure;
  out.key.hierarchy = std::move(hierarchy);
  return out;
}

EvalRequest EvalRequest::corun(std::string self,
                               std::optional<Optimizer> self_opt,
                               std::string peer,
                               std::optional<Optimizer> peer_opt,
                               Measure measure, HierarchySpec hierarchy) {
  EvalRequest out;
  out.stage = Stage::kCorun;
  out.key.workload = std::move(self);
  out.key.optimizer = self_opt;
  out.key.peer = std::move(peer);
  out.key.peer_optimizer = peer_opt;
  out.key.measure = measure;
  out.key.hierarchy = std::move(hierarchy);
  return out;
}

}  // namespace codelayout
