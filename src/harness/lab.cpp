#include "harness/lab.hpp"

#include <algorithm>
#include <exception>
#include <future>

#include "support/check.hpp"
#include "support/registry.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout {
namespace {

/// Span/histogram label for the optimizer slot of an EvalKey.
std::string opt_label(const std::optional<Optimizer>& optimizer) {
  return optimizer ? optimizer->name() : "Original";
}

const char* measure_label(Measure measure) {
  return measure == Measure::kHardware ? "hw" : "sim";
}

void stage_json(JsonWriter& json, const char* name,
                const StageSnapshot& stage) {
  json.begin_object(name)
      .field("computed", stage.computed)
      .field("hits", stage.hits)
      .field("waited", stage.waited)
      .field("wall_ms", static_cast<double>(stage.wall_nanos) / 1e6)
      .field("cpu_ms", static_cast<double>(stage.cpu_nanos) / 1e6)
      .end_object();
}

}  // namespace

std::uint64_t LabMetrics::tasks_executed() const {
  return prepare.computed + layout.computed + solo.computed + corun.computed;
}

std::uint64_t LabMetrics::tasks_deduplicated() const {
  return prepare.hits + prepare.waited + layout.hits + layout.waited +
         solo.hits + solo.waited + corun.hits + corun.waited;
}

std::string LabMetrics::to_json(std::string_view bench) const {
  JsonWriter json;
  if (!bench.empty()) json.field("bench", bench);
  json.begin_object("engine")
      .field("threads", threads)
      .field("batches", batches)
      .field("requests_submitted", requests_submitted)
      .field("tasks_executed", tasks_executed())
      .field("tasks_deduplicated", tasks_deduplicated())
      .field("engine_wall_ms",
             static_cast<double>(engine_wall_nanos) / 1e6);
  json.begin_object("stages");
  stage_json(json, "prepare", prepare);
  stage_json(json, "layout", layout);
  stage_json(json, "solo", solo);
  stage_json(json, "corun", corun);
  return json.finish();
}

Lab::Lab(LabOptions options) : options_(std::move(options)) {
  options_.validate();
  threads_ = options_.resolved_threads();
}

ThreadPool& Lab::pool() {
  std::call_once(pool_once_,
                 [this] { pool_ = std::make_unique<ThreadPool>(threads_); });
  return *pool_;
}

StageCounters* Lab::counters(Stage stage) {
  if (!options_.metrics()) return nullptr;
  switch (stage) {
    case Stage::kPrepare: return &prepare_counters_;
    case Stage::kLayout: return &layout_counters_;
    case Stage::kSolo: return &solo_counters_;
    case Stage::kCorun: return &corun_counters_;
  }
  return nullptr;
}

SimOptions Lab::sim_options(Measure measure,
                            const HierarchySpec& hierarchy) const {
  SimOptions options = measure == Measure::kHardware ? hardware_proxy_options()
                                                     : SimOptions{};
  options.hierarchy = hierarchy;
  options.dispatch = options_.pipeline().dispatch;
  return options;
}

void Lab::execute(const EvalRequest& request) {
  const EvalKey& key = request.key;
  switch (request.stage) {
    case Stage::kPrepare:
      (void)workload(key.workload);
      return;
    case Stage::kLayout:
      (void)layout(key.workload, key.optimizer);
      return;
    case Stage::kSolo:
      (void)solo(key.workload, key.optimizer, key.measure, key.hierarchy);
      return;
    case Stage::kCorun:
      CL_CHECK_MSG(key.peer.has_value(),
                   "co-run request without a peer: " << key.to_string());
      (void)corun(key.workload, key.optimizer, *key.peer, key.peer_optimizer,
                  key.measure, key.hierarchy);
      return;
  }
  CL_CHECK_MSG(false, "unknown evaluation stage");
}

std::vector<std::exception_ptr> Lab::run_batch(
    std::span<const EvalRequest> requests) {
  CODELAYOUT_PHASE("evaluate_all", "lab", "lab.evaluate_all.wall_ns",
                   {"requests", std::uint64_t{requests.size()}});
  const std::uint64_t wall0 = wall_nanos_now();
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_submitted_.fetch_add(requests.size(), std::memory_order_relaxed);

  std::vector<std::exception_ptr> errors(requests.size());
  if (threads_ <= 1) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      try {
        execute(requests[i]);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    std::vector<std::future<void>> futures;
    futures.reserve(requests.size());
    for (const EvalRequest& request : requests) {
      futures.push_back(
          pool().submit([this, request] { execute(request); }));
    }
    // Settle the whole batch before surfacing any failure, so no task is
    // left running against a caller that already unwound.
    for (std::size_t i = 0; i < futures.size(); ++i) {
      try {
        futures[i].get();
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  }
  engine_wall_nanos_.fetch_add(wall_nanos_now() - wall0,
                               std::memory_order_relaxed);
  return errors;
}

void Lab::evaluate_all(std::span<const EvalRequest> requests) {
  for (std::exception_ptr& error : run_batch(requests)) {
    if (error) std::rethrow_exception(error);
  }
}

std::vector<EvalOutcome> Lab::evaluate_all_checked(
    std::span<const EvalRequest> requests) {
  const std::vector<std::exception_ptr> errors = run_batch(requests);
  std::vector<EvalOutcome> outcomes(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    outcomes[i].request = requests[i];
    if (!errors[i]) continue;
    outcomes[i].status = CellStatus::kFailed;
    try {
      std::rethrow_exception(errors[i]);
    } catch (const std::exception& e) {
      outcomes[i].error = e.what();
    } catch (...) {
      outcomes[i].error = "unknown error";
    }
  }
  return outcomes;
}

void Lab::prepare_all(const std::vector<std::string>& names) {
  std::vector<EvalRequest> requests;
  requests.reserve(names.size());
  for (const std::string& name : names) {
    requests.push_back(EvalRequest::prepare(name));
  }
  evaluate_all(requests);
}

const PreparedWorkload& Lab::workload(const std::string& name) {
  const EvalKey key = EvalRequest::prepare(name).key;
  return workloads_.get_or_compute(key, counters(Stage::kPrepare), [&] {
    CODELAYOUT_PHASE("prepare", "lab", "lab.prepare.wall_ns",
                     {"workload", name});
    return prepare_workload(find_spec(name), options_.pipeline());
  });
}

const CodeLayout& Lab::layout(const std::string& name,
                              std::optional<Optimizer> optimizer) {
  const PreparedWorkload& prepared = workload(name);
  if (!optimizer) return prepared.original;

  const EvalKey key = EvalRequest::layout(name, optimizer).key;
  return layouts_.get_or_compute(key, counters(Stage::kLayout), [&] {
    CODELAYOUT_PHASE("layout", "lab", "lab.layout.wall_ns",
                     {"workload", name}, {"optimizer", opt_label(optimizer)});
    // Fan the analysis kernels out over the engine pool. This is safe even
    // though this memo compute may itself be running *on* that pool: the
    // analysis layer uses help-first task sets (see support/parallel.hpp),
    // so its progress never depends on a queued helper being scheduled.
    PipelineConfig pipeline = options_.pipeline();
    if (threads_ > 1 && pipeline.analysis_pool == nullptr) {
      pipeline.analysis_pool = &pool();
    }
    return optimize_layout(prepared, *optimizer, pipeline);
  });
}

const FetchPlan& Lab::fetch_plan(const std::string& name,
                                 std::optional<Optimizer> optimizer) {
  return fetch_plan(name, optimizer, kL1I.line_bytes);
}

const FetchPlan& Lab::fetch_plan(const std::string& name,
                                 std::optional<Optimizer> optimizer,
                                 std::uint32_t line_bytes) {
  // Keyed like the layout stage plus the line size the plan was built for
  // (recorded via the key's hierarchy slot): the plan is a pure function of
  // (layout, line size), constant across both measurement flavours, and a
  // geometry sweep at a different line size gets its own cell instead of a
  // stale plan.
  EvalKey key = EvalRequest::layout(name, optimizer).key;
  key.hierarchy.l1.line_bytes = line_bytes;
  bool computed = false;
  const FetchPlan& plan =
      plans_.get_or_compute(key, /*counters=*/nullptr, [&] {
        computed = true;
        const PreparedWorkload& prepared = workload(name);
        const CodeLayout& lay = layout(name, optimizer);
        return FetchPlan(prepared.module, lay, line_bytes);
      });
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter(computed ? "cache.fetch_plan.misses"
                              : "cache.fetch_plan.hits")
        .add(1);
  }
  return plan;
}

const SoloProfile& Lab::solo_profile(const std::string& name,
                                     std::optional<Optimizer> optimizer) {
  return solo_profile(name, optimizer, kL1I.line_bytes);
}

const SoloProfile& Lab::solo_profile(const std::string& name,
                                     std::optional<Optimizer> optimizer,
                                     std::uint32_t line_bytes) {
  // Keyed like fetch plans: the profile is a pure function of (layout, line
  // size), independent of measurement flavour (the model sees the bare
  // fetch stream), so one cell serves every pairing the predictor screens.
  EvalKey key = EvalRequest::layout(name, optimizer).key;
  key.hierarchy.l1.line_bytes = line_bytes;
  bool computed = false;
  const SoloProfile& profile =
      profiles_.get_or_compute(key, /*counters=*/nullptr, [&] {
        computed = true;
        CODELAYOUT_PHASE("solo_profile", "lab", "lab.solo_profile.wall_ns",
                         {"workload", name},
                         {"optimizer", opt_label(optimizer)});
        const PreparedWorkload& prepared = workload(name);
        const FetchPlan& plan = fetch_plan(name, optimizer, line_bytes);
        return build_solo_profile(name, plan, prepared.eval_blocks,
                                  prepared.spec.data_stall_cpi, line_bytes);
      });
  if (!computed) {
    if (CostCounters* cost = current_job_context().cost) {
      cost->predict_profile_hits.fetch_add(1, std::memory_order_relaxed);
    }
  }
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter(computed ? "perfmodel.predict.profile_builds"
                              : "perfmodel.predict.profile_memo_hits")
        .add(1);
  }
  return profile;
}

CorunPrediction Lab::predict_corun(const std::string& self_name,
                                   std::optional<Optimizer> self_opt,
                                   const std::string& peer_name,
                                   std::optional<Optimizer> peer_opt,
                                   const HierarchySpec& hierarchy) {
  const SoloProfile& self =
      solo_profile(self_name, self_opt, hierarchy.l1.line_bytes);
  const SoloProfile& peer =
      solo_profile(peer_name, peer_opt, hierarchy.l1.line_bytes);
  return codelayout::predict_corun(self, peer, hierarchy, options_.perf());
}

const SimResult& Lab::solo(const std::string& name,
                           std::optional<Optimizer> optimizer, Measure measure,
                           const HierarchySpec& hierarchy) {
  const EvalKey key =
      EvalRequest::solo(name, optimizer, measure, hierarchy).key;
  return solos_.get_or_compute(key, counters(Stage::kSolo), [&] {
    CODELAYOUT_PHASE("solo", "lab", "lab.solo.wall_ns", {"workload", name},
                     {"optimizer", opt_label(optimizer)},
                     {"measure", measure_label(measure)});
    const PreparedWorkload& prepared = workload(name);
    const FetchPlan& plan =
        fetch_plan(name, optimizer, key.hierarchy.l1.line_bytes);
    return simulate_solo(plan, prepared.eval_blocks,
                         sim_options(measure, key.hierarchy));
  });
}

const CorunResult& Lab::corun(const std::string& self_name,
                              std::optional<Optimizer> self_opt,
                              const std::string& peer_name,
                              std::optional<Optimizer> peer_opt,
                              Measure measure,
                              const HierarchySpec& hierarchy) {
  const EvalKey key = EvalRequest::corun(self_name, self_opt, peer_name,
                                         peer_opt, measure, hierarchy)
                          .key;
  return coruns_.get_or_compute(key, counters(Stage::kCorun), [&] {
    CODELAYOUT_PHASE("corun", "lab", "lab.corun.wall_ns",
                     {"workload", self_name},
                     {"optimizer", opt_label(self_opt)}, {"peer", peer_name},
                     {"peer_optimizer", opt_label(peer_opt)},
                     {"measure", measure_label(measure)});
    const PreparedWorkload& self = workload(self_name);
    const PreparedWorkload& peer = workload(peer_name);
    const FetchPlan& self_plan =
        fetch_plan(self_name, self_opt, key.hierarchy.l1.line_bytes);
    const FetchPlan& peer_plan =
        fetch_plan(peer_name, peer_opt, key.hierarchy.l1.line_bytes);
    // SMT threads progress inversely to their CPIs: a data-stalled self sees
    // a proportionally faster peer fetch stream.
    const double self_cpi =
        options_.perf().base_cpi + self.spec.data_stall_cpi;
    const double peer_cpi =
        options_.perf().base_cpi + peer.spec.data_stall_cpi;
    const double peer_speed = std::clamp(self_cpi / peer_cpi, 0.25, 4.0);
    CorunResult result = simulate_corun(
        self_plan, self.eval_blocks, peer_plan, peer.eval_blocks,
        sim_options(measure, key.hierarchy), peer_speed);
    MetricsRegistry& registry = MetricsRegistry::global();
    if (registry.enabled()) {
      // Per-pair collapse coverage, so bench --metrics-out dumps show which
      // workload pairs the run-aware fast path actually engages on.
      const std::string pair = self_name + "|" + peer_name;
      registry.counter("lab.corun.rounds_fast." + pair)
          .add(result.stats.rounds_fast);
      registry.counter("lab.corun.rounds_fallback." + pair)
          .add(result.stats.rounds_fallback);
    }
    return result;
  });
}

double Lab::solo_cycles(const std::string& name,
                        std::optional<Optimizer> optimizer,
                        const HierarchySpec& hierarchy) {
  const SimResult& sim = solo(name, optimizer, Measure::kHardware, hierarchy);
  return codelayout::solo_cycles(sim, workload(name).spec.data_stall_cpi,
                                 options_.perf(), hierarchy);
}

double Lab::corun_self_cycles(const std::string& self_name,
                              std::optional<Optimizer> self_opt,
                              const std::string& peer_name,
                              std::optional<Optimizer> peer_opt,
                              const HierarchySpec& hierarchy) {
  const CorunResult& result = corun(self_name, self_opt, peer_name, peer_opt,
                                    Measure::kHardware, hierarchy);
  return corun_cycles(result.self, result.self.instructions,
                      workload(self_name).spec.data_stall_cpi,
                      options_.perf(), hierarchy);
}

bool Lab::bb_reordering_supported(const std::string& name) {
  // The paper's BB-reordering compiler erred on these two (Sec. III-A);
  // their BB entries are reported as N/A, which we reproduce.
  return name != "400.perlbench" && name != "453.povray";
}

LabMetrics Lab::metrics() const {
  LabMetrics out;
  out.threads = threads_;
  out.prepare = StageSnapshot::from(prepare_counters_);
  out.layout = StageSnapshot::from(layout_counters_);
  out.solo = StageSnapshot::from(solo_counters_);
  out.corun = StageSnapshot::from(corun_counters_);
  out.batches = batches_.load(std::memory_order_relaxed);
  out.requests_submitted =
      requests_submitted_.load(std::memory_order_relaxed);
  out.engine_wall_nanos = engine_wall_nanos_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace codelayout
