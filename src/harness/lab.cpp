#include "harness/lab.hpp"

#include <atomic>
#include <thread>

#include "support/check.hpp"

namespace codelayout {

Lab::Lab(PipelineConfig pipeline, PerfParams perf)
    : pipeline_(std::move(pipeline)), perf_(perf) {}

std::string Lab::opt_key(std::optional<Optimizer> optimizer) {
  return optimizer ? optimizer->name() : "Original";
}

SimOptions Lab::sim_options(Measure measure) const {
  return measure == Measure::kHardware ? hardware_proxy_options()
                                       : SimOptions{};
}

void Lab::prepare_all(const std::vector<std::string>& names) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t workers = std::min<std::size_t>(hw, names.size());
  if (workers <= 1) {
    for (const auto& name : names) (void)workload(name);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < names.size();
           i = next.fetch_add(1)) {
        (void)workload(names[i]);
      }
    });
  }
  for (auto& th : pool) th.join();
}

const PreparedWorkload& Lab::workload(const std::string& name) {
  {
    std::scoped_lock lock(mutex_);
    const auto it = workloads_.find(name);
    if (it != workloads_.end()) return *it->second;
  }
  auto prepared = std::make_unique<PreparedWorkload>(
      prepare_workload(find_spec(name), pipeline_));
  std::scoped_lock lock(mutex_);
  const auto [it, inserted] = workloads_.try_emplace(name, std::move(prepared));
  return *it->second;
}

const CodeLayout& Lab::layout(const std::string& name,
                              std::optional<Optimizer> optimizer) {
  const PreparedWorkload& prepared = workload(name);
  if (!optimizer) return prepared.original;

  const std::string key = name + "|" + opt_key(optimizer);
  {
    std::scoped_lock lock(mutex_);
    const auto it = layouts_.find(key);
    if (it != layouts_.end()) return *it->second;
  }
  auto computed = std::make_unique<CodeLayout>(
      optimize_layout(prepared, *optimizer, pipeline_));
  std::scoped_lock lock(mutex_);
  const auto [it, inserted] = layouts_.try_emplace(key, std::move(computed));
  return *it->second;
}

const SimResult& Lab::solo(const std::string& name,
                           std::optional<Optimizer> optimizer,
                           Measure measure) {
  const std::string key =
      name + "|" + opt_key(optimizer) +
      (measure == Measure::kHardware ? "|hw" : "|sim");
  {
    std::scoped_lock lock(mutex_);
    const auto it = solos_.find(key);
    if (it != solos_.end()) return *it->second;
  }
  const PreparedWorkload& prepared = workload(name);
  const CodeLayout& lay = layout(name, optimizer);
  auto result = std::make_unique<SimResult>(simulate_solo(
      prepared.module, lay, prepared.eval_blocks, sim_options(measure)));
  std::scoped_lock lock(mutex_);
  const auto [it, inserted] = solos_.try_emplace(key, std::move(result));
  return *it->second;
}

const CorunResult& Lab::corun(const std::string& self_name,
                              std::optional<Optimizer> self_opt,
                              const std::string& peer_name,
                              std::optional<Optimizer> peer_opt,
                              Measure measure) {
  const std::string key = self_name + "|" + opt_key(self_opt) + "|vs|" +
                          peer_name + "|" + opt_key(peer_opt) +
                          (measure == Measure::kHardware ? "|hw" : "|sim");
  {
    std::scoped_lock lock(mutex_);
    const auto it = coruns_.find(key);
    if (it != coruns_.end()) return *it->second;
  }
  const PreparedWorkload& self = workload(self_name);
  const PreparedWorkload& peer = workload(peer_name);
  const CodeLayout& self_lay = layout(self_name, self_opt);
  const CodeLayout& peer_lay = layout(peer_name, peer_opt);
  // SMT threads progress inversely to their CPIs: a data-stalled self sees a
  // proportionally faster peer fetch stream.
  const double self_cpi = perf_.base_cpi + self.spec.data_stall_cpi;
  const double peer_cpi = perf_.base_cpi + peer.spec.data_stall_cpi;
  const double peer_speed = std::clamp(self_cpi / peer_cpi, 0.25, 4.0);
  auto result = std::make_unique<CorunResult>(simulate_corun(
      self.module, self_lay, self.eval_blocks, peer.module, peer_lay,
      peer.eval_blocks, sim_options(measure), peer_speed));
  std::scoped_lock lock(mutex_);
  const auto [it, inserted] = coruns_.try_emplace(key, std::move(result));
  return *it->second;
}

double Lab::solo_cycles(const std::string& name,
                        std::optional<Optimizer> optimizer) {
  const SimResult& sim = solo(name, optimizer, Measure::kHardware);
  return codelayout::solo_cycles(sim, workload(name).spec.data_stall_cpi,
                                 perf_);
}

double Lab::corun_self_cycles(const std::string& self_name,
                              std::optional<Optimizer> self_opt,
                              const std::string& peer_name,
                              std::optional<Optimizer> peer_opt) {
  const CorunResult& result =
      corun(self_name, self_opt, peer_name, peer_opt, Measure::kHardware);
  return corun_cycles(result.self, result.self.instructions,
                      workload(self_name).spec.data_stall_cpi, perf_);
}

bool Lab::bb_reordering_supported(const std::string& name) {
  // The paper's BB-reordering compiler erred on these two (Sec. III-A);
  // their BB entries are reported as N/A, which we reproduce.
  return name != "400.perlbench" && name != "453.povray";
}

}  // namespace codelayout
