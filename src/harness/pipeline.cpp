#include "harness/pipeline.hpp"

#include "affinity/analysis.hpp"
#include "support/trace_recorder.hpp"
#include "trg/graph.hpp"
#include "trg/reduction.hpp"

namespace codelayout {

std::string Optimizer::name() const {
  std::string out =
      granularity == Granularity::kFunction ? "Function " : "BB ";
  out += model == ModelKind::kAffinity ? "Affinity" : "TRG";
  return out;
}

PreparedWorkload prepare_workload(const WorkloadSpec& spec,
                                  const PipelineConfig& config) {
  Module module = build_workload(spec);

  // Profiling run ("test input"), then pruning per Sec. II-F.
  ExecLimits profile_limits{.max_events = spec.profile_events,
                            .max_call_depth = 64};
  ProfileResult profile = [&] {
    CODELAYOUT_PHASE("profile", "pipeline", "pipeline.profile.wall_ns",
                     {"workload", spec.name});
    return codelayout::profile(module, config.profile_seed, profile_limits);
  }();
  PruneResult pruned = [&] {
    CODELAYOUT_PHASE("prune", "pipeline", "pipeline.prune.wall_ns",
                     {"workload", spec.name});
    return prune_to_hot(profile.block_trace, config.prune_top_k);
  }();

  // The function trace is projected from the *unpruned* block trace, then
  // pruned to the same budget in function space.
  Trace functions = [&] {
    CODELAYOUT_PHASE("project_functions", "pipeline",
                     "pipeline.project_functions.wall_ns",
                     {"workload", spec.name});
    return project_to_functions(profile.block_trace, module);
  }();
  PruneResult pruned_funcs = prune_to_hot(functions, config.prune_top_k);

  // Evaluation run ("reference input"): different seed, longer.
  ExecLimits eval_limits{.max_events = spec.eval_events, .max_call_depth = 64};
  ProfileResult eval = [&] {
    CODELAYOUT_PHASE("eval_profile", "pipeline",
                     "pipeline.eval_profile.wall_ns",
                     {"workload", spec.name});
    return codelayout::profile(module, config.eval_seed, eval_limits);
  }();

  CodeLayout original = original_layout(module);
  return PreparedWorkload{.spec = spec,
                          .module = std::move(module),
                          .profile_blocks = std::move(pruned.trace),
                          .profile_functions = std::move(pruned_funcs.trace),
                          .prune_kept_fraction = pruned.kept_fraction(),
                          .eval_blocks = std::move(eval.block_trace),
                          .eval_instructions = eval.dynamic_instructions,
                          .original = std::move(original)};
}

std::vector<Symbol> model_sequence(const PreparedWorkload& prepared,
                                   Optimizer optimizer,
                                   const PipelineConfig& config) {
  const Trace& trace = optimizer.granularity == Granularity::kFunction
                           ? prepared.profile_functions
                           : prepared.profile_blocks;
  if (optimizer.model == ModelKind::kAffinity) {
    CODELAYOUT_PHASE("affinity_build", "pipeline",
                     "pipeline.affinity_build.wall_ns",
                     {"granularity", optimizer.granularity ==
                                             Granularity::kFunction
                                         ? "function"
                                         : "block"});
    AffinityConfig affinity = config.affinity;
    if (affinity.pool == nullptr) affinity.pool = config.analysis_pool;
    affinity.dispatch = config.dispatch;
    return analyze_affinity(trace, affinity).layout_order();
  }
  const std::uint32_t assumed_bytes =
      optimizer.granularity == Granularity::kFunction
          ? config.trg_function_bytes
          : config.trg_block_bytes;
  TrgConfig trg_config{
      .window_entries = trg_window_entries(config.trg_cache_bytes,
                                           assumed_bytes),
      .pool = config.analysis_pool,
      .dispatch = config.dispatch};
  const Trg graph = [&] {
    CODELAYOUT_PHASE("trg_build", "pipeline", "pipeline.trg_build.wall_ns",
                     {"window", trg_config.window_entries});
    return Trg::build(trace, trg_config);
  }();
  const std::uint32_t slots =
      trg_slot_count(config.trg_cache_bytes, /*assoc=*/4, /*line_bytes=*/64,
                     assumed_bytes);
  CODELAYOUT_PHASE("trg_reduce", "pipeline", "pipeline.trg_reduce.wall_ns",
                   {"slots", slots});
  return reduce_trg(graph, slots).order;
}

CodeLayout optimize_layout(const PreparedWorkload& prepared,
                           Optimizer optimizer,
                           const PipelineConfig& config) {
  const std::vector<Symbol> sequence =
      model_sequence(prepared, optimizer, config);
  if (optimizer.granularity == Granularity::kFunction) {
    return function_reordering(prepared.module, sequence);
  }
  return bb_reordering(prepared.module, sequence);
}

}  // namespace codelayout
