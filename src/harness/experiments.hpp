// Experiment drivers: one function per paper table/figure, returning
// structured rows. The bench binaries render these; integration tests assert
// their invariants (who wins, directions, rough factors).
//
// Each driver submits its full table/figure workload to the Lab's parallel
// evaluation engine up front (Lab::evaluate_all) and then assembles rows
// from the warm memo in the fixed reporting order — so rows are identical
// at any thread count.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/lab.hpp"

namespace codelayout {

// ---- E0: the introduction table -------------------------------------------
struct IntroTable {
  std::vector<std::string> programs;  ///< the non-trivial-miss programs
  double avg_solo;
  double avg_corun1;  ///< vs gcc
  double avg_corun2;  ///< vs gamess
  [[nodiscard]] double increase1() const { return avg_corun1 / avg_solo - 1; }
  [[nodiscard]] double increase2() const { return avg_corun2 / avg_solo - 1; }
};
IntroTable intro_table(Lab& lab, double nontrivial_threshold = 0.005,
                       const HierarchySpec& hierarchy = {});

// ---- E1: Fig. 4 -------------------------------------------------------------
struct Fig4Row {
  std::string name;
  double solo;
  double probe_gcc;
  double probe_gamess;
};
std::vector<Fig4Row> fig4_rows(Lab& lab, const HierarchySpec& hierarchy = {});

// ---- E2: Table I -------------------------------------------------------------
struct Table1Row {
  std::string name;
  std::uint64_t dynamic_instructions;
  std::uint64_t static_bytes;
  double solo;
  double corun_gcc;
  double corun_gamess;
};
std::vector<Table1Row> table1_rows(Lab& lab,
                                   const HierarchySpec& hierarchy = {});

// ---- E3: Fig. 5 (solo effect of the affinity optimizers) -------------------
struct Fig5Row {
  std::string name;
  bool bb_supported;
  double func_speedup;
  double func_miss_reduction;  ///< hw-counted
  double bb_speedup;           ///< 0 when !bb_supported
  double bb_miss_reduction;
};
std::vector<Fig5Row> fig5_rows(Lab& lab, const HierarchySpec& hierarchy = {});

// ---- E4: Table II (average co-run effect of three optimizers) --------------
struct Table2Cell {
  bool available = true;
  double speedup = 1.0;
  double miss_reduction_hw = 0.0;
  double miss_reduction_sim = 0.0;
};
struct Table2Row {
  std::string name;
  Table2Cell func_affinity;
  Table2Cell bb_affinity;
  Table2Cell func_trg;
};
std::vector<Table2Row> table2_rows(Lab& lab,
                                   const HierarchySpec& hierarchy = {});

// ---- E5: Fig. 6 (per-pairing co-run speedups) -------------------------------
struct Fig6Cell {
  std::string program;
  std::string probe;
  double speedup;
};
std::vector<Fig6Cell> fig6_cells(Lab& lab, Optimizer optimizer,
                                 const HierarchySpec& hierarchy = {});

// ---- E6: Fig. 7 (hyper-threading throughput) --------------------------------
struct Fig7Pair {
  std::string a;
  std::string b;
  double baseline_improvement;   ///< co-run over solo, baseline layouts
  double optimized_improvement;  ///< with function-affinity layouts
  /// The paper's "magnifying effect": optimized gain over baseline gain.
  [[nodiscard]] double magnification() const {
    return baseline_improvement > 0
               ? optimized_improvement / baseline_improvement - 1.0
               : 0.0;
  }
};
std::vector<Fig7Pair> fig7_pairs(Lab& lab,
                                 const HierarchySpec& hierarchy = {});
/// The 7 programs of Fig. 7 (the selected 8 minus gobmk).
const std::vector<std::string>& fig7_programs();

// ---- E7: Sec. III-F (defensiveness + politeness combined) -------------------
struct Sec3FRow {
  std::string program;
  std::string peer;
  double opt_base_speedup;  ///< optimized+baseline vs baseline+baseline
  double opt_opt_speedup;   ///< optimized+optimized vs baseline+baseline
};
std::vector<Sec3FRow> sec3f_rows(Lab& lab, std::size_t top_n = 3,
                                 const HierarchySpec& hierarchy = {});

/// Top-N programs by average function-affinity co-run speedup.
std::vector<std::string> top_improving_programs(
    Lab& lab, std::size_t n, const HierarchySpec& hierarchy = {});

}  // namespace codelayout
