// End-to-end optimization pipeline (paper Sec. II-F "System Implementation").
//
// For a workload: build the module, run the test input to profile a trace,
// prune it to the hot set, feed one of the two locality models at one of the
// two granularities, and apply the matching transformation — yielding the
// four optimizers of the paper (function/BB x affinity/TRG). Evaluation
// replays a longer "reference input" trace against the produced layout.
#pragma once

#include <cstdint>
#include <string>

#include "affinity/analysis.hpp"
#include "exec/interpreter.hpp"
#include "layout/layout.hpp"
#include "trace/prune.hpp"
#include "workloads/spec.hpp"

namespace codelayout {

class ThreadPool;

enum class ModelKind { kAffinity, kTrg };
enum class Granularity { kFunction, kBlock };

struct Optimizer {
  ModelKind model;
  Granularity granularity;

  [[nodiscard]] std::string name() const;
  friend bool operator==(Optimizer, Optimizer) = default;
  friend auto operator<=>(Optimizer, Optimizer) = default;
};

inline constexpr Optimizer kFuncAffinity{ModelKind::kAffinity,
                                         Granularity::kFunction};
inline constexpr Optimizer kBBAffinity{ModelKind::kAffinity,
                                       Granularity::kBlock};
inline constexpr Optimizer kFuncTrg{ModelKind::kTrg, Granularity::kFunction};
inline constexpr Optimizer kBBTrg{ModelKind::kTrg, Granularity::kBlock};

/// All four, in the paper's reporting order.
inline constexpr Optimizer kAllOptimizers[] = {kFuncAffinity, kBBAffinity,
                                               kFuncTrg, kBBTrg};

struct PipelineConfig {
  /// Trace pruning: keep the top-K most frequent blocks (Sec. II-F). The
  /// paper keeps 10,000 at SPEC scale (hundreds of thousands of static
  /// blocks); our workloads are ~20x smaller, so the proportional budget
  /// still "keeps over 90% of the original trace" while cutting the
  /// once-executed cold tail out of the layout's hot section.
  std::size_t prune_top_k = 4'000;
  AffinityConfig affinity;
  /// TRG window/slots derive from the cache size and the uniform-size
  /// assumption (Sec. II-C): the window examines 2C bytes of footprint.
  std::uint64_t trg_cache_bytes = 32 * 1024;
  std::uint32_t trg_block_bytes = 64;    ///< assumed basic-block size
  std::uint32_t trg_function_bytes = 512;  ///< assumed function size
  std::uint64_t profile_seed = 101;  ///< "test" input
  std::uint64_t eval_seed = 707;     ///< "reference" input
  /// Optional shared worker pool for the analysis kernels: fans the affinity
  /// w-grid and the TRG build shards out while the calling thread
  /// participates. Non-owning; nullptr = serial. Model outputs are
  /// bit-identical either way (the parallel decompositions are exact).
  ThreadPool* analysis_pool = nullptr;
  /// Kernel path selection (run-aware vs straight-line; trace/dispatch.hpp),
  /// copied into every model and simulator config this pipeline drives.
  /// Outputs are bit-identical on either path.
  AnalysisDispatch dispatch{};
};

struct PreparedWorkload {
  WorkloadSpec spec;
  Module module;
  /// Pruned + trimmed profile traces feeding the models.
  Trace profile_blocks{Trace::Granularity::kBlock};
  Trace profile_functions{Trace::Granularity::kFunction};
  double prune_kept_fraction = 1.0;
  /// Reference-input trace for evaluation (unpruned).
  Trace eval_blocks{Trace::Granularity::kBlock};
  std::uint64_t eval_instructions = 0;
  CodeLayout original;
};

/// Runs the profiling front half of the pipeline.
PreparedWorkload prepare_workload(const WorkloadSpec& spec,
                                  const PipelineConfig& config = {});

/// Runs one locality model and returns the reordered symbol sequence
/// (FuncId values for function granularity, BlockId values for block).
std::vector<Symbol> model_sequence(const PreparedWorkload& prepared,
                                   Optimizer optimizer,
                                   const PipelineConfig& config = {});

/// Model + transformation: the optimized layout.
CodeLayout optimize_layout(const PreparedWorkload& prepared,
                           Optimizer optimizer,
                           const PipelineConfig& config = {});

}  // namespace codelayout
