#include "ir/module.hpp"

#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace codelayout {

const Function& Module::function(FuncId id) const {
  CL_CHECK_MSG(id.valid() && id.index() < functions_.size(),
               "bad FuncId " << id.value);
  return functions_[id.index()];
}

Function& Module::function(FuncId id) {
  CL_CHECK_MSG(id.valid() && id.index() < functions_.size(),
               "bad FuncId " << id.value);
  return functions_[id.index()];
}

const BasicBlock& Module::block(BlockId id) const {
  CL_CHECK_MSG(id.valid() && id.index() < blocks_.size(),
               "bad BlockId " << id.value);
  return blocks_[id.index()];
}

BasicBlock& Module::block(BlockId id) {
  CL_CHECK_MSG(id.valid() && id.index() < blocks_.size(),
               "bad BlockId " << id.value);
  return blocks_[id.index()];
}

void Module::set_entry_function(FuncId f) {
  CL_CHECK(f.valid() && f.index() < functions_.size());
  entry_ = f;
}

std::optional<FuncId> Module::find_function(std::string_view name) const {
  for (const auto& f : functions_) {
    if (f.name == name) return f.id;
  }
  return std::nullopt;
}

std::uint64_t Module::static_bytes() const {
  std::uint64_t total = 0;
  for (const auto& b : blocks_) total += b.size_bytes;
  return total;
}

FuncId Module::add_function(std::string name) {
  const FuncId id(static_cast<std::uint32_t>(functions_.size()));
  functions_.push_back(Function{.id = id,
                                .name = std::move(name),
                                .entry = BlockId{},
                                .blocks = {}});
  if (!entry_.valid()) entry_ = id;
  return id;
}

BlockId Module::add_block(FuncId parent, std::uint32_t size_bytes,
                          std::string label) {
  Function& f = function(parent);
  const BlockId id(static_cast<std::uint32_t>(blocks_.size()));
  if (label.empty()) {
    label = f.name + ".bb" + std::to_string(f.blocks.size());
  }
  blocks_.push_back(BasicBlock{.id = id,
                               .parent = parent,
                               .size_bytes = size_bytes,
                               .successors = {},
                               .calls = {},
                               .label = std::move(label),
                               .has_fallthrough = false});
  f.blocks.push_back(id);
  if (!f.entry.valid()) f.entry = id;
  return id;
}

void Module::add_edge(BlockId from, BlockId to, double probability,
                      bool fallthrough) {
  BasicBlock& b = block(from);
  CL_CHECK_MSG(block(to).parent == b.parent,
               "edge crosses functions: " << b.label << " -> "
                                          << block(to).label);
  CL_CHECK_MSG(probability > 0.0 && probability <= 1.0,
               "edge probability " << probability);
  if (fallthrough) {
    CL_CHECK_MSG(!b.has_fallthrough, "block " << b.label
                                              << " already has a fallthrough");
    b.successors.insert(b.successors.begin(), CfgEdge{to, probability});
    b.has_fallthrough = true;
  } else {
    b.successors.push_back(CfgEdge{to, probability});
  }
}

void Module::add_call(BlockId from, FuncId callee, double probability) {
  CL_CHECK(probability > 0.0 && probability <= 1.0);
  (void)function(callee);  // bounds check
  block(from).calls.push_back(CallSite{callee, probability});
}

void Module::validate() const {
  CL_CHECK_MSG(entry_.valid(), "module has no entry function");
  CL_CHECK_MSG(!functions_.empty(), "module has no functions");
  for (const auto& f : functions_) {
    CL_CHECK_MSG(!f.blocks.empty(), "function " << f.name << " has no blocks");
    CL_CHECK_MSG(f.entry.valid(), "function " << f.name << " has no entry");
    CL_CHECK_MSG(f.blocks.front() == f.entry,
                 "function " << f.name << " entry is not its first block");
    for (BlockId bid : f.blocks) {
      const BasicBlock& b = block(bid);
      CL_CHECK_MSG(b.parent == f.id,
                   "block " << b.label << " parent mismatch in " << f.name);
      CL_CHECK_MSG(b.size_bytes >= kInstrBytes,
                   "block " << b.label << " is empty");
      CL_CHECK_MSG(b.size_bytes % kInstrBytes == 0,
                   "block " << b.label << " size not instruction-aligned");
      if (!b.successors.empty()) {
        double sum = 0.0;
        for (const CfgEdge& e : b.successors) {
          CL_CHECK_MSG(block(e.target).parent == f.id,
                       "edge out of " << b.label << " leaves " << f.name);
          sum += e.probability;
        }
        CL_CHECK_MSG(std::fabs(sum - 1.0) < 1e-6,
                     "edge probabilities of " << b.label << " sum to " << sum);
      }
      for (const CallSite& c : b.calls) {
        CL_CHECK_MSG(c.callee.valid() && c.callee.index() < functions_.size(),
                     "call in " << b.label << " targets bad function");
      }
    }
  }
}

std::string Module::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << name_ << "\" {\n  node [shape=box];\n";
  for (const auto& f : functions_) {
    os << "  subgraph cluster_" << f.id.value << " {\n    label=\"" << f.name
       << "\";\n";
    for (BlockId bid : f.blocks) {
      const BasicBlock& b = block(bid);
      os << "    b" << bid.value << " [label=\"" << b.label << "\\n"
         << b.size_bytes << "B\"];\n";
    }
    os << "  }\n";
  }
  for (const auto& b : blocks_) {
    for (const CfgEdge& e : b.successors) {
      os << "  b" << b.id.value << " -> b" << e.target.value << " [label=\""
         << e.probability << "\"];\n";
    }
    for (const CallSite& c : b.calls) {
      os << "  b" << b.id.value << " -> b"
         << function(c.callee).entry.value
         << " [style=dashed, color=blue];\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace codelayout
