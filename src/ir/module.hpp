// The program model: a Module of Functions made of BasicBlocks.
//
// This is the substrate that stands in for LLVM IR. A block carries a byte
// size, probabilistic control-flow successors, and an ordered list of call
// sites. The model is rich enough for (a) a deterministic interpreter to
// produce dynamic block/function traces and (b) the layout transformations to
// assign addresses and account for added trampolines and jump fix-ups.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ir/ids.hpp"

namespace codelayout {

/// Architectural constants of the modeled ISA.
inline constexpr std::uint32_t kInstrBytes = 4;   // fixed-width instructions
inline constexpr std::uint32_t kJumpBytes = 4;    // one unconditional jump

/// A probabilistic control-flow edge out of a block.
struct CfgEdge {
  BlockId target;       ///< successor block (same function)
  double probability;   ///< taken with this probability; edges sum to 1
};

/// A call site inside a block, executed (in order) each time the block runs.
struct CallSite {
  FuncId callee;
  double probability = 1.0;  ///< conditional call when < 1
};

/// A basic block: straight-line code of `size_bytes`, then calls, then the
/// terminator (the CFG edges). A block with no successors returns.
struct BasicBlock {
  BlockId id;
  FuncId parent;
  std::uint32_t size_bytes = 0;
  std::vector<CfgEdge> successors;
  std::vector<CallSite> calls;
  std::string label;

  /// In the source layout, successors[0] is the fall-through successor when
  /// `has_fallthrough` — it reaches the next block without an explicit jump.
  bool has_fallthrough = false;

  [[nodiscard]] std::uint32_t instructions() const {
    return size_bytes / kInstrBytes;
  }
  [[nodiscard]] bool is_return() const { return successors.empty(); }
};

/// A function: a contiguous group of blocks with a designated entry.
struct Function {
  FuncId id;
  std::string name;
  BlockId entry;
  std::vector<BlockId> blocks;  ///< source order; entry is blocks.front()

  [[nodiscard]] std::size_t block_count() const { return blocks.size(); }
};

/// A whole program. Blocks and functions are stored densely; ids index them.
class Module {
 public:
  Module() = default;
  explicit Module(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  [[nodiscard]] std::size_t function_count() const { return functions_.size(); }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }

  [[nodiscard]] const Function& function(FuncId id) const;
  [[nodiscard]] const BasicBlock& block(BlockId id) const;
  [[nodiscard]] Function& function(FuncId id);
  [[nodiscard]] BasicBlock& block(BlockId id);

  [[nodiscard]] std::span<const Function> functions() const {
    return functions_;
  }
  [[nodiscard]] std::span<const BasicBlock> blocks() const { return blocks_; }

  /// The designated program entry function ("main").
  [[nodiscard]] FuncId entry_function() const { return entry_; }
  void set_entry_function(FuncId f);

  /// Looks a function up by name; nullopt when absent.
  [[nodiscard]] std::optional<FuncId> find_function(std::string_view name) const;

  /// Total static code size in bytes (blocks only, no layout overhead).
  [[nodiscard]] std::uint64_t static_bytes() const;

  /// Appends an empty function; returns its id.
  FuncId add_function(std::string name);

  /// Appends a block to `parent`; the first block becomes the entry.
  BlockId add_block(FuncId parent, std::uint32_t size_bytes,
                    std::string label = {});

  /// Adds a CFG edge `from -> to` taken with `probability`.
  void add_edge(BlockId from, BlockId to, double probability,
                bool fallthrough = false);

  /// Adds a call site to `from` invoking `callee` with `probability`.
  void add_call(BlockId from, FuncId callee, double probability = 1.0);

  /// Verifies structural invariants; throws ContractError with a description
  /// of the first violation. Checks: entry set and valid, edge targets stay
  /// within the parent function, probabilities in (0,1] summing to ~1 per
  /// block, call targets valid, non-zero block sizes, labels unique enough.
  void validate() const;

  /// GraphViz dump of the CFG + call graph (debugging aid).
  [[nodiscard]] std::string to_dot() const;

 private:
  std::string name_;
  std::vector<Function> functions_;
  std::vector<BasicBlock> blocks_;
  FuncId entry_;
};

}  // namespace codelayout
