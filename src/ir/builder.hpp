// Fluent construction helpers for Module.
//
// The generator, examples and tests all build CFGs from a small set of
// shapes: straight-line chains, if/else diamonds, loops, and switch fans.
// FunctionBuilder provides those shapes on top of the raw Module API and
// guarantees the result validates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace codelayout {

class ModuleBuilder;

/// Builds one function; blocks are appended in source order so the "original"
/// layout of the paper corresponds to construction order.
class FunctionBuilder {
 public:
  FunctionBuilder(ModuleBuilder& parent, FuncId func);

  [[nodiscard]] FuncId id() const { return func_; }

  /// Appends a block of `size_bytes`; does not connect it.
  BlockId block(std::uint32_t size_bytes, std::string label = {});

  /// `from` falls through to `to` unconditionally.
  FunctionBuilder& jump(BlockId from, BlockId to, bool fallthrough = true);

  /// Two-way branch: `taken_prob` to `taken`, rest falls through to `fall`.
  FunctionBuilder& branch(BlockId from, BlockId taken, BlockId fall,
                          double taken_prob);

  /// N-way dispatch with the given weights (normalized internally).
  FunctionBuilder& fan(BlockId from, const std::vector<BlockId>& targets,
                       const std::vector<double>& weights);

  /// Loop back-edge: from `latch` to `head` with probability `back_prob`;
  /// the exit edge (1 - back_prob) goes to `exit`.
  FunctionBuilder& loop(BlockId latch, BlockId head, BlockId exit,
                        double back_prob);

  /// Call site inside `from`.
  FunctionBuilder& call(BlockId from, FuncId callee, double probability = 1.0);

  /// Convenience: appends a chain of `n` blocks of `size_bytes` each,
  /// connected by fall-through edges; returns the block ids.
  std::vector<BlockId> chain(std::size_t n, std::uint32_t size_bytes);

 private:
  ModuleBuilder& parent_;
  FuncId func_;
};

/// Owns a Module while it is being constructed.
class ModuleBuilder {
 public:
  explicit ModuleBuilder(std::string name) : module_(std::move(name)) {}

  FunctionBuilder function(std::string name);

  [[nodiscard]] Module& module() { return module_; }

  /// Validates and returns the finished module.
  Module build() &&;

 private:
  friend class FunctionBuilder;
  Module module_;
};

}  // namespace codelayout
