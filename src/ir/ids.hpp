// Strong identifier types for IR entities.
//
// Blocks and functions are numbered densely per Module; the ids double as
// indices into the module's storage vectors and as trace symbols.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>

namespace codelayout {

namespace detail {

template <typename Tag>
struct StrongId {
  using underlying = std::uint32_t;
  static constexpr underlying kInvalidValue =
      std::numeric_limits<underlying>::max();

  underlying value = kInvalidValue;

  constexpr StrongId() = default;
  constexpr explicit StrongId(underlying v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalidValue; }
  [[nodiscard]] constexpr std::size_t index() const { return value; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;
};

}  // namespace detail

struct BlockTag {};
struct FuncTag {};

/// Identifies a basic block within a Module (dense, module-global).
using BlockId = detail::StrongId<BlockTag>;
/// Identifies a function within a Module (dense).
using FuncId = detail::StrongId<FuncTag>;

}  // namespace codelayout

template <>
struct std::hash<codelayout::BlockId> {
  std::size_t operator()(codelayout::BlockId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<codelayout::FuncId> {
  std::size_t operator()(codelayout::FuncId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
