#include "ir/builder.hpp"

#include "support/check.hpp"

namespace codelayout {

FunctionBuilder::FunctionBuilder(ModuleBuilder& parent, FuncId func)
    : parent_(parent), func_(func) {}

BlockId FunctionBuilder::block(std::uint32_t size_bytes, std::string label) {
  return parent_.module_.add_block(func_, size_bytes, std::move(label));
}

FunctionBuilder& FunctionBuilder::jump(BlockId from, BlockId to,
                                       bool fallthrough) {
  parent_.module_.add_edge(from, to, 1.0, fallthrough);
  return *this;
}

FunctionBuilder& FunctionBuilder::branch(BlockId from, BlockId taken,
                                         BlockId fall, double taken_prob) {
  CL_CHECK(taken_prob > 0.0 && taken_prob < 1.0);
  parent_.module_.add_edge(from, fall, 1.0 - taken_prob, /*fallthrough=*/true);
  parent_.module_.add_edge(from, taken, taken_prob);
  return *this;
}

FunctionBuilder& FunctionBuilder::fan(BlockId from,
                                      const std::vector<BlockId>& targets,
                                      const std::vector<double>& weights) {
  CL_CHECK(!targets.empty());
  CL_CHECK(targets.size() == weights.size());
  double total = 0.0;
  for (double w : weights) {
    CL_CHECK(w > 0.0);
    total += w;
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    parent_.module_.add_edge(from, targets[i], weights[i] / total,
                             /*fallthrough=*/i == 0);
  }
  return *this;
}

FunctionBuilder& FunctionBuilder::loop(BlockId latch, BlockId head,
                                       BlockId exit, double back_prob) {
  CL_CHECK(back_prob > 0.0 && back_prob < 1.0);
  parent_.module_.add_edge(latch, exit, 1.0 - back_prob, /*fallthrough=*/true);
  parent_.module_.add_edge(latch, head, back_prob);
  return *this;
}

FunctionBuilder& FunctionBuilder::call(BlockId from, FuncId callee,
                                       double probability) {
  parent_.module_.add_call(from, callee, probability);
  return *this;
}

std::vector<BlockId> FunctionBuilder::chain(std::size_t n,
                                            std::uint32_t size_bytes) {
  CL_CHECK(n > 0);
  std::vector<BlockId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(block(size_bytes));
  for (std::size_t i = 0; i + 1 < n; ++i) jump(ids[i], ids[i + 1]);
  return ids;
}

FunctionBuilder ModuleBuilder::function(std::string name) {
  const FuncId id = module_.add_function(std::move(name));
  return FunctionBuilder(*this, id);
}

Module ModuleBuilder::build() && {
  module_.validate();
  return std::move(module_);
}

}  // namespace codelayout
