// Versioned wire schema of the layout-optimization service.
//
// A job names an optimization-pipeline product the daemon can compute — a
// solo or co-run miss-ratio simulation, an optimized layout, or statistics
// over an uploaded trace — and maps directly onto the Lab's typed
// EvalKey/EvalRequest surface. Requests and responses travel as framed
// messages:
//
//   [magic u32][version u16][type u8][reserved u8][payload_len u32][payload]
//
// with a little-endian fixed header and a varint-encoded payload (strings
// are length-prefixed, doubles travel as IEEE-754 bit patterns so responses
// are byte-deterministic, and an uploaded trace embeds the trace/io varint
// v2 stream verbatim). Decoding is hardened the same way trace/io is: bad
// magic, unsupported version, truncated or over-long payloads, out-of-range
// enums, and trailing garbage all throw ContractError instead of
// propagating garbage into the engine.
//
// Versioning: kWireVersion stamps every frame; a server rejects frames it
// does not speak with JobStatus::kError naming both versions. Fields are
// only ever appended to the payloads, so a vN+1 decoder reads vN payloads:
// the payload decoders take the frame's version and stop before the fields
// that version did not carry (absent fields decode to their defaults).
// Frames inside [kMinWireVersion, kWireVersion] are accepted.
//
// v1 -> v2: the request grew a trailing hierarchy field (the canonical
// HierarchySpec encoding, length-prefixed; absent = the paper's flat L1I)
// and each SimResult grew trailing l2_probes/l2_misses varints.
//
// v2 -> v3 (observability): the request grew trailing trace_id/span_id
// varints (client-assigned trace context, 0 = none) plus an IntrospectKind
// byte, and a new JobKind::kIntrospect reads the daemon's live state without
// touching the worker queues. The response grew a trailing CostReceipt (per
// -job cost attribution) and a length-prefixed introspection document.
// Responses to v1/v2 requests are still stamped with the *request's* wire
// version and omit every v3 field, so old clients see byte-identical frames.
//
// v3 -> v4 (adaptive dispatch): the CostReceipt grew trailing
// dispatch_run/dispatch_flat varints (kernel-path decisions the job's
// analyses made; see trace/dispatch.hpp) and a run_compression double (the
// events-per-run ratio of the dispatched traces — what the decisions were
// based on). The request payload is unchanged, so v4 cache keys equal v3
// keys; responses to <= v3 requests omit the fields byte-for-byte.
//
// v4 -> v5 (co-scheduling): a new JobKind::kCoSchedule runs the analytic
// co-scheduler (perfmodel/scheduler.hpp) over the request's `parties` as a
// candidate pool. The request grew trailing slots/verify_top_k varints, the
// response a CoScheduleResult (chosen pairs, unpaired programs, predictor
// objective, verified-pair indices — the bit-exact results of the verified
// pairs ride in `results`, two directional SimResults per pair), and the
// CostReceipt trailing predict_calls/profile_memo_hits varints (closed-form
// predictor work attribution). Responses to <= v4 requests are
// byte-identical to a v4 build's.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/icache_sim.hpp"
#include "harness/eval.hpp"
#include "harness/pipeline.hpp"
#include "trace/trace.hpp"

namespace codelayout::service {

inline constexpr std::uint32_t kWireMagic = 0x434c5356;  // "CLSV"
inline constexpr std::uint16_t kWireVersion = 5;
/// Oldest version this build still decodes (append-only payload evolution).
inline constexpr std::uint16_t kMinWireVersion = 1;
/// Admission-time cap on one frame's payload (a full varint trace fits
/// comfortably; a hostile length field does not get to allocate gigabytes).
inline constexpr std::uint32_t kMaxPayloadBytes = 64u << 20;

enum class FrameType : std::uint8_t { kRequest = 0, kResponse = 1 };

enum class JobKind : std::uint8_t {
  kSolo = 0,        ///< solo miss ratio of (workload, optimizer, measure)
  kLayout = 1,      ///< optimized-layout summary of (workload, optimizer)
  kCorun = 2,       ///< N-party shared-cache co-run over `parties`
  kTraceStats = 3,  ///< statistics of the uploaded varint trace
  kIntrospect = 4,  ///< v3: live daemon state; never queued, never cached
  kCoSchedule = 5,  ///< v5: predictor-driven pairing of `parties` onto slots
};

/// What a kIntrospect job reads. Served inline on the submitting thread —
/// snapshots work even while every worker is saturated or the daemon is
/// draining.
enum class IntrospectKind : std::uint8_t {
  kStats = 0,        ///< JSON: queue/cache/job counters + uptime
  kHealth = 1,       ///< JSON: {"status":"ok"|"draining",...} liveness probe
  kMetricsJson = 2,  ///< MetricsRegistry::to_json() (empty when disabled)
  kPrometheus = 3,   ///< MetricsRegistry::dump_prometheus() text exposition
  kRecentJobs = 4,   ///< JSON: {"recent":[...]} last completed, newest first
  kTraceExport = 5,  ///< daemon-side Chrome trace JSON (absolute timestamps)
};

/// Queue class, highest first; FIFO within a class.
enum class JobPriority : std::uint8_t {
  kBatch = 0,
  kNormal = 1,
  kInteractive = 2,
};

enum class JobStatus : std::uint8_t {
  kOk = 0,
  kError = 1,         ///< the job itself failed; see `error`
  kRejected = 2,      ///< admission control: bounded queue full
  kShuttingDown = 3,  ///< server is draining; job was not admitted
};

[[nodiscard]] const char* job_kind_name(JobKind kind);
[[nodiscard]] const char* job_status_name(JobStatus status);
[[nodiscard]] const char* introspect_kind_name(IntrospectKind kind);

/// One co-runner of a kCorun job — the wire shape of a CorunSpec party:
/// the (workload, optimizer) pair resolves to a memoized fetch plan
/// server-side, `speed` is relative to party 0 (see CorunSpec).
struct CorunPartyRequest {
  std::string workload;
  std::optional<Optimizer> optimizer;
  double speed = 1.0;

  friend bool operator==(const CorunPartyRequest&,
                         const CorunPartyRequest&) = default;
};

struct JobRequest {
  std::uint64_t id = 0;  ///< client-chosen correlation id, echoed back
  JobPriority priority = JobPriority::kNormal;
  JobKind kind = JobKind::kSolo;
  Measure measure = Measure::kHardware;
  std::string workload;                ///< kSolo / kLayout
  std::optional<Optimizer> optimizer;  ///< kSolo / kLayout
  /// kCorun: parties[0] measured. kCoSchedule (v5): the candidate program
  /// pool the scheduler pairs onto `slots` (speed fields ignored).
  std::vector<CorunPartyRequest> parties;
  /// kCorun: when true (the default), party speeds are derived from the
  /// workloads' CPIs exactly like Lab::corun (SMT threads progress inversely
  /// to their CPIs) and the wire `speed` fields are ignored; service-path
  /// pair results are then byte-identical to the in-process engine.
  bool cpi_speeds = true;
  /// kTraceStats payload (embedded as a trace/io varint stream).
  Trace trace{Trace::Granularity::kBlock};
  /// Cache shape for kSolo / kCorun jobs (v2+). The default is the paper's
  /// flat L1I, which is also what a v1 request decodes to.
  HierarchySpec hierarchy{};
  /// v3 trace context: a client-assigned correlation pair. 0 = no context.
  /// The daemon tags every span it records for this job with the trace id,
  /// so a merged client+daemon Perfetto export joins on it. Normalized away
  /// in canonical_key(): tracing never perturbs response caching.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  /// v3: what a kIntrospect job reads (ignored for other kinds).
  IntrospectKind introspect = IntrospectKind::kStats;
  /// v5 kCoSchedule: SMT pair slots to assign `parties` onto (required) and
  /// how many of the costliest chosen pairs to verify with the bit-exact
  /// co-run simulator (0 = predictions only).
  std::uint64_t slots = 0;
  std::uint64_t verify_top_k = 0;

  friend bool operator==(const JobRequest&, const JobRequest&) = default;

  /// Serialized body with id zeroed and priority normalized — what two
  /// requests for the same work share; the response cache keys on it.
  [[nodiscard]] std::string canonical_key() const;
  /// "solo 403.gcc|BB Affinity|hw" — for logs and errors. A non-default
  /// hierarchy appends "|g=<spec>".
  [[nodiscard]] std::string to_string() const;
};

/// kLayout response payload: the layout's size accounting plus an FNV-1a
/// checksum of the placed block order (enough to pin byte-identity without
/// shipping the whole placement table).
struct LayoutSummary {
  std::uint64_t blocks = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t overhead_bytes = 0;
  std::uint32_t fixups = 0;
  std::uint64_t order_checksum = 0;

  friend bool operator==(const LayoutSummary&, const LayoutSummary&) = default;
};

/// kTraceStats response payload.
struct TraceStatsResult {
  std::uint64_t events = 0;
  std::uint64_t runs = 0;
  std::uint64_t distinct_symbols = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a over the run decomposition

  friend bool operator==(const TraceStatsResult&,
                         const TraceStatsResult&) = default;
};

/// v3 per-job cost attribution, stamped on every response the daemon sends
/// to a v3 client: where the job's time and simulated work went. For a
/// response served from the daemon's cache, `cached` is true, the counts are
/// the original computation's, and the timing fields are zero (the cache
/// lookup itself is effectively free).
struct CostReceipt {
  std::uint64_t events = 0;           ///< instructions + overhead simulated
  std::uint64_t rounds_fast = 0;      ///< co-run rounds collapsed arithmetically
  std::uint64_t rounds_fallback = 0;  ///< co-run rounds replayed per event
  std::uint64_t cache_probes = 0;     ///< L1I line probes across all results
  std::uint64_t l2_probes = 0;        ///< shared-L2 demand probes
  std::uint64_t memo_hits = 0;        ///< Lab memo cells served cached
  std::uint64_t memo_misses = 0;      ///< Lab memo cells computed for this job
  std::uint64_t bytes_decoded = 0;    ///< request payload bytes
  std::uint64_t queue_wait_nanos = 0;
  std::uint64_t wall_nanos = 0;       ///< execute wall time (0 when cached)
  bool cached = false;
  /// v4: adaptive-dispatch decisions the job's analysis kernels made
  /// (trace/dispatch.hpp) — how many chose the run-aware vs the
  /// straight-line path.
  std::uint64_t dispatch_run = 0;
  std::uint64_t dispatch_flat = 0;
  /// v4: events-per-run ratio aggregated over the dispatched traces (the
  /// number the decisions compared against kernel thresholds); 0 when the
  /// job dispatched nothing.
  double run_compression = 0.0;
  /// v5: closed-form predictor attribution — predict_corun evaluations this
  /// job ran, and solo-profile memo lookups served without a kernel pass.
  std::uint64_t predict_calls = 0;
  std::uint64_t profile_memo_hits = 0;

  friend bool operator==(const CostReceipt&, const CostReceipt&) = default;
};

/// v5 kCoSchedule response payload: the chosen assignment plus the
/// predictor's objective. Pair members are indices into the request's
/// `parties`. The bit-exact simulations of the verified pairs ride in
/// JobResponse::results — two directional SimResults per entry of
/// `verified` (measured-vs-wrapping both ways), in `verified` order.
struct CoScheduleResult {
  struct Pair {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    double predicted_misses = 0.0;

    friend bool operator==(const Pair&, const Pair&) = default;
  };
  std::vector<Pair> pairs;              ///< sorted by first index
  std::vector<std::uint64_t> unpaired;  ///< ascending party indices
  double predicted_total_misses = 0.0;
  std::uint32_t refine_passes = 0;
  std::vector<std::uint64_t> verified;  ///< indices into pairs, cost-desc

  friend bool operator==(const CoScheduleResult&,
                         const CoScheduleResult&) = default;
};

struct JobResponse {
  std::uint64_t id = 0;
  JobStatus status = JobStatus::kOk;
  std::string error;  ///< non-empty iff status != kOk
  /// kSolo: exactly one entry; kCorun: one per party, in party order.
  std::vector<SimResult> results;
  LayoutSummary layout;          ///< kLayout
  TraceStatsResult trace_stats;  ///< kTraceStats
  CostReceipt receipt;           ///< v3: cost attribution (all-zero on v1/v2)
  std::string introspect;        ///< v3: kIntrospect document (JSON or text)
  CoScheduleResult schedule;     ///< v5: kCoSchedule assignment

  friend bool operator==(const JobResponse&, const JobResponse&) = default;
};

// ---- Payload codecs ---------------------------------------------------------

/// `version` selects the payload schema: fields introduced after it are not
/// written, so a v2-encoded response is byte-identical to what a v2 build
/// produced. The server answers every request in the request's own version.
[[nodiscard]] std::string encode_request_payload(
    const JobRequest& request, std::uint16_t version = kWireVersion);
[[nodiscard]] std::string encode_response_payload(
    const JobResponse& response, std::uint16_t version = kWireVersion);

/// Throw ContractError on any malformed payload (truncation, varint
/// overflow, enum out of range, embedded-trace corruption, trailing bytes).
/// `version` is the frame header's wire version: decoders stop before the
/// fields that version did not carry, so v1 payloads decode with the new
/// fields at their defaults.
[[nodiscard]] JobRequest decode_request_payload(
    std::string_view payload, std::uint16_t version = kWireVersion);
[[nodiscard]] JobResponse decode_response_payload(
    std::string_view payload, std::uint16_t version = kWireVersion);

// ---- Framing ----------------------------------------------------------------

inline constexpr std::size_t kFrameHeaderBytes = 12;

struct FrameHeader {
  std::uint16_t version = kWireVersion;
  FrameType type = FrameType::kRequest;
  std::uint32_t payload_len = 0;
};

/// Packs/unpacks the fixed 12-byte header. decode_frame_header validates
/// magic, version, type, and the payload-length cap.
void encode_frame_header(const FrameHeader& header, char out[kFrameHeaderBytes]);
[[nodiscard]] FrameHeader decode_frame_header(const char in[kFrameHeaderBytes]);

/// Header + payload in one buffer, ready for a socket write. `version`
/// stamps the header and selects the payload schema.
[[nodiscard]] std::string encode_request_frame(
    const JobRequest& request, std::uint16_t version = kWireVersion);
[[nodiscard]] std::string encode_response_frame(
    const JobResponse& response, std::uint16_t version = kWireVersion);

}  // namespace codelayout::service
