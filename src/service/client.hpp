// Client side of the service protocol: a blocking one-job-at-a-time
// connection, plus the multi-client load generator behind bench_service and
// the CI smoke job.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "support/registry.hpp"

namespace codelayout::service {

/// One connection to the daemon. call() writes a request frame and blocks
/// for the matching response; use one client per thread (the connection
/// carries one job at a time).
class ServiceClient {
 public:
  /// Throws ContractError when the socket cannot be reached.
  static ServiceClient connect_unix(const std::string& path);
  /// Adopts an already-connected stream fd (tests use socketpair()).
  explicit ServiceClient(int fd) : fd_(fd) {}
  ~ServiceClient();

  ServiceClient(ServiceClient&& other) noexcept;
  ServiceClient& operator=(ServiceClient&& other) noexcept;
  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Round-trips one job. Throws ContractError on a broken connection or a
  /// malformed/mismatched response frame.
  ///
  /// Trace propagation: when the local flight recorder is enabled and the
  /// request carries no trace context, call() assigns a fresh trace id,
  /// records a client-side "service_call" span tagged with it, and sends the
  /// id to the daemon — so a merged client+daemon Perfetto export shows the
  /// whole job joined on one trace id.
  [[nodiscard]] JobResponse call(const JobRequest& request);

  /// Convenience kIntrospect round-trip (interactive priority, served inline
  /// by the daemon). Returns the introspection document; throws
  /// ContractError when the daemon answers with an error.
  [[nodiscard]] std::string introspect(IntrospectKind kind);

 private:
  [[nodiscard]] JobResponse roundtrip(const JobRequest& request);

  int fd_ = -1;
};

// ---- Load generator ---------------------------------------------------------

struct LoadGenOptions {
  std::string socket_path;
  /// Concurrent clients, each on its own connection and thread.
  unsigned clients = 4;
  unsigned jobs_per_client = 32;
  /// The job mix, cycled round-robin per client. Ids are stamped by the
  /// generator (client index in the high half, sequence in the low).
  std::vector<JobRequest> mix;
};

struct LoadGenReport {
  std::uint64_t jobs = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t rejected = 0;       ///< kRejected + kShuttingDown
  double wall_seconds = 0.0;
  double jobs_per_sec = 0.0;
  /// Client-observed per-job round-trip latency (includes queueing).
  LatencyHistogram::Summary latency;
  /// CostReceipts summed over every kOk response: where the daemon's time
  /// and simulated work went. All-zero against a pre-v3 daemon.
  struct Cost {
    std::uint64_t events = 0;
    std::uint64_t rounds_fast = 0;
    std::uint64_t rounds_fallback = 0;
    std::uint64_t cache_probes = 0;
    std::uint64_t l2_probes = 0;
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_misses = 0;
    std::uint64_t bytes_decoded = 0;
    std::uint64_t queue_wait_nanos = 0;
    std::uint64_t wall_nanos = 0;
    std::uint64_t cached_jobs = 0;  ///< responses served from the cache
    /// v4: adaptive-dispatch decisions summed over every kOk response.
    std::uint64_t dispatch_run = 0;
    std::uint64_t dispatch_flat = 0;
    /// v5: closed-form predictor work summed over every kOk response.
    std::uint64_t predict_calls = 0;
    std::uint64_t profile_memo_hits = 0;
  } cost;
};

/// Drives the daemon with `clients` concurrent connections and returns the
/// aggregate throughput/latency report. Latencies are also recorded into the
/// global registry histogram "service.client.job_ns" when metrics are
/// enabled. Throws ContractError when the mix is empty or a connection
/// cannot be established.
LoadGenReport run_load_generator(const LoadGenOptions& options);

}  // namespace codelayout::service
