#include "service/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <future>
#include <utility>

#include "perfmodel/scheduler.hpp"
#include "support/check.hpp"
#include "support/metrics.hpp"
#include "support/registry.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout::service {
namespace {

std::uint64_t now_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// FNV-1a over the little-endian bytes of each 64-bit word — the same
// construction the golden-equivalence suite uses, so layout/trace checksums
// are stable, deterministic fingerprints rather than full payloads.
constexpr std::uint64_t kFnvSeed = 14695981039346656037ull;

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

JobResponse error_response(const JobRequest& request, std::string message) {
  JobResponse response;
  response.id = request.id;
  response.status = JobStatus::kError;
  response.error = std::move(message);
  return response;
}

void bump(const char* name) {
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) registry.counter(name).add(1);
}

// ---- Socket IO helpers ------------------------------------------------------

bool read_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r == 0) return false;  // orderly EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

// ---- LabExecutor ------------------------------------------------------------

LabExecutor::LabExecutor(LabOptions options) : lab_(std::move(options)) {}

JobResponse LabExecutor::execute(const JobRequest& request) {
  try {
    return run(request);
  } catch (const std::exception& e) {
    return error_response(request, e.what());
  }
}

JobResponse LabExecutor::run(const JobRequest& request) {
  JobResponse response;
  response.id = request.id;

  switch (request.kind) {
    case JobKind::kSolo: {
      if (request.workload.empty()) {
        return error_response(request, "solo job needs a workload");
      }
      const EvalRequest cell =
          EvalRequest::solo(request.workload, request.optimizer,
                            request.measure, request.hierarchy);
      const std::vector<EvalOutcome> outcomes =
          lab_.evaluate_all_checked({&cell, 1});
      if (!outcomes[0].ok()) return error_response(request, outcomes[0].error);
      response.results.push_back(lab_.solo(request.workload, request.optimizer,
                                           request.measure,
                                           request.hierarchy));
      return response;
    }

    case JobKind::kLayout: {
      if (request.workload.empty()) {
        return error_response(request, "layout job needs a workload");
      }
      const EvalRequest cell =
          EvalRequest::layout(request.workload, request.optimizer);
      const std::vector<EvalOutcome> outcomes =
          lab_.evaluate_all_checked({&cell, 1});
      if (!outcomes[0].ok()) return error_response(request, outcomes[0].error);
      const CodeLayout& layout =
          lab_.layout(request.workload, request.optimizer);
      response.layout.blocks = layout.block_order().size();
      response.layout.total_bytes = layout.total_bytes();
      response.layout.overhead_bytes = layout.overhead_bytes();
      response.layout.fixups = layout.fixup_count();
      std::uint64_t h = fnv1a(kFnvSeed, layout.block_order().size());
      for (const BlockId b : layout.block_order()) h = fnv1a(h, b.value);
      response.layout.order_checksum = h;
      return response;
    }

    case JobKind::kCorun: {
      if (request.parties.size() < 2) {
        return error_response(request, "corun job needs >= 2 parties");
      }
      for (const CorunPartyRequest& party : request.parties) {
        if (party.workload.empty()) {
          return error_response(request, "corun party needs a workload");
        }
        if (!request.cpi_speeds &&
            !(std::isfinite(party.speed) && party.speed > 0.0)) {
          return error_response(request, "corun party speed must be finite "
                                         "and positive");
        }
      }
      if (!request.cpi_speeds && request.parties[0].speed != 1.0) {
        return error_response(
            request, "the measured party (parties[0]) defines the speed "
                     "unit; its speed must be 1.0");
      }

      // The canonical pair under CPI-derived speeds is exactly a Lab co-run
      // cell: route it through Lab::corun so service responses are
      // byte-identical to the in-process engine (pinned by the golden
      // round-trip test).
      if (request.cpi_speeds && request.parties.size() == 2) {
        const EvalRequest cell = EvalRequest::corun(
            request.parties[0].workload, request.parties[0].optimizer,
            request.parties[1].workload, request.parties[1].optimizer,
            request.measure, request.hierarchy);
        const std::vector<EvalOutcome> outcomes =
            lab_.evaluate_all_checked({&cell, 1});
        if (!outcomes[0].ok()) {
          return error_response(request, outcomes[0].error);
        }
        const CorunResult& result = lab_.corun(
            request.parties[0].workload, request.parties[0].optimizer,
            request.parties[1].workload, request.parties[1].optimizer,
            request.measure, request.hierarchy);
        response.results = {result.self, result.peer};
        response.receipt.rounds_fast = result.stats.rounds_fast;
        response.receipt.rounds_fallback = result.stats.rounds_fallback;
        return response;
      }

      // General N-party path: materialize every party's layout (checked, so
      // one unknown workload fails this job alone), then assemble a
      // CorunSpec over the Lab's memoized fetch plans.
      std::vector<EvalRequest> cells;
      cells.reserve(request.parties.size());
      for (const CorunPartyRequest& party : request.parties) {
        cells.push_back(EvalRequest::layout(party.workload, party.optimizer));
      }
      for (const EvalOutcome& outcome : lab_.evaluate_all_checked(cells)) {
        if (!outcome.ok()) return error_response(request, outcome.error);
      }
      CorunSpec spec;
      spec.options = request.measure == Measure::kHardware
                         ? hardware_proxy_options()
                         : SimOptions{};
      spec.options.hierarchy = request.hierarchy;
      spec.parties.reserve(request.parties.size());
      const double self_cpi =
          lab_.perf().base_cpi +
          lab_.workload(request.parties[0].workload).spec.data_stall_cpi;
      for (std::size_t i = 0; i < request.parties.size(); ++i) {
        const CorunPartyRequest& party = request.parties[i];
        CorunSpec::Party p;
        p.plan = &lab_.fetch_plan(party.workload, party.optimizer,
                                  request.hierarchy.l1.line_bytes);
        p.trace = &lab_.workload(party.workload).eval_blocks;
        if (i == 0) {
          p.speed = 1.0;
        } else if (request.cpi_speeds) {
          // SMT threads progress inversely to their CPIs, clamped exactly
          // like Lab::corun.
          const double party_cpi =
              lab_.perf().base_cpi +
              lab_.workload(party.workload).spec.data_stall_cpi;
          p.speed = std::clamp(self_cpi / party_cpi, 0.25, 4.0);
        } else {
          p.speed = party.speed;
        }
        spec.parties.push_back(p);
      }
      CorunStats corun_stats;
      response.results = simulate_corun(spec, &corun_stats);
      response.receipt.rounds_fast = corun_stats.rounds_fast;
      response.receipt.rounds_fallback = corun_stats.rounds_fallback;
      return response;
    }

    case JobKind::kTraceStats: {
      const Trace& trace = request.trace;
      response.trace_stats.events = trace.size();
      response.trace_stats.runs = trace.run_count();
      response.trace_stats.distinct_symbols = trace.distinct_count();
      std::uint64_t h = fnv1a(kFnvSeed, trace.size());
      h = fnv1a(h, trace.is_block() ? 0 : 1);
      for (const Run& run : trace.runs()) {
        h = fnv1a(h, run.symbol);
        h = fnv1a(h, run.length);
      }
      response.trace_stats.checksum = h;
      return response;
    }

    case JobKind::kIntrospect:
      // Introspection is answered inline by ServiceServer::submit and never
      // reaches an executor; reaching here means a caller bypassed the
      // server.
      return error_response(request,
                            "introspect jobs are served by the daemon, not "
                            "the executor");

    case JobKind::kCoSchedule: {
      if (request.parties.size() < 2) {
        return error_response(request, "co-schedule job needs >= 2 parties");
      }
      for (const CorunPartyRequest& party : request.parties) {
        if (party.workload.empty()) {
          return error_response(request, "co-schedule party needs a workload");
        }
      }
      if (request.slots == 0) {
        return error_response(request, "co-schedule job needs >= 1 slot");
      }

      // Materialize every party's layout up front (checked, so one unknown
      // workload fails this job alone), then build the memoized solo
      // profiles and run the closed-form assignment — no simulation until
      // the verification pass below.
      std::vector<EvalRequest> cells;
      cells.reserve(request.parties.size());
      for (const CorunPartyRequest& party : request.parties) {
        cells.push_back(EvalRequest::layout(party.workload, party.optimizer));
      }
      for (const EvalOutcome& outcome : lab_.evaluate_all_checked(cells)) {
        if (!outcome.ok()) return error_response(request, outcome.error);
      }
      std::vector<const SoloProfile*> profiles;
      profiles.reserve(request.parties.size());
      for (const CorunPartyRequest& party : request.parties) {
        profiles.push_back(&lab_.solo_profile(
            party.workload, party.optimizer, request.hierarchy.l1.line_bytes));
      }
      const PairCostMatrix costs =
          compute_pair_costs(profiles, request.hierarchy, lab_.perf());
      // Infeasible instances (parties > 2 * slots) throw ContractError here;
      // execute() turns that into a kError response with the contract text.
      const ScheduleResult schedule = schedule_corun(costs, request.slots);
      response.schedule.pairs.reserve(schedule.pairs.size());
      for (const SchedulePair& pair : schedule.pairs) {
        response.schedule.pairs.push_back(
            {pair.a, pair.b, pair.predicted_misses});
      }
      response.schedule.unpaired.assign(schedule.unpaired.begin(),
                                        schedule.unpaired.end());
      response.schedule.predicted_total_misses =
          schedule.predicted_total_misses;
      response.schedule.refine_passes = schedule.refine_passes;

      // Verification: replay the k costliest chosen pairs on the bit-exact
      // co-run engine, both directions, via checked cells. results[] holds
      // two SimResults per verified pair (a-vs-b then b-vs-a) in `verified`
      // order — byte-identical to the in-process Lab::corun answers.
      const std::vector<std::size_t> verify =
          top_k_pairs(schedule, request.verify_top_k);
      response.schedule.verified.assign(verify.begin(), verify.end());
      std::vector<EvalRequest> corun_cells;
      corun_cells.reserve(verify.size() * 2);
      for (const std::size_t idx : verify) {
        const SchedulePair& pair = schedule.pairs[idx];
        const CorunPartyRequest& a = request.parties[pair.a];
        const CorunPartyRequest& b = request.parties[pair.b];
        corun_cells.push_back(EvalRequest::corun(a.workload, a.optimizer,
                                                 b.workload, b.optimizer,
                                                 request.measure,
                                                 request.hierarchy));
        corun_cells.push_back(EvalRequest::corun(b.workload, b.optimizer,
                                                 a.workload, a.optimizer,
                                                 request.measure,
                                                 request.hierarchy));
      }
      for (const EvalOutcome& outcome :
           lab_.evaluate_all_checked(corun_cells)) {
        if (!outcome.ok()) return error_response(request, outcome.error);
      }
      for (const std::size_t idx : verify) {
        const SchedulePair& pair = schedule.pairs[idx];
        const CorunPartyRequest& a = request.parties[pair.a];
        const CorunPartyRequest& b = request.parties[pair.b];
        const CorunResult& ab =
            lab_.corun(a.workload, a.optimizer, b.workload, b.optimizer,
                       request.measure, request.hierarchy);
        const CorunResult& ba =
            lab_.corun(b.workload, b.optimizer, a.workload, a.optimizer,
                       request.measure, request.hierarchy);
        response.results.push_back(ab.self);
        response.results.push_back(ba.self);
        response.receipt.rounds_fast += ab.stats.rounds_fast;
        response.receipt.rounds_fast += ba.stats.rounds_fast;
        response.receipt.rounds_fallback += ab.stats.rounds_fallback;
        response.receipt.rounds_fallback += ba.stats.rounds_fallback;
      }
      return response;
    }
  }
  return error_response(request, "unknown job kind");
}

// ---- ServiceServer ----------------------------------------------------------

ServiceServer::ServiceServer(ServerConfig config,
                             std::unique_ptr<JobExecutor> executor)
    : config_(config),
      executor_(std::move(executor)),
      cache_(config.cache),
      start_nanos_(now_nanos()) {
  CL_CHECK_MSG(executor_ != nullptr, "service server needs an executor");
  CL_CHECK_MSG(config_.workers >= 1, "service server needs >= 1 worker");
  CL_CHECK_MSG(config_.queue_depth >= 1,
               "service server needs a queue depth >= 1");
  workers_.reserve(config_.workers);
  for (unsigned i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ServiceServer::~ServiceServer() { shutdown(); }

void ServiceServer::submit(JobRequest request,
                           std::function<void(JobResponse)> deliver,
                           std::uint64_t request_bytes) {
  CL_CHECK_MSG(deliver != nullptr, "submit needs a deliver callback");
  bump("service.jobs.submitted");

  if (request.kind == JobKind::kIntrospect) {
    // Served inline on the submitting thread: no queue, no cache, works
    // while every worker is saturated and while the server is draining.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.submitted;
      ++stats_.introspected;
    }
    bump("service.jobs.introspected");
    JobResponse response = introspect_response(request);
    response.receipt.bytes_decoded = request_bytes;
    deliver(std::move(response));
    return;
  }

  // Admission control under the lock; every deliver call outside it.
  JobResponse inline_response;
  bool respond_inline = false;
  const std::string key =
      config_.cache_enabled ? request.canonical_key() : std::string{};
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (draining_) {
      ++stats_.shutdown_rejected;
      inline_response = error_response(request, "server is shutting down");
      inline_response.status = JobStatus::kShuttingDown;
      respond_inline = true;
    }
  }
  if (!respond_inline && config_.cache_enabled) {
    std::optional<JobResponse> hit;
    {
      // The lookup runs under the request's trace context so its span joins
      // the client's trace in a merged export.
      ScopedJobContext scope(
          JobContext{request.trace_id, request.span_id, nullptr});
      CODELAYOUT_SPAN("cache_lookup", "service", {"id", request.id});
      hit = cache_.lookup(key);
    }
    if (hit) {
      hit->id = request.id;
      // The receipt keeps the original computation's counts; the cache
      // lookup itself consumed no queue time or execute wall time.
      hit->receipt.cached = true;
      hit->receipt.queue_wait_nanos = 0;
      hit->receipt.wall_nanos = 0;
      hit->receipt.bytes_decoded = request_bytes;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.cache_hits;
      }
      push_recent(RecentJob{request.id, request.kind, hit->status,
                            request.trace_id, 0, 0, true,
                            hit->receipt.dispatch_run,
                            hit->receipt.dispatch_flat,
                            hit->receipt.run_compression,
                            hit->receipt.predict_calls,
                            hit->receipt.profile_memo_hits});
      deliver(std::move(*hit));
      return;
    }
  }
  if (!respond_inline) {
    std::unique_lock<std::mutex> lock(mu_);
    // Recheck under the same lock that enqueues: shutdown() may have set
    // draining_ while the cache lookup ran lock-free, and workers exit once
    // the queue is empty — a job enqueued after that point would never run.
    if (draining_) {
      ++stats_.shutdown_rejected;
      inline_response = error_response(request, "server is shutting down");
      inline_response.status = JobStatus::kShuttingDown;
      respond_inline = true;
    } else if (queued_ >= config_.queue_depth) {
      ++stats_.rejected;
      inline_response =
          error_response(request, "job queue is full (depth " +
                                      std::to_string(config_.queue_depth) +
                                      ")");
      inline_response.status = JobStatus::kRejected;
      respond_inline = true;
      bump("service.jobs.rejected");
    } else {
      const auto priority = static_cast<std::size_t>(request.priority);
      queues_[priority].push_back(QueuedJob{std::move(request),
                                            std::move(deliver), now_nanos(),
                                            request_bytes});
      ++queued_;
      stats_.queue_peak = std::max(stats_.queue_peak, queued_);
      lock.unlock();
      work_cv_.notify_one();
      return;
    }
  }
  deliver(std::move(inline_response));
}

JobResponse ServiceServer::call(const JobRequest& request) {
  auto promise = std::make_shared<std::promise<JobResponse>>();
  std::future<JobResponse> future = promise->get_future();
  submit(request, [promise](JobResponse response) {
    promise->set_value(std::move(response));
  });
  return future.get();
}

void ServiceServer::worker_loop() {
  for (;;) {
    QueuedJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return queued_ > 0 || draining_; });
      if (queued_ == 0) return;  // draining and nothing left to run
      // Highest priority class first; FIFO within a class.
      for (int p = 2; p >= 0; --p) {
        if (!queues_[p].empty()) {
          job = std::move(queues_[p].front());
          queues_[p].pop_front();
          break;
        }
      }
      --queued_;
      ++inflight_;
    }
    finish_job(std::move(job));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --inflight_;
    }
    idle_cv_.notify_all();
  }
}

void ServiceServer::finish_job(QueuedJob job) {
  const std::uint64_t start = now_nanos();
  const std::uint64_t queue_wait = start - job.enqueue_nanos;
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.histogram("service.queue.wait_ns").record(queue_wait);
  }
  CostCounters cost;
  JobResponse response;
  {
    // Execute under the request's trace context: every span the job records
    // — down through the Lab's stages and the kernels' fast paths — carries
    // the client-assigned trace id, and the Lab's memo lookups report into
    // `cost`. The accumulator outlives all of the job's pool tasks because
    // the Lab's batch calls block until their tasks finish.
    ScopedJobContext scope(
        JobContext{job.request.trace_id, job.request.span_id, &cost});
    if (TraceRecorder::instance().enabled()) {
      TraceRecorder::instance().record_span("queue-wait", "service",
                                            job.enqueue_nanos, queue_wait,
                                            {SpanArg{"id", job.request.id}});
    }
    CODELAYOUT_SPAN("service_job", "service",
                    {"kind", job_kind_name(job.request.kind)},
                    {"id", job.request.id});
    response = executor_->execute(job.request);
  }
  const std::uint64_t wall = now_nanos() - start;
  if (registry.enabled()) {
    registry.histogram("service.job.wall_ns").record(wall);
    registry.counter("service.jobs.completed").add(1);
  }

  // Cost attribution: simulated-work counts fall out of the results (so the
  // receipt provably matches the SimResults it rides with), memo traffic out
  // of the ambient accumulator, timing out of this function's own clocks.
  // The executor already stamped rounds_fast/rounds_fallback.
  CostReceipt& receipt = response.receipt;
  for (const SimResult& r : response.results) {
    receipt.events += r.instructions + r.overhead_instructions;
    receipt.cache_probes += r.line_probes;
    receipt.l2_probes += r.l2_probes;
  }
  receipt.memo_hits = cost.memo_hits.load(std::memory_order_relaxed);
  receipt.memo_misses = cost.memo_misses.load(std::memory_order_relaxed);
  receipt.bytes_decoded = job.request_bytes;
  receipt.queue_wait_nanos = queue_wait;
  receipt.wall_nanos = wall;
  // v4: kernel-path decisions plus the events-per-run ratio they compared
  // against the thresholds, aggregated over every trace the job dispatched.
  receipt.dispatch_run = cost.dispatch_run.load(std::memory_order_relaxed);
  receipt.dispatch_flat = cost.dispatch_flat.load(std::memory_order_relaxed);
  const std::uint64_t dispatched_events =
      cost.dispatch_events.load(std::memory_order_relaxed);
  const std::uint64_t dispatched_runs =
      cost.dispatch_runs.load(std::memory_order_relaxed);
  receipt.run_compression =
      dispatched_runs ? static_cast<double>(dispatched_events) /
                            static_cast<double>(dispatched_runs)
                      : 0.0;
  // v5: closed-form predictor attribution out of the same accumulator.
  receipt.predict_calls = cost.predict_calls.load(std::memory_order_relaxed);
  receipt.profile_memo_hits =
      cost.predict_profile_hits.load(std::memory_order_relaxed);

  if (config_.cache_enabled && response.status == JobStatus::kOk) {
    // Stored entries carry id 0 (the cache's documented contract); lookup
    // callers re-stamp the requester's id on a hit. The cached receipt keeps
    // this computation's counts; hits overwrite the per-call fields.
    response.id = 0;
    cache_.insert(job.request.canonical_key(), response);
  }
  response.id = job.request.id;
  push_recent(RecentJob{job.request.id, job.request.kind, response.status,
                        job.request.trace_id, queue_wait, wall, false,
                        receipt.dispatch_run, receipt.dispatch_flat,
                        receipt.run_compression, receipt.predict_calls,
                        receipt.profile_memo_hits});
  {
    // Count the completion before the response leaves the building: a
    // client that has its answer must see it reflected in a stats snapshot
    // (service_stat polls a live daemon and benches read stats() right
    // after their last response).
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.completed;
  }
  job.deliver(std::move(response));
}

void ServiceServer::push_recent(const RecentJob& job) {
  std::lock_guard<std::mutex> lock(recent_mu_);
  recent_.push_front(job);
  if (recent_.size() > kRecentJobsCapacity) recent_.pop_back();
}

std::vector<ServiceServer::RecentJob> ServiceServer::recent_jobs() const {
  std::lock_guard<std::mutex> lock(recent_mu_);
  return {recent_.begin(), recent_.end()};
}

JobResponse ServiceServer::introspect_response(const JobRequest& request) {
  JobResponse response;
  response.id = request.id;
  switch (request.introspect) {
    case IntrospectKind::kStats: {
      Stats snapshot;
      std::size_t queued = 0;
      std::size_t inflight = 0;
      bool draining = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        snapshot = stats_;
        queued = queued_;
        inflight = inflight_;
        draining = draining_;
      }
      const ResponseCache::Stats cache = cache_.stats();
      JsonWriter json;
      json.field("status", draining ? "draining" : "ok")
          .field("uptime_ns", now_nanos() - start_nanos_)
          .field("workers", static_cast<std::uint64_t>(config_.workers))
          .field("queue_depth",
                 static_cast<std::uint64_t>(config_.queue_depth))
          .field("queued", static_cast<std::uint64_t>(queued))
          .field("inflight", static_cast<std::uint64_t>(inflight));
      json.begin_object("jobs")
          .field("submitted", snapshot.submitted)
          .field("completed", snapshot.completed)
          .field("cache_hits", snapshot.cache_hits)
          .field("rejected", snapshot.rejected)
          .field("shutdown_rejected", snapshot.shutdown_rejected)
          .field("introspected", snapshot.introspected)
          .field("queue_peak",
                 static_cast<std::uint64_t>(snapshot.queue_peak))
          .end_object();
      json.begin_object("cache")
          .field("enabled", config_.cache_enabled)
          .field("hits", cache.hits)
          .field("misses", cache.misses)
          .field("insertions", cache.insertions)
          .field("evictions", cache.evictions)
          .field("entries", static_cast<std::uint64_t>(cache.entries))
          .field("bytes", static_cast<std::uint64_t>(cache.bytes))
          .end_object();
      response.introspect = json.finish();
      return response;
    }

    case IntrospectKind::kHealth: {
      bool draining = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        draining = draining_;
      }
      JsonWriter json;
      json.field("status", draining ? "draining" : "ok")
          .field("uptime_ns", now_nanos() - start_nanos_);
      response.introspect = json.finish();
      return response;
    }

    case IntrospectKind::kMetricsJson:
      response.introspect = MetricsRegistry::global().to_json();
      return response;

    case IntrospectKind::kPrometheus:
      response.introspect = MetricsRegistry::global().dump_prometheus();
      return response;

    case IntrospectKind::kRecentJobs: {
      const std::vector<RecentJob> recent = recent_jobs();
      JsonWriter json;
      json.field("count", static_cast<std::uint64_t>(recent.size()));
      json.begin_array("recent");
      for (const RecentJob& job : recent) {
        json.begin_object()
            .field("id", job.id)
            .field("kind", job_kind_name(job.kind))
            .field("status", job_status_name(job.status))
            .field("trace_id", job.trace_id)
            .field("queue_wait_ns", job.queue_wait_nanos)
            .field("wall_ns", job.wall_nanos)
            .field("cached", job.cached)
            .field("dispatch_run", job.dispatch_run)
            .field("dispatch_flat", job.dispatch_flat)
            .field("run_compression", job.run_compression)
            .field("predict_calls", job.predict_calls)
            .field("profile_memo_hits", job.profile_memo_hits)
            .end_object();
      }
      json.end_array();
      response.introspect = json.finish();
      return response;
    }

    case IntrospectKind::kTraceExport: {
      // Absolute timestamps + a distinct pid: ready to merge with a client
      // -side export into one two-process Perfetto file (the steady clock is
      // shared machine-wide, so the tracks line up).
      TraceExportOptions options;
      options.pid = 2;
      options.process_name = "service-daemon";
      options.absolute_timestamps = true;
      response.introspect =
          TraceRecorder::instance().export_chrome_trace(options);
      return response;
    }
  }
  return error_response(request, "unknown introspect kind");
}

void ServiceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_ && workers_.empty()) return;  // already shut down
    draining_ = true;
  }
  work_cv_.notify_all();

  // Stop the acceptor first so no new connections arrive mid-drain, then
  // give every blocked reader an EOF; their already-admitted jobs drain
  // below before the readers close their fds.
  {
    std::lock_guard<std::mutex> lock(socket_mu_);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::lock_guard<std::mutex> lock(socket_mu_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RD);
  }

  // Workers exit once the queue is empty; joining them means every queued
  // and in-flight job has reached its deliver callback.
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  for (std::thread& reader : connection_threads_) {
    if (reader.joinable()) reader.join();
  }
  connection_threads_.clear();
  close_socket();
}

void ServiceServer::close_socket() {
  std::lock_guard<std::mutex> lock(socket_mu_);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (!socket_path_.empty()) {
    ::unlink(socket_path_.c_str());
    socket_path_.clear();
  }
  connection_fds_.clear();
}

void ServiceServer::listen_unix(const std::string& path) {
  // Refuse before touching the filesystem: a second call must not unlink
  // and rebind over the live socket (or leak the fresh fd on throw).
  {
    std::lock_guard<std::mutex> lock(socket_mu_);
    CL_CHECK_MSG(listen_fd_ < 0, "server is already listening");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  CL_CHECK_MSG(path.size() < sizeof(addr.sun_path),
               "unix socket path too long: " << path.size() << " bytes (max "
                                             << sizeof(addr.sun_path) - 1
                                             << ")");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CL_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  ::unlink(path.c_str());  // stale socket from a crashed daemon
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    CL_CHECK_MSG(false, "bind(" << path << ") failed: " << std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    CL_CHECK_MSG(false, "listen(" << path
                                  << ") failed: " << std::strerror(err));
  }
  {
    std::lock_guard<std::mutex> lock(socket_mu_);
    if (listen_fd_ >= 0) {  // lost a listen_unix/listen_unix race
      ::close(fd);
      CL_CHECK_MSG(false, "server is already listening");
    }
    listen_fd_ = fd;
    socket_path_ = path;
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ServiceServer::accept_loop() {
  for (;;) {
    int listen_fd = -1;
    {
      std::lock_guard<std::mutex> lock(socket_mu_);
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket shut down
    }
    std::lock_guard<std::mutex> lock(socket_mu_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void ServiceServer::connection_loop(int fd) {
  // Deliveries race the reader and each other; the write end outlives the
  // read loop until every submitted job has answered, so a client that
  // half-closes after its last request still receives all its responses.
  struct WriteEnd {
    explicit WriteEnd(int stream_fd) : fd(stream_fd) {}
    const int fd;
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = 0;

    void send_frame(const std::string& frame) {
      std::lock_guard<std::mutex> lock(mu);
      (void)write_all(fd, frame.data(), frame.size());
    }
    void job_done() {
      {
        std::lock_guard<std::mutex> lock(mu);
        --pending;
      }
      cv.notify_all();
    }
  };
  auto write_end = std::make_shared<WriteEnd>(fd);

  for (;;) {
    char header_bytes[kFrameHeaderBytes];
    if (!read_exact(fd, header_bytes, kFrameHeaderBytes)) break;
    JobRequest request;
    // Answer in the client's dialect: pre-v3 requests get responses stamped
    // wire version 2 with no v3 trailing fields — byte-identical to what a
    // v2 build sent (which already stamped v2 on v1 requests). Unreadable
    // headers fall back to our own version; that stream is garbage anyway.
    std::uint16_t response_version = kWireVersion;
    std::uint64_t request_bytes = 0;
    try {
      const FrameHeader header = decode_frame_header(header_bytes);
      response_version = header.version >= 3 ? header.version : 2;
      CL_CHECK_MSG(header.type == FrameType::kRequest,
                   "service frame: expected a request frame");
      std::string payload(header.payload_len, '\0');
      if (header.payload_len > 0 &&
          !read_exact(fd, payload.data(), payload.size())) {
        break;
      }
      request_bytes = header.payload_len;
      request = decode_request_payload(payload, header.version);
    } catch (const std::exception& e) {
      // The stream is desynchronized; report and hang up.
      JobResponse response;
      response.status = JobStatus::kError;
      response.error = e.what();
      write_end->send_frame(encode_response_frame(response, response_version));
      break;
    }
    {
      std::lock_guard<std::mutex> lock(write_end->mu);
      ++write_end->pending;
    }
    submit(
        std::move(request),
        [write_end, response_version](JobResponse response) {
          write_end->send_frame(
              encode_response_frame(response, response_version));
          write_end->job_done();
        },
        request_bytes);
  }

  // EOF (or protocol error): flush in-flight responses, then hang up.
  {
    std::unique_lock<std::mutex> lock(write_end->mu);
    write_end->cv.wait(lock, [&] { return write_end->pending == 0; });
  }
  // Deregister before closing so shutdown() never calls ::shutdown on a
  // recycled descriptor number owned by something else.
  {
    std::lock_guard<std::mutex> lock(socket_mu_);
    connection_fds_.erase(
        std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
        connection_fds_.end());
  }
  ::close(fd);
}

ServiceServer::Stats ServiceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace codelayout::service
