#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "support/check.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout::service {
namespace {

std::uint64_t now_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Process-unique nonzero trace ids: a SplitMix64 stream seeded from the
/// wall clock so two concurrently-started clients do not collide.
std::uint64_t next_trace_id() {
  static const std::uint64_t seed = static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count());
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t x =
      seed + 0x9e3779b97f4a7c15ull * (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

void read_exact(int fd, char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, buf + got, n - got, 0);
    CL_CHECK_MSG(r != 0, "service connection closed mid-response");
    if (r < 0) {
      CL_CHECK_MSG(errno == EINTR,
                   "service read failed: " << std::strerror(errno));
      continue;
    }
    got += static_cast<std::size_t>(r);
  }
}

void write_all(int fd, const char* buf, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      CL_CHECK_MSG(errno == EINTR,
                   "service write failed: " << std::strerror(errno));
      continue;
    }
    sent += static_cast<std::size_t>(r);
  }
}

}  // namespace

ServiceClient ServiceClient::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  CL_CHECK_MSG(path.size() < sizeof(addr.sun_path),
               "unix socket path too long: " << path.size() << " bytes");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  CL_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    CL_CHECK_MSG(false,
                 "connect(" << path << ") failed: " << std::strerror(err));
  }
  return ServiceClient(fd);
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServiceClient::ServiceClient(ServiceClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

ServiceClient& ServiceClient::operator=(ServiceClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

JobResponse ServiceClient::call(const JobRequest& request) {
  if (TraceRecorder::instance().enabled() && request.trace_id == 0) {
    // Assign a trace context and record the round trip under it: the daemon
    // tags its spans with the same id, so a merged export joins on it.
    JobRequest traced = request;
    traced.trace_id = next_trace_id();
    traced.span_id = 1;
    ScopedJobContext scope(
        JobContext{traced.trace_id, traced.span_id, nullptr});
    CODELAYOUT_SPAN("service_call", "service",
                    {"kind", job_kind_name(traced.kind)}, {"id", traced.id});
    return roundtrip(traced);
  }
  return roundtrip(request);
}

std::string ServiceClient::introspect(IntrospectKind kind) {
  JobRequest request;
  request.kind = JobKind::kIntrospect;
  request.introspect = kind;
  request.priority = JobPriority::kInteractive;
  JobResponse response = call(request);
  CL_CHECK_MSG(response.status == JobStatus::kOk,
               "introspect(" << introspect_kind_name(kind)
                             << ") failed: " << response.error);
  return std::move(response.introspect);
}

JobResponse ServiceClient::roundtrip(const JobRequest& request) {
  CL_CHECK_MSG(fd_ >= 0, "service client is not connected");
  const std::string frame = encode_request_frame(request);
  write_all(fd_, frame.data(), frame.size());

  char header_bytes[kFrameHeaderBytes];
  read_exact(fd_, header_bytes, kFrameHeaderBytes);
  const FrameHeader header = decode_frame_header(header_bytes);
  CL_CHECK_MSG(header.type == FrameType::kResponse,
               "service client: expected a response frame");
  std::string payload(header.payload_len, '\0');
  if (header.payload_len > 0) read_exact(fd_, payload.data(), payload.size());
  JobResponse response = decode_response_payload(payload, header.version);
  CL_CHECK_MSG(response.id == request.id || response.id == 0,
               "service client: response id " << response.id
                                              << " does not match request id "
                                              << request.id);
  return response;
}

LoadGenReport run_load_generator(const LoadGenOptions& options) {
  CL_CHECK_MSG(!options.mix.empty(), "load generator needs a non-empty mix");
  CL_CHECK_MSG(options.clients >= 1, "load generator needs >= 1 client");

  // Connect every client before starting the clock so the report measures
  // job throughput, not connection setup.
  std::vector<ServiceClient> clients;
  clients.reserve(options.clients);
  for (unsigned i = 0; i < options.clients; ++i) {
    clients.push_back(ServiceClient::connect_unix(options.socket_path));
  }

  LatencyHistogram latency;  // atomics: shared across client threads
  std::atomic<std::uint64_t> ok{0}, errors{0}, rejected{0};
  MetricsRegistry& registry = MetricsRegistry::global();
  // Per-client receipt partials, merged after the join (no contention).
  std::vector<LoadGenReport::Cost> costs(options.clients);

  const std::uint64_t start = now_nanos();
  std::vector<std::thread> threads;
  threads.reserve(options.clients);
  for (unsigned c = 0; c < options.clients; ++c) {
    threads.emplace_back([&, c] {
      ServiceClient& client = clients[c];
      LoadGenReport::Cost& cost = costs[c];
      for (unsigned j = 0; j < options.jobs_per_client; ++j) {
        JobRequest request = options.mix[j % options.mix.size()];
        request.id = (static_cast<std::uint64_t>(c + 1) << 32) | (j + 1);
        const std::uint64_t t0 = now_nanos();
        const JobResponse response = client.call(request);
        const std::uint64_t nanos = now_nanos() - t0;
        latency.record(nanos);
        if (registry.enabled()) {
          registry.histogram("service.client.job_ns").record(nanos);
        }
        switch (response.status) {
          case JobStatus::kOk: ok.fetch_add(1); break;
          case JobStatus::kError: errors.fetch_add(1); break;
          case JobStatus::kRejected:
          case JobStatus::kShuttingDown: rejected.fetch_add(1); break;
        }
        if (response.status == JobStatus::kOk) {
          const CostReceipt& receipt = response.receipt;
          cost.events += receipt.events;
          cost.rounds_fast += receipt.rounds_fast;
          cost.rounds_fallback += receipt.rounds_fallback;
          cost.cache_probes += receipt.cache_probes;
          cost.l2_probes += receipt.l2_probes;
          cost.memo_hits += receipt.memo_hits;
          cost.memo_misses += receipt.memo_misses;
          cost.bytes_decoded += receipt.bytes_decoded;
          cost.queue_wait_nanos += receipt.queue_wait_nanos;
          cost.wall_nanos += receipt.wall_nanos;
          cost.dispatch_run += receipt.dispatch_run;
          cost.dispatch_flat += receipt.dispatch_flat;
          cost.predict_calls += receipt.predict_calls;
          cost.profile_memo_hits += receipt.profile_memo_hits;
          if (receipt.cached) ++cost.cached_jobs;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall =
      static_cast<double>(now_nanos() - start) / 1e9;

  LoadGenReport report;
  report.jobs = static_cast<std::uint64_t>(options.clients) *
                options.jobs_per_client;
  report.ok = ok.load();
  report.errors = errors.load();
  report.rejected = rejected.load();
  report.wall_seconds = wall;
  report.jobs_per_sec =
      wall > 0.0 ? static_cast<double>(report.jobs) / wall : 0.0;
  report.latency = latency.summary();
  for (const LoadGenReport::Cost& cost : costs) {
    report.cost.events += cost.events;
    report.cost.rounds_fast += cost.rounds_fast;
    report.cost.rounds_fallback += cost.rounds_fallback;
    report.cost.cache_probes += cost.cache_probes;
    report.cost.l2_probes += cost.l2_probes;
    report.cost.memo_hits += cost.memo_hits;
    report.cost.memo_misses += cost.memo_misses;
    report.cost.bytes_decoded += cost.bytes_decoded;
    report.cost.queue_wait_nanos += cost.queue_wait_nanos;
    report.cost.wall_nanos += cost.wall_nanos;
    report.cost.cached_jobs += cost.cached_jobs;
    report.cost.predict_calls += cost.predict_calls;
    report.cost.profile_memo_hits += cost.profile_memo_hits;
  }
  return report;
}

}  // namespace codelayout::service
