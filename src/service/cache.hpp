// Cross-request response cache of the service daemon.
//
// The Lab's MemoTable already dedups work *within* one Lab lifetime, but it
// memoizes unbounded typed artifacts (prepared workloads, layouts, plans).
// The service layer adds a second, bounded tier above it: finished
// JobResponses keyed by the request's canonical encoding (id and priority
// normalized away), evicted LRU by entry count and by total byte footprint.
// A hit skips queueing and execution entirely — repeat jobs across clients
// answer in microseconds — while eviction keeps a long-lived daemon's
// memory flat under a churning workload mix.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "service/protocol.hpp"

namespace codelayout::service {

class ResponseCache {
 public:
  struct Config {
    std::size_t max_entries = 1024;
    /// Approximate footprint cap: sum of key + encoded-response sizes.
    std::size_t max_bytes = 16u << 20;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  ResponseCache();
  explicit ResponseCache(Config config);

  /// Returns the cached response (marked most-recently-used) or nullopt.
  /// The caller re-stamps the job id; cached responses carry id 0.
  [[nodiscard]] std::optional<JobResponse> lookup(const std::string& key);

  /// Inserts (or refreshes) `key`; evicts LRU entries until both caps hold.
  /// Responses that should not be replayed (status != kOk) are the caller's
  /// responsibility to filter.
  void insert(const std::string& key, const JobResponse& response);

  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::string key;
    JobResponse response;
    std::size_t bytes = 0;
  };

  void evict_locked();

  Config config_;
  mutable std::mutex mu_;
  /// Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
  Stats stats_;
};

}  // namespace codelayout::service
