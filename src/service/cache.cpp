#include "service/cache.hpp"

#include <utility>

#include "support/check.hpp"
#include "support/registry.hpp"

namespace codelayout::service {
namespace {

/// Flush-on-touch counters, same convention as the engine: a disabled
/// registry costs one branch per cache operation.
void bump(const char* name) {
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) registry.counter(name).add(1);
}

}  // namespace

ResponseCache::ResponseCache() : ResponseCache(Config{}) {}

ResponseCache::ResponseCache(Config config) : config_(config) {
  CL_CHECK_MSG(config_.max_entries > 0, "response cache needs >= 1 entry");
  CL_CHECK_MSG(config_.max_bytes > 0, "response cache needs a byte budget");
}

std::optional<JobResponse> ResponseCache::lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    bump("service.cache.misses");
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  bump("service.cache.hits");
  return it->second->response;
}

void ResponseCache::insert(const std::string& key,
                           const JobResponse& response) {
  const std::size_t bytes =
      key.size() + encode_response_payload(response).size();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    bytes_ += bytes;
    it->second->response = response;
    it->second->bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, response, bytes});
    index_.emplace(key, lru_.begin());
    bytes_ += bytes;
    ++stats_.insertions;
  }
  evict_locked();
  stats_.entries = lru_.size();
  stats_.bytes = bytes_;
}

void ResponseCache::evict_locked() {
  while (lru_.size() > 1 && (lru_.size() > config_.max_entries ||
                             bytes_ > config_.max_bytes)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    bump("service.cache.evictions");
  }
}

ResponseCache::Stats ResponseCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.entries = lru_.size();
  out.bytes = bytes_;
  return out;
}

}  // namespace codelayout::service
