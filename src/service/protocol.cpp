#include "service/protocol.hpp"

#include <cstring>
#include <sstream>

#include "support/check.hpp"
#include "trace/io.hpp"

namespace codelayout::service {
namespace {

// ---- Primitive writers ------------------------------------------------------

void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

void put_u8(std::string& out, std::uint8_t value) {
  out.push_back(static_cast<char>(value));
}

void put_double(std::string& out, double value) {
  // IEEE-754 bit pattern, little-endian: byte-deterministic across hosts
  // with the same endianness, and round-trips NaN payloads untouched.
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s.data(), s.size());
}

void put_optimizer(std::string& out, const std::optional<Optimizer>& opt) {
  put_u8(out, opt.has_value() ? 1 : 0);
  if (opt) {
    put_u8(out, static_cast<std::uint8_t>(opt->model));
    put_u8(out, static_cast<std::uint8_t>(opt->granularity));
  }
}

void put_trace(std::string& out, const Trace& trace) {
  std::ostringstream blob;
  write_trace(blob, trace);
  put_string(out, blob.str());
}

void put_sim_result(std::string& out, const SimResult& r) {
  put_varint(out, r.instructions);
  put_varint(out, r.overhead_instructions);
  put_varint(out, r.line_probes);
  put_varint(out, r.demand_misses);
  put_varint(out, r.wrong_path_misses);
  put_varint(out, r.blocks);
  // v2 trailing fields (zero under a flat hierarchy).
  put_varint(out, r.l2_probes);
  put_varint(out, r.l2_misses);
}

// ---- Primitive readers ------------------------------------------------------

/// Cursor over a payload. Every getter throws ContractError on truncation;
/// decode() checks exhaustion at the end so trailing garbage is an error too.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() {
    CL_CHECK_MSG(pos_ < data_.size(), "service payload truncated");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint64_t varint() {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t byte = u8();
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        CL_CHECK_MSG(shift < 63 || byte <= 1, "service payload varint overflow");
        return value;
      }
    }
    CL_CHECK_MSG(false, "service payload varint overflow");
    return 0;  // unreachable
  }

  double f64() {
    CL_CHECK_MSG(remaining() >= 8, "service payload truncated");
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(data_[pos_ + i]))
              << (8 * i);
    }
    pos_ += 8;
    double value = 0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  std::string_view bytes(std::uint64_t n) {
    CL_CHECK_MSG(n <= remaining(), "service payload truncated");
    std::string_view view = data_.substr(pos_, n);
    pos_ += n;
    return view;
  }

  std::string str() { return std::string(bytes(varint())); }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

std::optional<Optimizer> get_optimizer(Reader& in) {
  const std::uint8_t present = in.u8();
  CL_CHECK_MSG(present <= 1, "service payload: bad optimizer presence flag");
  if (!present) return std::nullopt;
  const std::uint8_t model = in.u8();
  const std::uint8_t granularity = in.u8();
  CL_CHECK_MSG(model <= static_cast<std::uint8_t>(ModelKind::kTrg),
               "service payload: optimizer model out of range");
  CL_CHECK_MSG(granularity <= static_cast<std::uint8_t>(Granularity::kBlock),
               "service payload: optimizer granularity out of range");
  return Optimizer{static_cast<ModelKind>(model),
                   static_cast<Granularity>(granularity)};
}

Trace get_trace(Reader& in) {
  const std::string_view blob = in.bytes(in.varint());
  if (blob.empty()) return Trace{Trace::Granularity::kBlock};
  std::istringstream is{std::string(blob)};
  Trace trace = read_trace(is);
  // read_trace consumed exactly the stream it declared; anything left in the
  // blob is garbage the embedder never wrote.
  is.peek();
  CL_CHECK_MSG(is.eof(), "service payload: trailing bytes after embedded trace");
  return trace;
}

SimResult get_sim_result(Reader& in, std::uint16_t version) {
  SimResult r;
  r.instructions = in.varint();
  r.overhead_instructions = in.varint();
  r.line_probes = in.varint();
  r.demand_misses = in.varint();
  r.wrong_path_misses = in.varint();
  r.blocks = in.varint();
  if (version >= 2) {
    r.l2_probes = in.varint();
    r.l2_misses = in.varint();
  }
  return r;
}

/// One encoder for both the wire payload and the cache key: the key is the
/// same body with the per-call fields (id, priority, trace context)
/// normalized away.
std::string encode_request_body(const JobRequest& request, std::uint64_t id,
                                JobPriority priority, std::uint64_t trace_id,
                                std::uint64_t span_id, std::uint16_t version) {
  std::string out;
  put_varint(out, id);
  put_u8(out, static_cast<std::uint8_t>(priority));
  put_u8(out, static_cast<std::uint8_t>(request.kind));
  put_u8(out, static_cast<std::uint8_t>(request.measure));
  put_string(out, request.workload);
  put_optimizer(out, request.optimizer);
  put_varint(out, request.parties.size());
  for (const CorunPartyRequest& party : request.parties) {
    put_string(out, party.workload);
    put_optimizer(out, party.optimizer);
    put_double(out, party.speed);
  }
  put_u8(out, request.cpi_speeds ? 1 : 0);
  put_trace(out, request.trace);
  if (version >= 2) {
    // v2 trailing field: the spec's canonical encoding, length-prefixed.
    put_string(out, request.hierarchy.encode());
  }
  if (version >= 3) {
    // v3 trailing fields: trace context + introspection selector.
    put_varint(out, trace_id);
    put_varint(out, span_id);
    put_u8(out, static_cast<std::uint8_t>(request.introspect));
  }
  if (version >= 5) {
    // v5 trailing fields: the co-scheduling problem shape.
    put_varint(out, request.slots);
    put_varint(out, request.verify_top_k);
  }
  return out;
}

std::string frame(FrameType type, const std::string& payload,
                  std::uint16_t version) {
  CL_CHECK_MSG(payload.size() <= kMaxPayloadBytes,
               "service frame payload too large: " << payload.size()
                                                   << " bytes");
  FrameHeader header;
  header.version = version;
  header.type = type;
  header.payload_len = static_cast<std::uint32_t>(payload.size());
  std::string out(kFrameHeaderBytes, '\0');
  encode_frame_header(header, out.data());
  out += payload;
  return out;
}

}  // namespace

const char* job_kind_name(JobKind kind) {
  switch (kind) {
    case JobKind::kSolo: return "solo";
    case JobKind::kLayout: return "layout";
    case JobKind::kCorun: return "corun";
    case JobKind::kTraceStats: return "trace-stats";
    case JobKind::kIntrospect: return "introspect";
    case JobKind::kCoSchedule: return "co-schedule";
  }
  return "?";
}

const char* introspect_kind_name(IntrospectKind kind) {
  switch (kind) {
    case IntrospectKind::kStats: return "stats";
    case IntrospectKind::kHealth: return "health";
    case IntrospectKind::kMetricsJson: return "metrics-json";
    case IntrospectKind::kPrometheus: return "prometheus";
    case IntrospectKind::kRecentJobs: return "recent-jobs";
    case IntrospectKind::kTraceExport: return "trace-export";
  }
  return "?";
}

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kError: return "error";
    case JobStatus::kRejected: return "rejected";
    case JobStatus::kShuttingDown: return "shutting-down";
  }
  return "?";
}

std::string JobRequest::canonical_key() const {
  return encode_request_body(*this, 0, JobPriority::kNormal, 0, 0,
                             kWireVersion);
}

std::string JobRequest::to_string() const {
  std::ostringstream os;
  os << job_kind_name(kind);
  if (kind == JobKind::kCorun) {
    for (std::size_t i = 0; i < parties.size(); ++i) {
      os << (i == 0 ? " " : " x ") << parties[i].workload << '|'
         << (parties[i].optimizer ? parties[i].optimizer->name() : "Original");
    }
  } else if (kind == JobKind::kCoSchedule) {
    os << ' ' << parties.size() << " parties -> " << slots << " slots";
    if (verify_top_k > 0) os << " (verify " << verify_top_k << ')';
    if (hierarchy != HierarchySpec{}) os << "|g=" << hierarchy.to_string();
    return os.str();
  } else if (kind == JobKind::kIntrospect) {
    os << ' ' << introspect_kind_name(introspect);
    return os.str();
  } else if (kind == JobKind::kTraceStats) {
    os << ' ' << trace.size() << " events";
  } else {
    os << ' ' << workload << '|'
       << (optimizer ? optimizer->name() : "Original");
  }
  if (kind == JobKind::kSolo || kind == JobKind::kCorun) {
    os << '|' << (measure == Measure::kHardware ? "hw" : "sim");
    if (hierarchy != HierarchySpec{}) os << "|g=" << hierarchy.to_string();
  }
  return os.str();
}

std::string encode_request_payload(const JobRequest& request,
                                   std::uint16_t version) {
  return encode_request_body(request, request.id, request.priority,
                             request.trace_id, request.span_id, version);
}

std::string encode_response_payload(const JobResponse& response,
                                    std::uint16_t version) {
  std::string out;
  put_varint(out, response.id);
  put_u8(out, static_cast<std::uint8_t>(response.status));
  put_string(out, response.error);
  put_varint(out, response.results.size());
  for (const SimResult& r : response.results) put_sim_result(out, r);
  put_varint(out, response.layout.blocks);
  put_varint(out, response.layout.total_bytes);
  put_varint(out, response.layout.overhead_bytes);
  put_varint(out, response.layout.fixups);
  put_varint(out, response.layout.order_checksum);
  put_varint(out, response.trace_stats.events);
  put_varint(out, response.trace_stats.runs);
  put_varint(out, response.trace_stats.distinct_symbols);
  put_varint(out, response.trace_stats.checksum);
  if (version >= 3) {
    // v3 trailing fields: the cost receipt + introspection document.
    put_varint(out, response.receipt.events);
    put_varint(out, response.receipt.rounds_fast);
    put_varint(out, response.receipt.rounds_fallback);
    put_varint(out, response.receipt.cache_probes);
    put_varint(out, response.receipt.l2_probes);
    put_varint(out, response.receipt.memo_hits);
    put_varint(out, response.receipt.memo_misses);
    put_varint(out, response.receipt.bytes_decoded);
    put_varint(out, response.receipt.queue_wait_nanos);
    put_varint(out, response.receipt.wall_nanos);
    put_u8(out, response.receipt.cached ? 1 : 0);
    put_string(out, response.introspect);
  }
  if (version >= 4) {
    // v4 trailing fields: adaptive-dispatch attribution.
    put_varint(out, response.receipt.dispatch_run);
    put_varint(out, response.receipt.dispatch_flat);
    put_double(out, response.receipt.run_compression);
  }
  if (version >= 5) {
    // v5 trailing fields: the co-schedule assignment + predictor attribution.
    put_varint(out, response.schedule.pairs.size());
    for (const CoScheduleResult::Pair& pair : response.schedule.pairs) {
      put_varint(out, pair.a);
      put_varint(out, pair.b);
      put_double(out, pair.predicted_misses);
    }
    put_varint(out, response.schedule.unpaired.size());
    for (std::uint64_t idx : response.schedule.unpaired) put_varint(out, idx);
    put_double(out, response.schedule.predicted_total_misses);
    put_varint(out, response.schedule.refine_passes);
    put_varint(out, response.schedule.verified.size());
    for (std::uint64_t idx : response.schedule.verified) put_varint(out, idx);
    put_varint(out, response.receipt.predict_calls);
    put_varint(out, response.receipt.profile_memo_hits);
  }
  return out;
}

JobRequest decode_request_payload(std::string_view payload,
                                  std::uint16_t version) {
  Reader in(payload);
  JobRequest request;
  request.id = in.varint();
  const std::uint8_t priority = in.u8();
  CL_CHECK_MSG(priority <= static_cast<std::uint8_t>(JobPriority::kInteractive),
               "service payload: priority out of range");
  request.priority = static_cast<JobPriority>(priority);
  const std::uint8_t kind = in.u8();
  // kIntrospect exists only in v3 and kCoSchedule only in v5: older frames
  // carrying the byte are corrupt, not forward-compatible.
  CL_CHECK_MSG(kind <= static_cast<std::uint8_t>(JobKind::kTraceStats) ||
                   (version >= 3 &&
                    kind <= static_cast<std::uint8_t>(JobKind::kIntrospect)) ||
                   (version >= 5 &&
                    kind <= static_cast<std::uint8_t>(JobKind::kCoSchedule)),
               "service payload: job kind out of range");
  request.kind = static_cast<JobKind>(kind);
  const std::uint8_t measure = in.u8();
  CL_CHECK_MSG(measure <= static_cast<std::uint8_t>(Measure::kHardware),
               "service payload: measure out of range");
  request.measure = static_cast<Measure>(measure);
  request.workload = in.str();
  request.optimizer = get_optimizer(in);
  const std::uint64_t party_count = in.varint();
  CL_CHECK_MSG(party_count <= 64, "service payload: too many co-run parties");
  request.parties.reserve(party_count);
  for (std::uint64_t i = 0; i < party_count; ++i) {
    CorunPartyRequest party;
    party.workload = in.str();
    party.optimizer = get_optimizer(in);
    party.speed = in.f64();
    request.parties.push_back(std::move(party));
  }
  const std::uint8_t cpi = in.u8();
  CL_CHECK_MSG(cpi <= 1, "service payload: bad cpi_speeds flag");
  request.cpi_speeds = cpi != 0;
  request.trace = get_trace(in);
  if (version >= 2) {
    request.hierarchy = HierarchySpec::decode(in.str());
    request.hierarchy.validate();
  }
  if (version >= 3) {
    request.trace_id = in.varint();
    request.span_id = in.varint();
    const std::uint8_t introspect = in.u8();
    CL_CHECK_MSG(
        introspect <= static_cast<std::uint8_t>(IntrospectKind::kTraceExport),
        "service payload: introspect kind out of range");
    request.introspect = static_cast<IntrospectKind>(introspect);
  }
  if (version >= 5) {
    request.slots = in.varint();
    request.verify_top_k = in.varint();
  }
  CL_CHECK_MSG(in.done(), "service payload: trailing bytes after request");
  return request;
}

JobResponse decode_response_payload(std::string_view payload,
                                    std::uint16_t version) {
  Reader in(payload);
  JobResponse response;
  response.id = in.varint();
  const std::uint8_t status = in.u8();
  CL_CHECK_MSG(status <= static_cast<std::uint8_t>(JobStatus::kShuttingDown),
               "service payload: status out of range");
  response.status = static_cast<JobStatus>(status);
  response.error = in.str();
  const std::uint64_t result_count = in.varint();
  CL_CHECK_MSG(result_count <= 64, "service payload: too many results");
  response.results.reserve(result_count);
  for (std::uint64_t i = 0; i < result_count; ++i) {
    response.results.push_back(get_sim_result(in, version));
  }
  response.layout.blocks = in.varint();
  response.layout.total_bytes = in.varint();
  response.layout.overhead_bytes = in.varint();
  const std::uint64_t fixups = in.varint();
  CL_CHECK_MSG(fixups <= ~std::uint32_t{0},
               "service payload: fixup count out of range");
  response.layout.fixups = static_cast<std::uint32_t>(fixups);
  response.layout.order_checksum = in.varint();
  response.trace_stats.events = in.varint();
  response.trace_stats.runs = in.varint();
  response.trace_stats.distinct_symbols = in.varint();
  response.trace_stats.checksum = in.varint();
  if (version >= 3) {
    response.receipt.events = in.varint();
    response.receipt.rounds_fast = in.varint();
    response.receipt.rounds_fallback = in.varint();
    response.receipt.cache_probes = in.varint();
    response.receipt.l2_probes = in.varint();
    response.receipt.memo_hits = in.varint();
    response.receipt.memo_misses = in.varint();
    response.receipt.bytes_decoded = in.varint();
    response.receipt.queue_wait_nanos = in.varint();
    response.receipt.wall_nanos = in.varint();
    const std::uint8_t cached = in.u8();
    CL_CHECK_MSG(cached <= 1, "service payload: bad receipt cached flag");
    response.receipt.cached = cached != 0;
    response.introspect = in.str();
  }
  if (version >= 4) {
    response.receipt.dispatch_run = in.varint();
    response.receipt.dispatch_flat = in.varint();
    response.receipt.run_compression = in.f64();
  }
  if (version >= 5) {
    const std::uint64_t pair_count = in.varint();
    CL_CHECK_MSG(pair_count <= 64, "service payload: too many schedule pairs");
    response.schedule.pairs.reserve(pair_count);
    for (std::uint64_t i = 0; i < pair_count; ++i) {
      CoScheduleResult::Pair pair;
      pair.a = in.varint();
      pair.b = in.varint();
      pair.predicted_misses = in.f64();
      response.schedule.pairs.push_back(pair);
    }
    const std::uint64_t unpaired_count = in.varint();
    CL_CHECK_MSG(unpaired_count <= 64,
                 "service payload: too many unpaired parties");
    response.schedule.unpaired.reserve(unpaired_count);
    for (std::uint64_t i = 0; i < unpaired_count; ++i) {
      response.schedule.unpaired.push_back(in.varint());
    }
    response.schedule.predicted_total_misses = in.f64();
    const std::uint64_t refine = in.varint();
    CL_CHECK_MSG(refine <= ~std::uint32_t{0},
                 "service payload: refine passes out of range");
    response.schedule.refine_passes = static_cast<std::uint32_t>(refine);
    const std::uint64_t verified_count = in.varint();
    CL_CHECK_MSG(verified_count <= 64,
                 "service payload: too many verified pairs");
    response.schedule.verified.reserve(verified_count);
    for (std::uint64_t i = 0; i < verified_count; ++i) {
      response.schedule.verified.push_back(in.varint());
    }
    response.receipt.predict_calls = in.varint();
    response.receipt.profile_memo_hits = in.varint();
  }
  CL_CHECK_MSG(in.done(), "service payload: trailing bytes after response");
  return response;
}

void encode_frame_header(const FrameHeader& header,
                         char out[kFrameHeaderBytes]) {
  auto put32 = [](char* p, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  };
  put32(out, kWireMagic);
  out[4] = static_cast<char>(header.version & 0xff);
  out[5] = static_cast<char>((header.version >> 8) & 0xff);
  out[6] = static_cast<char>(header.type);
  out[7] = 0;  // reserved
  put32(out + 8, header.payload_len);
}

FrameHeader decode_frame_header(const char in[kFrameHeaderBytes]) {
  auto get32 = [](const char* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i]))
           << (8 * i);
    }
    return v;
  };
  const std::uint32_t magic = get32(in);
  CL_CHECK_MSG(magic == kWireMagic,
               "service frame: bad magic 0x" << std::hex << magic);
  FrameHeader header;
  header.version = static_cast<std::uint16_t>(
      static_cast<std::uint8_t>(in[4]) |
      (static_cast<std::uint16_t>(static_cast<std::uint8_t>(in[5])) << 8));
  CL_CHECK_MSG(
      header.version >= kMinWireVersion && header.version <= kWireVersion,
      "service frame: unsupported wire version "
          << header.version << " (this build speaks " << kMinWireVersion
          << ".." << kWireVersion << ")");
  const std::uint8_t type = static_cast<std::uint8_t>(in[6]);
  CL_CHECK_MSG(type <= static_cast<std::uint8_t>(FrameType::kResponse),
               "service frame: bad frame type");
  header.type = static_cast<FrameType>(type);
  header.payload_len = get32(in + 8);
  CL_CHECK_MSG(header.payload_len <= kMaxPayloadBytes,
               "service frame: payload length " << header.payload_len
                                                << " exceeds cap");
  return header;
}

std::string encode_request_frame(const JobRequest& request,
                                 std::uint16_t version) {
  return frame(FrameType::kRequest, encode_request_payload(request, version),
               version);
}

std::string encode_response_frame(const JobResponse& response,
                                  std::uint16_t version) {
  return frame(FrameType::kResponse,
               encode_response_payload(response, version), version);
}

}  // namespace codelayout::service
