// The layout-optimization daemon: a job-oriented service over the Lab.
//
// Layering (ISSUE 6 tentpole):
//
//   socket/pipe frames  ──>  ServiceServer  ──>  JobExecutor  ──>  Lab
//        (protocol)          admission,          job -> EvalRequest
//                            bounded priority    mapping; results
//                            queue, workers,     identical to the
//                            response cache,     in-process engine
//                            graceful shutdown
//
// The server owns a bounded three-class priority queue (interactive >
// normal > batch, FIFO within a class). Admission control is synchronous:
// a full queue rejects with JobStatus::kRejected and a draining server with
// kShuttingDown, both delivered inline without touching a worker. Admitted
// jobs first consult the cross-request ResponseCache (canonical-key lookup;
// a hit answers inline), then run on one of `workers` dedicated threads —
// concurrency *within* one job comes from the Lab's own pool, so a handful
// of service workers keeps the queue moving while big jobs parallelize
// internally. shutdown() (or the destructor) stops admitting, drains every
// queued and in-flight job to its deliver callback, closes the socket, and
// joins all threads — no job is dropped silently, no thread leaks (pinned
// under TSan by the service tests).
//
// The JobExecutor seam is virtual so tests can inject a gated executor and
// deterministically fill the queue, assert rejection, and race shutdown
// against in-flight jobs; production uses LabExecutor.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "harness/lab.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"

namespace codelayout::service {

/// Executes one decoded job to a response. Implementations must be
/// thread-safe: the server calls execute() from several workers at once.
class JobExecutor {
 public:
  virtual ~JobExecutor() = default;
  virtual JobResponse execute(const JobRequest& request) = 0;
};

/// Production executor: maps jobs onto Lab cells via evaluate_all_checked,
/// so one bad job yields one kError response instead of poisoning the batch.
/// Responses carry only deterministic simulation/layout payloads (no
/// timings), making the service path byte-identical to in-process results.
class LabExecutor : public JobExecutor {
 public:
  explicit LabExecutor(LabOptions options = {});

  JobResponse execute(const JobRequest& request) override;

  /// The underlying engine (metrics snapshots, warm-up).
  [[nodiscard]] Lab& lab() { return lab_; }

 private:
  JobResponse run(const JobRequest& request);

  Lab lab_;
};

struct ServerConfig {
  /// Dedicated job threads. Each job runs on one worker; the Lab fans a
  /// job's cells out over its own pool, so a few workers suffice.
  unsigned workers = 2;
  /// Bounded queue depth across all priority classes; admission control
  /// rejects the (depth+1)-th queued job.
  std::size_t queue_depth = 64;
  bool cache_enabled = true;
  ResponseCache::Config cache{};
};

class ServiceServer {
 public:
  /// Takes ownership of the executor; workers start immediately.
  ServiceServer(ServerConfig config, std::unique_ptr<JobExecutor> executor);
  /// shutdown() if the caller has not already.
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  /// Submits one job. `deliver` is invoked exactly once with the response:
  /// inline for cache hits, admission failures (kRejected / kShuttingDown),
  /// and kIntrospect jobs (served on the submitting thread, never queued or
  /// cached — snapshots work even while every worker is saturated or the
  /// server is draining), from a worker thread otherwise. `deliver` must be
  /// callable from any thread and must not re-enter the server.
  /// `request_bytes` is the wire payload size (stamped into the response's
  /// CostReceipt; 0 for in-process callers).
  void submit(JobRequest request, std::function<void(JobResponse)> deliver,
              std::uint64_t request_bytes = 0);

  /// Blocking submit-and-wait.
  JobResponse call(const JobRequest& request);

  /// Binds a unix-domain socket at `path` (unlinking any stale one) and
  /// serves frames until shutdown: one reader thread per connection,
  /// responses written under a per-connection lock as jobs finish (so an
  /// interactive job overtakes a batch job on the same connection).
  void listen_unix(const std::string& path);
  [[nodiscard]] const std::string& socket_path() const { return socket_path_; }

  /// Graceful: stop admitting (new jobs answer kShuttingDown), drain every
  /// queued and in-flight job, close the socket, join all threads.
  /// Idempotent.
  void shutdown();

  struct Stats {
    std::uint64_t submitted = 0;      ///< all submit() calls
    std::uint64_t completed = 0;      ///< executed to a response
    std::uint64_t cache_hits = 0;     ///< answered from the response cache
    std::uint64_t rejected = 0;       ///< bounded-queue admission failures
    std::uint64_t shutdown_rejected = 0;  ///< arrived while draining
    std::uint64_t introspected = 0;   ///< kIntrospect jobs served inline
    std::size_t queue_peak = 0;       ///< high-water queued depth
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] ResponseCache::Stats cache_stats() const {
    return cache_.stats();
  }

  /// One completed (or cache-answered) job in the recent-jobs ring.
  struct RecentJob {
    std::uint64_t id = 0;
    JobKind kind = JobKind::kSolo;
    JobStatus status = JobStatus::kOk;
    std::uint64_t trace_id = 0;
    std::uint64_t queue_wait_nanos = 0;
    std::uint64_t wall_nanos = 0;
    bool cached = false;
    /// Adaptive-dispatch attribution (trace/dispatch.hpp): path decisions the
    /// job's kernels made and the compression ratio they were based on. A
    /// cache-answered job carries the original computation's values.
    std::uint64_t dispatch_run = 0;
    std::uint64_t dispatch_flat = 0;
    double run_compression = 0.0;
    /// Closed-form predictor attribution (perfmodel/corun_predictor.hpp):
    /// predict_corun evaluations the job ran and solo-profile memo lookups
    /// it answered without a kernel pass.
    std::uint64_t predict_calls = 0;
    std::uint64_t profile_memo_hits = 0;
  };
  /// Newest first; bounded at kRecentJobsCapacity.
  static constexpr std::size_t kRecentJobsCapacity = 32;
  [[nodiscard]] std::vector<RecentJob> recent_jobs() const;

 private:
  struct QueuedJob {
    JobRequest request;
    std::function<void(JobResponse)> deliver;
    std::uint64_t enqueue_nanos = 0;
    std::uint64_t request_bytes = 0;
  };

  void worker_loop();
  void finish_job(QueuedJob job);
  void accept_loop();
  void connection_loop(int fd);
  void close_socket();
  [[nodiscard]] JobResponse introspect_response(const JobRequest& request);
  void push_recent(const RecentJob& job);

  ServerConfig config_;
  std::unique_ptr<JobExecutor> executor_;
  ResponseCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  /// queues_[p] holds JobPriority p; pop scans highest class first.
  std::deque<QueuedJob> queues_[3];
  std::size_t queued_ = 0;
  std::size_t inflight_ = 0;
  bool draining_ = false;
  Stats stats_;
  const std::uint64_t start_nanos_;

  /// Recent-jobs flight ring, guarded by its own mutex so introspection
  /// never contends with admission control on mu_.
  mutable std::mutex recent_mu_;
  std::deque<RecentJob> recent_;

  std::vector<std::thread> workers_;

  // Socket state (guarded by socket_mu_ where threads race shutdown).
  std::mutex socket_mu_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
};

}  // namespace codelayout::service
