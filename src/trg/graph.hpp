// Temporal Relationship Graph (paper Sec. II-C, Definition 6; Gloy & Smith
// TOPLAS'99).
//
// Nodes are code blocks; an undirected edge carries the number of potential
// conflicts: the times two successive occurrences of one endpoint are
// interleaved by at least one occurrence of the other. Construction runs the
// trace through an LRU stack capped at a 2C footprint window (the paper
// follows Gloy & Smith's advice of examining a window of twice the cache
// size): on a reuse of block A, every block above A on the stack occurred
// between A's two successive occurrences, so each such pair's edge weight is
// incremented. The stack uses the hash-table-plus-list layout of Sec. II-F
// for O(1) touch.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"

namespace codelayout {

struct TrgConfig {
  /// Footprint cap of the co-occurrence window, in code blocks. The paper's
  /// 2C bytes with uniform block size S gives 2C/S entries; see
  /// trg_window_entries().
  std::uint32_t window_entries = 1024;
};

/// Entries of the 2C-byte window under the uniform-block-size assumption.
std::uint32_t trg_window_entries(std::uint64_t cache_bytes,
                                 std::uint32_t block_bytes);

/// Number of code slots K for TRG reduction: (C/(A*B)) / ceil(S/(A*B))
/// cache-set groups, after aligning blocks to line boundaries (Sec. II-C).
std::uint32_t trg_slot_count(std::uint64_t cache_bytes, std::uint32_t assoc,
                             std::uint32_t line_bytes,
                             std::uint32_t block_bytes);

class Trg {
 public:
  using Weight = std::uint64_t;

  static Trg build(const Trace& trace, const TrgConfig& config = {});

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::span<const Symbol> nodes() const { return nodes_; }

  [[nodiscard]] Weight edge_weight(Symbol a, Symbol b) const;
  [[nodiscard]] std::size_t edge_count() const;

  /// All edges as (a, b, weight) with a < b, sorted by descending weight then
  /// ascending (a, b) for determinism.
  struct Edge {
    Symbol a;
    Symbol b;
    Weight weight;
  };
  [[nodiscard]] std::vector<Edge> edges_by_weight() const;

  /// Adjacency of one node.
  [[nodiscard]] const std::unordered_map<Symbol, Weight>& neighbors(
      Symbol a) const;

  void add_edge(Symbol a, Symbol b, Weight w);  ///< also used by tests

 private:
  void note_node(Symbol s);

  std::vector<Symbol> nodes_;  ///< first-appearance order
  std::unordered_map<Symbol, std::unordered_map<Symbol, Weight>> adj_;
};

}  // namespace codelayout
