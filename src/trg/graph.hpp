// Temporal Relationship Graph (paper Sec. II-C, Definition 6; Gloy & Smith
// TOPLAS'99).
//
// Nodes are code blocks; an undirected edge carries the number of potential
// conflicts: the times two successive occurrences of one endpoint are
// interleaved by at least one occurrence of the other. Construction runs the
// trace through an LRU stack capped at a 2C footprint window (the paper
// follows Gloy & Smith's advice of examining a window of twice the cache
// size): on a reuse of block A, every block above A on the stack occurred
// between A's two successive occurrences, so each such pair's edge weight is
// incremented. The stack uses the hash-table-plus-list layout of Sec. II-F
// for O(1) touch.
//
// Storage is flat: edges accumulate in one open-addressing table keyed by
// the packed (lo, hi) pair, and neighbors() reads a CSR adjacency built from
// that table, so both edges_by_weight() and the reduction's neighbor scans
// walk contiguous memory instead of a hash map of hash maps.
//
// Construction shards across the pool when TrgConfig.pool is set: the capped
// stack's state at any position is the maximal weight-<=cap prefix of the
// last-occurrence order of the preceding events (bounded history), so each
// worker reconstructs the exact serial stack at its chunk boundary with a
// backward scan, emits edges only for its own chunk, and the partial edge
// maps merge by weight addition — an exact decomposition, bit-identical to
// the serial build.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/flat_map.hpp"
#include "trace/dispatch.hpp"
#include "trace/trace.hpp"

namespace codelayout {

class ThreadPool;

struct TrgConfig {
  /// Footprint cap of the co-occurrence window, in code blocks. The paper's
  /// 2C bytes with uniform block size S gives 2C/S entries; see
  /// trg_window_entries().
  std::uint32_t window_entries = 1024;

  /// Optional shared worker pool for the sharded build. Non-owning;
  /// nullptr = serial unless `shards` forces a decomposition.
  ThreadPool* pool = nullptr;

  /// Shard count override: 0 = auto (pool width + the calling thread, or 1
  /// without a pool). Any value yields the identical graph; tests use small
  /// forced counts to pin chunk-boundary behaviour.
  std::uint32_t shards = 0;

  /// Run-aware (one stack transaction per run) vs straight-line (one per
  /// event over the flat view) scanning; see trace/dispatch.hpp. Decided
  /// once per build; shard boundaries stay run-aligned on both paths and the
  /// graph is bit-identical.
  AnalysisDispatch dispatch{};
};

/// Entries of the 2C-byte window under the uniform-block-size assumption.
std::uint32_t trg_window_entries(std::uint64_t cache_bytes,
                                 std::uint32_t block_bytes);

/// Number of code slots K for TRG reduction: (C/(A*B)) / ceil(S/(A*B))
/// cache-set groups, after aligning blocks to line boundaries (Sec. II-C).
std::uint32_t trg_slot_count(std::uint64_t cache_bytes, std::uint32_t assoc,
                             std::uint32_t line_bytes,
                             std::uint32_t block_bytes);

class Trg {
 public:
  using Weight = std::uint64_t;

  static Trg build(const Trace& trace, const TrgConfig& config = {});

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::span<const Symbol> nodes() const { return nodes_; }

  [[nodiscard]] Weight edge_weight(Symbol a, Symbol b) const;
  /// Number of distinct edges; O(1) (the accumulator's size).
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }

  /// All edges as (a, b, weight) with a < b, sorted by descending weight then
  /// ascending (a, b) for determinism.
  struct Edge {
    Symbol a;
    Symbol b;
    Weight weight;
  };
  [[nodiscard]] std::vector<Edge> edges_by_weight() const;

  /// Adjacency of one node, sorted by neighbor symbol, as a contiguous CSR
  /// slice. Rebuilt lazily after add_edge; not safe to first-access
  /// concurrently with a mutation (a fully built graph is fine to share).
  struct Neighbor {
    Symbol to;
    Weight weight;
  };
  [[nodiscard]] std::span<const Neighbor> neighbors(Symbol a) const;

  void add_edge(Symbol a, Symbol b, Weight w);  ///< also used by tests

 private:
  static constexpr std::uint32_t kNoNode = ~std::uint32_t{0};

  void note_node(Symbol s);
  [[nodiscard]] std::uint32_t node_position(Symbol s) const {
    return s < node_index_.size() ? node_index_[s] : kNoNode;
  }
  void ensure_adjacency() const;

  std::vector<Symbol> nodes_;  ///< first-appearance order
  std::vector<std::uint32_t> node_index_;  ///< symbol -> position in nodes_
  FlatKeyMap<Weight> edges_;   ///< packed (lo, hi) pair -> weight

  /// CSR adjacency derived from edges_, indexed by node position.
  mutable bool adjacency_valid_ = false;
  mutable std::vector<std::uint32_t> adj_offsets_;
  mutable std::vector<Neighbor> adj_;
};

}  // namespace codelayout
