// TRG reduction (paper Sec. II-C, Algorithm 2).
//
// The paper modifies Gloy & Smith's placement: instead of padding functions
// to cache-aligned addresses, reduction distributes code blocks over K cache
// "code slots" and emits a new linear order. Repeatedly the heaviest edge is
// taken; an unplaced endpoint goes to the first empty slot, or failing that
// the slot whose merged supernode it conflicts with least. Placing a node
// merges it into the slot's supernode (edge weights combine) and deletes its
// edges to the other slots. The final sequence reads the slot lists
// round-robin, head first.
#pragma once

#include <cstdint>
#include <vector>

#include "trg/graph.hpp"

namespace codelayout {

struct TrgReduction {
  /// The reordered code-block sequence (every TRG node exactly once).
  std::vector<Symbol> order;
  /// The K slot lists after reduction, for inspection and tests.
  std::vector<std::vector<Symbol>> slots;
};

/// Reduces `graph` over `slot_count` code slots. Nodes untouched by any edge
/// are placed afterwards, in first-appearance order, through the same
/// slot-selection rule. Deterministic: ties on edge weight break by symbol
/// value.
TrgReduction reduce_trg(const Trg& graph, std::uint32_t slot_count);

}  // namespace codelayout
