// Gloy & Smith's original TRG placement (TOPLAS'99), for comparison.
//
// The paper's TRG *reduction* (Algorithm 2) emits a new linear order and
// inserts no space. The original procedure instead chooses a cache-relative
// alignment for each code block — greedily placing the endpoints of the
// heaviest edges at set offsets that minimize weighted overlap — and then
// lays blocks out with padding so each starts at its chosen offset. The
// padding buys conflict freedom at the cost of address-space (and
// memory/TLB) bloat, which is exactly why the paper switched to reordering;
// bench_ablation_placement quantifies the trade-off.
#pragma once

#include <cstdint>

#include "ir/module.hpp"
#include "layout/layout.hpp"
#include "trg/graph.hpp"

namespace codelayout {

struct PlacementConfig {
  std::uint64_t cache_bytes = 32 * 1024;
  std::uint32_t associativity = 4;
  std::uint32_t line_bytes = 64;
};

struct PlacementResult {
  CodeLayout layout;
  std::uint64_t padding_bytes = 0;  ///< space inserted between blocks
};

/// Places the blocks of `module` at Gloy-Smith-style cache-aligned
/// addresses: blocks are ordered by the TRG reduction sequence but each is
/// additionally padded so that it starts in the cache set chosen by the
/// greedy alignment pass (heaviest-edge-first, pick the start set with the
/// least weighted conflict against already-placed neighbors).
///
/// `granularity` selects which trace the TRG models; the graph must be at
/// block granularity (symbols are BlockId values).
PlacementResult gloy_smith_placement(const Module& module, const Trg& graph,
                                     const PlacementConfig& config = {});

}  // namespace codelayout
