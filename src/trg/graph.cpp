#include "trg/graph.hpp"

#include <algorithm>

#include "locality/lru_stack.hpp"
#include "support/check.hpp"
#include "support/registry.hpp"

namespace codelayout {

std::uint32_t trg_window_entries(std::uint64_t cache_bytes,
                                 std::uint32_t block_bytes) {
  CL_CHECK(block_bytes > 0);
  const std::uint64_t entries = 2 * cache_bytes / block_bytes;
  CL_CHECK_MSG(entries > 0, "window smaller than one block");
  return static_cast<std::uint32_t>(entries);
}

std::uint32_t trg_slot_count(std::uint64_t cache_bytes, std::uint32_t assoc,
                             std::uint32_t line_bytes,
                             std::uint32_t block_bytes) {
  CL_CHECK(assoc > 0 && line_bytes > 0 && block_bytes > 0);
  const std::uint64_t way_bytes = assoc * static_cast<std::uint64_t>(line_bytes);
  const std::uint64_t sets = cache_bytes / way_bytes;
  const std::uint64_t sets_per_block = (block_bytes + way_bytes - 1) / way_bytes;
  CL_CHECK(sets > 0);
  const std::uint64_t slots = sets / sets_per_block;
  CL_CHECK_MSG(slots > 0, "code block larger than the cache");
  return static_cast<std::uint32_t>(slots);
}

Trg Trg::build(const Trace& trace, const TrgConfig& config) {
  CL_CHECK(config.window_entries > 0);

  Trg graph;
  const Symbol space = trace.symbol_space();
  if (space == 0) return graph;
  LruStack stack(space);

  // The TRG is defined over the trimmed trace, but a run's repeat events are
  // stack no-ops (the symbol is already on top: for_above yields nothing,
  // touch early-returns, no eviction pressure changes), so iterating one
  // event per run of the untrimmed trace — O(run_count) — builds the
  // identical graph without materializing a trimmed copy.
  for (const Run& r : trace.runs()) {
    const Symbol a = r.symbol;
    graph.note_node(a);
    if (stack.resident(a)) {
      // Everything above `a` occurred between its two successive
      // occurrences — one potential conflict per such pair (Definition 6).
      stack.for_above(a, [&](Symbol b) {
        graph.add_edge(a, b, 1);
        return true;
      });
    }
    stack.touch(a);
    stack.evict_to_weight(config.window_entries);
  }
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter("trg.build.runs").add(trace.run_count());
    registry.counter("trg.build.collapsed_events")
        .add(trace.size() - trace.run_count());
  }
  return graph;
}

void Trg::note_node(Symbol s) {
  if (!adj_.contains(s)) {
    adj_.emplace(s, std::unordered_map<Symbol, Weight>{});
    nodes_.push_back(s);
  }
}

void Trg::add_edge(Symbol a, Symbol b, Weight w) {
  CL_CHECK(a != b);
  note_node(a);
  note_node(b);
  adj_[a][b] += w;
  adj_[b][a] += w;
}

Trg::Weight Trg::edge_weight(Symbol a, Symbol b) const {
  const auto it = adj_.find(a);
  if (it == adj_.end()) return 0;
  const auto jt = it->second.find(b);
  return jt == it->second.end() ? 0 : jt->second;
}

std::size_t Trg::edge_count() const {
  std::size_t n = 0;
  for (const auto& [s, nbrs] : adj_) n += nbrs.size();
  return n / 2;
}

std::vector<Trg::Edge> Trg::edges_by_weight() const {
  std::vector<Edge> out;
  out.reserve(edge_count());
  for (const auto& [a, nbrs] : adj_) {
    for (const auto& [b, w] : nbrs) {
      if (a < b) out.push_back(Edge{a, b, w});
    }
  }
  std::sort(out.begin(), out.end(), [](const Edge& x, const Edge& y) {
    if (x.weight != y.weight) return x.weight > y.weight;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  return out;
}

const std::unordered_map<Symbol, Trg::Weight>& Trg::neighbors(Symbol a) const {
  const auto it = adj_.find(a);
  CL_CHECK_MSG(it != adj_.end(), "symbol " << a << " not in TRG");
  return it->second;
}

}  // namespace codelayout
