#include "trg/graph.hpp"

#include <algorithm>

#include "locality/lru_stack.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"
#include "support/registry.hpp"
#include "support/thread_pool.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout {
namespace {

inline std::uint64_t edge_key(Symbol a, Symbol b) {
  const Symbol lo = a < b ? a : b;
  const Symbol hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// Partial result of one build shard: chunk-local first-appearance node
/// order plus the chunk's edge contributions.
struct BuildShard {
  std::vector<Symbol> nodes;
  FlatKeyMap<Trg::Weight> edges;
  std::uint64_t warmup_scanned_runs = 0;
};

/// Processes events [lo, hi) against `stack` (already in the exact serial
/// state at lo), recording nodes in first-appearance order and edge credits
/// for events inside the chunk. Templated on the event accessor: the
/// run-aware path feeds one event per run (repeats are stack no-ops — the
/// symbol is already on top, so for_above yields nothing and touch
/// early-returns), the straight-line path feeds every flat-view event; both
/// drive the stack through the same transactions, so the shard is identical.
template <typename At>
void shard_scan(At&& at, std::size_t lo, std::size_t hi, LruStack& stack,
                std::uint32_t window_entries, Symbol space,
                BuildShard& shard) {
  std::vector<std::uint8_t> noted(space, 0);
  for (std::size_t j = lo; j < hi; ++j) {
    const Symbol a = at(j);
    if (!noted[a]) {
      noted[a] = 1;
      shard.nodes.push_back(a);
    }
    if (stack.resident(a)) {
      // Everything above `a` occurred between its two successive
      // occurrences — one potential conflict per such pair (Definition 6).
      stack.for_above(a, [&](Symbol b) {
        if (!noted[b]) {
          noted[b] = 1;
          shard.nodes.push_back(b);
        }
        shard.edges[edge_key(a, b)] += 1;
        return true;
      });
    }
    stack.touch(a);
    stack.evict_to_weight(window_entries);
  }
}

/// Reconstructs the serial stack state at run index `lo`: the state of a
/// weight-capped LRU stack is the maximal <=cap prefix of the recency
/// (last-occurrence) order of the preceding events, so a backward scan that
/// collects each symbol at its first (most recent) sighting, stopping at the
/// cap, recovers it exactly — no forward replay of the prefix needed. TRG
/// stacks use unit weights, so the cap is a plain entry count.
std::uint64_t warm_start(std::span<const Run> runs, std::size_t lo,
                         std::uint32_t window_entries, Symbol space,
                         LruStack& stack) {
  std::vector<Symbol> recent;  // topmost first
  std::vector<std::uint8_t> seen(space, 0);
  std::size_t scanned = 0;
  for (std::size_t j = lo; j-- > 0 && recent.size() < window_entries;) {
    ++scanned;
    const Symbol s = runs[j].symbol;
    if (seen[s]) continue;
    seen[s] = 1;
    recent.push_back(s);
  }
  stack.restore(recent);
  return scanned;
}

}  // namespace

std::uint32_t trg_window_entries(std::uint64_t cache_bytes,
                                 std::uint32_t block_bytes) {
  CL_CHECK(block_bytes > 0);
  const std::uint64_t entries = 2 * cache_bytes / block_bytes;
  CL_CHECK_MSG(entries > 0, "window smaller than one block");
  return static_cast<std::uint32_t>(entries);
}

std::uint32_t trg_slot_count(std::uint64_t cache_bytes, std::uint32_t assoc,
                             std::uint32_t line_bytes,
                             std::uint32_t block_bytes) {
  CL_CHECK(assoc > 0 && line_bytes > 0 && block_bytes > 0);
  const std::uint64_t way_bytes = assoc * static_cast<std::uint64_t>(line_bytes);
  const std::uint64_t sets = cache_bytes / way_bytes;
  const std::uint64_t sets_per_block = (block_bytes + way_bytes - 1) / way_bytes;
  CL_CHECK(sets > 0);
  const std::uint64_t slots = sets / sets_per_block;
  CL_CHECK_MSG(slots > 0, "code block larger than the cache");
  return static_cast<std::uint32_t>(slots);
}

Trg Trg::build(const Trace& trace, const TrgConfig& config) {
  CL_CHECK(config.window_entries > 0);

  Trg graph;
  const Symbol space = trace.symbol_space();
  if (space == 0) return graph;

  // The TRG is defined over the trimmed trace, but a run's repeat events are
  // stack no-ops (the symbol is already on top: for_above yields nothing,
  // touch early-returns, no eviction pressure changes), so iterating one
  // event per run of the untrimmed trace — O(run_count) — builds the
  // identical graph without materializing a trimmed copy. Chunking the run
  // array also means a shard boundary can never split a run.
  const std::span<const Run> runs = trace.runs();
  // Path decision and flat-view materialization happen once, before any
  // shard fan-out, so workers never race on (or pay for) the build.
  const KernelPath path =
      choose_path(config.dispatch, DispatchKernel::kTrg, trace);
  const std::span<const Symbol> symbols = path == KernelPath::kStraightLine
                                              ? trace.symbols()
                                              : std::span<const Symbol>{};
  std::size_t shard_count = config.shards;
  if (shard_count == 0) {
    shard_count = config.pool == nullptr ? 1 : config.pool->size() + 1;
  }
  shard_count = std::min<std::size_t>(shard_count, runs.size());
  std::uint64_t warmup_scanned = 0;

  if (shard_count <= 1) {
    LruStack stack(space);
    BuildShard whole;
    if (path == KernelPath::kStraightLine) {
      shard_scan([symbols](std::size_t j) { return symbols[j]; }, 0,
                 symbols.size(), stack, config.window_entries, space, whole);
    } else {
      shard_scan([runs](std::size_t j) { return runs[j].symbol; }, 0,
                 runs.size(), stack, config.window_entries, space, whole);
    }
    for (const Symbol s : whole.nodes) graph.note_node(s);
    whole.edges.for_each([&](std::uint64_t key, const Weight& w) {
      graph.edges_[key] = w;
    });
  } else {
    std::vector<BuildShard> shards(shard_count);
    const auto chunk_begin = [&](std::size_t k) {
      return runs.size() * k / shard_count;
    };
    // Chunk boundaries live in run space on both paths (a boundary can never
    // split a run); the straight-line shards additionally need the event
    // offset of each boundary, computed by one linear pass over the runs.
    std::vector<std::uint64_t> event_begin;
    if (path == KernelPath::kStraightLine) {
      event_begin.resize(shard_count + 1);
      std::uint64_t events = 0;
      std::size_t next_run = 0;
      for (std::size_t k = 0; k <= shard_count; ++k) {
        const std::size_t boundary = chunk_begin(k);
        for (; next_run < boundary; ++next_run) {
          events += runs[next_run].length;
        }
        event_begin[k] = events;
      }
    }
    ParallelTaskSet tasks(config.pool, shard_count, [&](std::size_t k) {
      CODELAYOUT_PHASE("trg_shard", "analysis", "analysis.trg_shard.wall_ns",
                       {"shard", std::uint64_t{k}});
      const std::size_t lo = chunk_begin(k);
      const std::size_t hi = chunk_begin(k + 1);
      LruStack stack(space);
      // warm_start reconstructs the serial stack at run boundary lo, which
      // is also the state at flat event event_begin[k] (the run's first
      // event), so both scans start from the identical stack.
      shards[k].warmup_scanned_runs =
          warm_start(runs, lo, config.window_entries, space, stack);
      if (path == KernelPath::kStraightLine) {
        shard_scan([symbols](std::size_t j) { return symbols[j]; },
                   static_cast<std::size_t>(event_begin[k]),
                   static_cast<std::size_t>(event_begin[k + 1]), stack,
                   config.window_entries, space, shards[k]);
      } else {
        shard_scan([runs](std::size_t j) { return runs[j].symbol; }, lo, hi,
                   stack, config.window_entries, space, shards[k]);
      }
    });
    // Fold in chunk order as shards complete: concatenating the chunk-local
    // first-appearance lists and keeping each symbol's first sighting
    // reproduces the serial first-appearance order (a symbol credited from
    // warm-up residency necessarily occurred in an earlier chunk), and edge
    // weights add because every event belongs to exactly one chunk.
    for (std::size_t k = 0; k < shard_count; ++k) {
      tasks.wait(k);
      for (const Symbol s : shards[k].nodes) graph.note_node(s);
      shards[k].edges.for_each([&](std::uint64_t key, const Weight& w) {
        graph.edges_[key] += w;
      });
      warmup_scanned += shards[k].warmup_scanned_runs;
    }
  }

  graph.ensure_adjacency();
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter("trg.build.runs").add(trace.run_count());
    registry.counter("trg.build.collapsed_events")
        .add(trace.size() - trace.run_count());
    registry.counter("trg.build.shards").add(shard_count);
    registry.counter("trg.build.warmup_runs").add(warmup_scanned);
  }
  return graph;
}

void Trg::note_node(Symbol s) {
  if (s >= node_index_.size()) node_index_.resize(s + 1, kNoNode);
  if (node_index_[s] == kNoNode) {
    node_index_[s] = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(s);
  }
}

void Trg::add_edge(Symbol a, Symbol b, Weight w) {
  CL_CHECK(a != b);
  note_node(a);
  note_node(b);
  edges_[edge_key(a, b)] += w;
  adjacency_valid_ = false;
}

Trg::Weight Trg::edge_weight(Symbol a, Symbol b) const {
  if (a == b) return 0;
  const Weight* w = edges_.find(edge_key(a, b));
  return w == nullptr ? 0 : *w;
}

std::vector<Trg::Edge> Trg::edges_by_weight() const {
  std::vector<Edge> out;
  out.reserve(edge_count());
  edges_.for_each([&](std::uint64_t key, const Weight& w) {
    out.push_back(Edge{static_cast<Symbol>(key >> 32),
                       static_cast<Symbol>(key & 0xffffffffu), w});
  });
  std::sort(out.begin(), out.end(), [](const Edge& x, const Edge& y) {
    if (x.weight != y.weight) return x.weight > y.weight;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  return out;
}

std::span<const Trg::Neighbor> Trg::neighbors(Symbol a) const {
  const std::uint32_t position = node_position(a);
  CL_CHECK_MSG(position != kNoNode, "symbol " << a << " not in TRG");
  ensure_adjacency();
  return {adj_.data() + adj_offsets_[position],
          adj_offsets_[position + 1] - adj_offsets_[position]};
}

void Trg::ensure_adjacency() const {
  if (adjacency_valid_) return;
  adj_offsets_.assign(nodes_.size() + 1, 0);
  edges_.for_each([&](std::uint64_t key, const Weight&) {
    ++adj_offsets_[node_position(static_cast<Symbol>(key >> 32)) + 1];
    ++adj_offsets_[node_position(static_cast<Symbol>(key & 0xffffffffu)) + 1];
  });
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    adj_offsets_[i + 1] += adj_offsets_[i];
  }
  adj_.resize(adj_offsets_.back());
  std::vector<std::uint32_t> cursor(adj_offsets_.begin(),
                                    adj_offsets_.end() - 1);
  edges_.for_each([&](std::uint64_t key, const Weight& w) {
    const auto lo = static_cast<Symbol>(key >> 32);
    const auto hi = static_cast<Symbol>(key & 0xffffffffu);
    adj_[cursor[node_position(lo)]++] = Neighbor{hi, w};
    adj_[cursor[node_position(hi)]++] = Neighbor{lo, w};
  });
  // Sort each slice by neighbor symbol so iteration order is deterministic
  // regardless of the accumulator's internal layout (and of shard count).
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::sort(adj_.begin() + adj_offsets_[i],
              adj_.begin() + adj_offsets_[i + 1],
              [](const Neighbor& x, const Neighbor& y) { return x.to < y.to; });
  }
  adjacency_valid_ = true;
}

}  // namespace codelayout
