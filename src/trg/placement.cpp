#include "trg/placement.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"
#include "trg/reduction.hpp"

namespace codelayout {
namespace {

}  // namespace

PlacementResult gloy_smith_placement(const Module& module, const Trg& graph,
                                     const PlacementConfig& config) {
  CL_CHECK(config.line_bytes > 0 && config.associativity > 0);
  const std::uint64_t sets =
      config.cache_bytes / config.line_bytes / config.associativity;
  CL_CHECK_MSG(sets > 0, "degenerate cache geometry");
  const std::uint64_t way_span = sets * config.line_bytes;

  // Bytes a block needs, including headroom for the fix-up jump and entry
  // trampoline from_addresses may charge.
  auto reserved_bytes = [&](const BasicBlock& b) -> std::uint32_t {
    std::uint32_t bytes = b.size_bytes;
    if (b.has_fallthrough) bytes += kJumpBytes;
    if (module.function(b.parent).entry == b.id) bytes += kJumpBytes;
    return bytes;
  };

  // --- Alignment pass: desired start set per hot block --------------------
  // Heaviest-edge-first; the first endpoint of the first edge anchors at
  // set 0, every later unplaced endpoint picks the start set with the
  // least weighted line-range overlap against its placed neighbors.
  std::unordered_map<Symbol, std::uint64_t> chosen_set;
  auto lines_of = [&](Symbol s) {
    const BasicBlock& b = module.block(BlockId(s));
    return (reserved_bytes(b) + config.line_bytes - 1) / config.line_bytes;
  };
  auto choose = [&](Symbol s) {
    if (chosen_set.contains(s)) return;
    std::vector<double> pressure(sets, 0.0);
    bool any_neighbor = false;
    for (const auto& [nb, w] : graph.neighbors(s)) {
      const auto it = chosen_set.find(nb);
      if (it == chosen_set.end()) continue;
      any_neighbor = true;
      const std::uint64_t span = lines_of(nb);
      for (std::uint64_t k = 0; k < span && k < sets; ++k) {
        pressure[(it->second + k) % sets] += static_cast<double>(w);
      }
    }
    if (!any_neighbor) {
      chosen_set.emplace(s, 0);
      return;
    }
    const std::uint64_t my_span = std::min<std::uint64_t>(lines_of(s), sets);
    std::uint64_t best = 0;
    double best_cost = -1.0;
    for (std::uint64_t cand = 0; cand < sets; ++cand) {
      double cost = 0.0;
      for (std::uint64_t k = 0; k < my_span; ++k) {
        cost += pressure[(cand + k) % sets];
      }
      if (best_cost < 0.0 || cost < best_cost) {
        best_cost = cost;
        best = cand;
      }
    }
    chosen_set.emplace(s, best);
  };
  for (const Trg::Edge& e : graph.edges_by_weight()) {
    choose(e.a);
    choose(e.b);
  }

  // --- Layout pass: reduction order, padded to the chosen alignment -------
  const std::vector<Symbol> order =
      reduce_trg(graph, static_cast<std::uint32_t>(sets)).order;
  std::vector<std::pair<BlockId, std::uint64_t>> placed;
  placed.reserve(module.block_count());
  std::uint64_t cursor = 0;
  std::uint64_t padding = 0;

  std::vector<bool> done(module.block_count(), false);
  auto emit_at = [&](BlockId id, std::uint64_t addr) {
    placed.emplace_back(id, addr);
    done[id.index()] = true;
  };
  for (Symbol s : order) {
    const BlockId id(s);
    if (done[id.index()]) continue;
    const auto it = chosen_set.find(s);
    if (it != chosen_set.end()) {
      const std::uint64_t want = it->second * config.line_bytes;
      const std::uint64_t offset = cursor % way_span;
      const std::uint64_t pad =
          offset <= want ? want - offset : way_span - offset + want;
      padding += pad;
      cursor += pad;
    }
    emit_at(id, cursor);
    cursor += reserved_bytes(module.block(id));
  }
  // Cold blocks fill in afterwards, unaligned (they are never fetched, so
  // they take no padding; a production system would pour them into the
  // alignment gaps).
  for (const Function& f : module.functions()) {
    for (BlockId b : f.blocks) {
      if (done[b.index()]) continue;
      emit_at(b, cursor);
      cursor += reserved_bytes(module.block(b));
    }
  }

  return PlacementResult{
      .layout = CodeLayout::from_addresses(module, std::move(placed),
                                           /*with_entry_stubs=*/true),
      .padding_bytes = padding};
}

}  // namespace codelayout
