#include "trg/reduction.hpp"

#include <limits>
#include <queue>
#include <unordered_map>

#include "support/check.hpp"

namespace codelayout {
namespace {

/// Node key space: original symbols, then one supernode key per slot.
using Key = std::uint64_t;

struct HeapEdge {
  Trg::Weight weight;
  Key u, v;  // u < v

  /// priority_queue pops the largest; heavier first, then lower keys for
  /// determinism.
  friend bool operator<(const HeapEdge& x, const HeapEdge& y) {
    if (x.weight != y.weight) return x.weight < y.weight;
    if (x.u != y.u) return x.u > y.u;
    return x.v > y.v;
  }
};

class Reducer {
 public:
  Reducer(const Trg& graph, std::uint32_t slot_count)
      : graph_(graph), k_(slot_count) {
    CL_CHECK(slot_count > 0);
    Symbol space = 0;
    for (Symbol s : graph.nodes()) space = std::max(space, s + 1);
    super_base_ = space;
    slots_.resize(k_);

    for (Symbol s : graph.nodes()) {
      adj_[s];  // ensure presence even for isolated nodes
      for (const auto& [n, w] : graph.neighbors(s)) adj_[s][n] = w;
    }
    for (Symbol s : graph.nodes()) {
      for (const auto& [n, w] : graph.neighbors(s)) {
        if (s < n) heap_.push(HeapEdge{w, s, n});
      }
    }
  }

  TrgReduction run() {
    while (!heap_.empty()) {
      const HeapEdge e = heap_.top();
      heap_.pop();
      if (!edge_current(e)) continue;
      if (is_symbol(e.u) && !placed_.contains(e.u)) place(static_cast<Symbol>(e.u));
      if (is_symbol(e.v) && !placed_.contains(e.v)) place(static_cast<Symbol>(e.v));
    }
    // Conflict-free leftovers go through the same selection rule.
    for (Symbol s : graph_.nodes()) {
      if (!placed_.contains(s)) place(s);
    }

    TrgReduction result;
    result.slots = slots_;
    std::vector<std::size_t> cursor(k_, 0);
    bool any = true;
    while (any) {
      any = false;
      for (std::uint32_t k = 0; k < k_; ++k) {
        if (cursor[k] < slots_[k].size()) {
          result.order.push_back(slots_[k][cursor[k]++]);
          any = true;
        }
      }
    }
    return result;
  }

 private:
  [[nodiscard]] bool is_symbol(Key key) const { return key < super_base_; }
  [[nodiscard]] Key super_key(std::uint32_t slot) const {
    return super_base_ + slot;
  }

  [[nodiscard]] bool edge_current(const HeapEdge& e) const {
    const auto it = adj_.find(e.u);
    if (it == adj_.end()) return false;
    const auto jt = it->second.find(e.v);
    return jt != it->second.end() && jt->second == e.weight;
  }

  [[nodiscard]] Trg::Weight conflict_with_slot(Symbol s,
                                               std::uint32_t slot) const {
    const auto it = adj_.find(s);
    if (it == adj_.end()) return 0;
    const auto jt = it->second.find(super_key(slot));
    return jt == it->second.end() ? 0 : jt->second;
  }

  void place(Symbol s) {
    // Steps 4-16: first empty slot wins; otherwise least conflict, first
    // such slot on ties (strict < keeps the earliest minimum).
    std::uint32_t target = 0;
    Trg::Weight conflicts = std::numeric_limits<Trg::Weight>::max();
    for (std::uint32_t k = 0; k < k_; ++k) {
      if (slots_[k].empty()) {
        target = k;
        conflicts = 0;
        break;
      }
      const Trg::Weight w = conflict_with_slot(s, k);
      if (w < conflicts) {
        conflicts = w;
        target = k;
      }
    }
    slots_[target].push_back(s);
    placed_.emplace(s, target);

    // Steps 17-21: merge s into the slot's supernode; combine edge weights;
    // edges toward the other slots disappear.
    const Key su = super_key(target);
    auto& sym_adj = adj_[s];
    for (const auto& [n, w] : sym_adj) {
      adj_[n].erase(s);
      if (!is_symbol(n)) continue;  // edge to another slot: removed
      const Trg::Weight combined = (adj_[su][n] += w);
      adj_[n][su] = combined;
      heap_.push(HeapEdge{combined, std::min(su, n), std::max(su, n)});
    }
    adj_.erase(s);
  }

  const Trg& graph_;
  std::uint32_t k_;
  Key super_base_;
  std::vector<std::vector<Symbol>> slots_;
  std::unordered_map<Key, std::unordered_map<Key, Trg::Weight>> adj_;
  std::unordered_map<Symbol, std::uint32_t> placed_;
  std::priority_queue<HeapEdge> heap_;
};

}  // namespace

TrgReduction reduce_trg(const Trg& graph, std::uint32_t slot_count) {
  return Reducer(graph, slot_count).run();
}

}  // namespace codelayout
