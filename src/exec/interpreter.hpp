// Deterministic CFG interpreter — the profiling substrate.
//
// Stands in for the paper's LLVM instrumentation + test-input run: executing
// a Module yields the dynamic basic-block trace (and, by projection, the
// function trace) that the locality models analyze. Control flow is resolved
// with a seeded Rng against the CFG edge probabilities, so a (module, seed)
// pair always reproduces the same trace.
#pragma once

#include <cstdint>

#include "ir/module.hpp"
#include "support/rng.hpp"
#include "trace/trace.hpp"

namespace codelayout {

struct ExecLimits {
  /// Stop after this many block events (a "test input" sized run).
  std::uint64_t max_events = 1'000'000;
  /// Calls deeper than this are elided (counted but not entered), which
  /// bounds recursive call chains the same way a real stack would not.
  std::uint32_t max_call_depth = 64;
};

struct ProfileResult {
  Trace block_trace{Trace::Granularity::kBlock};
  std::uint64_t dynamic_instructions = 0;
  std::uint64_t calls_executed = 0;
  std::uint64_t calls_elided = 0;
  /// True when max_events stopped the run before main returned.
  bool truncated = false;
};

/// Runs `module` from its entry function. Requires a validated module.
ProfileResult profile(const Module& module, std::uint64_t seed,
                      const ExecLimits& limits = {});

}  // namespace codelayout
