#include "exec/interpreter.hpp"

#include <vector>

namespace codelayout {
namespace {

struct Frame {
  BlockId block;
  std::uint32_t next_call = 0;  ///< index of the next call site to consider
  bool recorded = false;        ///< block event emitted for this visit
};

}  // namespace

ProfileResult profile(const Module& module, std::uint64_t seed,
                      const ExecLimits& limits) {
  CL_CHECK(limits.max_events > 0);
  module.validate();

  Rng rng(hash_combine(seed, 0x636f646572756eULL));
  ProfileResult result;
  result.block_trace.reserve(limits.max_events);

  std::vector<Frame> stack;
  stack.reserve(limits.max_call_depth + 1);
  stack.push_back(Frame{module.function(module.entry_function()).entry});

  while (!stack.empty()) {
    Frame& frame = stack.back();
    const BasicBlock& bb = module.block(frame.block);

    if (!frame.recorded) {
      if (result.block_trace.size() >= limits.max_events) {
        result.truncated = true;
        break;
      }
      result.block_trace.push(bb.id);
      result.dynamic_instructions += bb.instructions();
      frame.recorded = true;
    }

    // Run remaining call sites of this block visit.
    if (frame.next_call < bb.calls.size()) {
      const CallSite& site = bb.calls[frame.next_call++];
      if (rng.chance(site.probability)) {
        if (stack.size() <= limits.max_call_depth) {
          ++result.calls_executed;
          stack.push_back(
              Frame{module.function(site.callee).entry});
        } else {
          ++result.calls_elided;
        }
      }
      continue;
    }

    // Calls done: take the terminator.
    if (bb.is_return()) {
      stack.pop_back();
      continue;
    }
    double r = rng.uniform();
    BlockId next = bb.successors.back().target;
    for (const CfgEdge& e : bb.successors) {
      r -= e.probability;
      if (r < 0.0) {
        next = e.target;
        break;
      }
    }
    frame.block = next;
    frame.next_call = 0;
    frame.recorded = false;
  }

  return result;
}

}  // namespace codelayout
