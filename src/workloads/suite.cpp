// The 29-program suite named after SPEC CPU2006 (paper Fig. 4 / Table I).
//
// Parameters are calibrated against the paper's measured landscape:
//   * ~30% of the suite shows non-trivial solo L1I miss ratios (Fig. 4);
//   * the probe programs gcc and gamess inflate peers' miss ratios by ~67%
//     and ~153% on average (the intro table) — gamess runs a large resident
//     working set with strong internal locality, so it is polite to itself
//     and brutal to peers;
//   * mcf has a tiny instruction footprint (near-zero solo misses) but is
//     co-run sensitive through its data-bound CPI.
// The calibration lever per program is the hot working-set size per phase
// (funcs_per_phase × per-function lines), the number of phases, and the
// phase dwell time (phase_repeat).
#include <algorithm>

#include "support/check.hpp"
#include "workloads/spec.hpp"

namespace codelayout {
namespace {

WorkloadSpec base(std::string name, std::uint64_t seed) {
  WorkloadSpec s;
  s.name = std::move(name);
  s.seed = seed;
  return s;
}

/// Convenience for the many small-footprint programs at the right of Fig. 4.
WorkloadSpec quiet(std::string name, std::uint64_t seed,
                   std::uint32_t funcs_per_phase, double phase_repeat,
                   std::uint32_t cold_funcs, double data_stall) {
  WorkloadSpec s = base(std::move(name), seed);
  s.phases = 2;
  s.funcs_per_phase = funcs_per_phase;
  s.phase_repeat = phase_repeat;
  s.cold_funcs = cold_funcs;
  s.data_stall_cpi = data_stall;
  return s;
}

std::vector<WorkloadSpec> make_suite() {
  std::vector<WorkloadSpec> suite;
  auto add = [&](WorkloadSpec s) { suite.push_back(std::move(s)); };

  // ---- The 8 selected benchmarks (Table I) -------------------------------
  {
    auto s = base("400.perlbench", 4001);  // solo ~2.0%
    s.phases = 5;
    s.funcs_per_phase = 34;
    s.phase_repeat = 8;
    s.cold_funcs = 400;
    s.data_stall_cpi = 0.7;
    add(s);
  }
  {
    auto s = base("403.gcc", 4031);  // solo ~1.6%; probe 1 (mild)
    s.phases = 8;
    s.funcs_per_phase = 24;
    s.phase_repeat = 4;
    s.inner_repeat = 3.0;  // little inner reuse: phase churn dominates
    s.cold_funcs = 900;
    s.data_stall_cpi = 0.8;
    add(s);
  }
  {
    auto s = base("429.mcf", 4291);  // solo ~0%; tiny code, data-bound
    s.phases = 1;
    s.funcs_per_phase = 3;
    s.shared_funcs = 2;
    s.phase_repeat = 80;
    s.inner_repeat = 20;
    s.diamonds_min = 2;
    s.diamonds_max = 3;
    s.hot_branch_bias = 0.98;  // near-deterministic inner loop
    s.call_prob = 0.98;
    s.cold_funcs = 12;
    s.data_stall_cpi = 3.0;
    add(s);
  }
  {
    auto s = base("445.gobmk", 4451);  // solo ~2.7%
    s.phases = 4;
    s.funcs_per_phase = 56;
    s.phase_repeat = 10;
    s.cold_funcs = 450;
    s.data_stall_cpi = 0.5;
    add(s);
  }
  {
    auto s = base("453.povray", 4531);  // solo ~2.1%
    s.phases = 5;
    s.funcs_per_phase = 38;
    s.phase_repeat = 9;
    s.cold_funcs = 260;
    s.data_stall_cpi = 0.4;
    add(s);
  }
  {
    auto s = base("458.sjeng", 4581);  // solo ~0.6%, co-run sensitive
    s.phases = 3;
    s.funcs_per_phase = 19;
    s.phase_repeat = 40;
    s.cold_funcs = 80;
    s.data_stall_cpi = 0.5;
    add(s);
  }
  {
    auto s = base("471.omnetpp", 4711);  // solo ~0.4%, highly sensitive
    s.phases = 3;
    s.funcs_per_phase = 20;
    s.phase_repeat = 35;
    s.cold_funcs = 280;
    s.data_stall_cpi = 1.2;
    add(s);
  }
  {
    auto s = base("483.xalancbmk", 4831);  // solo ~1.5%; huge static code
    s.phases = 6;
    s.funcs_per_phase = 28;
    s.phase_repeat = 10;
    s.cold_funcs = 2600;
    s.cold_func_blocks = 16;
    s.data_stall_cpi = 0.9;
    add(s);
  }

  // ---- The second probe ---------------------------------------------------
  {
    auto s = base("416.gamess", 4161);  // solo ~0.3%; brutal peer
    s.phases = 2;
    s.funcs_per_phase = 48;
    s.phase_repeat = 150;
    s.inner_repeat = 12;
    // Dense Fortran-style code: big straight-line blocks, no cold paths,
    // hot modules contiguous — low self-conflict, large resident set.
    s.interleave_cold_funcs = false;
    s.diamonds_min = 2;
    s.diamonds_max = 3;
    s.hot_branch_bias = 0.95;
    s.hot_block_bytes_min = 64;
    s.hot_block_bytes_max = 160;
    s.cold_blocks_per_diamond = 0;
    s.cold_funcs = 600;
    s.data_stall_cpi = 0.5;
    add(s);
  }

  // ---- Remaining non-trivial programs (Fig. 4 mid-field) -----------------
  {
    auto s = base("456.hmmer", 4561);  // ~1.2%
    s.phases = 4;
    s.funcs_per_phase = 24;
    s.phase_repeat = 11;
    s.cold_funcs = 90;
    s.data_stall_cpi = 0.5;
    add(s);
  }
  {
    auto s = base("401.bzip2", 4011);  // ~0.9%
    s.phases = 3;
    s.funcs_per_phase = 22;
    s.phase_repeat = 16;
    s.cold_funcs = 40;
    s.data_stall_cpi = 0.7;
    add(s);
  }
  {
    auto s = base("464.h264ref", 4641);  // ~0.8%
    s.phases = 3;
    s.funcs_per_phase = 21;
    s.phase_repeat = 18;
    s.cold_funcs = 140;
    s.data_stall_cpi = 0.6;
    add(s);
  }

  // ---- Quiet programs (small hot footprints, Fig. 4 tail) ----------------
  add(quiet("410.bwaves", 4101, 14, 50, 30, 1.5));
  add(quiet("434.zeusmp", 4341, 9, 70, 60, 1.4));
  add(quiet("435.gromacs", 4351, 12, 60, 70, 0.9));
  add(quiet("444.namd", 4441, 10, 70, 50, 0.8));
  add(quiet("436.cactusADM", 4361, 10, 70, 90, 1.6));
  add(quiet("433.milc", 4331, 9, 80, 40, 1.8));
  add(quiet("447.dealII", 4471, 7, 100, 300, 0.9));
  add(quiet("482.sphinx3", 4821, 8, 90, 80, 1.3));
  add(quiet("481.wrf", 4811, 8, 90, 400, 1.2));
  add(quiet("450.soplex", 4501, 7, 100, 120, 1.5));
  add(quiet("470.lbm", 4701, 5, 150, 15, 2.2));
  add(quiet("462.libquantum", 4621, 5, 150, 12, 2.0));
  add(quiet("465.tonto", 4651, 13, 60, 500, 0.8));
  add(quiet("473.astar", 4731, 6, 120, 25, 1.4));
  add(quiet("459.GemsFDTD", 4591, 6, 120, 90, 1.7));
  add(quiet("454.calculix", 4541, 5, 140, 150, 1.2));
  add(quiet("437.leslie3d", 4371, 5, 140, 60, 1.5));

  CL_CHECK_MSG(suite.size() == 29, "suite has " << suite.size()
                                                << " entries, expected 29");
  return suite;
}

}  // namespace

const std::vector<WorkloadSpec>& spec_suite() {
  static const std::vector<WorkloadSpec> suite = make_suite();
  return suite;
}

const std::vector<std::string>& selected_benchmarks() {
  static const std::vector<std::string> selected = {
      "400.perlbench", "403.gcc",     "429.mcf",     "445.gobmk",
      "453.povray",    "458.sjeng",   "471.omnetpp", "483.xalancbmk"};
  return selected;
}

const WorkloadSpec& find_spec(const std::string& name) {
  for (const WorkloadSpec& s : spec_suite()) {
    if (s.name == name) return s;
  }
  CL_CHECK_MSG(false, "unknown workload " << name);
  // Unreachable; CL_CHECK_MSG throws.
  throw ContractError("unreachable");
}

}  // namespace codelayout
