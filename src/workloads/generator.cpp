#include <algorithm>

#include "support/rng.hpp"
#include "workloads/spec.hpp"

namespace codelayout {
namespace {

constexpr std::uint32_t kEntryBytes = 24;
constexpr std::uint32_t kBranchBytes = 16;
constexpr std::uint32_t kSpinBytes = 16;
constexpr std::uint32_t kReturnBytes = 16;
constexpr std::uint32_t kDriverBodyBytes = 64;
constexpr std::uint32_t kVisitBytes = 32;

std::uint32_t rand_size(Rng& rng, std::uint32_t lo, std::uint32_t hi) {
  // Instruction-aligned block size in [lo, hi].
  const auto raw = static_cast<std::uint32_t>(rng.range(lo, hi));
  return std::max<std::uint32_t>(kInstrBytes,
                                 raw / kInstrBytes * kInstrBytes);
}

/// Builds one hot function: entry, a run of branch diamonds with one hot and
/// one cold side each, and a return block — in compiler source order, so the
/// original layout interleaves hot and cold code.
FuncId build_hot_function(Module& m, const WorkloadSpec& spec, Rng& rng,
                          const std::string& name,
                          const std::vector<FuncId>& utils,
                          const std::vector<FuncId>& cold_funcs) {
  const FuncId f = m.add_function(name);
  const BlockId entry = m.add_block(f, kEntryBytes);
  const auto diamonds = static_cast<std::uint32_t>(
      rng.range(spec.diamonds_min, spec.diamonds_max));

  BlockId prev = entry;       // falls through into the first branch
  for (std::uint32_t d = 0; d < diamonds; ++d) {
    BlockId br;
    // Optionally precede the diamond with a call-free self-looping spin
    // block (a polling/latch loop): it re-executes with no callee events in
    // between, so the trace records a long same-block run — the pattern the
    // run-length trace core compresses. The spin_prob > 0 short-circuit
    // keeps the RNG stream of spin-free specs untouched.
    if (spec.spin_prob > 0.0 && rng.chance(spec.spin_prob)) {
      const BlockId sp = m.add_block(f, kSpinBytes);
      m.add_edge(prev, sp, 1.0, /*fallthrough=*/true);
      const double back = spec.spin_repeat / (spec.spin_repeat + 1.0);
      m.add_edge(sp, sp, back);
      br = m.add_block(f, kBranchBytes);
      m.add_edge(sp, br, 1.0 - back, /*fallthrough=*/true);
    } else {
      br = m.add_block(f, kBranchBytes);
      m.add_edge(prev, br, 1.0, /*fallthrough=*/true);
    }

    // Dense code (cold_blocks_per_diamond == 0): the branch either runs the
    // hot chain or skips straight to the join — no cold blocks at all.
    if (spec.cold_blocks_per_diamond == 0) {
      std::vector<BlockId> hot_chain;
      const std::uint32_t len = rng.chance(0.3) ? 2 : 1;
      for (std::uint32_t i = 0; i < len; ++i) {
        const BlockId h = m.add_block(
            f, rand_size(rng, spec.hot_block_bytes_min,
                         spec.hot_block_bytes_max));
        if (!utils.empty() && rng.chance(spec.util_call_prob)) {
          m.add_call(h, utils[rng.below(utils.size())], 0.9);
        }
        hot_chain.push_back(h);
      }
      for (std::size_t i = 0; i + 1 < hot_chain.size(); ++i) {
        m.add_edge(hot_chain[i], hot_chain[i + 1], 1.0, /*fallthrough=*/true);
      }
      const BlockId next_br = m.add_block(
          f, d + 1 < diamonds ? kBranchBytes : kReturnBytes);
      m.add_edge(br, hot_chain.front(), spec.hot_branch_bias,
                 /*fallthrough=*/true);
      m.add_edge(br, next_br, 1.0 - spec.hot_branch_bias);
      m.add_edge(hot_chain.back(), next_br, 1.0, /*fallthrough=*/true);
      prev = next_br;
      if (d + 1 == diamonds) break;
      continue;
    }

    const bool cold_then = rng.chance(spec.cold_then_prob);
    // Source order: branch, then-side, else-side. The then-side is the
    // fall-through; the else-side is reached by the taken branch.
    std::vector<BlockId> then_side, else_side;
    auto make_hot_chain = [&] {
      std::vector<BlockId> chain;
      const std::uint32_t len = rng.chance(0.3) ? 2 : 1;
      for (std::uint32_t i = 0; i < len; ++i) {
        const BlockId h = m.add_block(
            f, rand_size(rng, spec.hot_block_bytes_min,
                         spec.hot_block_bytes_max));
        if (!utils.empty() && rng.chance(spec.util_call_prob)) {
          m.add_call(h, utils[rng.below(utils.size())], 0.9);
        }
        chain.push_back(h);
      }
      return chain;
    };
    auto make_cold_chain = [&] {
      std::vector<BlockId> chain;
      for (std::uint32_t i = 0; i < spec.cold_blocks_per_diamond; ++i) {
        const BlockId c = m.add_block(f, spec.cold_block_bytes);
        if (!cold_funcs.empty() && i == 0 && rng.chance(0.3)) {
          m.add_call(c, cold_funcs[rng.below(cold_funcs.size())],
                     spec.cold_call_prob);
        }
        chain.push_back(c);
      }
      return chain;
    };

    if (cold_then) {
      then_side = make_cold_chain();
      else_side = make_hot_chain();
    } else {
      then_side = make_hot_chain();
      else_side = make_cold_chain();
    }
    // Wire the chains.
    for (std::size_t i = 0; i + 1 < then_side.size(); ++i) {
      m.add_edge(then_side[i], then_side[i + 1], 1.0, /*fallthrough=*/true);
    }
    for (std::size_t i = 0; i + 1 < else_side.size(); ++i) {
      m.add_edge(else_side[i], else_side[i + 1], 1.0, /*fallthrough=*/true);
    }
    // Branch probabilities: the hot side is taken with hot_branch_bias.
    const double p_then = cold_then ? 1.0 - spec.hot_branch_bias
                                    : spec.hot_branch_bias;
    m.add_edge(br, then_side.front(), p_then, /*fallthrough=*/true);
    m.add_edge(br, else_side.front(), 1.0 - p_then);

    // Both sides converge on the next diamond (or the return block). The
    // else-side's last block is followed in source order by whatever comes
    // next, so it falls through; the then-side's last block must jump over
    // the else-side.
    const BlockId next_br = m.add_block(
        f, d + 1 < diamonds ? kBranchBytes : kReturnBytes);
    m.add_edge(then_side.back(), next_br, 1.0, /*fallthrough=*/false);
    m.add_edge(else_side.back(), next_br, 1.0, /*fallthrough=*/true);
    prev = next_br;
    if (d + 1 == diamonds) {
      // prev is the return block: no successors.
      break;
    }
    // prev is the next branch; continue the loop with it acting as `br`.
    // To keep the shape simple the convergence block itself branches next
    // iteration, so re-seed the loop: treat it as the "prev" that falls
    // into a fresh branch block.
  }
  return f;
}

/// A small shared utility: entry -> body -> return.
FuncId build_util_function(Module& m, Rng& rng, const std::string& name) {
  const FuncId f = m.add_function(name);
  const BlockId entry = m.add_block(f, kEntryBytes);
  const BlockId body = m.add_block(
      f, rand_size(rng, 32, 96));
  const BlockId ret = m.add_block(f, kReturnBytes);
  m.add_edge(entry, body, 1.0, /*fallthrough=*/true);
  m.add_edge(body, ret, 1.0, /*fallthrough=*/true);
  return f;
}

/// Cold code: a straight chain that is (almost) never executed.
FuncId build_cold_function(Module& m, const WorkloadSpec& spec, Rng& rng,
                           const std::string& name) {
  const FuncId f = m.add_function(name);
  std::vector<BlockId> chain;
  for (std::uint32_t i = 0; i < spec.cold_func_blocks; ++i) {
    chain.push_back(m.add_block(
        f, rand_size(rng, spec.cold_func_block_bytes / 2,
                     spec.cold_func_block_bytes * 3 / 2)));
  }
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    m.add_edge(chain[i], chain[i + 1], 1.0, /*fallthrough=*/true);
  }
  return f;
}

}  // namespace

Module build_workload(const WorkloadSpec& spec) {
  CL_CHECK(spec.phases > 0 && spec.funcs_per_phase > 0);
  Rng rng(hash_combine(spec.seed, 0x776f726b6c6f6164ULL));
  Module m(spec.name);

  // main and the per-phase drivers come first, like a program's core.
  const FuncId main_fn = m.add_function("main");
  m.set_entry_function(main_fn);

  std::vector<FuncId> drivers;
  for (std::uint32_t p = 0; p < spec.phases; ++p) {
    drivers.push_back(m.add_function("phase" + std::to_string(p) + "_driver"));
  }

  // Shared utilities.
  std::vector<FuncId> utils;
  for (std::uint32_t u = 0; u < spec.shared_funcs; ++u) {
    utils.push_back(build_util_function(m, rng, "util" + std::to_string(u)));
  }

  // A pool of cold functions created up front so hot code can call them.
  std::vector<FuncId> cold_pool;
  const std::uint32_t up_front_cold = spec.cold_funcs / 4;
  for (std::uint32_t c = 0; c < up_front_cold; ++c) {
    cold_pool.push_back(
        build_cold_function(m, spec, rng, "cold" + std::to_string(c)));
  }

  // Hot functions, interleaved in program order with the remaining cold
  // functions so the original layout scatters the hot working set. The
  // phase assignment along source order starts phase-major and is shuffled
  // by `phase_scatter` random swaps per function.
  const std::uint32_t hot_total = spec.phases * spec.funcs_per_phase;
  const std::uint32_t cold_rest = spec.cold_funcs - up_front_cold;
  std::vector<std::uint32_t> phase_of(hot_total);
  for (std::uint32_t i = 0; i < hot_total; ++i) {
    phase_of[i] = i / spec.funcs_per_phase;  // phase-major base order
  }
  const auto swaps =
      static_cast<std::uint32_t>(spec.phase_scatter * hot_total);
  for (std::uint32_t k = 0; k < swaps; ++k) {
    std::swap(phase_of[rng.below(hot_total)], phase_of[rng.below(hot_total)]);
  }
  std::vector<std::vector<FuncId>> phase_funcs(spec.phases);
  std::uint32_t cold_created = 0;
  for (std::uint32_t i = 0; i < hot_total; ++i) {
    const std::uint32_t p = phase_of[i];
    const auto idx = phase_funcs[p].size();
    // Built via append rather than `"p" + ...` to dodge a GCC 12 -O3
    // -Wrestrict false positive (GCC PR105651) in std::operator+.
    std::string hot_name = "p";
    hot_name += std::to_string(p);
    hot_name += "_f";
    hot_name += std::to_string(idx);
    phase_funcs[p].push_back(
        build_hot_function(m, spec, rng, hot_name, utils, cold_pool));
    // Sprinkle a fraction of the cold functions between hot ones, evenly
    // (C/C++-style program order); dense Fortran-style modules keep hot
    // code contiguous.
    if (spec.interleave_cold_funcs) {
      const auto interleaved_total = static_cast<std::uint32_t>(
          spec.cold_interleave_fraction * cold_rest);
      const std::uint32_t want =
          static_cast<std::uint32_t>((static_cast<std::uint64_t>(i + 1) *
                                      interleaved_total) / hot_total);
      while (cold_created < want) {
        build_cold_function(
            m, spec, rng,
            "cold" + std::to_string(up_front_cold + cold_created));
        ++cold_created;
      }
    }
  }
  while (cold_created < cold_rest) {
    build_cold_function(m, spec, rng,
                        "cold" + std::to_string(up_front_cold + cold_created));
    ++cold_created;
  }

  // Drivers: entry -> body (calls every hot function of the phase with
  // call_prob) -> latch loops the body `inner_repeat` times on average.
  for (std::uint32_t p = 0; p < spec.phases; ++p) {
    const FuncId d = drivers[p];
    const BlockId entry = m.add_block(d, kEntryBytes);
    const BlockId body = m.add_block(d, kDriverBodyBytes);
    const BlockId ret = m.add_block(d, kReturnBytes);
    for (FuncId f : phase_funcs[p]) m.add_call(body, f, spec.call_prob);
    m.add_edge(entry, body, 1.0, /*fallthrough=*/true);
    const double back = spec.inner_repeat / (spec.inner_repeat + 1.0);
    m.add_edge(body, ret, 1.0 - back, /*fallthrough=*/true);
    m.add_edge(body, body, back);
  }

  // main: a ring of per-phase visit blocks; each visit calls its driver and
  // self-loops `phase_repeat` times on average, then moves to the next
  // phase; the ring closes so phases recur until the event budget stops the
  // run.
  {
    const BlockId entry = m.add_block(main_fn, kEntryBytes);
    std::vector<BlockId> visits;
    for (std::uint32_t p = 0; p < spec.phases; ++p) {
      const BlockId v = m.add_block(main_fn, kVisitBytes);
      m.add_call(v, drivers[p], 1.0);
      visits.push_back(v);
    }
    const BlockId ret = m.add_block(main_fn, kReturnBytes);
    m.add_edge(entry, visits.front(), 1.0, /*fallthrough=*/true);
    const double stay = spec.phase_repeat / (spec.phase_repeat + 1.0);
    for (std::uint32_t p = 0; p < spec.phases; ++p) {
      const BlockId next =
          p + 1 < spec.phases ? visits[p + 1] : visits[0];
      m.add_edge(visits[p], visits[p], stay);
      if (p + 1 < spec.phases) {
        m.add_edge(visits[p], next, 1.0 - stay, /*fallthrough=*/true);
      } else {
        // Close the ring; a sliver of probability reaches the return block
        // so main is well-formed, but in practice the event budget ends the
        // run first.
        m.add_edge(visits[p], next, (1.0 - stay) * 0.999);
        m.add_edge(visits[p], ret, (1.0 - stay) * 0.001,
                   /*fallthrough=*/true);
      }
    }
  }

  m.validate();
  return m;
}

}  // namespace codelayout
