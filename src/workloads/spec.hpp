// Synthetic workload specifications (substitute for SPEC CPU2006).
//
// Each workload is a generated Module whose dynamic behaviour follows the
// structure that makes instruction-cache layout matter in real programs:
// phased execution over working sets of functions; functions whose bodies
// are branch diamonds where only one side is hot per invocation (so source
// order interleaves hot and cold blocks, as compilers emit them); shared
// utility callees that create cross-function affinity; and a mass of cold
// code (initialization, error paths, unused features) that scatters the hot
// functions across the address space. The knobs below are calibrated per
// suite entry so the simulated solo/co-run L1I miss ratios land in the
// ranges of the paper's Table I / Figure 4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace codelayout {

struct WorkloadSpec {
  std::string name;
  std::uint64_t seed = 1;

  // --- Phase structure -----------------------------------------------------
  std::uint32_t phases = 4;            ///< distinct hot working sets
  /// How strongly program (source) order mixes functions of different
  /// phases: 0 = phase-major modules (each phase's functions contiguous in
  /// source), 1 = fully interleaved round-robin. Real C/C++ programs sit in
  /// between — call order correlates with file order but not perfectly.
  double phase_scatter = 0.25;
  std::uint32_t funcs_per_phase = 12;  ///< hot functions per phase
  std::uint32_t shared_funcs = 6;      ///< utilities used by every phase
  double phase_repeat = 40.0;          ///< mean driver calls per phase visit
  double inner_repeat = 6.0;           ///< mean inner-loop trips per call

  // --- Hot function shape --------------------------------------------------
  std::uint32_t diamonds_min = 2;      ///< branch diamonds per function
  std::uint32_t diamonds_max = 5;
  double hot_branch_bias = 0.85;       ///< probability of the hot side
  double cold_then_prob = 0.5;         ///< chance the *adjacent* side is cold
  std::uint32_t hot_block_bytes_min = 16;
  std::uint32_t hot_block_bytes_max = 96;
  std::uint32_t cold_blocks_per_diamond = 2;
  std::uint32_t cold_block_bytes = 160;
  double call_prob = 0.85;             ///< driver calls each hot function
  double util_call_prob = 0.35;        ///< hot block calls a shared utility
  /// Probability that a diamond is preceded by a call-free self-looping
  /// "spin" block (a polling/latch loop, the pattern behind long same-block
  /// runs in real I-cache traces). 0 disables spin blocks entirely — the
  /// generator then draws no extra randomness, so traces of spin-free specs
  /// are unchanged.
  double spin_prob = 0.0;
  double spin_repeat = 16.0;           ///< mean spin-loop trips per entry

  // --- Cold static code (never or rarely executed) -------------------------
  /// When true (the C/C++-like default) cold functions are sprinkled between
  /// hot ones in program order, scattering the hot working set; when false
  /// (dense Fortran-module style) all cold code follows the hot code.
  bool interleave_cold_funcs = true;
  /// Fraction of the trailing cold functions that interleave among the hot
  /// ones (the rest are appended); controls how badly the original layout
  /// scatters the hot working set across the address space.
  double cold_interleave_fraction = 0.35;
  std::uint32_t cold_funcs = 40;
  std::uint32_t cold_func_blocks = 12;
  std::uint32_t cold_func_block_bytes = 128;
  double cold_call_prob = 0.02;        ///< cold path reaches a cold function

  // --- Execution & timing --------------------------------------------------
  std::uint64_t profile_events = 200'000;  ///< "test input" trace length
  std::uint64_t eval_events = 800'000;     ///< "reference input" trace length
  double data_stall_cpi = 0.6;             ///< data-side memory behaviour
};

/// Deterministically generates the workload's Module (validated).
Module build_workload(const WorkloadSpec& spec);

/// The 29-program suite named after SPEC CPU2006 (paper Fig. 4), calibrated
/// so the simulated miss-ratio landscape matches the paper's shape.
const std::vector<WorkloadSpec>& spec_suite();

/// The 8 programs the paper selects for optimization (Table I).
const std::vector<std::string>& selected_benchmarks();

/// The two probe programs of Fig. 4 / Table I.
inline constexpr const char* kProbe1 = "403.gcc";
inline constexpr const char* kProbe2 = "416.gamess";

/// Looks a suite entry up by name; throws if absent.
const WorkloadSpec& find_spec(const std::string& name);

}  // namespace codelayout
