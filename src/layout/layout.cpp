#include "layout/layout.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace codelayout {

CodeLayout::CodeLayout(const Module& module, std::vector<BlockId> block_order,
                       bool with_entry_stubs)
    : order_(std::move(block_order)) {
  CL_CHECK_MSG(order_.size() == module.block_count(),
               "layout covers " << order_.size() << " of "
                                << module.block_count() << " blocks");
  placements_.resize(module.block_count());

  // Position of each block in the new order, for adjacency tests.
  std::vector<std::uint32_t> position(module.block_count());
  for (std::uint32_t i = 0; i < order_.size(); ++i) {
    CL_CHECK_MSG(order_[i].valid() && order_[i].index() < module.block_count(),
                 "bad block in layout order");
    position[order_[i].index()] = i;
  }

  std::uint64_t address = 0;
  for (std::uint32_t i = 0; i < order_.size(); ++i) {
    const BasicBlock& b = module.block(order_[i]);
    std::uint32_t bytes = b.size_bytes;
    if (with_entry_stubs && module.function(b.parent).entry == b.id) {
      // Entry trampoline: callers reach the relocated body via one jump.
      bytes += kJumpBytes;
      overhead_ += kJumpBytes;
    }
    if (b.has_fallthrough) {
      const BlockId fall = b.successors.front().target;
      const bool adjacent =
          i + 1 < order_.size() && order_[i + 1] == fall;
      if (!adjacent) {
        // Pre-processing appends an explicit jump to reach the fall-through
        // block wherever it moved (Sec. II-E).
        bytes += kJumpBytes;
        overhead_ += kJumpBytes;
        ++fixups_;
      }
    }
    placements_[order_[i].index()] = Placement{address, bytes};
    address += bytes;
  }
  total_bytes_ = address;
}

CodeLayout CodeLayout::from_addresses(
    const Module& module,
    std::vector<std::pair<BlockId, std::uint64_t>> placed,
    bool with_entry_stubs) {
  CL_CHECK_MSG(placed.size() == module.block_count(),
               "placement covers " << placed.size() << " of "
                                   << module.block_count() << " blocks");
  std::sort(placed.begin(), placed.end(),
            [](const auto& x, const auto& y) { return x.second < y.second; });

  CodeLayout layout;
  layout.placements_.resize(module.block_count());
  layout.order_.reserve(placed.size());

  // First pass: addresses and block order.
  std::vector<std::uint64_t> start(module.block_count());
  for (const auto& [id, addr] : placed) {
    CL_CHECK(id.valid() && id.index() < module.block_count());
    start[id.index()] = addr;
    layout.order_.push_back(id);
  }

  // Second pass: effective sizes (stubs + fix-ups) and overlap checks.
  std::uint64_t prev_end = 0;
  for (const auto& [id, addr] : placed) {
    const BasicBlock& b = module.block(id);
    std::uint32_t bytes = b.size_bytes;
    if (with_entry_stubs && module.function(b.parent).entry == b.id) {
      bytes += kJumpBytes;
      layout.overhead_ += kJumpBytes;
    }
    if (b.has_fallthrough) {
      const BlockId fall = b.successors.front().target;
      if (start[fall.index()] != addr + bytes) {
        bytes += kJumpBytes;
        layout.overhead_ += kJumpBytes;
        ++layout.fixups_;
      }
    }
    CL_CHECK_MSG(addr >= prev_end, "blocks overlap at address " << addr);
    layout.placements_[id.index()] = Placement{addr, bytes};
    prev_end = addr + bytes;
  }
  layout.total_bytes_ = prev_end;
  return layout;
}

const CodeLayout::Placement& CodeLayout::placement(BlockId b) const {
  CL_CHECK(b.valid() && b.index() < placements_.size());
  return placements_[b.index()];
}

CodeLayout::LineSpan CodeLayout::lines_of(BlockId b,
                                          std::uint32_t line_bytes) const {
  CL_DCHECK(line_bytes > 0);
  const Placement& p = placement(b);
  const std::uint64_t first = p.address / line_bytes;
  const std::uint64_t last = (p.address + p.bytes - 1) / line_bytes;
  return LineSpan{first, static_cast<std::uint32_t>(last - first + 1)};
}

std::string CodeLayout::describe(const Module& module,
                                 std::size_t max_blocks) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < order_.size() && i < max_blocks; ++i) {
    const BasicBlock& b = module.block(order_[i]);
    const Placement& p = placements_[order_[i].index()];
    os << "  0x" << std::hex << p.address << std::dec << "  " << b.label
       << " (" << p.bytes << "B)\n";
  }
  if (order_.size() > max_blocks) {
    os << "  ... " << (order_.size() - max_blocks) << " more blocks\n";
  }
  return os.str();
}

namespace {

/// Expands a function order to a block order (source order inside each
/// function); unlisted functions follow in program order.
std::vector<BlockId> blocks_from_function_order(
    const Module& module, std::span<const Symbol> function_order) {
  std::vector<BlockId> order;
  order.reserve(module.block_count());
  std::unordered_set<Symbol> seen;
  auto emit = [&](FuncId f) {
    for (BlockId b : module.function(f).blocks) order.push_back(b);
  };
  for (Symbol s : function_order) {
    CL_CHECK_MSG(s < module.function_count(),
                 "function symbol " << s << " out of range");
    if (seen.insert(s).second) emit(FuncId(s));
  }
  for (const Function& f : module.functions()) {
    if (!seen.contains(f.id.value)) emit(f.id);
  }
  return order;
}

}  // namespace

CodeLayout original_layout(const Module& module) {
  std::vector<BlockId> order;
  order.reserve(module.block_count());
  for (const Function& f : module.functions()) {
    for (BlockId b : f.blocks) order.push_back(b);
  }
  return CodeLayout(module, std::move(order), /*with_entry_stubs=*/false);
}

CodeLayout function_reordering(const Module& module,
                               std::span<const Symbol> function_order) {
  return CodeLayout(module, blocks_from_function_order(module, function_order),
                    /*with_entry_stubs=*/false);
}

CodeLayout bb_reordering(const Module& module,
                         std::span<const Symbol> block_order) {
  // Deduplicate and index the model's sequence.
  std::vector<Symbol> sequence;
  std::unordered_map<Symbol, std::size_t> position;
  for (Symbol s : block_order) {
    CL_CHECK_MSG(s < module.block_count(), "block symbol " << s
                                                           << " out of range");
    if (position.emplace(s, sequence.size()).second) sequence.push_back(s);
  }

  // Emit in model order, but chain a block's fall-through successor when the
  // model itself placed it almost adjacently — post-processing cleanup that
  // avoids a jump fix-up without overriding the model: an affinity-driven
  // split (Fig. 3) puts the halves far apart in the sequence and is left
  // untouched.
  constexpr std::size_t kChainWindow = 2;
  std::vector<BlockId> order;
  order.reserve(module.block_count());
  std::unordered_set<Symbol> seen;
  for (std::size_t i = 0; i < sequence.size(); ++i) {
    Symbol s = sequence[i];
    if (!seen.insert(s).second) continue;
    order.push_back(BlockId(s));
    for (;;) {
      const BasicBlock& b = module.block(BlockId(s));
      if (!b.has_fallthrough) break;
      const Symbol next = b.successors.front().target.value;
      const auto it = position.find(next);
      if (it == position.end() || seen.contains(next)) break;
      const std::size_t here = position.at(s);
      const std::size_t d =
          it->second > here ? it->second - here : here - it->second;
      if (d > kChainWindow) break;
      seen.insert(next);
      order.push_back(BlockId(next));
      s = next;
    }
  }
  // Cold blocks keep their source grouping after the hot section.
  for (const Function& f : module.functions()) {
    for (BlockId b : f.blocks) {
      if (!seen.contains(b.value)) order.push_back(b);
    }
  }
  return CodeLayout(module, std::move(order), /*with_entry_stubs=*/true);
}

CodeLayout random_layout(const Module& module, std::uint64_t seed) {
  Rng rng(hash_combine(seed, 0x6c61796f7574ULL));
  std::vector<BlockId> order;
  order.reserve(module.block_count());
  for (const Function& f : module.functions()) {
    for (BlockId b : f.blocks) order.push_back(b);
  }
  rng.shuffle(order);
  return CodeLayout(module, std::move(order), /*with_entry_stubs=*/true);
}

}  // namespace codelayout
