// Code layout: the assignment of addresses to basic blocks (paper Sec.
// II-D/E).
//
// A CodeLayout places every block of a Module at a byte address. Three
// builders mirror the paper:
//   * original_layout     — functions in program order, blocks in source
//                           order (the compiler's default).
//   * function_reordering — whole functions permuted by a model-produced
//                           sequence; block order inside each function is
//                           untouched and no padding is inserted (Sec. II-D).
//   * bb_reordering       — inter-procedural basic-block reordering (Sec.
//                           II-E): blocks are free to move anywhere; each
//                           function gains an entry trampoline jump, and any
//                           block whose fall-through successor is no longer
//                           adjacent gains an explicit jump (pre-processing),
//                           both of which enlarge the placed code.
//
// The fall-through fix-up rule is applied uniformly to every layout
// (including the original) so comparisons are fair: a block with a
// fall-through successor that is not physically adjacent carries one extra
// jump instruction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ir/module.hpp"
#include "trace/trace.hpp"

namespace codelayout {

class CodeLayout {
 public:
  struct Placement {
    std::uint64_t address = 0;
    std::uint32_t bytes = 0;  ///< effective size including appended jumps
  };

  CodeLayout(const Module& module, std::vector<BlockId> block_order,
             bool with_entry_stubs);

  /// Builds a layout from explicit addresses (padded placements like
  /// Gloy-Smith's). `placed` maps every block to its start address; blocks
  /// must not overlap when each is given its size plus one jump of headroom
  /// for a potential fall-through fix-up (and one for an entry trampoline
  /// when `with_entry_stubs`). Fix-ups are charged exactly as in the
  /// order-based constructor: a fall-through successor not starting exactly
  /// at this block's end costs one jump.
  static CodeLayout from_addresses(
      const Module& module,
      std::vector<std::pair<BlockId, std::uint64_t>> placed,
      bool with_entry_stubs);

  [[nodiscard]] const Placement& placement(BlockId b) const;
  [[nodiscard]] std::span<const BlockId> block_order() const { return order_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

  /// Bytes added by fall-through fix-ups and entry trampolines.
  [[nodiscard]] std::uint64_t overhead_bytes() const { return overhead_; }
  [[nodiscard]] std::uint32_t fixup_count() const { return fixups_; }

  /// Cache lines [first, first+count) covered by the block.
  struct LineSpan {
    std::uint64_t first_line;
    std::uint32_t line_count;
  };
  [[nodiscard]] LineSpan lines_of(BlockId b, std::uint32_t line_bytes) const;

  /// Human-readable map (label @ address, size) for examples/debugging.
  [[nodiscard]] std::string describe(const Module& module,
                                     std::size_t max_blocks = 64) const;

 private:
  CodeLayout() = default;  // used by from_addresses

  std::vector<Placement> placements_;
  std::vector<BlockId> order_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t overhead_ = 0;
  std::uint32_t fixups_ = 0;
};

/// The compiler's default layout.
CodeLayout original_layout(const Module& module);

/// Functions permuted by `function_order` (FuncId values, e.g. the affinity
/// or TRG sequence over the function trace). Functions missing from the
/// sequence (cold, never profiled) follow in program order.
CodeLayout function_reordering(const Module& module,
                               std::span<const Symbol> function_order);

/// Inter-procedural basic-block reordering by `block_order` (BlockId
/// values). Unlisted (cold) blocks follow, grouped by function in program
/// order. Every function gets an entry trampoline (+1 jump).
CodeLayout bb_reordering(const Module& module,
                         std::span<const Symbol> block_order);

/// Layout with functions (and blocks inside them) in random order — the
/// pessimistic baseline used by ablation benches.
CodeLayout random_layout(const Module& module, std::uint64_t seed);

}  // namespace codelayout
