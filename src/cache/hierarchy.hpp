// Composable cache hierarchies (DESIGN.md §13).
//
// The paper evaluates one fixed geometry — a flat private 32 KB / 4-way /
// 64 B L1I — but modern SMT sharing happens at L2/L3. This header makes the
// hierarchy a first-class parameter:
//
//   * HierarchySpec — the declarative shape (private L1I → optional shared
//     L2 → memory) plus per-level latencies for AMAT accounting. Validated,
//     canonically encodable, hashable, and orderable, so it can ride inside
//     EvalKeys, response-cache keys, and the service wire protocol. The
//     default-constructed spec is exactly the paper's flat L1I: every layer
//     that threads a spec through defaults to it, keeping the golden suite
//     byte-identical.
//   * CacheLevel — one level of the materialized hierarchy: a SetAssocCache
//     plus a next_level pointer. access() chains misses downward and reports
//     the hit depth; prefill() on a resident line is a pure recency touch of
//     this level only (the co-run collapse replays last-touch order through
//     it, and an L1 hit never generates downstream traffic); contains()
//     probes this level only. Per-level hit/miss/evict counters and AMAT
//     come from the underlying cache.
//   * CacheHierarchy — the runtime instantiation for one simulation: under a
//     flat spec all parties share the single L1 (the paper's SMT model);
//     with an L2 present each party gets a private L1 front and sharing
//     moves to the L2.
#pragma once

#include <compare>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/geometry.hpp"
#include "cache/set_assoc.hpp"

namespace codelayout {

/// Parses the canonical "SIZE/ASSOC/LINE" geometry text (SIZE takes an
/// optional K/M suffix): "32K/4/64", "1M/16/64", "2048/2/32". Throws
/// ContractError on malformed text or an invalid geometry.
[[nodiscard]] CacheGeometry parse_geometry(std::string_view text);

struct HierarchySpec {
  /// The fetch-side front: private per hardware thread.
  CacheGeometry l1 = kL1I;
  /// Optional unified second level; shared across co-run parties when
  /// present. Must match the L1 line size (line ids are L1-line granular).
  std::optional<CacheGeometry> l2;
  /// Per-level access latencies (cycles) for AMAT accounting; they never
  /// influence the simulated hit/miss sequences.
  double l1_hit_cycles = 1.0;
  double l2_hit_cycles = 7.0;
  double memory_cycles = 35.0;

  [[nodiscard]] bool multi_level() const { return l2.has_value(); }

  /// Throws ContractError unless every level is a valid geometry, line
  /// sizes agree, the L2 is at least as large as the L1, and the latency
  /// ladder is finite and monotone.
  void validate() const;

  /// "32K/4/64" or "32K/4/64+l2=256K/8/64" — the text form --geometry/--l2
  /// compose and parse_hierarchy() reads back (latencies stay default).
  [[nodiscard]] std::string to_string() const;

  /// Canonical byte encoding (varint geometry triples + latency bit
  /// patterns). Stable across hosts of one endianness; the wire protocol
  /// embeds it verbatim and EvalKey hashing digests it.
  [[nodiscard]] std::string encode() const;
  /// Inverse of encode(); throws ContractError on malformed bytes.
  [[nodiscard]] static HierarchySpec decode(std::string_view bytes);

  /// FNV-1a over encode().
  [[nodiscard]] std::uint64_t hash() const;

  friend bool operator==(const HierarchySpec&, const HierarchySpec&) = default;
  friend auto operator<=>(const HierarchySpec&,
                          const HierarchySpec&) = default;
};

/// The paper's configuration: flat private L1I, no shared level.
inline const HierarchySpec kPaperHierarchy{};

/// Parses the to_string() form: "L1GEOM" or "L1GEOM+l2=L2GEOM". Throws
/// ContractError on malformed text (latencies keep their defaults).
[[nodiscard]] HierarchySpec parse_hierarchy(std::string_view text);

/// One level of a materialized hierarchy (modeled on simCache: a cache, a
/// next_level pointer, chained miss handling, AMAT). Not copyable — levels
/// reference each other by pointer.
class CacheLevel {
 public:
  explicit CacheLevel(const CacheGeometry& geom, double hit_cycles = 1.0,
                      CacheLevel* next = nullptr)
      : cache_(geom), hit_cycles_(hit_cycles), next_(next) {}

  CacheLevel(const CacheLevel&) = delete;
  CacheLevel& operator=(const CacheLevel&) = delete;

  /// Touches `line`, chaining a miss to the next level. Returns the hit
  /// depth: 0 = hit here, 1 = missed here and hit (or installed from) the
  /// next level, and so on; a chain of n levels returns n for a fetch that
  /// went all the way to memory. Every traversed level installs the line.
  std::uint32_t access(std::uint64_t line) {
    if (cache_.access(line)) return 0;
    return next_ != nullptr ? 1 + next_->access(line) : 1;
  }

  /// Prefetch fill (uncounted). A resident line is a pure recency touch of
  /// this level — no downstream traffic, which is what keeps the co-run
  /// collapse's recency replay exact. A missing line installs here and
  /// prefills the chain below. Returns true if the line was resident here.
  bool prefill(std::uint64_t line) {
    if (cache_.prefill(line)) return true;
    if (next_ != nullptr) next_->prefill(line);
    return false;
  }

  /// Residency probe of this level only (no recency update, no chaining).
  [[nodiscard]] bool contains(std::uint64_t line) const {
    return cache_.contains(line);
  }

  // Per-level counters (counted accesses only; prefills are invisible).
  [[nodiscard]] std::uint64_t accesses() const { return cache_.accesses(); }
  [[nodiscard]] std::uint64_t hits() const {
    return cache_.accesses() - cache_.misses();
  }
  [[nodiscard]] std::uint64_t misses() const { return cache_.misses(); }
  [[nodiscard]] std::uint64_t evictions() const { return cache_.evictions(); }
  [[nodiscard]] double miss_ratio() const { return cache_.miss_ratio(); }

  /// Average memory access time seen at this level: hit latency plus the
  /// local miss ratio times the next level's AMAT (`memory_cycles` closes
  /// the recursion past the last level).
  [[nodiscard]] double amat(double memory_cycles) const {
    return hit_cycles_ +
           miss_ratio() * (next_ != nullptr ? next_->amat(memory_cycles)
                                            : memory_cycles);
  }

  [[nodiscard]] double hit_cycles() const { return hit_cycles_; }
  [[nodiscard]] CacheLevel* next() const { return next_; }
  [[nodiscard]] const CacheGeometry& geometry() const {
    return cache_.geometry();
  }
  [[nodiscard]] const SetAssocCache& cache() const { return cache_; }

  void reset_stats() { cache_.reset_stats(); }
  /// Empties this level only (counters preserved, like SetAssocCache).
  void flush() { cache_.flush(); }

 private:
  SetAssocCache cache_;
  double hit_cycles_;
  CacheLevel* next_;
};

/// The materialized cache state for one simulation over `parties` co-running
/// fetch streams. Flat spec: one shared L1 (every front(i) is the same
/// level) — exactly the paper's SMT-shared-L1I model. Multi-level spec:
/// private per-party L1 fronts all chained to one shared L2.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchySpec& spec, std::size_t parties = 1);

  /// The fetch-side entry level for `party`.
  [[nodiscard]] CacheLevel& front(std::size_t party) {
    return *fronts_[fronts_.size() == 1 ? 0 : party];
  }
  /// The shared L2, or nullptr for a flat hierarchy.
  [[nodiscard]] CacheLevel* shared_level() const { return l2_.get(); }
  [[nodiscard]] const HierarchySpec& spec() const { return spec_; }
  /// Number of distinct front levels (1 when flat — shared by all parties).
  [[nodiscard]] std::size_t front_count() const { return fronts_.size(); }

 private:
  HierarchySpec spec_;
  std::unique_ptr<CacheLevel> l2_;  // built first so fronts can chain to it
  std::vector<std::unique_ptr<CacheLevel>> fronts_;
};

}  // namespace codelayout
