#include "cache/fetch_plan.hpp"

namespace codelayout {

FetchPlan::FetchPlan(const Module& module, const CodeLayout& layout,
                     std::uint32_t line_bytes)
    : line_bytes_(line_bytes) {
  CL_CHECK(line_bytes > 0);
  blocks_.reserve(module.block_count());
  for (std::size_t i = 0; i < module.block_count(); ++i) {
    const BlockId b(static_cast<std::uint32_t>(i));
    const BasicBlock& bb = module.block(b);
    const auto span = layout.lines_of(b, line_bytes);
    const auto& place = layout.placement(b);
    blocks_.push_back(BlockPlan{
        .first_line = span.first_line,
        .line_count = span.line_count,
        .instr_count = place.bytes / kInstrBytes,
        .overhead_instrs = (place.bytes - bb.size_bytes) / kInstrBytes,
        .branchy = bb.successors.size() > 1 ? 1u : 0u,
    });
  }
}

}  // namespace codelayout
