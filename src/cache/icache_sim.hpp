// Instruction-cache simulation (paper Sec. III-A).
//
// Replays a dynamic block trace against a CodeLayout: each block execution
// fetches the cache lines its placed bytes cover. Two measurement flavours
// mirror the paper's two instruments:
//   * "simulated"  — the bare LRU cache, like the Pin-based simulator;
//   * "hw proxy"   — the same cache plus a next-line prefetcher and
//     occasional wrong-path fetches, reproducing why hardware-counter miss
//     reductions come out smaller than pure simulation (Sec. III-C).
// Co-run simulation interleaves two fetch streams round-robin through one
// shared cache, the way two hyper-threads share the L1I; the peer stream
// wraps around until the measured stream finishes.
//
// The cache shape is a HierarchySpec (DESIGN.md §13). The default spec is
// the paper's flat L1I and reproduces the historical behaviour bit for bit;
// a spec with an L2 gives every co-run party a private L1 front chained to
// one shared L2 (sharing moves down a level) and lights up the per-level
// counters in SimResult.
//
// Every simulator exists in two forms: the module/layout entry points below
// (which build a FetchPlan internally) and plan-based overloads for callers
// that amortize one plan across many simulations (the Lab memoizes plans per
// workload x optimizer, so every cell of a co-run matrix shares them).
// Results are bit-identical between the two forms, and between the run-aware
// fast paths and per-event replay — see DESIGN.md §8 (solo) and §11 (co-run).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cache/fetch_plan.hpp"
#include "cache/geometry.hpp"
#include "cache/hierarchy.hpp"
#include "cache/set_assoc.hpp"
#include "ir/module.hpp"
#include "layout/layout.hpp"
#include "trace/dispatch.hpp"
#include "trace/trace.hpp"

namespace codelayout {

struct SimOptions {
  /// Cache shape: the paper's flat L1I by default. With an L2 present the
  /// simulators chain demand misses downward and fill in the SimResult
  /// per-level counters.
  HierarchySpec hierarchy{};
  /// Install line+1 on every demand miss (hardware stream prefetch).
  bool next_line_prefetch = false;
  /// Probability that a branchy block speculatively fetches down the wrong
  /// path (pollutes the cache and shows up in hardware miss counters).
  double wrong_path_rate = 0.0;
  /// Fetch-slot debt per demand miss in co-run interleaving: a missing
  /// thread stalls and yields fetch slots, throttling its own pollution.
  double miss_stall_blocks = 2.0;
  std::uint64_t seed = 1;
  /// Solo-path selection between the run-collapse FetchStream replay and a
  /// straight-line flat-view loop (trace/dispatch.hpp). Results and RNG
  /// streams are bit-identical; co-run always interleaves per round and is
  /// unaffected.
  AnalysisDispatch dispatch{};

  /// The front (L1) geometry — the level fetch plans are built for.
  [[nodiscard]] const CacheGeometry& geometry() const { return hierarchy.l1; }
};

/// The configuration used for "hardware counter" measurements.
SimOptions hardware_proxy_options(std::uint64_t seed = 1);

struct SimResult {
  std::uint64_t instructions = 0;   ///< fetched instructions (denominator)
  /// Instructions added by the layout itself (entry trampolines, fall-through
  /// fix-up jumps); a subset of `instructions`, and cheaper to execute since
  /// jumps carry no data stalls.
  std::uint64_t overhead_instructions = 0;
  std::uint64_t line_probes = 0;    ///< demand line probes
  std::uint64_t demand_misses = 0;
  std::uint64_t wrong_path_misses = 0;
  std::uint64_t blocks = 0;         ///< block executions replayed
  /// L2 traffic (multi-level hierarchies only; zero under the flat default).
  /// Demand-side attribution: every demand L1 miss probes the L2 once, and
  /// `l2_misses` of those went on to memory. Wrong-path and prefetch fills
  /// are not attributed (they are pollution, not fetch latency).
  std::uint64_t l2_probes = 0;
  std::uint64_t l2_misses = 0;

  friend bool operator==(const SimResult&, const SimResult&) = default;

  /// Misses visible to a hardware counter (at the front level).
  [[nodiscard]] std::uint64_t misses() const {
    return demand_misses + wrong_path_misses;
  }
  /// Misses per fetched instruction — the paper's "miss ratio".
  [[nodiscard]] double miss_ratio() const {
    return instructions ? static_cast<double>(misses()) /
                              static_cast<double>(instructions)
                        : 0.0;
  }
};

/// Demand-side accesses and misses of one hierarchy level.
struct LevelStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;

  [[nodiscard]] double miss_ratio() const {
    return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                    : 0.0;
  }
};

/// Per-level demand traffic of a finished simulation: index 0 is the L1,
/// index 1 the L2 when the spec has one. (Derived from the SimResult demand
/// counters, so wrong-path traffic is excluded by construction.)
[[nodiscard]] std::vector<LevelStats> level_breakdown(
    const SimResult& sim, const HierarchySpec& hierarchy);

/// Average memory access time per demand line probe under the spec's latency
/// ladder: l1_hit + mr1 * memory for a flat spec, l1_hit + mr1 * (l2_hit +
/// mr2 * memory) with an L2.
[[nodiscard]] double amat(const SimResult& sim, const HierarchySpec& hierarchy);

/// Replays `trace` (block granularity) alone in a cold cache.
SimResult simulate_solo(const Module& module, const CodeLayout& layout,
                        const Trace& trace, const SimOptions& options = {});
SimResult simulate_solo(const FetchPlan& plan, const Trace& trace,
                        const SimOptions& options = {});

/// Fast-path accounting for one co-run simulation: interleaved rounds
/// advanced in bulk by the run-aware collapse vs replayed per event (see
/// DESIGN.md §11). Purely observational — the per-round statistics and RNG
/// streams are bit-identical either way.
struct CorunStats {
  std::uint64_t rounds_fast = 0;      ///< rounds advanced by collapse windows
  std::uint64_t rounds_fallback = 0;  ///< rounds replayed per event
  std::uint64_t windows = 0;          ///< collapse windows entered

  [[nodiscard]] std::uint64_t rounds() const {
    return rounds_fast + rounds_fallback;
  }
};

struct CorunResult {
  SimResult self;     ///< the measured program: its full trace, replayed once
  SimResult peer;     ///< the probe program: wraps around as needed
  CorunStats stats{};  ///< collapse coverage of this simulation
};

/// Interleaves the two streams block-by-block through one shared cache.
/// `peer_speed` is the peer's fetch rate relative to self (blocks per self
/// block): two SMT threads progress inversely to their CPIs, so a data-bound
/// self sees a faster peer stream and vice versa.
CorunResult simulate_corun(const Module& self_module,
                           const CodeLayout& self_layout,
                           const Trace& self_trace,
                           const Module& peer_module,
                           const CodeLayout& peer_layout,
                           const Trace& peer_trace,
                           const SimOptions& options = {},
                           double peer_speed = 1.0);
CorunResult simulate_corun(const FetchPlan& self_plan, const Trace& self_trace,
                           const FetchPlan& peer_plan, const Trace& peer_trace,
                           const SimOptions& options = {},
                           double peer_speed = 1.0);

/// N-way shared-cache co-run (extension of the paper's Sec. III-F
/// conjecture: Power-class SMT runs 4-8 hardware threads per core).
///
/// One request struct replaces the old simulate_corun_many overload pair:
/// parties, speeds, hierarchy and flavour flags travel together, the wire
/// protocol of the service serializes the same shape, and every legacy entry
/// point below is a thin shim over this one.
///
/// Party 0 is the measured reference stream: it replays its full trace
/// exactly once, fetches one block per round, and its fetch rate defines the
/// unit every other party's `speed` is relative to — so `parties[0].speed`
/// must be 1.0 (checked). All other parties wrap around until party 0
/// finishes. Streams take turns round-robin with miss-induced fetch stalls
/// as in the two-way simulation; the two-way simulate_corun is exactly this
/// engine at two parties.
struct CorunSpec {
  struct Party {
    const FetchPlan* plan = nullptr;
    const Trace* trace = nullptr;
    double speed = 1.0;  ///< blocks per round relative to the measured stream
  };
  std::vector<Party> parties;  ///< >= 2; parties[0] is the measured stream
  SimOptions options{};        ///< hierarchy + measurement-flavour flags
};

/// Simulates the spec's co-run: one SimResult per party, in party order.
std::vector<SimResult> simulate_corun(const CorunSpec& spec,
                                      CorunStats* stats = nullptr);

/// Module/layout-based party for callers without a FetchPlan; a plan is
/// built per party (deprecated shim path — prefer CorunSpec with plans the
/// caller amortizes, as the Lab does).
struct CorunParty {
  const Module* module;
  const CodeLayout* layout;
  const Trace* trace;
  double speed = 1.0;  ///< blocks per round relative to the measured stream
};

/// Plan-based party; same shape as CorunSpec::Party (kept as an alias so
/// pre-CorunSpec call sites compile unchanged).
using PlannedParty = CorunSpec::Party;

/// Deprecated shims over simulate_corun(CorunSpec): bit-identical to the
/// spec-based entry point (pinned by tests). New code should build a
/// CorunSpec instead.
std::vector<SimResult> simulate_corun_many(std::span<const CorunParty> parties,
                                           const SimOptions& options = {},
                                           CorunStats* stats = nullptr);
std::vector<SimResult> simulate_corun_many(
    std::span<const PlannedParty> parties, const SimOptions& options = {},
    CorunStats* stats = nullptr);

/// Expands a block trace to the cache-line trace induced by `layout` —
/// the instruction footprint stream for the Eq. 2 metrics. Line symbols are
/// the line indices of the layout.
Trace line_trace(const Module& module, const CodeLayout& layout,
                 const Trace& block_trace, std::uint32_t line_bytes);

}  // namespace codelayout
