#include "cache/icache_sim.hpp"

#include "support/rng.hpp"

namespace codelayout {
namespace {

/// One fetch stream: a program replaying its block trace under a layout.
class FetchStream {
 public:
  FetchStream(const Module& module, const CodeLayout& layout,
              const Trace& trace, std::uint64_t line_namespace,
              const SimOptions& options, std::uint64_t rng_stream)
      : module_(module),
        layout_(layout),
        trace_(trace),
        namespace_(line_namespace),
        options_(options),
        rng_(Rng(options.seed).fork(rng_stream)) {
    CL_CHECK(trace.is_block());
    CL_CHECK(!trace.empty());
  }

  /// Executes the next block against `cache`; wraps at the trace end.
  /// Returns true when this step consumed the last event of the trace.
  /// When `stall_on_miss` is set, demand misses accrue fetch-slot debt and
  /// subsequent step() calls are consumed by stalling instead of fetching.
  bool step(SetAssocCache& cache, bool stall_on_miss = false) {
    if (stall_on_miss && stall_debt_ >= 1.0) {
      stall_debt_ -= 1.0;
      return false;
    }
    const BlockId b = trace_.block_at(cursor_);
    const BasicBlock& bb = module_.block(b);
    const auto span = layout_.lines_of(b, options_.geometry.line_bytes);
    const auto& place = layout_.placement(b);

    ++stats_.blocks;
    stats_.instructions += place.bytes / kInstrBytes;
    stats_.overhead_instructions +=
        (place.bytes - bb.size_bytes) / kInstrBytes;
    for (std::uint32_t i = 0; i < span.line_count; ++i) {
      const std::uint64_t line = namespace_ + span.first_line + i;
      ++stats_.line_probes;
      if (!cache.access(line)) {
        ++stats_.demand_misses;
        if (stall_on_miss) stall_debt_ += options_.miss_stall_blocks;
        if (options_.next_line_prefetch) cache.prefill(line + 1);
      }
    }
    // Speculative wrong-path fetch past a conditional branch: the fetch unit
    // runs ahead on the not-taken path before the branch resolves.
    if (options_.wrong_path_rate > 0.0 && bb.successors.size() > 1 &&
        rng_.chance(options_.wrong_path_rate)) {
      const std::uint64_t line =
          namespace_ + span.first_line + span.line_count;
      if (!cache.access(line)) ++stats_.wrong_path_misses;
    }

    ++cursor_;
    if (cursor_ == trace_.size()) {
      cursor_ = 0;
      return true;
    }
    return false;
  }

  [[nodiscard]] const SimResult& stats() const { return stats_; }

 private:
  const Module& module_;
  const CodeLayout& layout_;
  const Trace& trace_;
  std::uint64_t namespace_;
  SimOptions options_;
  Rng rng_;
  std::size_t cursor_ = 0;
  double stall_debt_ = 0.0;
  SimResult stats_;
};

}  // namespace

SimOptions hardware_proxy_options(std::uint64_t seed) {
  return SimOptions{.geometry = kL1I,
                    .next_line_prefetch = true,
                    .wrong_path_rate = 0.08,
                    .seed = seed};
}

SimResult simulate_solo(const Module& module, const CodeLayout& layout,
                        const Trace& trace, const SimOptions& options) {
  SetAssocCache cache(options.geometry);
  FetchStream stream(module, layout, trace, /*line_namespace=*/0, options,
                     /*rng_stream=*/1);
  while (!stream.step(cache)) {
  }
  return stream.stats();
}

CorunResult simulate_corun(const Module& self_module,
                           const CodeLayout& self_layout,
                           const Trace& self_trace,
                           const Module& peer_module,
                           const CodeLayout& peer_layout,
                           const Trace& peer_trace,
                           const SimOptions& options, double peer_speed) {
  CL_CHECK(peer_speed > 0.0);
  SetAssocCache cache(options.geometry);
  // Disjoint line-id namespaces: two address spaces sharing one cache.
  constexpr std::uint64_t kPeerNamespace = std::uint64_t{1} << 40;
  FetchStream self(self_module, self_layout, self_trace, 0, options, 1);
  FetchStream peer(peer_module, peer_layout, peer_trace, kPeerNamespace,
                   options, 2);
  // Round-robin fetch slots: one self block per round, `peer_speed` peer
  // blocks on average (fractional rates via an accumulator); stop when the
  // measured stream completes.
  double peer_credit = 0.0;
  for (;;) {
    const bool done = self.step(cache, /*stall_on_miss=*/true);
    peer_credit += peer_speed;
    while (peer_credit >= 1.0) {
      peer.step(cache, /*stall_on_miss=*/true);
      peer_credit -= 1.0;
    }
    if (done) break;
  }
  return CorunResult{self.stats(), peer.stats()};
}

std::vector<SimResult> simulate_corun_many(std::span<const CorunParty> parties,
                                           const SimOptions& options) {
  CL_CHECK_MSG(parties.size() >= 2, "need at least two co-runners");
  SetAssocCache cache(options.geometry);
  std::vector<FetchStream> streams;
  std::vector<double> credit(parties.size(), 0.0);
  streams.reserve(parties.size());
  for (std::size_t i = 0; i < parties.size(); ++i) {
    const CorunParty& p = parties[i];
    CL_CHECK(p.module && p.layout && p.trace);
    CL_CHECK(p.speed > 0.0);
    streams.emplace_back(*p.module, *p.layout, *p.trace,
                         static_cast<std::uint64_t>(i) << 40, options,
                         /*rng_stream=*/i + 1);
  }
  for (;;) {
    const bool done = streams[0].step(cache, /*stall_on_miss=*/true);
    for (std::size_t i = 1; i < parties.size(); ++i) {
      credit[i] += parties[i].speed;
      while (credit[i] >= 1.0) {
        streams[i].step(cache, /*stall_on_miss=*/true);
        credit[i] -= 1.0;
      }
    }
    if (done) break;
  }
  std::vector<SimResult> results;
  results.reserve(streams.size());
  for (const FetchStream& s : streams) results.push_back(s.stats());
  return results;
}

Trace line_trace(const Module& module, const CodeLayout& layout,
                 const Trace& block_trace, std::uint32_t line_bytes) {
  (void)module;
  CL_CHECK(block_trace.is_block());
  Trace out(Trace::Granularity::kBlock);
  out.reserve(block_trace.size() * 2);
  for (std::size_t i = 0; i < block_trace.size(); ++i) {
    const auto span = layout.lines_of(block_trace.block_at(i), line_bytes);
    for (std::uint32_t l = 0; l < span.line_count; ++l) {
      out.push_symbol(static_cast<Symbol>(span.first_line + l));
    }
  }
  return out.trimmed();
}

}  // namespace codelayout
