#include "cache/icache_sim.hpp"

#include "support/registry.hpp"
#include "support/rng.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout {
namespace {

/// One fetch stream: a program replaying its block trace under a layout.
/// The replay cursor walks the trace's run storage directly: (run index,
/// offset within the run), so no flat event vector is ever materialized.
class FetchStream {
 public:
  FetchStream(const Module& module, const CodeLayout& layout,
              const Trace& trace, std::uint64_t line_namespace,
              const SimOptions& options, std::uint64_t rng_stream)
      : module_(module),
        layout_(layout),
        runs_(trace.runs()),
        namespace_(line_namespace),
        options_(options),
        rng_(Rng(options.seed).fork(rng_stream)) {
    CL_CHECK(trace.is_block());
    CL_CHECK(!trace.empty());
  }

  /// Executes the next block against `cache`; wraps at the trace end.
  /// Returns true when this step consumed the last event of the trace.
  /// When `stall_on_miss` is set, demand misses accrue fetch-slot debt and
  /// subsequent step() calls are consumed by stalling instead of fetching.
  bool step(SetAssocCache& cache, bool stall_on_miss = false) {
    if (stall_on_miss && stall_debt_ >= 1.0) {
      stall_debt_ -= 1.0;
      return false;
    }
    const BlockId b = BlockId(runs_[run_idx_].symbol);
    const BasicBlock& bb = module_.block(b);
    const auto span = layout_.lines_of(b, options_.geometry.line_bytes);
    const auto& place = layout_.placement(b);

    ++stats_.blocks;
    stats_.instructions += place.bytes / kInstrBytes;
    stats_.overhead_instructions +=
        (place.bytes - bb.size_bytes) / kInstrBytes;
    for (std::uint32_t i = 0; i < span.line_count; ++i) {
      const std::uint64_t line = namespace_ + span.first_line + i;
      ++stats_.line_probes;
      if (!cache.access(line)) {
        ++stats_.demand_misses;
        if (stall_on_miss) stall_debt_ += options_.miss_stall_blocks;
        if (options_.next_line_prefetch) cache.prefill(line + 1);
      }
    }
    // Speculative wrong-path fetch past a conditional branch: the fetch unit
    // runs ahead on the not-taken path before the branch resolves.
    if (options_.wrong_path_rate > 0.0 && bb.successors.size() > 1 &&
        rng_.chance(options_.wrong_path_rate)) {
      const std::uint64_t line =
          namespace_ + span.first_line + span.line_count;
      if (!cache.access(line)) ++stats_.wrong_path_misses;
    }

    return advance(1);
  }

  /// Solo fast path: consumes the rest of the current run in one shot — one
  /// set of tag probes plus counted hits. Returns true when this call
  /// consumed the last event of the trace.
  ///
  /// Collapse argument: the run touches line ids [first_line, first_line +
  /// line_count] (demand lines plus the wrong-path line plus any next-line
  /// prefill target), i.e. line_count + 1 consecutive ids. When that fits in
  /// the set count, every id maps to a distinct set, so nothing the run
  /// accesses can evict the run's own lines — after the first iteration all
  /// demand probes of iterations 2..r are guaranteed hits, and the per-set
  /// LRU recency order after the run matches flat replay (at most one of the
  /// run's lines per set, and nothing else enters those sets meanwhile).
  /// Wrong-path coin flips still happen once per event, keeping the RNG
  /// stream — and therefore every later draw — identical to flat replay.
  /// Only usable for solo simulation: co-run interleaves streams per event.
  bool step_run(SetAssocCache& cache) {
    const Run run = runs_[run_idx_];
    const std::uint64_t count = run.length - run_pos_;
    const BlockId b = BlockId(run.symbol);
    const BasicBlock& bb = module_.block(b);
    const auto span = layout_.lines_of(b, options_.geometry.line_bytes);

    if (count > 1 &&
        span.line_count + std::uint64_t{1} > options_.geometry.sets()) {
      // Degenerate geometry (block wider than the set array): the run's own
      // lines can conflict with each other, so replay it per event.
      ++fallback_runs_;
      bool wrapped = false;
      for (std::uint64_t i = 0; i < count; ++i) wrapped = step(cache);
      return wrapped;
    }
    ++fast_runs_;

    const auto& place = layout_.placement(b);
    // First iteration: the only one that can take demand misses.
    ++stats_.blocks;
    stats_.instructions += place.bytes / kInstrBytes;
    stats_.overhead_instructions +=
        (place.bytes - bb.size_bytes) / kInstrBytes;
    for (std::uint32_t i = 0; i < span.line_count; ++i) {
      const std::uint64_t line = namespace_ + span.first_line + i;
      ++stats_.line_probes;
      if (!cache.access(line)) {
        ++stats_.demand_misses;
        if (options_.next_line_prefetch) cache.prefill(line + 1);
      }
    }
    const bool branchy =
        options_.wrong_path_rate > 0.0 && bb.successors.size() > 1;
    const std::uint64_t wrong_line =
        namespace_ + span.first_line + span.line_count;
    if (branchy && rng_.chance(options_.wrong_path_rate)) {
      if (!cache.access(wrong_line)) ++stats_.wrong_path_misses;
    }

    // Iterations 2..count: bulk-counted hits; only the wrong-path draws
    // remain per event.
    const std::uint64_t rest = count - 1;
    stats_.blocks += rest;
    stats_.instructions += rest * (place.bytes / kInstrBytes);
    stats_.overhead_instructions +=
        rest * ((place.bytes - bb.size_bytes) / kInstrBytes);
    stats_.line_probes += rest * span.line_count;
    if (branchy) {
      for (std::uint64_t i = 0; i < rest; ++i) {
        if (rng_.chance(options_.wrong_path_rate)) {
          if (!cache.access(wrong_line)) ++stats_.wrong_path_misses;
        }
      }
    }

    return advance(count);
  }

  [[nodiscard]] const SimResult& stats() const { return stats_; }
  /// Runs consumed by the O(1) collapse vs replayed per event (degenerate
  /// geometry). Solo fast path only; co-run steps per event by design.
  [[nodiscard]] std::uint64_t fast_runs() const { return fast_runs_; }
  [[nodiscard]] std::uint64_t fallback_runs() const { return fallback_runs_; }

 private:
  /// Moves the run cursor forward `n` events; `n` must not overrun the
  /// current run. Returns true when the trace wrapped.
  bool advance(std::uint64_t n) {
    run_pos_ += n;
    CL_DCHECK(run_pos_ <= runs_[run_idx_].length);
    if (run_pos_ == runs_[run_idx_].length) {
      run_pos_ = 0;
      if (++run_idx_ == runs_.size()) {
        run_idx_ = 0;
        return true;
      }
    }
    return false;
  }

  const Module& module_;
  const CodeLayout& layout_;
  std::span<const Run> runs_;
  std::uint64_t namespace_;
  SimOptions options_;
  Rng rng_;
  std::size_t run_idx_ = 0;
  std::uint64_t run_pos_ = 0;
  double stall_debt_ = 0.0;
  std::uint64_t fast_runs_ = 0;
  std::uint64_t fallback_runs_ = 0;
  SimResult stats_;
};

}  // namespace

SimOptions hardware_proxy_options(std::uint64_t seed) {
  return SimOptions{.geometry = kL1I,
                    .next_line_prefetch = true,
                    .wrong_path_rate = 0.08,
                    .seed = seed};
}

SimResult simulate_solo(const Module& module, const CodeLayout& layout,
                        const Trace& trace, const SimOptions& options) {
  CODELAYOUT_PHASE("icache_solo", "cache", "cache.icache_solo.wall_ns",
                   {"events", std::uint64_t{trace.size()}},
                   {"runs", std::uint64_t{trace.run_count()}});
  SetAssocCache cache(options.geometry);
  FetchStream stream(module, layout, trace, /*line_namespace=*/0, options,
                     /*rng_stream=*/1);
  while (!stream.step_run(cache)) {
  }
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter("cache.solo.runs_fast").add(stream.fast_runs());
    registry.counter("cache.solo.runs_fallback").add(stream.fallback_runs());
  }
  return stream.stats();
}

CorunResult simulate_corun(const Module& self_module,
                           const CodeLayout& self_layout,
                           const Trace& self_trace,
                           const Module& peer_module,
                           const CodeLayout& peer_layout,
                           const Trace& peer_trace,
                           const SimOptions& options, double peer_speed) {
  CL_CHECK(peer_speed > 0.0);
  CODELAYOUT_PHASE("icache_corun", "cache", "cache.icache_corun.wall_ns",
                   {"self_events", std::uint64_t{self_trace.size()}},
                   {"peer_events", std::uint64_t{peer_trace.size()}});
  SetAssocCache cache(options.geometry);
  // Disjoint line-id namespaces: two address spaces sharing one cache.
  constexpr std::uint64_t kPeerNamespace = std::uint64_t{1} << 40;
  FetchStream self(self_module, self_layout, self_trace, 0, options, 1);
  FetchStream peer(peer_module, peer_layout, peer_trace, kPeerNamespace,
                   options, 2);
  // Round-robin fetch slots: one self block per round, `peer_speed` peer
  // blocks on average (fractional rates via an accumulator); stop when the
  // measured stream completes.
  double peer_credit = 0.0;
  for (;;) {
    const bool done = self.step(cache, /*stall_on_miss=*/true);
    peer_credit += peer_speed;
    while (peer_credit >= 1.0) {
      peer.step(cache, /*stall_on_miss=*/true);
      peer_credit -= 1.0;
    }
    if (done) break;
  }
  return CorunResult{self.stats(), peer.stats()};
}

std::vector<SimResult> simulate_corun_many(std::span<const CorunParty> parties,
                                           const SimOptions& options) {
  CL_CHECK_MSG(parties.size() >= 2, "need at least two co-runners");
  CODELAYOUT_PHASE("icache_corun_many", "cache",
                   "cache.icache_corun_many.wall_ns",
                   {"parties", std::uint64_t{parties.size()}});
  SetAssocCache cache(options.geometry);
  std::vector<FetchStream> streams;
  std::vector<double> credit(parties.size(), 0.0);
  streams.reserve(parties.size());
  for (std::size_t i = 0; i < parties.size(); ++i) {
    const CorunParty& p = parties[i];
    CL_CHECK(p.module && p.layout && p.trace);
    CL_CHECK(p.speed > 0.0);
    streams.emplace_back(*p.module, *p.layout, *p.trace,
                         static_cast<std::uint64_t>(i) << 40, options,
                         /*rng_stream=*/i + 1);
  }
  for (;;) {
    const bool done = streams[0].step(cache, /*stall_on_miss=*/true);
    for (std::size_t i = 1; i < parties.size(); ++i) {
      credit[i] += parties[i].speed;
      while (credit[i] >= 1.0) {
        streams[i].step(cache, /*stall_on_miss=*/true);
        credit[i] -= 1.0;
      }
    }
    if (done) break;
  }
  std::vector<SimResult> results;
  results.reserve(streams.size());
  for (const FetchStream& s : streams) results.push_back(s.stats());
  return results;
}

Trace line_trace(const Module& module, const CodeLayout& layout,
                 const Trace& block_trace, std::uint32_t line_bytes) {
  (void)module;
  CL_CHECK(block_trace.is_block());
  Trace out(Trace::Granularity::kBlock);
  out.reserve(block_trace.run_count() * 2);
  // Run transducer: one lines_of lookup per run. A single-line block's
  // repeats coalesce into one run in O(1); multi-line blocks genuinely emit
  // their line sequence per repeat (the boundary lines differ, so trimming
  // keeps them), matching the flat expansion exactly.
  for (const Run& r : block_trace.runs()) {
    const auto span = layout.lines_of(BlockId(r.symbol), line_bytes);
    if (span.line_count == 1) {
      out.push_run(static_cast<Symbol>(span.first_line), r.length);
      continue;
    }
    for (std::uint32_t rep = 0; rep < r.length; ++rep) {
      for (std::uint32_t l = 0; l < span.line_count; ++l) {
        out.push_symbol(static_cast<Symbol>(span.first_line + l));
      }
    }
  }
  return out.trimmed();
}

}  // namespace codelayout
