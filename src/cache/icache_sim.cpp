#include "cache/icache_sim.hpp"

#include <algorithm>
#include <utility>

#include "support/registry.hpp"
#include "support/rng.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout {
namespace {

/// One fetch stream: a program replaying its block trace under a layout.
/// The replay cursor walks the trace's run storage directly: (run index,
/// offset within the run), so no flat event vector is ever materialized.
/// All per-block facts come from the FetchPlan — one flat load per event.
///
/// Streams fetch through a CacheLevel front. Under the flat default the
/// front has no next level, access() returns 0/1, and the accounting is the
/// historical single-cache behaviour bit for bit; with an L2 below, demand
/// misses additionally record L2 probes/misses by hit depth.
class FetchStream {
 public:
  FetchStream(const FetchPlan& plan, const Trace& trace,
              std::uint64_t line_namespace, const SimOptions& options,
              std::uint64_t rng_stream)
      : plan_(plan.blocks().data()),
        runs_(trace.runs()),
        namespace_(line_namespace),
        options_(options),
        track_l2_(options.hierarchy.multi_level()),
        rng_(Rng(options.seed).fork(rng_stream)) {
    CL_CHECK(trace.is_block());
    CL_CHECK(!trace.empty());
    CL_CHECK_MSG(plan.line_bytes() == options.hierarchy.l1.line_bytes,
                 "fetch plan was built for a different line size");
    CL_CHECK_MSG(plan.block_count() >= trace.symbol_space(),
                 "fetch plan does not cover the trace's block space");
  }

  /// Executes the next block against `cache`; wraps at the trace end.
  /// Returns true when this step consumed the last event of the trace.
  /// When `stall_on_miss` is set, demand misses accrue fetch-slot debt and
  /// subsequent step() calls are consumed by stalling instead of fetching.
  bool step(CacheLevel& cache, bool stall_on_miss = false) {
    if (stall_on_miss && stall_debt_ >= 1.0) {
      stall_debt_ -= 1.0;
      return false;
    }
    const BlockPlan& bp = plan_[runs_[run_idx_].symbol];

    ++stats_.blocks;
    stats_.instructions += bp.instr_count;
    stats_.overhead_instructions += bp.overhead_instrs;
    for (std::uint32_t i = 0; i < bp.line_count; ++i) {
      const std::uint64_t line = namespace_ + bp.first_line + i;
      ++stats_.line_probes;
      const std::uint32_t depth = cache.access(line);
      if (depth != 0) {
        ++stats_.demand_misses;
        if (track_l2_) {
          ++stats_.l2_probes;
          if (depth > 1) ++stats_.l2_misses;
        }
        if (stall_on_miss) stall_debt_ += options_.miss_stall_blocks;
        if (options_.next_line_prefetch) cache.prefill(line + 1);
      }
    }
    // Speculative wrong-path fetch past a conditional branch: the fetch unit
    // runs ahead on the not-taken path before the branch resolves.
    if (options_.wrong_path_rate > 0.0 && bp.branchy != 0 &&
        rng_.chance(options_.wrong_path_rate)) {
      const std::uint64_t line = namespace_ + bp.first_line + bp.line_count;
      if (cache.access(line) != 0) ++stats_.wrong_path_misses;
    }

    return advance(1);
  }

  /// Solo fast path: consumes the rest of the current run in one shot — one
  /// set of tag probes plus counted hits. Returns true when this call
  /// consumed the last event of the trace.
  ///
  /// Collapse argument: the run touches line ids [first_line, first_line +
  /// line_count] (demand lines plus the wrong-path line plus any next-line
  /// prefill target), i.e. line_count + 1 consecutive ids. When that fits in
  /// the front level's set count, every id maps to a distinct set, so
  /// nothing the run accesses can evict the run's own lines — after the
  /// first iteration all demand probes of iterations 2..r are guaranteed
  /// front-level hits (generating no downstream traffic), and the per-set
  /// LRU recency order after the run matches flat replay (at most one of the
  /// run's lines per set, and nothing else enters those sets meanwhile).
  /// Wrong-path coin flips still happen once per event, keeping the RNG
  /// stream — and therefore every later draw — identical to flat replay.
  /// Only usable for solo simulation: co-run interleaves streams per event.
  bool step_run(CacheLevel& cache) {
    const Run run = runs_[run_idx_];
    const std::uint64_t count = run.length - run_pos_;
    const BlockPlan& bp = plan_[run.symbol];

    if (count > 1 &&
        bp.line_count + std::uint64_t{1} > options_.hierarchy.l1.sets()) {
      // Degenerate geometry (block wider than the set array): the run's own
      // lines can conflict with each other, so replay it per event.
      ++fallback_runs_;
      bool wrapped = false;
      for (std::uint64_t i = 0; i < count; ++i) wrapped = step(cache);
      return wrapped;
    }
    ++fast_runs_;

    // First iteration: the only one that can take demand misses.
    ++stats_.blocks;
    stats_.instructions += bp.instr_count;
    stats_.overhead_instructions += bp.overhead_instrs;
    for (std::uint32_t i = 0; i < bp.line_count; ++i) {
      const std::uint64_t line = namespace_ + bp.first_line + i;
      ++stats_.line_probes;
      const std::uint32_t depth = cache.access(line);
      if (depth != 0) {
        ++stats_.demand_misses;
        if (track_l2_) {
          ++stats_.l2_probes;
          if (depth > 1) ++stats_.l2_misses;
        }
        if (options_.next_line_prefetch) cache.prefill(line + 1);
      }
    }
    const bool branchy = options_.wrong_path_rate > 0.0 && bp.branchy != 0;
    const std::uint64_t wrong_line = namespace_ + bp.first_line + bp.line_count;
    if (branchy && rng_.chance(options_.wrong_path_rate)) {
      if (cache.access(wrong_line) != 0) ++stats_.wrong_path_misses;
    }

    // Iterations 2..count: bulk-counted hits; only the wrong-path draws
    // remain per event.
    const std::uint64_t rest = count - 1;
    stats_.blocks += rest;
    stats_.instructions += rest * bp.instr_count;
    stats_.overhead_instructions += rest * bp.overhead_instrs;
    stats_.line_probes += rest * bp.line_count;
    if (branchy) {
      for (std::uint64_t i = 0; i < rest; ++i) {
        if (rng_.chance(options_.wrong_path_rate)) {
          if (cache.access(wrong_line) != 0) ++stats_.wrong_path_misses;
        }
      }
    }

    return advance(count);
  }

  // --- co-run collapse hooks (DESIGN.md §11) ---

  /// The plan entry for the block the cursor currently points at.
  [[nodiscard]] const BlockPlan& current_plan() const {
    return plan_[runs_[run_idx_].symbol];
  }
  /// Events left in the current run (>= 1 while the trace is live).
  [[nodiscard]] std::uint64_t remaining_in_run() const {
    return runs_[run_idx_].length - run_pos_;
  }
  [[nodiscard]] bool stalled() const { return stall_debt_ >= 1.0; }
  [[nodiscard]] std::uint64_t line_base() const { return namespace_; }
  /// One wrong-path coin flip, exactly as a per-event step would draw it.
  bool draw_wrong_path() { return rng_.chance(options_.wrong_path_rate); }

  /// Applies a collapse window's outcome for this stream: `n` block
  /// executions of the current block, every probe a hit, no stall change.
  /// The caller replays recency separately. Returns true on trace wrap.
  bool apply_bulk(std::uint64_t n) {
    const BlockPlan& bp = current_plan();
    stats_.blocks += n;
    stats_.instructions += n * bp.instr_count;
    stats_.overhead_instructions += n * bp.overhead_instrs;
    stats_.line_probes += n * bp.line_count;
    return advance(n);
  }

  [[nodiscard]] const SimResult& stats() const { return stats_; }
  /// Runs consumed by the O(1) collapse vs replayed per event (degenerate
  /// geometry). Solo fast path only; the co-run collapse counts rounds at
  /// the engine level instead (CorunStats).
  [[nodiscard]] std::uint64_t fast_runs() const { return fast_runs_; }
  [[nodiscard]] std::uint64_t fallback_runs() const { return fallback_runs_; }

 private:
  /// Moves the run cursor forward `n` events; `n` must not overrun the
  /// current run. Returns true when the trace wrapped.
  bool advance(std::uint64_t n) {
    run_pos_ += n;
    CL_DCHECK(run_pos_ <= runs_[run_idx_].length);
    if (run_pos_ == runs_[run_idx_].length) {
      run_pos_ = 0;
      if (++run_idx_ == runs_.size()) {
        run_idx_ = 0;
        return true;
      }
    }
    return false;
  }

  const BlockPlan* plan_;
  std::span<const Run> runs_;
  std::uint64_t namespace_;
  SimOptions options_;
  bool track_l2_;
  Rng rng_;
  std::size_t run_idx_ = 0;
  std::uint64_t run_pos_ = 0;
  double stall_debt_ = 0.0;
  std::uint64_t fast_runs_ = 0;
  std::uint64_t fallback_runs_ = 0;
  SimResult stats_;
};

/// Shared N-way co-run engine: round-robin interleaving with the run-aware
/// collapse. Party 0 is the measured stream (one block per round, ends the
/// simulation when its trace wraps); parties 1..P-1 run at fractional
/// `speeds` through per-party credit accumulators. Statistics, stall debt,
/// credit values, and every RNG stream are bit-identical to pure per-event
/// replay — the exactness argument lives in DESIGN.md §11.
///
/// Hierarchy topology: a flat spec shares the single L1 between all parties
/// (the paper's SMT model); with an L2 each party fetches through a private
/// L1 front and sharing moves to the L2. The collapse stays exact either
/// way: its residency precondition is checked at each party's front level,
/// so every probe inside a window is a front-level hit — no downstream
/// traffic exists to skip — and the recency replay's prefill() of a
/// resident line touches only the front level.
std::vector<SimResult> run_corun_engine(std::span<const PlannedParty> parties,
                                        const SimOptions& options,
                                        CorunStats* stats_out) {
  CL_CHECK_MSG(parties.size() >= 2, "need at least two co-runners");
  for (const PlannedParty& p : parties) {
    CL_CHECK(p.plan && p.trace);
    CL_CHECK(p.speed > 0.0);
  }
  CL_CHECK_MSG(parties[0].speed == 1.0,
               "party 0 is the measured reference stream: it fetches one "
               "block per round and defines the unit peer speeds are "
               "relative to");

  const std::size_t P = parties.size();
  CacheHierarchy hier(options.hierarchy, P);
  std::vector<FetchStream> streams;
  streams.reserve(P);
  std::vector<double> speeds(P, 1.0);
  std::vector<double> credit(P, 0.0);
  for (std::size_t i = 0; i < P; ++i) {
    // Disjoint line-id namespaces: P address spaces sharing one cache.
    streams.emplace_back(*parties[i].plan, *parties[i].trace,
                         static_cast<std::uint64_t>(i) << 40, options,
                         /*rng_stream=*/i + 1);
    speeds[i] = parties[i].speed;
  }

  const bool wrong_path = options.wrong_path_rate > 0.0;
  CorunStats stats;

  // Collapse-window scratch (sized once; reused every window attempt).
  std::vector<double> next_credit(P, 0.0);
  std::vector<std::uint32_t> round_steps(P, 0);
  std::vector<std::uint64_t> remaining(P, 0);
  std::vector<std::uint64_t> window_steps(P, 0);
  std::vector<std::uint64_t> last_span(P, 0);
  std::vector<std::int64_t> last_wrong(P, 0);
  std::vector<std::uint8_t> branchy(P, 0);
  // A recency-replay unit: one stream's final demand span (even keys) or
  // final successful wrong-path fetch (odd keys), ordered by the global step
  // ordinal it happened at.
  struct Unit {
    std::uint64_t key;
    std::uint32_t party;
    bool wrong;
  };
  std::vector<Unit> units;
  units.reserve(2 * P);

  for (;;) {
    // ---- Try to open a collapse window over the streams' current runs ----
    // Cheap gate first: nobody stalled, and at least two full rounds fit
    // inside every stream's current run (peer i takes at most
    // floor(credit + 2*speed) steps over two rounds).
    bool collapsible = true;
    for (std::size_t i = 0; i < P; ++i) {
      if (streams[i].stalled()) {
        collapsible = false;
        break;
      }
      remaining[i] = streams[i].remaining_in_run();
      const double need = i == 0 ? 2.0 : credit[i] + 2.0 * speeds[i];
      if (static_cast<double>(remaining[i]) < need) {
        collapsible = false;
        break;
      }
    }
    if (collapsible) {
      // Residency precondition: every demand line of every stream's current
      // block resident in that stream's front level, plus the wrong-path
      // line for blocks that can draw one. Then every probe in the window
      // hits at the front, nothing is installed or evicted anywhere in the
      // hierarchy, and debt stays constant (contains() never perturbs
      // state).
      for (std::size_t i = 0; i < P && collapsible; ++i) {
        const CacheLevel& front = hier.front(i);
        const BlockPlan& bp = streams[i].current_plan();
        const std::uint64_t base = streams[i].line_base() + bp.first_line;
        for (std::uint32_t l = 0; l < bp.line_count; ++l) {
          if (!front.contains(base + l)) {
            collapsible = false;
            break;
          }
        }
        branchy[i] = wrong_path && bp.branchy != 0 ? 1 : 0;
        if (collapsible && branchy[i] != 0 &&
            !front.contains(base + bp.line_count)) {
          collapsible = false;
        }
      }
    }
    if (collapsible) {
      // ---- Replay rounds in bulk: credit arithmetic and RNG draws happen
      // exactly as per-event replay would issue them; only the cache probes
      // (all provably hits) are skipped. A round is rejected — and the
      // window closed — when it would overrun any stream's current run.
      std::uint64_t seq = 0;
      std::uint64_t rounds = 0;
      std::fill(window_steps.begin(), window_steps.end(), 0);
      std::fill(last_wrong.begin(), last_wrong.end(), -1);
      while (window_steps[0] < remaining[0]) {
        bool fits = true;
        for (std::size_t i = 1; i < P; ++i) {
          double c = credit[i] + speeds[i];
          std::uint32_t n = 0;
          while (c >= 1.0) {
            c -= 1.0;
            ++n;
          }
          next_credit[i] = c;
          round_steps[i] = n;
          if (window_steps[i] + n > remaining[i]) {
            fits = false;
            break;
          }
        }
        if (!fits) break;
        // Commit the round: per-stream draws in step order (cross-stream
        // draw order is irrelevant — the RNG streams are independent).
        ++seq;
        ++window_steps[0];
        last_span[0] = seq;
        if (branchy[0] != 0 && streams[0].draw_wrong_path()) {
          last_wrong[0] = static_cast<std::int64_t>(seq);
        }
        for (std::size_t i = 1; i < P; ++i) {
          credit[i] = next_credit[i];
          const std::uint32_t n = round_steps[i];
          if (n == 0) continue;
          if (branchy[i] == 0) {
            // No draws to issue: the stream's last step this round lands at
            // ordinal seq + n either way.
            seq += n;
            window_steps[i] += n;
            last_span[i] = seq;
          } else {
            for (std::uint32_t s = 0; s < n; ++s) {
              ++seq;
              ++window_steps[i];
              last_span[i] = seq;
              if (streams[i].draw_wrong_path()) {
                last_wrong[i] = static_cast<std::int64_t>(seq);
              }
            }
          }
        }
        ++rounds;
      }
      if (rounds > 0) {
        stats.rounds_fast += rounds;
        ++stats.windows;
        // Reconstruct per-set recency exactly: only each line's *last* touch
        // in the window determines its final rank, so re-touch each stream's
        // span (and last successful wrong-path line) via prefill() in global
        // last-touch order. Keys interleave span touches (2*seq) with wrong
        // touches (2*seq+1): within one step the span precedes the draw.
        // Every replayed line is resident in its party's front level, so
        // prefill() is a pure recency touch of that level — no chaining.
        units.clear();
        for (std::size_t i = 0; i < P; ++i) {
          if (window_steps[i] == 0) continue;
          units.push_back(
              Unit{2 * last_span[i], static_cast<std::uint32_t>(i), false});
          if (last_wrong[i] >= 0) {
            units.push_back(
                Unit{2 * static_cast<std::uint64_t>(last_wrong[i]) + 1,
                     static_cast<std::uint32_t>(i), true});
          }
        }
        std::sort(units.begin(), units.end(),
                  [](const Unit& a, const Unit& b) { return a.key < b.key; });
        for (const Unit& u : units) {
          CacheLevel& front = hier.front(u.party);
          const BlockPlan& bp = streams[u.party].current_plan();
          const std::uint64_t base = streams[u.party].line_base() + bp.first_line;
          if (u.wrong) {
            front.prefill(base + bp.line_count);
          } else {
            for (std::uint32_t l = 0; l < bp.line_count; ++l) {
              front.prefill(base + l);
            }
          }
        }
        bool done = false;
        for (std::size_t i = 0; i < P; ++i) {
          if (window_steps[i] == 0) continue;
          const bool wrapped = streams[i].apply_bulk(window_steps[i]);
          if (i == 0) done = wrapped;
        }
        if (done) break;
        continue;
      }
      // rounds == 0: a run boundary blocks even one full round — fall back.
    }

    // ---- Per-event round: the reference interleaving ----
    ++stats.rounds_fallback;
    const bool done = streams[0].step(hier.front(0), /*stall_on_miss=*/true);
    for (std::size_t i = 1; i < P; ++i) {
      credit[i] += speeds[i];
      while (credit[i] >= 1.0) {
        streams[i].step(hier.front(i), /*stall_on_miss=*/true);
        credit[i] -= 1.0;
      }
    }
    if (done) break;
  }

  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter("cache.corun.rounds_fast").add(stats.rounds_fast);
    registry.counter("cache.corun.rounds_fallback").add(stats.rounds_fallback);
    registry.counter("cache.corun.windows").add(stats.windows);
  }
  if (stats_out) *stats_out = stats;

  std::vector<SimResult> results;
  results.reserve(streams.size());
  for (const FetchStream& s : streams) results.push_back(s.stats());
  return results;
}

}  // namespace

SimOptions hardware_proxy_options(std::uint64_t seed) {
  return SimOptions{.next_line_prefetch = true,
                    .wrong_path_rate = 0.08,
                    .seed = seed,
                    .dispatch = {}};
}

std::vector<LevelStats> level_breakdown(const SimResult& sim,
                                        const HierarchySpec& hierarchy) {
  std::vector<LevelStats> levels;
  levels.push_back(LevelStats{sim.line_probes, sim.demand_misses});
  if (hierarchy.multi_level()) {
    levels.push_back(LevelStats{sim.l2_probes, sim.l2_misses});
  }
  return levels;
}

double amat(const SimResult& sim, const HierarchySpec& hierarchy) {
  const double mr1 =
      sim.line_probes ? static_cast<double>(sim.demand_misses) /
                            static_cast<double>(sim.line_probes)
                      : 0.0;
  if (!hierarchy.multi_level()) {
    return hierarchy.l1_hit_cycles + mr1 * hierarchy.memory_cycles;
  }
  const double mr2 = sim.l2_probes ? static_cast<double>(sim.l2_misses) /
                                         static_cast<double>(sim.l2_probes)
                                   : 0.0;
  return hierarchy.l1_hit_cycles +
         mr1 * (hierarchy.l2_hit_cycles + mr2 * hierarchy.memory_cycles);
}

namespace {

/// Straight-line solo replay: the per-event loop of FetchStream::step()
/// unrolled over the flat SoA view — no run-cursor bookkeeping, one plan
/// load and a tight probe loop per event. The probe sequence, prefills, and
/// wrong-path draws (Rng(seed).fork(1), namespace 0) are exactly step()'s,
/// so the result is bit-identical to the run-collapse replay.
SimResult solo_flat(const FetchPlan& plan, const Trace& trace,
                    const SimOptions& options) {
  CL_CHECK(trace.is_block());
  CL_CHECK(!trace.empty());
  CL_CHECK_MSG(plan.line_bytes() == options.hierarchy.l1.line_bytes,
               "fetch plan was built for a different line size");
  CL_CHECK_MSG(plan.block_count() >= trace.symbol_space(),
               "fetch plan does not cover the trace's block space");
  CacheHierarchy hier(options.hierarchy);
  CacheLevel& front = hier.front(0);
  const BlockPlan* plans = plan.blocks().data();
  const bool track_l2 = options.hierarchy.multi_level();
  const bool wrong_path = options.wrong_path_rate > 0.0;
  Rng rng = Rng(options.seed).fork(1);
  SimResult stats;
  for (const Symbol s : trace.symbols()) {
    const BlockPlan& bp = plans[s];
    ++stats.blocks;
    stats.instructions += bp.instr_count;
    stats.overhead_instructions += bp.overhead_instrs;
    for (std::uint32_t i = 0; i < bp.line_count; ++i) {
      const std::uint64_t line = bp.first_line + i;
      ++stats.line_probes;
      const std::uint32_t depth = front.access(line);
      if (depth != 0) {
        ++stats.demand_misses;
        if (track_l2) {
          ++stats.l2_probes;
          if (depth > 1) ++stats.l2_misses;
        }
        if (options.next_line_prefetch) front.prefill(line + 1);
      }
    }
    if (wrong_path && bp.branchy != 0 && rng.chance(options.wrong_path_rate)) {
      const std::uint64_t line = bp.first_line + bp.line_count;
      if (front.access(line) != 0) ++stats.wrong_path_misses;
    }
  }
  return stats;
}

}  // namespace

SimResult simulate_solo(const FetchPlan& plan, const Trace& trace,
                        const SimOptions& options) {
  CODELAYOUT_PHASE("icache_solo", "cache", "cache.icache_solo.wall_ns",
                   {"events", std::uint64_t{trace.size()}},
                   {"runs", std::uint64_t{trace.run_count()}});
  if (choose_path(options.dispatch, DispatchKernel::kIcacheSolo, trace) ==
      KernelPath::kStraightLine) {
    return solo_flat(plan, trace, options);
  }
  CacheHierarchy hier(options.hierarchy);
  FetchStream stream(plan, trace, /*line_namespace=*/0, options,
                     /*rng_stream=*/1);
  while (!stream.step_run(hier.front(0))) {
  }
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter("cache.solo.runs_fast").add(stream.fast_runs());
    registry.counter("cache.solo.runs_fallback").add(stream.fallback_runs());
  }
  return stream.stats();
}

SimResult simulate_solo(const Module& module, const CodeLayout& layout,
                        const Trace& trace, const SimOptions& options) {
  const FetchPlan plan(module, layout, options.geometry().line_bytes);
  return simulate_solo(plan, trace, options);
}

CorunResult simulate_corun(const FetchPlan& self_plan, const Trace& self_trace,
                           const FetchPlan& peer_plan, const Trace& peer_trace,
                           const SimOptions& options, double peer_speed) {
  CL_CHECK(peer_speed > 0.0);
  CODELAYOUT_PHASE("icache_corun", "cache", "cache.icache_corun.wall_ns",
                   {"self_events", std::uint64_t{self_trace.size()}},
                   {"peer_events", std::uint64_t{peer_trace.size()}});
  const PlannedParty parties[2] = {{&self_plan, &self_trace, 1.0},
                                   {&peer_plan, &peer_trace, peer_speed}};
  CorunResult result;
  std::vector<SimResult> results = run_corun_engine(
      std::span<const PlannedParty>(parties), options, &result.stats);
  result.self = results[0];
  result.peer = results[1];
  return result;
}

CorunResult simulate_corun(const Module& self_module,
                           const CodeLayout& self_layout,
                           const Trace& self_trace,
                           const Module& peer_module,
                           const CodeLayout& peer_layout,
                           const Trace& peer_trace,
                           const SimOptions& options, double peer_speed) {
  const FetchPlan self_plan(self_module, self_layout,
                            options.geometry().line_bytes);
  const FetchPlan peer_plan(peer_module, peer_layout,
                            options.geometry().line_bytes);
  return simulate_corun(self_plan, self_trace, peer_plan, peer_trace, options,
                        peer_speed);
}

std::vector<SimResult> simulate_corun(const CorunSpec& spec,
                                      CorunStats* stats) {
  CODELAYOUT_PHASE("icache_corun_many", "cache",
                   "cache.icache_corun_many.wall_ns",
                   {"parties", std::uint64_t{spec.parties.size()}});
  return run_corun_engine(spec.parties, spec.options, stats);
}

std::vector<SimResult> simulate_corun_many(
    std::span<const PlannedParty> parties, const SimOptions& options,
    CorunStats* stats) {
  CorunSpec spec;
  spec.parties.assign(parties.begin(), parties.end());
  spec.options = options;
  return simulate_corun(spec, stats);
}

std::vector<SimResult> simulate_corun_many(std::span<const CorunParty> parties,
                                           const SimOptions& options,
                                           CorunStats* stats) {
  CL_CHECK_MSG(parties.size() >= 2, "need at least two co-runners");
  std::vector<FetchPlan> plans;
  CorunSpec spec;
  spec.options = options;
  plans.reserve(parties.size());
  spec.parties.reserve(parties.size());
  for (const CorunParty& p : parties) {
    CL_CHECK(p.module && p.layout && p.trace);
    CL_CHECK(p.speed > 0.0);
    plans.emplace_back(*p.module, *p.layout, options.geometry().line_bytes);
    spec.parties.push_back(CorunSpec::Party{&plans.back(), p.trace, p.speed});
  }
  return simulate_corun(spec, stats);
}

Trace line_trace(const Module& module, const CodeLayout& layout,
                 const Trace& block_trace, std::uint32_t line_bytes) {
  (void)module;
  CL_CHECK(block_trace.is_block());
  Trace out(Trace::Granularity::kBlock);
  out.reserve(block_trace.run_count() * 2);
  // Run transducer: one lines_of lookup per run. A single-line block's
  // repeats coalesce into one run in O(1); multi-line blocks genuinely emit
  // their line sequence per repeat (the boundary lines differ, so trimming
  // keeps them), matching the flat expansion exactly.
  for (const Run& r : block_trace.runs()) {
    const auto span = layout.lines_of(BlockId(r.symbol), line_bytes);
    if (span.line_count == 1) {
      out.push_run(static_cast<Symbol>(span.first_line), r.length);
      continue;
    }
    for (std::uint32_t rep = 0; rep < r.length; ++rep) {
      for (std::uint32_t l = 0; l < span.line_count; ++l) {
        out.push_symbol(static_cast<Symbol>(span.first_line + l));
      }
    }
  }
  return out.trimmed();
}

}  // namespace codelayout
