#include "cache/set_assoc.hpp"

#include <array>
#include <bit>

namespace codelayout {
namespace {

// kPromote[order * 4 + way]: the recency permutation after promoting `way`
// to MRU — the way moves to position 0, everything previously above it
// shifts one position deeper, relative order otherwise preserved. Entries
// for non-permutation order bytes are never indexed (the cache maintains
// valid permutations from construction on).
constexpr std::array<std::uint8_t, 256 * 4> make_promote_table() {
  std::array<std::uint8_t, 256 * 4> table{};
  for (unsigned order = 0; order < 256; ++order) {
    for (unsigned way = 0; way < 4; ++way) {
      unsigned out = way;
      unsigned shift = 2;
      for (unsigned p = 0; p < 4 && shift < 8; ++p) {
        const unsigned w = (order >> (2 * p)) & 3;
        if (w == way) continue;
        out |= w << shift;
        shift += 2;
      }
      table[order * 4 + way] = static_cast<std::uint8_t>(out);
    }
  }
  return table;
}

constexpr auto kPromote = make_promote_table();

// Positions 0..3 hold ways 0..3: a valid permutation for any assoc <= 4
// (positions >= assoc never matter — their ways are never promoted, so they
// stay at the tail).
constexpr std::uint8_t kIdentityOrder = 0b11'10'01'00;

// The 16-nibble identity permutation for the wide representation: position p
// holds way p. Tail nibbles (>= assoc) keep values >= assoc forever — only
// positions <= assoc-1 are ever promoted — so they can never shadow a real
// way in the nibble match.
constexpr std::uint64_t kIdentityOrderWide = 0xfedcba9876543210ull;

}  // namespace

SetAssocCache::SetAssocCache(const CacheGeometry& geom) : geom_(geom) {
  geom_.validate();  // includes the power-of-two set-count requirement
  set_mask_ = geom_.sets() - 1;
  assoc_ = geom_.associativity;
  repr_ = assoc_ <= kPackedMaxAssoc        ? Repr::kPacked4
          : assoc_ <= kPackedWideMaxAssoc  ? Repr::kPackedWide
                                           : Repr::kGeneric;
  ways_.assign(geom_.sets() * assoc_, kEmpty);
  if (repr_ == Repr::kPacked4) {
    partial_.assign(geom_.sets(), 0);
    order_.assign(geom_.sets(), kIdentityOrder);
  } else if (repr_ == Repr::kPackedWide) {
    words_ = (assoc_ + 7) / 8;
    partial_.assign(geom_.sets() * words_, 0);
    order16_.assign(geom_.sets(), kIdentityOrderWide);
  }
}

bool SetAssocCache::touch(std::uint64_t line, bool count) {
  switch (repr_) {
    case Repr::kPacked4: return touch_packed(line, count);
    case Repr::kPackedWide: return touch_packed_wide(line, count);
    case Repr::kGeneric: return touch_generic(line, count);
  }
  return false;  // unreachable
}

bool SetAssocCache::touch_packed(std::uint64_t line, bool count) {
  const std::uint64_t set = line & set_mask_;
  std::uint64_t* tags = &ways_[set * assoc_];
  const std::uint64_t lanes = partial_[set];
  // SWAR zero-lane test: a lane of `diff` is zero iff that way's partial tag
  // matches. Borrow propagation can flag spurious lanes above a true match;
  // never the reverse (a zero lane is always flagged), and every candidate
  // is confirmed against the full tag, so false positives only cost a load.
  const std::uint64_t diff = lanes ^ (kLaneLsb * partial_tag(line));
  std::uint64_t cand = (diff - kLaneLsb) & ~diff & kLaneMsb;
  if (count) ++accesses_;
  while (cand != 0) {
    const auto lane = static_cast<std::uint32_t>(std::countr_zero(cand)) >> 4;
    if (lane < assoc_ && tags[lane] == line) {
      order_[set] = kPromote[order_[set] * 4u + lane];
      return true;
    }
    cand &= cand - 1;
  }
  // Miss: the victim is the way at the LRU position. Empty ways start at the
  // permutation tail and are never promoted until filled, so they are
  // consumed before any real eviction — the same fill order as the generic
  // recency array.
  if (count) ++misses_;
  const std::uint8_t order = order_[set];
  const std::uint32_t victim = (order >> (2 * (assoc_ - 1))) & 3u;
  if (tags[victim] != kEmpty) ++evictions_;
  tags[victim] = line;
  const std::uint32_t shift = 16 * victim;
  partial_[set] = (lanes & ~(std::uint64_t{0xffff} << shift)) |
                  (std::uint64_t{partial_tag(line)} << shift);
  order_[set] = kPromote[order * 4u + victim];
  return false;
}

std::uint32_t SetAssocCache::wide_position(std::uint64_t perm,
                                           std::uint32_t way) {
  const std::uint64_t diff = perm ^ (kNibbleLsb * way);
  const std::uint64_t flags = (diff - kNibbleLsb) & ~diff & kNibbleMsb;
  return static_cast<std::uint32_t>(std::countr_zero(flags)) >> 2;
}

std::uint64_t SetAssocCache::wide_promote(std::uint64_t perm,
                                          std::uint32_t way,
                                          std::uint32_t pos) {
  const std::uint32_t bit = 4 * pos;
  const std::uint64_t below = perm & ((std::uint64_t{1} << bit) - 1);
  const std::uint64_t above =
      pos >= 15 ? 0 : (perm >> (bit + 4)) << (bit + 4);
  return above | (below << 4) | way;
}

bool SetAssocCache::touch_packed_wide(std::uint64_t line, bool count) {
  const std::uint64_t set = line & set_mask_;
  std::uint64_t* tags = &ways_[set * assoc_];
  std::uint64_t* lanes = &partial_[set * words_];
  if (count) ++accesses_;
  // Same zero-lane test as the 4-way path, at byte granularity across
  // `words_` lane words; candidates confirm against the full tag.
  const std::uint64_t pattern = kByteLsb * partial_tag8(line);
  for (std::uint32_t w = 0; w < words_; ++w) {
    const std::uint64_t diff = lanes[w] ^ pattern;
    std::uint64_t cand = (diff - kByteLsb) & ~diff & kByteMsb;
    while (cand != 0) {
      const std::uint32_t lane =
          8 * w + (static_cast<std::uint32_t>(std::countr_zero(cand)) >> 3);
      if (lane < assoc_ && tags[lane] == line) {
        std::uint64_t& perm = order16_[set];
        perm = wide_promote(perm, lane, wide_position(perm, lane));
        return true;
      }
      cand &= cand - 1;
    }
  }
  // Miss: victim at the LRU position, exactly as the packed4 path (empty
  // ways drain from the permutation tail before any real eviction).
  if (count) ++misses_;
  const std::uint64_t perm = order16_[set];
  const std::uint32_t victim =
      static_cast<std::uint32_t>(perm >> (4 * (assoc_ - 1))) & 0xfu;
  if (tags[victim] != kEmpty) ++evictions_;
  tags[victim] = line;
  std::uint64_t& word = lanes[victim >> 3];
  const std::uint32_t shift = 8 * (victim & 7u);
  word = (word & ~(std::uint64_t{0xff} << shift)) |
         (std::uint64_t{partial_tag8(line)} << shift);
  order16_[set] = wide_promote(perm, victim, assoc_ - 1);
  return false;
}

bool SetAssocCache::touch_generic(std::uint64_t line, bool count) {
  const std::uint64_t set = line & set_mask_;
  std::uint64_t* base = &ways_[set * assoc_];

  if (count) ++accesses_;
  // Probe MRU-first; on hit rotate the prefix so the hit way becomes MRU.
  for (std::uint32_t i = 0; i < assoc_; ++i) {
    if (base[i] == line) {
      for (std::uint32_t j = i; j > 0; --j) base[j] = base[j - 1];
      base[0] = line;
      return true;
    }
  }
  // Miss: evict the LRU way (the last slot).
  if (count) ++misses_;
  if (base[assoc_ - 1] != kEmpty) ++evictions_;
  for (std::uint32_t j = assoc_ - 1; j > 0; --j) base[j] = base[j - 1];
  base[0] = line;
  return false;
}

bool SetAssocCache::contains(std::uint64_t line) const {
  const std::uint64_t set = line & set_mask_;
  const std::uint64_t* tags = &ways_[set * assoc_];
  if (repr_ == Repr::kPacked4) {
    const std::uint64_t diff = partial_[set] ^ (kLaneLsb * partial_tag(line));
    std::uint64_t cand = (diff - kLaneLsb) & ~diff & kLaneMsb;
    while (cand != 0) {
      const auto lane =
          static_cast<std::uint32_t>(std::countr_zero(cand)) >> 4;
      if (lane < assoc_ && tags[lane] == line) return true;
      cand &= cand - 1;
    }
    return false;
  }
  if (repr_ == Repr::kPackedWide) {
    const std::uint64_t* lanes = &partial_[set * words_];
    const std::uint64_t pattern = kByteLsb * partial_tag8(line);
    for (std::uint32_t w = 0; w < words_; ++w) {
      const std::uint64_t diff = lanes[w] ^ pattern;
      std::uint64_t cand = (diff - kByteLsb) & ~diff & kByteMsb;
      while (cand != 0) {
        const std::uint32_t lane =
            8 * w + (static_cast<std::uint32_t>(std::countr_zero(cand)) >> 3);
        if (lane < assoc_ && tags[lane] == line) return true;
        cand &= cand - 1;
      }
    }
    return false;
  }
  for (std::uint32_t i = 0; i < assoc_; ++i) {
    if (tags[i] == line) return true;
  }
  return false;
}

void SetAssocCache::flush() {
  ways_.assign(ways_.size(), kEmpty);
  if (repr_ == Repr::kPacked4) {
    partial_.assign(partial_.size(), 0);
    order_.assign(order_.size(), kIdentityOrder);
  } else if (repr_ == Repr::kPackedWide) {
    partial_.assign(partial_.size(), 0);
    order16_.assign(order16_.size(), kIdentityOrderWide);
  }
}

}  // namespace codelayout
