#include "cache/set_assoc.hpp"

namespace codelayout {

SetAssocCache::SetAssocCache(const CacheGeometry& geom) : geom_(geom) {
  geom_.validate();
  set_mask_ = geom_.sets() - 1;
  CL_CHECK_MSG((geom_.sets() & set_mask_) == 0,
               "set count must be a power of two");
  ways_.assign(geom_.sets() * geom_.associativity, kEmpty);
}

bool SetAssocCache::touch(std::uint64_t line, bool count) {
  const std::uint64_t set = line & set_mask_;
  std::uint64_t* base = &ways_[set * geom_.associativity];
  const std::uint32_t assoc = geom_.associativity;

  if (count) ++accesses_;
  // Probe MRU-first; on hit rotate the prefix so the hit way becomes MRU.
  for (std::uint32_t i = 0; i < assoc; ++i) {
    if (base[i] == line) {
      for (std::uint32_t j = i; j > 0; --j) base[j] = base[j - 1];
      base[0] = line;
      return true;
    }
  }
  // Miss: evict the LRU way (the last slot).
  if (count) ++misses_;
  for (std::uint32_t j = assoc - 1; j > 0; --j) base[j] = base[j - 1];
  base[0] = line;
  return false;
}

bool SetAssocCache::access(std::uint64_t line) { return touch(line, true); }

bool SetAssocCache::prefill(std::uint64_t line) { return touch(line, false); }

void SetAssocCache::flush() {
  ways_.assign(ways_.size(), kEmpty);
}

}  // namespace codelayout
