#include "cache/hierarchy.hpp"

#include <cmath>
#include <cstring>

namespace codelayout {
namespace {

// The same LEB128 varints and IEEE-754 bit patterns the service protocol
// uses, so the spec's canonical encoding is stable and self-contained.
void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

void put_double(std::string& out, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

void put_geometry(std::string& out, const CacheGeometry& geom) {
  put_varint(out, geom.size_bytes);
  put_varint(out, geom.associativity);
  put_varint(out, geom.line_bytes);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

  std::uint8_t u8() {
    CL_CHECK_MSG(pos_ < data_.size(), "hierarchy encoding truncated");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint64_t varint() {
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      const std::uint8_t byte = u8();
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        CL_CHECK_MSG(shift < 63 || byte <= 1,
                     "hierarchy encoding varint overflow");
        return value;
      }
    }
    CL_CHECK_MSG(false, "hierarchy encoding varint overflow");
    return 0;  // unreachable
  }

  double f64() {
    CL_CHECK_MSG(data_.size() - pos_ >= 8, "hierarchy encoding truncated");
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(
                  static_cast<std::uint8_t>(data_[pos_ + i]))
              << (8 * i);
    }
    pos_ += 8;
    double value = 0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }

  CacheGeometry geometry() {
    CacheGeometry geom;
    geom.size_bytes = varint();
    const std::uint64_t assoc = varint();
    const std::uint64_t line = varint();
    CL_CHECK_MSG(assoc <= ~std::uint32_t{0} && line <= ~std::uint32_t{0},
                 "hierarchy encoding: geometry field out of range");
    geom.associativity = static_cast<std::uint32_t>(assoc);
    geom.line_bytes = static_cast<std::uint32_t>(line);
    return geom;
  }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
};

std::uint64_t parse_number(std::string_view text, std::string_view what) {
  CL_CHECK_MSG(!text.empty(), "geometry: empty " << what << " field");
  std::uint64_t value = 0;
  std::uint64_t scale = 1;
  std::string_view digits = text;
  const char suffix = text.back();
  if (suffix == 'K' || suffix == 'k') {
    scale = 1024;
    digits = text.substr(0, text.size() - 1);
  } else if (suffix == 'M' || suffix == 'm') {
    scale = 1024 * 1024;
    digits = text.substr(0, text.size() - 1);
  }
  CL_CHECK_MSG(!digits.empty(), "geometry: empty " << what << " field");
  for (const char c : digits) {
    CL_CHECK_MSG(c >= '0' && c <= '9',
                 "geometry: bad " << what << " '" << std::string(text) << "'");
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
    CL_CHECK_MSG(value <= (~std::uint64_t{0}) / scale,
                 "geometry: " << what << " overflows");
  }
  return value * scale;
}

}  // namespace

CacheGeometry parse_geometry(std::string_view text) {
  const std::size_t first = text.find('/');
  CL_CHECK_MSG(first != std::string_view::npos,
               "geometry: expected SIZE/ASSOC/LINE, got '" << std::string(text)
                                                           << "'");
  const std::size_t second = text.find('/', first + 1);
  CL_CHECK_MSG(second != std::string_view::npos &&
                   text.find('/', second + 1) == std::string_view::npos,
               "geometry: expected SIZE/ASSOC/LINE, got '" << std::string(text)
                                                           << "'");
  CacheGeometry geom;
  geom.size_bytes = parse_number(text.substr(0, first), "size");
  const std::uint64_t assoc =
      parse_number(text.substr(first + 1, second - first - 1), "assoc");
  const std::uint64_t line = parse_number(text.substr(second + 1), "line");
  CL_CHECK_MSG(assoc > 0 && assoc <= 1024, "geometry: assoc out of range");
  CL_CHECK_MSG(line > 0 && line <= (1u << 20), "geometry: line out of range");
  geom.associativity = static_cast<std::uint32_t>(assoc);
  geom.line_bytes = static_cast<std::uint32_t>(line);
  geom.validate();
  return geom;
}

void HierarchySpec::validate() const {
  l1.validate();
  CL_CHECK_MSG(std::isfinite(l1_hit_cycles) && l1_hit_cycles > 0.0,
               "hierarchy: L1 hit latency must be finite and positive");
  CL_CHECK_MSG(std::isfinite(memory_cycles) && memory_cycles >= l1_hit_cycles,
               "hierarchy: memory latency must be finite and >= the L1 hit");
  if (!l2) return;
  l2->validate();
  CL_CHECK_MSG(l2->line_bytes == l1.line_bytes,
               "hierarchy: L2 line size " << l2->line_bytes
                                          << " must match L1 line size "
                                          << l1.line_bytes
                                          << " (line ids are L1-granular)");
  CL_CHECK_MSG(l2->size_bytes >= l1.size_bytes,
               "hierarchy: L2 (" << l2->to_string()
                                 << ") must be at least as large as L1 ("
                                 << l1.to_string() << ")");
  CL_CHECK_MSG(std::isfinite(l2_hit_cycles) && l2_hit_cycles >= l1_hit_cycles &&
                   memory_cycles >= l2_hit_cycles,
               "hierarchy: latencies must be finite with L1 <= L2 <= memory");
}

std::string HierarchySpec::to_string() const {
  std::string out = l1.to_string();
  if (l2) {
    out += "+l2=";
    out += l2->to_string();
  }
  return out;
}

std::string HierarchySpec::encode() const {
  std::string out;
  put_geometry(out, l1);
  out.push_back(l2 ? 1 : 0);
  if (l2) put_geometry(out, *l2);
  put_double(out, l1_hit_cycles);
  put_double(out, l2_hit_cycles);
  put_double(out, memory_cycles);
  return out;
}

HierarchySpec HierarchySpec::decode(std::string_view bytes) {
  Reader in(bytes);
  HierarchySpec spec;
  spec.l1 = in.geometry();
  const std::uint8_t has_l2 = in.u8();
  CL_CHECK_MSG(has_l2 <= 1, "hierarchy encoding: bad L2 presence flag");
  if (has_l2 != 0) spec.l2 = in.geometry();
  spec.l1_hit_cycles = in.f64();
  spec.l2_hit_cycles = in.f64();
  spec.memory_cycles = in.f64();
  CL_CHECK_MSG(in.done(), "hierarchy encoding: trailing bytes");
  return spec;
}

std::uint64_t HierarchySpec::hash() const {
  const std::string bytes = encode();
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

HierarchySpec parse_hierarchy(std::string_view text) {
  HierarchySpec spec;
  const std::size_t plus = text.find("+l2=");
  if (plus == std::string_view::npos) {
    spec.l1 = parse_geometry(text);
  } else {
    spec.l1 = parse_geometry(text.substr(0, plus));
    spec.l2 = parse_geometry(text.substr(plus + 4));
  }
  spec.validate();
  return spec;
}

CacheHierarchy::CacheHierarchy(const HierarchySpec& spec, std::size_t parties)
    : spec_(spec) {
  CL_CHECK_MSG(parties >= 1, "cache hierarchy needs >= 1 party");
  spec_.validate();
  if (spec_.l2) {
    l2_ = std::make_unique<CacheLevel>(*spec_.l2, spec_.l2_hit_cycles);
    // Sharing moves to the L2: every party fronts with a private L1.
    fronts_.reserve(parties);
    for (std::size_t i = 0; i < parties; ++i) {
      fronts_.push_back(std::make_unique<CacheLevel>(
          spec_.l1, spec_.l1_hit_cycles, l2_.get()));
    }
  } else {
    // Flat: the parties share the single L1, the paper's SMT model.
    fronts_.push_back(
        std::make_unique<CacheLevel>(spec_.l1, spec_.l1_hit_cycles));
  }
}

}  // namespace codelayout
