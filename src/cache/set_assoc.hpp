// Set-associative LRU cache over 64-bit line ids.
//
// Line ids are global: co-running programs use disjoint id ranges so the
// shared cache sees two address spaces, exactly like two hyper-threads with
// distinct code segments.
//
// Two internal representations, selected by associativity at construction,
// with provably identical hit/miss/eviction sequences (both are exact true
// LRU with empty ways treated as least-recent):
//   * packed (assoc <= 4) — per set, the ways' 16-bit partial tags live in
//     one uint64_t probed with a SWAR zero-lane test, full tags (way-index
//     order) confirm the candidate lanes, and recency is a 2-bit-per-way
//     permutation byte updated through a precomputed promote table. A probe
//     is one lane load + one multiply-mask test + (on hit) one table lookup;
//     no per-way scan, no prefix rotation.
//   * generic (assoc > 4) — ways kept in recency order in a small contiguous
//     array; probe is a linear scan and a hit rotates the prefix.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/geometry.hpp"

namespace codelayout {

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geom);

  /// Touches `line`; returns true on hit. The set index is the line id
  /// modulo the set count (physical index bits above the line offset).
  bool access(std::uint64_t line) { return touch(line, true); }

  /// Installs without counting (prefetch fill). Returns true if already
  /// resident. On a hit this is a pure recency touch — the co-run collapse
  /// uses it to replay a window's last-touch order.
  bool prefill(std::uint64_t line) { return touch(line, false); }

  /// Residency probe: no recency update, no counting, no install.
  [[nodiscard]] bool contains(std::uint64_t line) const;

  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double miss_ratio() const {
    return accesses_ ? static_cast<double>(misses_) /
                           static_cast<double>(accesses_)
                     : 0.0;
  }

  /// Zeroes the access/miss statistics; residency is untouched.
  void reset_stats() { accesses_ = misses_ = 0; }

  /// Empties every way. Intentionally preserves `accesses_`/`misses_`: a
  /// flush models an invalidation event mid-measurement (context switch,
  /// self-modifying code), and the statistics cover the whole measurement
  /// window across flushes. Call reset_stats() to also restart the counts.
  void flush();

  [[nodiscard]] const CacheGeometry& geometry() const { return geom_; }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  // Broadcast/borrow masks for the 4x16-bit SWAR zero-lane test.
  static constexpr std::uint64_t kLaneLsb = 0x0001000100010001ull;
  static constexpr std::uint64_t kLaneMsb = 0x8000800080008000ull;
  static constexpr std::uint32_t kPackedMaxAssoc = 4;

  /// 16-bit mix of the line id. Collisions are fine (the full tag confirms);
  /// the multiply spreads the low bits so same-set lines rarely share a lane
  /// pattern.
  static std::uint16_t partial_tag(std::uint64_t line) {
    return static_cast<std::uint16_t>((line * 0x9e3779b97f4a7c15ull) >> 48);
  }

  bool touch(std::uint64_t line, bool count);
  bool touch_packed(std::uint64_t line, bool count);
  bool touch_generic(std::uint64_t line, bool count);

  CacheGeometry geom_;
  std::uint64_t set_mask_;
  std::uint32_t assoc_;
  bool packed_;
  // Full tags. Packed: way-index order (recency lives in order_).
  // Generic: recency order (slot 0 is MRU). kEmpty marks an invalid way.
  std::vector<std::uint64_t> ways_;
  // Packed only: per-set partial-tag lanes, lane i = way i's 16-bit tag.
  std::vector<std::uint64_t> partial_;
  // Packed only: per-set recency permutation, 2 bits per position; position
  // p's bits hold the way at recency rank p (p = 0 is MRU, assoc-1 is LRU).
  std::vector<std::uint8_t> order_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace codelayout
