// Set-associative LRU cache over 64-bit line ids.
//
// Line ids are global: co-running programs use disjoint id ranges so the
// shared cache sees two address spaces, exactly like two hyper-threads with
// distinct code segments.
//
// Three internal representations, selected by associativity at construction,
// with provably identical hit/miss/eviction sequences (all are exact true
// LRU with empty ways treated as least-recent):
//   * packed (assoc <= 4) — per set, the ways' 16-bit partial tags live in
//     one uint64_t probed with a SWAR zero-lane test, full tags (way-index
//     order) confirm the candidate lanes, and recency is a 2-bit-per-way
//     permutation byte updated through a precomputed promote table. A probe
//     is one lane load + one multiply-mask test + (on hit) one table lookup;
//     no per-way scan, no prefix rotation.
//   * packed wide (4 < assoc <= 16) — the sweep sibling: 8-bit partial tags,
//     eight lanes per uint64_t word (one word for 8-way, two for 16-way),
//     probed with the byte-lane SWAR zero test; recency is a 4-bit-per-
//     position permutation in one uint64_t, promoted arithmetically (locate
//     the way's nibble with a SWAR match, then splice below/above around
//     it). Geometry sweeps past 4-way keep O(words) probes instead of
//     falling back to the linear scan.
//   * generic (assoc > 16) — ways kept in recency order in a small
//     contiguous array; probe is a linear scan and a hit rotates the prefix.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/geometry.hpp"

namespace codelayout {

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geom);

  /// Touches `line`; returns true on hit. The set index is the line id
  /// modulo the set count (physical index bits above the line offset).
  bool access(std::uint64_t line) { return touch(line, true); }

  /// Installs without counting (prefetch fill). Returns true if already
  /// resident. On a hit this is a pure recency touch — the co-run collapse
  /// uses it to replay a window's last-touch order.
  bool prefill(std::uint64_t line) { return touch(line, false); }

  /// Residency probe: no recency update, no counting, no install.
  [[nodiscard]] bool contains(std::uint64_t line) const;

  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  /// Valid lines displaced by an install (counted for prefills too; filling
  /// an empty way is not an eviction).
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] double miss_ratio() const {
    return accesses_ ? static_cast<double>(misses_) /
                           static_cast<double>(accesses_)
                     : 0.0;
  }

  /// Zeroes the access/miss/eviction statistics; residency is untouched.
  void reset_stats() { accesses_ = misses_ = evictions_ = 0; }

  /// Empties every way. Intentionally preserves the counters: a flush
  /// models an invalidation event mid-measurement (context switch,
  /// self-modifying code), and the statistics cover the whole measurement
  /// window across flushes. Call reset_stats() to also restart the counts.
  void flush();

  [[nodiscard]] const CacheGeometry& geometry() const { return geom_; }

 private:
  enum class Repr : std::uint8_t { kPacked4, kPackedWide, kGeneric };

  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  // Broadcast/borrow masks for the 4x16-bit SWAR zero-lane test.
  static constexpr std::uint64_t kLaneLsb = 0x0001000100010001ull;
  static constexpr std::uint64_t kLaneMsb = 0x8000800080008000ull;
  // The 8x8-bit and 16x4-bit variants for the wide representation.
  static constexpr std::uint64_t kByteLsb = 0x0101010101010101ull;
  static constexpr std::uint64_t kByteMsb = 0x8080808080808080ull;
  static constexpr std::uint64_t kNibbleLsb = 0x1111111111111111ull;
  static constexpr std::uint64_t kNibbleMsb = 0x8888888888888888ull;
  static constexpr std::uint32_t kPackedMaxAssoc = 4;
  static constexpr std::uint32_t kPackedWideMaxAssoc = 16;

  /// 16-bit mix of the line id. Collisions are fine (the full tag confirms);
  /// the multiply spreads the low bits so same-set lines rarely share a lane
  /// pattern.
  static std::uint16_t partial_tag(std::uint64_t line) {
    return static_cast<std::uint16_t>((line * 0x9e3779b97f4a7c15ull) >> 48);
  }
  /// 8-bit sibling for the wide representation (more false candidates per
  /// probe, each costing only a confirming full-tag load).
  static std::uint8_t partial_tag8(std::uint64_t line) {
    return static_cast<std::uint8_t>((line * 0x9e3779b97f4a7c15ull) >> 56);
  }

  /// Position of `way`'s nibble in the wide recency permutation. The SWAR
  /// borrow can flag spurious nibbles above the true match, never below it,
  /// so the lowest flagged nibble is exact.
  static std::uint32_t wide_position(std::uint64_t perm, std::uint32_t way);
  /// The permutation after promoting the way at position `pos` to MRU:
  /// positions below it shift one deeper, positions above are untouched.
  static std::uint64_t wide_promote(std::uint64_t perm, std::uint32_t way,
                                    std::uint32_t pos);

  bool touch(std::uint64_t line, bool count);
  bool touch_packed(std::uint64_t line, bool count);
  bool touch_packed_wide(std::uint64_t line, bool count);
  bool touch_generic(std::uint64_t line, bool count);

  CacheGeometry geom_;
  std::uint64_t set_mask_;
  std::uint32_t assoc_;
  Repr repr_;
  std::uint32_t words_ = 0;  // packed wide: partial-tag words per set
  // Full tags. Packed: way-index order (recency lives in order_/order16_).
  // Generic: recency order (slot 0 is MRU). kEmpty marks an invalid way.
  std::vector<std::uint64_t> ways_;
  // Packed: per-set partial-tag lanes — one word of 4x16-bit lanes
  // (packed4), or `words_` words of 8x8-bit lanes (packed wide).
  std::vector<std::uint64_t> partial_;
  // Packed4 only: per-set recency permutation, 2 bits per position; position
  // p's bits hold the way at recency rank p (p = 0 is MRU, assoc-1 is LRU).
  std::vector<std::uint8_t> order_;
  // Packed wide only: the same permutation at 4 bits per position.
  std::vector<std::uint64_t> order16_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace codelayout
