// Set-associative LRU cache over 64-bit line ids.
//
// Line ids are global: co-running programs use disjoint id ranges so the
// shared cache sees two address spaces, exactly like two hyper-threads with
// distinct code segments. Ways of a set are kept in recency order in a small
// contiguous array (at most the associativity), so a probe is a short linear
// scan and a hit is a rotate — no allocation on the access path.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/geometry.hpp"

namespace codelayout {

class SetAssocCache {
 public:
  explicit SetAssocCache(const CacheGeometry& geom);

  /// Touches `line`; returns true on hit. The set index is the line id
  /// modulo the set count (physical index bits above the line offset).
  bool access(std::uint64_t line);

  /// Installs without counting (prefetch fill). Returns true if already
  /// resident.
  bool prefill(std::uint64_t line);

  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double miss_ratio() const {
    return accesses_ ? static_cast<double>(misses_) /
                           static_cast<double>(accesses_)
                     : 0.0;
  }

  void reset_counters() { accesses_ = misses_ = 0; }
  void flush();

  [[nodiscard]] const CacheGeometry& geometry() const { return geom_; }

 private:
  bool touch(std::uint64_t line, bool count);

  CacheGeometry geom_;
  std::uint64_t set_mask_;
  // ways_[set * assoc + i]: tag in recency order (i = 0 is MRU);
  // kEmpty marks an invalid way.
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};
  std::vector<std::uint64_t> ways_;
  std::uint64_t accesses_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace codelayout
