// Fetch plans: the per-(layout, geometry) tables the I-cache simulators
// replay from.
//
// FetchStream::step used to pay three indexed lookups per event —
// Module::block for the branchiness test, CodeLayout::lines_of (two integer
// divisions) for the span, CodeLayout::placement for the byte counts — all of
// which are pure functions of (block, layout, line size). A FetchPlan
// precomputes them once into one flat BlockId-indexed array, so the hot loop
// does a single cache-friendly load per event. Plans carry no per-simulation
// state: one plan is shared by every solo and co-run simulation of that
// layout (the Lab memoizes them across a whole co-run matrix), and the
// simulation results are bit-identical to the lookup-per-event path because
// the precomputed fields are exactly the expressions the old loop evaluated.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ir/module.hpp"
#include "layout/layout.hpp"

namespace codelayout {

/// Everything one block execution needs: the line span it fetches, the
/// instruction counts it retires, and whether it can speculate down a wrong
/// path (more than one successor).
struct BlockPlan {
  std::uint64_t first_line = 0;
  std::uint32_t line_count = 0;
  std::uint32_t instr_count = 0;      ///< placed bytes / kInstrBytes
  std::uint32_t overhead_instrs = 0;  ///< layout-added bytes / kInstrBytes
  std::uint32_t branchy = 0;          ///< successors.size() > 1
};

class FetchPlan {
 public:
  /// Precomputes the per-block fetch table for `layout` at `line_bytes`.
  FetchPlan(const Module& module, const CodeLayout& layout,
            std::uint32_t line_bytes);

  [[nodiscard]] const BlockPlan& block(BlockId b) const {
    CL_DCHECK(b.index() < blocks_.size());
    return blocks_[b.index()];
  }
  [[nodiscard]] std::span<const BlockPlan> blocks() const { return blocks_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  /// The line size the spans were computed at; simulations must run the same
  /// geometry (checked at stream construction).
  [[nodiscard]] std::uint32_t line_bytes() const { return line_bytes_; }

 private:
  std::vector<BlockPlan> blocks_;
  std::uint32_t line_bytes_;
};

}  // namespace codelayout
