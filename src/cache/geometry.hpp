// Cache geometry (paper Sec. III-A: 32 KB, 4-way, 64 B lines — the L1
// instruction cache of the Xeon E5520 testbed and of the Pin simulator).
#pragma once

#include <cstdint>

#include "support/check.hpp"

namespace codelayout {

struct CacheGeometry {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t associativity = 4;
  std::uint32_t line_bytes = 64;

  [[nodiscard]] std::uint64_t lines() const { return size_bytes / line_bytes; }
  [[nodiscard]] std::uint64_t sets() const {
    return lines() / associativity;
  }

  void validate() const {
    CL_CHECK(line_bytes > 0 && associativity > 0);
    CL_CHECK_MSG(size_bytes % (static_cast<std::uint64_t>(line_bytes) *
                               associativity) == 0,
                 "cache size not divisible into sets");
    CL_CHECK(sets() > 0);
  }
};

/// The paper's L1I configuration.
inline constexpr CacheGeometry kL1I{32 * 1024, 4, 64};

}  // namespace codelayout
