// Cache geometry (paper Sec. III-A: 32 KB, 4-way, 64 B lines — the L1
// instruction cache of the Xeon E5520 testbed and of the Pin simulator).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "support/check.hpp"

namespace codelayout {

struct CacheGeometry {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t associativity = 4;
  std::uint32_t line_bytes = 64;

  [[nodiscard]] std::uint64_t lines() const { return size_bytes / line_bytes; }
  [[nodiscard]] std::uint64_t sets() const {
    return lines() / associativity;
  }

  /// Rejects any geometry the set-indexed cache cannot represent; the
  /// power-of-two set-count requirement lives here (not in SetAssocCache
  /// construction) so an invalid sweep point fails at validation with a
  /// message naming the bad value.
  void validate() const {
    CL_CHECK(line_bytes > 0 && associativity > 0);
    CL_CHECK_MSG(size_bytes % (static_cast<std::uint64_t>(line_bytes) *
                               associativity) == 0,
                 "cache size not divisible into sets");
    CL_CHECK(sets() > 0);
    CL_CHECK_MSG((sets() & (sets() - 1)) == 0,
                 "set count must be a power of two (size / (line * assoc) = "
                     << sets() << " sets for " << to_string() << ")");
  }

  /// "32K/4/64" — size (K/M-suffixed when even), ways, line bytes. The
  /// canonical text form parse_geometry() reads back.
  [[nodiscard]] std::string to_string() const {
    std::string out;
    if (size_bytes >= 1024 * 1024 && size_bytes % (1024 * 1024) == 0) {
      out = std::to_string(size_bytes / (1024 * 1024)) + "M";
    } else if (size_bytes >= 1024 && size_bytes % 1024 == 0) {
      out = std::to_string(size_bytes / 1024) + "K";
    } else {
      out = std::to_string(size_bytes);
    }
    out += '/';
    out += std::to_string(associativity);
    out += '/';
    out += std::to_string(line_bytes);
    return out;
  }

  friend bool operator==(const CacheGeometry&, const CacheGeometry&) = default;
  friend auto operator<=>(const CacheGeometry&,
                          const CacheGeometry&) = default;
};

/// The paper's L1I configuration.
inline constexpr CacheGeometry kL1I{32 * 1024, 4, 64};

}  // namespace codelayout
