// The w-window affinity hierarchy (paper Sec. II-B, Definitions 3-5).
//
// As the window size w grows from 1 to infinity the affinity partitions
// coarsen monotonically: singletons at the bottom, one all-inclusive group at
// the top (Definition 5, Figure 1). The hierarchy is a forest of groups; a
// group records the w at which it formed and its child groups. The optimized
// code order is a bottom-up traversal (Sec. II-B last paragraph): members of
// tighter groups are emitted adjacently, groups ordered by first appearance
// in the trace.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/trace.hpp"

namespace codelayout {

struct AffinityGroup {
  std::uint32_t id = 0;
  /// Window size at which this group formed (1 for leaf singletons).
  std::uint32_t formed_at_w = 1;
  /// All member symbols, in first-appearance order.
  std::vector<Symbol> members;
  /// Child group ids (empty for leaves).
  std::vector<std::uint32_t> children;
  /// Earliest trace position at which any member occurs (ordering key).
  std::uint64_t first_occurrence = 0;
  /// Total occurrences of the members (hotness ordering key).
  std::uint64_t occurrences = 0;
};

class AffinityHierarchy {
 public:
  enum class Order {
    kFirstAppearance,  ///< groups by earliest trace occurrence (paper Fig. 1)
    kHotness,          ///< groups by descending total occurrence count
  };

  AffinityHierarchy(std::vector<AffinityGroup> nodes,
                    std::vector<std::uint32_t> roots);

  [[nodiscard]] std::span<const AffinityGroup> nodes() const { return nodes_; }
  [[nodiscard]] std::span<const std::uint32_t> roots() const { return roots_; }
  [[nodiscard]] const AffinityGroup& node(std::uint32_t id) const;

  /// The partition at window size w: ids of the maximal groups formed at or
  /// below w.
  [[nodiscard]] std::vector<std::uint32_t> partition_at(std::uint32_t w) const;

  /// Bottom-up traversal: the optimized symbol order.
  [[nodiscard]] std::vector<Symbol> layout_order(
      Order order = Order::kFirstAppearance) const;

  /// Number of symbols covered by the hierarchy.
  [[nodiscard]] std::size_t symbol_count() const;

  /// ASCII rendering of the forest (for examples and debugging).
  [[nodiscard]] std::string to_string() const;

 private:
  void order_children(std::vector<std::uint32_t>& ids, Order order) const;

  std::vector<AffinityGroup> nodes_;
  std::vector<std::uint32_t> roots_;
};

}  // namespace codelayout
