#include "affinity/hierarchy_builder.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "support/check.hpp"

namespace codelayout::detail {
namespace {

struct Partition {
  /// Current maximal group (node id) of each live symbol.
  std::unordered_map<Symbol, std::uint32_t> group_of;
  /// Live group ids in deterministic (first-occurrence) order.
  std::vector<std::uint32_t> live;
};

/// True when every cross pair between the two groups is affine.
bool complete_linkage(const AffinityGroup& a, const AffinityGroup& b,
                      const std::unordered_set<std::uint64_t>& affine) {
  for (Symbol x : a.members) {
    for (Symbol y : b.members) {
      if (!affine.contains(pair_key(x, y))) return false;
    }
  }
  return true;
}

}  // namespace

AffinityHierarchy build_hierarchy(
    const Trace& trimmed, std::span<const std::uint32_t> w_values,
    const std::function<std::vector<std::uint64_t>(std::uint32_t)>&
        affine_at) {
  CL_CHECK(trimmed.is_trimmed());

  // Leaf nodes: one singleton group per distinct symbol, at w = 1 every
  // block is its own group (Definition 5).
  // Trimmed traces have all-length-1 runs; iterate them with a position
  // counter instead of materializing the flat view.
  std::unordered_map<Symbol, std::uint64_t> first_seen;
  std::unordered_map<Symbol, std::uint64_t> occurrences;
  std::uint64_t pos = 0;
  for (const Run& r : trimmed.runs()) {
    first_seen.try_emplace(r.symbol, pos);
    ++occurrences[r.symbol];
    pos += r.length;
  }

  std::vector<AffinityGroup> nodes;
  Partition part;
  {
    std::vector<Symbol> order;
    order.reserve(first_seen.size());
    for (const auto& [s, t] : first_seen) order.push_back(s);
    std::sort(order.begin(), order.end(), [&](Symbol a, Symbol b) {
      return first_seen.at(a) < first_seen.at(b);
    });
    for (Symbol s : order) {
      const auto id = static_cast<std::uint32_t>(nodes.size());
      nodes.push_back(AffinityGroup{.id = id,
                                    .formed_at_w = 1,
                                    .members = {s},
                                    .children = {},
                                    .first_occurrence = first_seen.at(s),
                                    .occurrences = occurrences.at(s)});
      part.group_of.emplace(s, id);
      part.live.push_back(id);
    }
  }

  for (std::uint32_t w : w_values) {
    const auto pair_list = affine_at(w);
    if (pair_list.empty()) continue;
    const std::unordered_set<std::uint64_t> affine(pair_list.begin(),
                                                   pair_list.end());
    std::unordered_map<Symbol, std::vector<Symbol>> partners;
    for (const std::uint64_t key : pair_list) {
      const auto lo = static_cast<Symbol>(key >> 32);
      const auto hi = static_cast<Symbol>(key & 0xffffffffu);
      partners[lo].push_back(hi);
      partners[hi].push_back(lo);
    }

    // Greedy agglomeration in first-occurrence order ("the lower-level group
    // takes precedence"): each live group joins the earliest accumulating
    // group to which it is fully affine, else starts its own.
    std::vector<std::vector<std::uint32_t>> buckets;
    std::unordered_map<Symbol, std::size_t> bucket_of_symbol;
    for (std::uint32_t gid : part.live) {
      const AffinityGroup& g = nodes[gid];
      // Candidate buckets: those holding an affine partner of any member —
      // complete linkage can only succeed where at least one cross pair is
      // affine, so all other buckets are skipped without checking.
      std::unordered_set<std::size_t> cand_set;
      for (Symbol s : g.members) {
        const auto pit = partners.find(s);
        if (pit == partners.end()) continue;
        for (Symbol other : pit->second) {
          const auto it = bucket_of_symbol.find(other);
          if (it != bucket_of_symbol.end()) cand_set.insert(it->second);
        }
      }
      std::vector<std::size_t> candidates(cand_set.begin(), cand_set.end());
      std::sort(candidates.begin(), candidates.end());

      bool placed = false;
      for (std::size_t b : candidates) {
        bool ok = true;
        for (std::uint32_t member_gid : buckets[b]) {
          if (!complete_linkage(g, nodes[member_gid], affine)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          buckets[b].push_back(gid);
          for (Symbol s : g.members) bucket_of_symbol[s] = b;
          placed = true;
          break;
        }
      }
      if (!placed) {
        buckets.push_back({gid});
        for (Symbol s : g.members) bucket_of_symbol[s] = buckets.size() - 1;
      }
    }

    // Materialize merges.
    std::vector<std::uint32_t> next_live;
    for (const auto& bucket : buckets) {
      if (bucket.size() == 1) {
        next_live.push_back(bucket.front());
        continue;
      }
      AffinityGroup merged;
      merged.id = static_cast<std::uint32_t>(nodes.size());
      merged.formed_at_w = w;
      merged.children = bucket;
      merged.first_occurrence = ~std::uint64_t{0};
      for (std::uint32_t child : bucket) {
        const AffinityGroup& c = nodes[child];
        merged.members.insert(merged.members.end(), c.members.begin(),
                              c.members.end());
        merged.first_occurrence =
            std::min(merged.first_occurrence, c.first_occurrence);
        merged.occurrences += c.occurrences;
      }
      for (Symbol s : merged.members) part.group_of[s] = merged.id;
      next_live.push_back(merged.id);
      nodes.push_back(std::move(merged));
    }
    std::sort(next_live.begin(), next_live.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return nodes[a].first_occurrence < nodes[b].first_occurrence;
              });
    part.live = std::move(next_live);
  }

  return AffinityHierarchy(std::move(nodes), std::move(part.live));
}

}  // namespace codelayout::detail
