// Reference (naive) implementations of w-window affinity: Definition 3
// checked exactly against every occurrence pair, and the paper's Algorithm 1
// greedy partition. Quadratic and worse — intended for small traces, unit
// tests and the complexity benches, not production analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "affinity/analysis.hpp"
#include "affinity/hierarchy.hpp"
#include "trace/trace.hpp"

namespace codelayout {

/// Footprint of the window spanning trace positions [i, j] (Definition 2):
/// the number of distinct symbols in the closed range.
std::uint64_t window_footprint(const Trace& trimmed, std::size_t i,
                               std::size_t j);

/// Definition 3, checked exactly: every occurrence of x has a corresponding
/// occurrence of y with window footprint <= w, and vice versa.
bool naive_w_affine(const Trace& trimmed, Symbol x, Symbol y, std::uint32_t w);

/// All affine pairs at w under the exact definition (keys (min<<32)|max).
std::vector<std::uint64_t> naive_affine_pairs_at(const Trace& trimmed,
                                                 std::uint32_t w);

/// The exact-definition hierarchy (same merge policy as the fast analyzer).
AffinityHierarchy naive_hierarchy(const Trace& trace,
                                  const AffinityConfig& config = {});

/// Paper Algorithm 1 ("Hierarchical Code Block Locality Affinity") at a
/// single w: greedily grow groups, adding each block to the first group all
/// of whose members it is pairwise affine with. The paper picks the next
/// block randomly; for determinism we pick in first-appearance order.
std::vector<std::vector<Symbol>> algorithm1_partition(const Trace& trimmed,
                                                      std::uint32_t w);

}  // namespace codelayout
