#include "affinity/naive.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "affinity/hierarchy_builder.hpp"
#include "support/check.hpp"

namespace codelayout {
namespace {

std::unordered_map<Symbol, std::vector<std::size_t>> occurrence_positions(
    const Trace& trimmed) {
  std::unordered_map<Symbol, std::vector<std::size_t>> occ;
  const auto symbols = trimmed.symbols();
  for (std::size_t t = 0; t < symbols.size(); ++t) {
    occ[symbols[t]].push_back(t);
  }
  return occ;
}

/// Does occurrence `i` of some symbol have a y-occurrence within footprint w?
/// Only the nearest y before and after need checking: widening the window can
/// only grow its footprint.
bool occurrence_satisfied(const Trace& trimmed, std::size_t i,
                          const std::vector<std::size_t>& y_positions,
                          std::uint32_t w) {
  const auto it =
      std::lower_bound(y_positions.begin(), y_positions.end(), i);
  if (it != y_positions.end() &&
      window_footprint(trimmed, i, *it) <= w) {
    return true;
  }
  if (it != y_positions.begin() &&
      window_footprint(trimmed, *(it - 1), i) <= w) {
    return true;
  }
  return false;
}

}  // namespace

std::uint64_t window_footprint(const Trace& trimmed, std::size_t i,
                               std::size_t j) {
  CL_CHECK(i <= j && j < trimmed.size());
  std::unordered_set<Symbol> distinct;
  const auto symbols = trimmed.symbols();
  for (std::size_t t = i; t <= j; ++t) distinct.insert(symbols[t]);
  return distinct.size();
}

bool naive_w_affine(const Trace& trimmed, Symbol x, Symbol y,
                    std::uint32_t w) {
  CL_CHECK(trimmed.is_trimmed());
  if (x == y) return true;
  const auto occ = occurrence_positions(trimmed);
  const auto xi = occ.find(x);
  const auto yi = occ.find(y);
  if (xi == occ.end() || yi == occ.end()) return false;
  for (std::size_t i : xi->second) {
    if (!occurrence_satisfied(trimmed, i, yi->second, w)) return false;
  }
  for (std::size_t j : yi->second) {
    if (!occurrence_satisfied(trimmed, j, xi->second, w)) return false;
  }
  return true;
}

std::vector<std::uint64_t> naive_affine_pairs_at(const Trace& trimmed,
                                                 std::uint32_t w) {
  std::vector<Symbol> syms;
  {
    std::unordered_set<Symbol> seen(trimmed.symbols().begin(),
                                    trimmed.symbols().end());
    syms.assign(seen.begin(), seen.end());
    std::sort(syms.begin(), syms.end());
  }
  std::vector<std::uint64_t> out;
  for (std::size_t a = 0; a < syms.size(); ++a) {
    for (std::size_t b = a + 1; b < syms.size(); ++b) {
      if (naive_w_affine(trimmed, syms[a], syms[b], w)) {
        out.push_back(detail::pair_key(syms[a], syms[b]));
      }
    }
  }
  return out;
}

AffinityHierarchy naive_hierarchy(const Trace& trace,
                                  const AffinityConfig& config) {
  CL_CHECK_MSG(config.valid(), "invalid affinity w grid");
  const Trace trimmed = trace.is_trimmed() ? trace : trace.trimmed();
  return detail::build_hierarchy(
      trimmed, config.w_values,
      [&](std::uint32_t w) { return naive_affine_pairs_at(trimmed, w); });
}

std::vector<std::vector<Symbol>> algorithm1_partition(const Trace& trimmed,
                                                      std::uint32_t w) {
  CL_CHECK(trimmed.is_trimmed());
  // First-appearance order stands in for the paper's random pick.
  std::vector<Symbol> order;
  {
    std::unordered_set<Symbol> seen;
    for (Symbol s : trimmed.symbols()) {
      if (seen.insert(s).second) order.push_back(s);
    }
  }
  std::vector<std::vector<Symbol>> groups;
  for (Symbol a : order) {
    bool placed = false;
    for (auto& group : groups) {
      bool all = true;
      for (Symbol b : group) {
        if (!naive_w_affine(trimmed, a, b, w)) {
          all = false;
          break;
        }
      }
      if (all) {
        group.push_back(a);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({a});
  }
  return groups;
}

}  // namespace codelayout
