#include "affinity/hierarchy.hpp"

#include <algorithm>
#include <sstream>

#include "support/check.hpp"

namespace codelayout {

AffinityHierarchy::AffinityHierarchy(std::vector<AffinityGroup> nodes,
                                     std::vector<std::uint32_t> roots)
    : nodes_(std::move(nodes)), roots_(std::move(roots)) {
  for (std::uint32_t r : roots_) CL_CHECK(r < nodes_.size());
}

const AffinityGroup& AffinityHierarchy::node(std::uint32_t id) const {
  CL_CHECK(id < nodes_.size());
  return nodes_[id];
}

std::vector<std::uint32_t> AffinityHierarchy::partition_at(
    std::uint32_t w) const {
  std::vector<std::uint32_t> out;
  // Descend from each root until the group's formation level fits under w.
  std::vector<std::uint32_t> stack(roots_.begin(), roots_.end());
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    const AffinityGroup& g = nodes_[id];
    if (g.formed_at_w <= w) {
      out.push_back(id);
    } else {
      stack.insert(stack.end(), g.children.begin(), g.children.end());
    }
  }
  std::sort(out.begin(), out.end(), [&](std::uint32_t a, std::uint32_t b) {
    return nodes_[a].first_occurrence < nodes_[b].first_occurrence;
  });
  return out;
}

void AffinityHierarchy::order_children(std::vector<std::uint32_t>& ids,
                                       Order order) const {
  std::sort(ids.begin(), ids.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (order == Order::kHotness && nodes_[a].occurrences != nodes_[b].occurrences) {
      return nodes_[a].occurrences > nodes_[b].occurrences;
    }
    return nodes_[a].first_occurrence < nodes_[b].first_occurrence;
  });
}

std::vector<Symbol> AffinityHierarchy::layout_order(Order order) const {
  std::vector<Symbol> out;
  out.reserve(symbol_count());
  std::vector<std::uint32_t> top(roots_.begin(), roots_.end());
  order_children(top, order);

  // Iterative depth-first emission; children of each group are visited in
  // the chosen order, leaves contribute their members.
  std::vector<std::uint32_t> stack(top.rbegin(), top.rend());
  while (!stack.empty()) {
    const std::uint32_t id = stack.back();
    stack.pop_back();
    const AffinityGroup& g = nodes_[id];
    if (g.children.empty()) {
      out.insert(out.end(), g.members.begin(), g.members.end());
      continue;
    }
    std::vector<std::uint32_t> kids(g.children.begin(), g.children.end());
    order_children(kids, order);
    stack.insert(stack.end(), kids.rbegin(), kids.rend());
  }
  return out;
}

std::size_t AffinityHierarchy::symbol_count() const {
  std::size_t n = 0;
  for (std::uint32_t r : roots_) n += nodes_[r].members.size();
  return n;
}

std::string AffinityHierarchy::to_string() const {
  std::ostringstream os;
  struct Item {
    std::uint32_t id;
    int depth;
  };
  std::vector<Item> stack;
  for (auto it = roots_.rbegin(); it != roots_.rend(); ++it) {
    stack.push_back({*it, 0});
  }
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    const AffinityGroup& g = nodes_[item.id];
    os << std::string(static_cast<std::size_t>(item.depth) * 2, ' ') << "(w="
       << g.formed_at_w << ") {";
    for (std::size_t i = 0; i < g.members.size(); ++i) {
      if (i) os << ' ';
      os << g.members[i];
    }
    os << "}\n";
    for (auto it = g.children.rbegin(); it != g.children.rend(); ++it) {
      stack.push_back({*it, item.depth + 1});
    }
  }
  return os.str();
}

}  // namespace codelayout
