// Fast w-window affinity analysis (paper Sec. II-B).
//
// For each window size w the analyzer makes one pass over the trimmed trace
// with a two-pointer sliding window that maintains the maximal range ending
// at the current access whose footprint (Definition 2) is at most w. The
// window never holds more than w distinct blocks, so each access does O(w)
// pair work: the accessed block credits every distinct partner in the window
// (partner-before), and every not-yet-credited in-window occurrence of each
// partner credits back (partner-after), deduplicated by per-pair position
// watermarks. The result is the exact Definition-3 relation — a pair is
// affine iff every occurrence of both sides has a partner occurrence within
// a footprint-w window — at O(N * w * log N) per w, far below the naive
// Algorithm 1; the paper reports w in [2, 20] keeps compilation time within
// a small multiple of the original build.
//
#pragma once

#include <cstdint>
#include <vector>

#include "affinity/hierarchy.hpp"
#include "trace/dispatch.hpp"
#include "trace/trace.hpp"

namespace codelayout {

class ThreadPool;

struct AffinityConfig {
  /// Window sizes to analyze, ascending. The paper chooses w between 2 and
  /// 20; the default grid covers that range with 8 passes.
  std::vector<std::uint32_t> w_values = {2, 3, 4, 6, 8, 12, 16, 20};

  /// Optional shared worker pool: the per-w passes are independent, so
  /// analyze_affinity fans them out and folds the hierarchy in ascending-w
  /// order as results complete. Non-owning; nullptr = serial. The result is
  /// bit-identical at any pool size (the passes are exact, not approximate).
  ThreadPool* pool = nullptr;

  /// Run-aware vs straight-line event access (trace/dispatch.hpp). Affinity
  /// operates on the trimmed trace, whose compression is exactly 1.0, and the
  /// auto decision (threshold 1.0) takes the run-aware path: the kernel is
  /// compute-bound per event, and the run loop paces at or above the flat
  /// restatement on every suite workload. Decided once per analyze_affinity
  /// call, before the w-grid fan-out.
  AnalysisDispatch dispatch{};

  [[nodiscard]] bool valid() const {
    if (w_values.empty()) return false;
    for (std::size_t i = 0; i < w_values.size(); ++i) {
      if (w_values[i] < 2) return false;
      if (i && w_values[i] <= w_values[i - 1]) return false;
    }
    return true;
  }
};

/// The set of symbol pairs with w-window affinity, as computed by the fast
/// stack-based pass. Keys are (min << 32) | max.
std::vector<std::uint64_t> affine_pairs_at(const Trace& trimmed,
                                           std::uint32_t w);

/// Same pass with an explicit event-access path: kRunAware random-accesses
/// runs()[t].symbol, kStraightLine reads the packed flat view. Results are
/// identical; only the memory layout the scan reads differs.
std::vector<std::uint64_t> affine_pairs_at(const Trace& trimmed,
                                           std::uint32_t w, KernelPath path);

/// Builds the full affinity hierarchy over the trace (trimmed internally).
AffinityHierarchy analyze_affinity(const Trace& trace,
                                   const AffinityConfig& config = {});

}  // namespace codelayout
