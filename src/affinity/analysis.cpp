#include "affinity/analysis.hpp"

#include <algorithm>

#include "affinity/hierarchy_builder.hpp"
#include "support/check.hpp"
#include "support/flat_map.hpp"
#include "support/parallel.hpp"
#include "support/registry.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout {
namespace {

/// Credit state of one pair. `lo`/`hi` follow the key ordering. `sat_*`
/// counts occurrences of that side having a partner occurrence with window
/// footprint <= w (Definition 3); `mark_*` is the last trace position of
/// that side already credited, which makes every occurrence count once.
struct PairRec {
  std::uint32_t sat_lo = 0;
  std::uint32_t sat_hi = 0;
  std::int64_t mark_lo = -1;
  std::int64_t mark_hi = -1;
};

/// The set of distinct symbols inside the current sliding window, with
/// per-symbol counts. Each symbol tracks its index in the dense `present_`
/// list, so expiry is an O(1) swap-pop instead of a linear find+erase. The
/// resulting iteration order is arbitrary, which is fine: the per-pair
/// credit updates in the scan are independent across partners.
class WindowSet {
 public:
  explicit WindowSet(Symbol space) : counts_(space, 0), pos_(space, kNone) {}

  void add(Symbol s) {
    if (counts_[s]++ == 0) {
      pos_[s] = static_cast<std::uint32_t>(present_.size());
      present_.push_back(s);
    }
  }

  void remove(Symbol s) {
    CL_DCHECK(counts_[s] > 0);
    if (--counts_[s] == 0) {
      const std::uint32_t i = pos_[s];
      const Symbol last = present_.back();
      present_[i] = last;
      pos_[last] = i;
      present_.pop_back();
      pos_[s] = kNone;
    }
  }

  [[nodiscard]] std::size_t distinct() const { return present_.size(); }
  [[nodiscard]] const std::vector<Symbol>& symbols() const { return present_; }

 private:
  static constexpr std::uint32_t kNone = ~std::uint32_t{0};

  std::vector<std::uint32_t> counts_;
  std::vector<std::uint32_t> pos_;
  std::vector<Symbol> present_;
};

/// Per-symbol occurrence positions in one contiguous arena: the trimmed
/// trace has exactly one event per run, so per-symbol counts are known up
/// front and every symbol's positions live in a pre-sized slice (appended in
/// time order, hence sorted) instead of one heap vector per symbol.
class OccurrenceArena {
 public:
  OccurrenceArena(const Trace& trimmed, Symbol space)
      : offsets_(space + 1, 0), len_(space, 0), data_(trimmed.run_count()) {
    for (const Run& r : trimmed.runs()) ++offsets_[r.symbol + 1];
    for (Symbol s = 0; s < space; ++s) offsets_[s + 1] += offsets_[s];
  }

  void push(Symbol s, std::uint32_t position) {
    data_[offsets_[s] + len_[s]++] = position;
  }

  [[nodiscard]] std::span<const std::uint32_t> of(Symbol s) const {
    return {data_.data() + offsets_[s], len_[s]};
  }

  [[nodiscard]] std::uint32_t count(Symbol s) const { return len_[s]; }

 private:
  std::vector<std::uint32_t> offsets_;
  std::vector<std::uint32_t> len_;
  std::vector<std::uint32_t> data_;
};

/// The affinity pass body, templated on the event accessor (`at(t)` returns
/// the symbol of trimmed event t). The two instantiations read the same
/// events from different layouts: the Run array (8 bytes/event, symbol +
/// length) or the packed flat view (4 bytes/event) — the credit updates and
/// the result are identical.
template <typename At>
std::vector<std::uint64_t> affine_pairs_scan(const Trace& trimmed,
                                             std::uint32_t w, At&& at) {
  CL_CHECK(trimmed.is_trimmed());
  CL_CHECK(w >= 2);
  const std::size_t n = trimmed.size();
  const Symbol space = trimmed.symbol_space();

  // Two-pointer window [left, t]: the maximal range ending at t whose
  // footprint (distinct symbols, Definition 2) is <= w. An occurrence P@j is
  // within a footprint-w window of S@t exactly when j >= left(t); `left` is
  // monotone, so expired occurrences never re-enter.
  WindowSet window(space);
  std::size_t left = 0;

  OccurrenceArena positions(trimmed, space);
  FlatKeyMap<PairRec> pairs;

  for (std::size_t t = 0; t < n; ++t) {
    const Symbol s = at(t);
    window.add(s);
    while (window.distinct() > w) {
      window.remove(at(left));
      ++left;
    }

    for (Symbol p : window.symbols()) {
      if (p == s) continue;
      PairRec& rec = pairs[detail::pair_key(s, p)];
      const bool s_is_lo = s < p;
      auto& sat_s = s_is_lo ? rec.sat_lo : rec.sat_hi;
      auto& mark_s = s_is_lo ? rec.mark_lo : rec.mark_hi;
      auto& sat_p = s_is_lo ? rec.sat_hi : rec.sat_lo;
      auto& mark_p = s_is_lo ? rec.mark_hi : rec.mark_lo;

      // This occurrence of s sees p before it within the window.
      if (mark_s < static_cast<std::int64_t>(t)) {
        ++sat_s;
        mark_s = static_cast<std::int64_t>(t);
      }
      // Every in-window occurrence of p not yet credited sees s after it.
      const auto occ = positions.of(p);
      const auto lo_bound = static_cast<std::uint32_t>(
          std::max<std::int64_t>(static_cast<std::int64_t>(left),
                                 mark_p + 1));
      const auto first =
          std::lower_bound(occ.begin(), occ.end(), lo_bound);
      const auto fresh = static_cast<std::uint32_t>(occ.end() - first);
      if (fresh > 0) {
        sat_p += fresh;
        mark_p = occ.back();
      }
    }
    positions.push(s, static_cast<std::uint32_t>(t));
  }

  std::vector<std::uint64_t> out;
  out.reserve(pairs.size());
  pairs.for_each([&](std::uint64_t key, const PairRec& rec) {
    const auto lo = static_cast<Symbol>(key >> 32);
    const auto hi = static_cast<Symbol>(key & 0xffffffffu);
    if (rec.sat_lo == positions.count(lo) &&
        rec.sat_hi == positions.count(hi)) {
      out.push_back(key);
    }
  });
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<std::uint64_t> affine_pairs_at(const Trace& trimmed,
                                           std::uint32_t w) {
  return affine_pairs_at(trimmed, w, KernelPath::kRunAware);
}

std::vector<std::uint64_t> affine_pairs_at(const Trace& trimmed,
                                           std::uint32_t w, KernelPath path) {
  if (path == KernelPath::kStraightLine) {
    const std::span<const Symbol> symbols = trimmed.symbols();
    return affine_pairs_scan(trimmed, w,
                             [symbols](std::size_t t) { return symbols[t]; });
  }
  // A trimmed trace has all-length-1 runs, so runs()[t].symbol is O(1)
  // random access to event t without materializing the flat view.
  const std::span<const Run> events = trimmed.runs();
  return affine_pairs_scan(
      trimmed, w, [events](std::size_t t) { return events[t].symbol; });
}

AffinityHierarchy analyze_affinity(const Trace& trace,
                                   const AffinityConfig& config) {
  CL_CHECK_MSG(config.valid(), "invalid affinity w grid");
  const Trace trimmed = trace.is_trimmed() ? trace : trace.trimmed();
  const std::size_t grid = config.w_values.size();

  // One dispatch decision covers the whole w grid; the flat view is
  // materialized here, before the fan-out, so no worker pays for (or races
  // on) the build inside a timed pass.
  const KernelPath path =
      choose_path(config.dispatch, DispatchKernel::kAffinity, trimmed);
  if (path == KernelPath::kStraightLine) (void)trimmed.symbols();

  if (config.pool == nullptr || grid < 2) {
    return detail::build_hierarchy(
        trimmed, config.w_values,
        [&](std::uint32_t w) { return affine_pairs_at(trimmed, w, path); });
  }

  // Fan the independent per-w passes out over the shared pool and fold the
  // hierarchy merges in ascending-w order as results complete. Tasks are
  // claimed in *descending* w: per-w cost grows roughly linearly with w, so
  // the longest-processing-time order keeps the makespan near max(w) instead
  // of letting the heaviest pass start last. The fold consumes ascending w,
  // waiting per slot — the calling thread helps with unclaimed passes while
  // it waits, so this is safe even when invoked from inside a pool task.
  std::vector<std::vector<std::uint64_t>> results(grid);
  ParallelTaskSet tasks(config.pool, grid, [&](std::size_t task) {
    const std::size_t slot = grid - 1 - task;
    const std::uint32_t w = config.w_values[slot];
    CODELAYOUT_PHASE("affinity_w", "analysis", "analysis.affinity_w.wall_ns",
                     {"w", w});
    results[slot] = affine_pairs_at(trimmed, w, path);
  });

  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter("affinity.grid.tasks").add(grid);
  }

  return detail::build_hierarchy(
      trimmed, config.w_values, [&](std::uint32_t w) {
        const auto it = std::lower_bound(config.w_values.begin(),
                                         config.w_values.end(), w);
        CL_CHECK(it != config.w_values.end() && *it == w);
        const auto slot =
            static_cast<std::size_t>(it - config.w_values.begin());
        tasks.wait(grid - 1 - slot);
        return std::move(results[slot]);
      });
}

}  // namespace codelayout
