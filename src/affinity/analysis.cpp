#include "affinity/analysis.hpp"

#include <algorithm>
#include <unordered_map>

#include "affinity/hierarchy_builder.hpp"
#include "support/check.hpp"

namespace codelayout {
namespace {

/// Credit state of one pair. `lo`/`hi` follow the key ordering. `sat_*`
/// counts occurrences of that side having a partner occurrence with window
/// footprint <= w (Definition 3); `mark_*` is the last trace position of
/// that side already credited, which makes every occurrence count once.
struct PairRec {
  std::uint32_t sat_lo = 0;
  std::uint32_t sat_hi = 0;
  std::int64_t mark_lo = -1;
  std::int64_t mark_hi = -1;
};

/// The set of distinct symbols inside the current sliding window, with
/// per-symbol counts. The window never holds more than w distinct symbols,
/// so the linear scans stay O(w).
class WindowSet {
 public:
  explicit WindowSet(Symbol space) : counts_(space, 0) {}

  void add(Symbol s) {
    if (counts_[s]++ == 0) present_.push_back(s);
  }

  void remove(Symbol s) {
    CL_DCHECK(counts_[s] > 0);
    if (--counts_[s] == 0) {
      present_.erase(std::find(present_.begin(), present_.end(), s));
    }
  }

  [[nodiscard]] std::size_t distinct() const { return present_.size(); }
  [[nodiscard]] const std::vector<Symbol>& symbols() const { return present_; }

 private:
  std::vector<std::uint32_t> counts_;
  std::vector<Symbol> present_;
};

}  // namespace

std::vector<std::uint64_t> affine_pairs_at(const Trace& trimmed,
                                           std::uint32_t w) {
  CL_CHECK(trimmed.is_trimmed());
  CL_CHECK(w >= 2);
  // A trimmed trace has all-length-1 runs, so runs()[i].symbol is O(1)
  // random access to event i without materializing the flat view.
  const std::span<const Run> events = trimmed.runs();
  const Symbol space = trimmed.symbol_space();

  // Two-pointer window [left, t]: the maximal range ending at t whose
  // footprint (distinct symbols, Definition 2) is <= w. An occurrence P@j is
  // within a footprint-w window of S@t exactly when j >= left(t); `left` is
  // monotone, so expired occurrences never re-enter.
  WindowSet window(space);
  std::size_t left = 0;

  std::vector<std::vector<std::uint32_t>> positions(space);
  std::unordered_map<std::uint64_t, PairRec> pairs;

  for (std::size_t t = 0; t < events.size(); ++t) {
    const Symbol s = events[t].symbol;
    window.add(s);
    while (window.distinct() > w) {
      window.remove(events[left].symbol);
      ++left;
    }

    for (Symbol p : window.symbols()) {
      if (p == s) continue;
      PairRec& rec = pairs[detail::pair_key(s, p)];
      const bool s_is_lo = s < p;
      auto& sat_s = s_is_lo ? rec.sat_lo : rec.sat_hi;
      auto& mark_s = s_is_lo ? rec.mark_lo : rec.mark_hi;
      auto& sat_p = s_is_lo ? rec.sat_hi : rec.sat_lo;
      auto& mark_p = s_is_lo ? rec.mark_hi : rec.mark_lo;

      // This occurrence of s sees p before it within the window.
      if (mark_s < static_cast<std::int64_t>(t)) {
        ++sat_s;
        mark_s = static_cast<std::int64_t>(t);
      }
      // Every in-window occurrence of p not yet credited sees s after it.
      const auto& occ = positions[p];
      const auto lo_bound = static_cast<std::uint32_t>(
          std::max<std::int64_t>(static_cast<std::int64_t>(left),
                                 mark_p + 1));
      const auto first =
          std::lower_bound(occ.begin(), occ.end(), lo_bound);
      const auto fresh = static_cast<std::uint32_t>(occ.end() - first);
      if (fresh > 0) {
        sat_p += fresh;
        mark_p = occ.back();
      }
    }
    positions[s].push_back(static_cast<std::uint32_t>(t));
  }

  std::vector<std::uint64_t> out;
  for (const auto& [key, rec] : pairs) {
    const auto lo = static_cast<Symbol>(key >> 32);
    const auto hi = static_cast<Symbol>(key & 0xffffffffu);
    if (rec.sat_lo == positions[lo].size() &&
        rec.sat_hi == positions[hi].size()) {
      out.push_back(key);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

AffinityHierarchy analyze_affinity(const Trace& trace,
                                   const AffinityConfig& config) {
  CL_CHECK_MSG(config.valid(), "invalid affinity w grid");
  const Trace trimmed = trace.is_trimmed() ? trace : trace.trimmed();
  return detail::build_hierarchy(
      trimmed, config.w_values,
      [&](std::uint32_t w) { return affine_pairs_at(trimmed, w); });
}

}  // namespace codelayout
