// Internal: constructs an AffinityHierarchy from per-w affine pair sets.
//
// Shared by the fast stack-based analysis and the naive Definition-3-exact
// reference so that the two differ only in how the pair relation is computed.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "affinity/hierarchy.hpp"
#include "trace/trace.hpp"

namespace codelayout::detail {

inline std::uint64_t pair_key(Symbol a, Symbol b) {
  const Symbol lo = a < b ? a : b;
  const Symbol hi = a < b ? b : a;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/// `affine_at(w)` must return the pair keys with w-window affinity; the
/// relation must be monotone in w (a pair affine at w stays affine at every
/// larger w) for the result to be a well-formed hierarchy.
AffinityHierarchy build_hierarchy(
    const Trace& trimmed, std::span<const std::uint32_t> w_values,
    const std::function<std::vector<std::uint64_t>(std::uint32_t)>& affine_at);

}  // namespace codelayout::detail
