// Footprint-based shared-cache miss modeling: the paper's Eq. 1 / Eq. 2 and
// the formal definitions of defensiveness and politeness (Sec. II-A).
//
//   P(self.miss) = P(self.FP + peer.FP >= C)            (Eq. 1)
//   P(self.icache.miss) = P(self.FP.inst + peer.FP.inst >= C')   (Eq. 2)
//
// Following HOTL, the probability is evaluated through the average footprint
// curves: the solo miss ratio is the footprint derivative at the fill time of
// the cache, and in a co-run the peer's footprint at the same window shrinks
// the capacity available to self.
#pragma once

#include "locality/footprint.hpp"

namespace codelayout {

/// Solo fully-associative LRU miss ratio at `capacity` (same footprint units
/// as the curve — distinct symbols, lines or bytes).
double solo_miss_ratio(const FootprintCurve& self, double capacity);

/// Co-run miss ratio of `self` sharing a `capacity` cache with `peer`
/// (Eq. 1/2). `peer_speed` scales the peer's window relative to self's (a
/// peer issuing accesses twice as fast covers twice the window). Solves
/// self.fp(w) + peer.fp(peer_speed * w) = capacity for w, then reads self's
/// miss ratio at that window.
double corun_miss_ratio(const FootprintCurve& self, const FootprintCurve& peer,
                        double capacity, double peer_speed = 1.0);

/// The formal optimization-goal metrics of Sec. II-A. All are *losses*:
/// smaller is better; optimizing self reduces `defensiveness_loss` of self
/// (goal 2) and `politeness_loss` toward each peer (goal 3).
struct SharedCacheAssessment {
  double self_solo;        ///< P(self.miss) running alone
  double self_corun;       ///< P(self.miss) sharing with peer (Eq. 1/2)
  double peer_solo;        ///< P(peer.miss) running alone
  double peer_corun;       ///< P(peer.miss) sharing with self

  /// Increase in self's miss ratio caused by the peer. Defensiveness is the
  /// resistance to this increase: lower loss = more defensive.
  [[nodiscard]] double defensiveness_loss() const {
    return self_corun - self_solo;
  }
  /// Increase in the peer's miss ratio caused by self: lower = more polite.
  [[nodiscard]] double politeness_loss() const {
    return peer_corun - peer_solo;
  }
};

SharedCacheAssessment assess_corun(const FootprintCurve& self,
                                   const FootprintCurve& peer,
                                   double capacity, double peer_speed = 1.0);

}  // namespace codelayout
