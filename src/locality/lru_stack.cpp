#include "locality/lru_stack.hpp"

namespace codelayout {

LruStack::LruStack(Symbol symbol_space, std::span<const std::uint32_t> weights)
    : next_(symbol_space, kNil),
      prev_(symbol_space, kNil),
      present_(symbol_space, 0),
      weights_(symbol_space, 1) {
  if (!weights.empty()) {
    CL_CHECK_MSG(weights.size() == symbol_space,
                 "weights size " << weights.size() << " != symbol space "
                                 << symbol_space);
    weights_.assign(weights.begin(), weights.end());
  }
}

bool LruStack::touch(Symbol s) {
  CL_DCHECK(s < present_.size());
  const bool was_resident = present_[s] != 0;
  if (was_resident) {
    if (head_ == s) return true;
    unlink(s);
  } else {
    present_[s] = 1;
    ++count_;
    weight_sum_ += weights_[s];
  }
  push_front(s);
  return was_resident;
}

void LruStack::evict_to_weight(std::uint64_t cap) {
  while (weight_sum_ > cap && tail_ != kNil) {
    const Symbol victim = tail_;
    unlink(victim);
    present_[victim] = 0;
    --count_;
    weight_sum_ -= weights_[victim];
  }
}

std::size_t LruStack::depth_of(Symbol s) const {
  CL_CHECK(resident(s));
  std::size_t depth = 0;
  for (Symbol cur = head_; cur != s; cur = next_[cur]) ++depth;
  return depth;
}

std::vector<Symbol> LruStack::snapshot() const {
  std::vector<Symbol> out;
  out.reserve(count_);
  for (Symbol cur = head_; cur != kNil; cur = next_[cur]) out.push_back(cur);
  return out;
}

void LruStack::restore(std::span<const Symbol> top_to_bottom) {
  clear();
  for (std::size_t i = top_to_bottom.size(); i-- > 0;) {
    const Symbol s = top_to_bottom[i];
    CL_DCHECK(!resident(s));
    touch(s);
  }
}

void LruStack::clear() {
  for (Symbol cur = head_; cur != kNil;) {
    const Symbol nxt = next_[cur];
    next_[cur] = prev_[cur] = kNil;
    present_[cur] = 0;
    cur = nxt;
  }
  head_ = tail_ = kNil;
  count_ = 0;
  weight_sum_ = 0;
}

void LruStack::unlink(Symbol s) {
  const Symbol p = prev_[s];
  const Symbol n = next_[s];
  if (p != kNil) next_[p] = n; else head_ = n;
  if (n != kNil) prev_[n] = p; else tail_ = p;
  prev_[s] = next_[s] = kNil;
}

void LruStack::push_front(Symbol s) {
  prev_[s] = kNil;
  next_[s] = head_;
  if (head_ != kNil) prev_[head_] = s;
  head_ = s;
  if (tail_ == kNil) tail_ = s;
}

std::uint64_t replay_lru_hits(const Trace& trace, LruStack& stack,
                              const AnalysisDispatch& dispatch) {
  std::uint64_t hits = 0;
  if (choose_path(dispatch, DispatchKernel::kLruStack, trace) ==
      KernelPath::kStraightLine) {
    for (const Symbol s : trace.symbols()) hits += stack.touch(s) ? 1 : 0;
  } else {
    for (const Run& r : trace.runs()) hits += stack.touch_run(r.symbol, r.length);
  }
  return hits;
}

}  // namespace codelayout
