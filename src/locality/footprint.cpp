#include "locality/footprint.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/registry.hpp"

namespace codelayout {

FootprintCurve FootprintCurve::compute(const Trace& trace,
                                       std::span<const std::uint32_t> weights,
                                       const AnalysisDispatch& dispatch) {
  const std::size_t n = trace.size();
  const Symbol space = trace.symbol_space();
  if (!weights.empty()) {
    CL_CHECK_MSG(weights.size() >= space,
                 "weights cover " << weights.size() << " symbols, need "
                                  << space);
  }
  auto weight_of = [&](Symbol s) -> double {
    return weights.empty() ? 1.0 : static_cast<double>(weights[s]);
  };

  FootprintCurve curve;
  curve.fp_.assign(n + 1, 0.0);
  if (n == 0) {
    curve.fp_.assign(1, 0.0);
    return curve;
  }

  // gap_mass[g] accumulates the total weight of symbols having a maximal gap
  // of exactly g window positions in which the symbol is absent. A gap of g
  // positions contributes (g - w + 1) missing windows of length w <= g.
  std::vector<double> gap_mass(n + 1, 0.0);
  std::vector<std::uint64_t> last(space, ~std::uint64_t{0});
  std::vector<std::uint64_t> first(space, ~std::uint64_t{0});
  double total_weight = 0.0;

  if (choose_path(dispatch, DispatchKernel::kFootprint, trace) ==
      KernelPath::kStraightLine) {
    // Straight-line pass over the flat SoA view: a repeat event's gap is 0
    // (last[s] == t - 1), so the gap_mass/total_weight additions happen at
    // exactly the positions — and in exactly the order — the run-aware pass
    // produces; the double accumulation is bit-identical.
    const std::span<const Symbol> symbols = trace.symbols();
    for (std::size_t t = 0; t < symbols.size(); ++t) {
      const Symbol s = symbols[t];
      if (last[s] == ~std::uint64_t{0}) {
        first[s] = t;
        total_weight += weight_of(s);
      } else {
        const std::uint64_t gap = t - last[s] - 1;  // positions without s
        if (gap > 0) gap_mass[gap] += weight_of(s);
      }
      last[s] = t;
    }
  } else {
    // Run-aware pass: within a run every gap is 0 (the symbol occupies each
    // consecutive position), so only the run's first event can contribute a
    // gap, and the run collapses to one O(1) update.
    std::size_t t = 0;  // event index of the current run's first event
    for (const Run& r : trace.runs()) {
      const Symbol s = r.symbol;
      if (last[s] == ~std::uint64_t{0}) {
        first[s] = t;
        total_weight += weight_of(s);
      } else {
        const std::uint64_t gap = t - last[s] - 1;  // positions without s
        if (gap > 0) gap_mass[gap] += weight_of(s);
      }
      last[s] = t + r.length - 1;
      t += r.length;
    }
    MetricsRegistry& registry = MetricsRegistry::global();
    if (registry.enabled()) {
      registry.counter("locality.footprint.runs").add(trace.run_count());
      registry.counter("locality.footprint.collapsed_events")
          .add(n - trace.run_count());
    }
  }
  for (Symbol s = 0; s < space; ++s) {
    if (first[s] == ~std::uint64_t{0}) continue;  // never accessed
    const std::uint64_t head_gap = first[s];
    if (head_gap > 0) gap_mass[head_gap] += weight_of(s);
    const std::uint64_t tail_gap = n - 1 - last[s];
    if (tail_gap > 0) gap_mass[tail_gap] += weight_of(s);
  }

  // missing(w) = sum_{g >= w} (g - w + 1) * gap_mass[g]; computed for all w
  // by two suffix accumulations, descending from w = n.
  double suffix_count = 0.0;  // sum_{g >= w} gap_mass[g]
  double missing = 0.0;       // sum_{g >= w} (g - w + 1) gap_mass[g]
  curve.fp_[0] = 0.0;
  for (std::size_t w = n; w >= 1; --w) {
    suffix_count += gap_mass[w];
    missing += suffix_count;
    const double windows = static_cast<double>(n - w + 1);
    curve.fp_[w] = total_weight - missing / windows;
  }
  return curve;
}

double FootprintCurve::at(double w) const {
  const double n = static_cast<double>(trace_length());
  if (w <= 0.0) return 0.0;
  if (w >= n) return fp_.back();
  const auto lo = static_cast<std::size_t>(w);
  const double frac = w - static_cast<double>(lo);
  return fp_[lo] * (1.0 - frac) + fp_[lo + 1] * frac;
}

double FootprintCurve::fill_time(double capacity) const {
  if (capacity <= 0.0) return 0.0;
  if (capacity >= fp_.back()) return static_cast<double>(trace_length());
  // fp_ is monotone non-decreasing: binary search the first w with
  // fp(w) >= capacity, then interpolate within the step.
  const auto it = std::lower_bound(fp_.begin(), fp_.end(), capacity);
  const auto w_hi = static_cast<std::size_t>(it - fp_.begin());
  if (w_hi == 0) return 0.0;
  const double lo_v = fp_[w_hi - 1];
  const double hi_v = fp_[w_hi];
  const double frac = hi_v > lo_v ? (capacity - lo_v) / (hi_v - lo_v) : 0.0;
  return static_cast<double>(w_hi - 1) + frac;
}

double FootprintCurve::derivative(double w) const {
  const double n = static_cast<double>(trace_length());
  if (n < 1.0) return 0.0;
  // Central difference with a window that widens at large w, where the curve
  // is flat and the per-step difference underflows.
  const double h = std::max(1.0, w * 0.01);
  const double lo = std::clamp(w - h, 0.0, n);
  const double hi = std::clamp(w + h, 0.0, n);
  if (hi <= lo) return 0.0;
  return (at(hi) - at(lo)) / (hi - lo);
}

}  // namespace codelayout
