#include "locality/footprint.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/registry.hpp"

namespace codelayout {

FootprintCurve FootprintCurve::compute(const Trace& trace,
                                       std::span<const std::uint32_t> weights,
                                       const AnalysisDispatch& dispatch) {
  const std::size_t n = trace.size();
  const Symbol space = trace.symbol_space();
  if (!weights.empty()) {
    CL_CHECK_MSG(weights.size() >= space,
                 "weights cover " << weights.size() << " symbols, need "
                                  << space);
  }
  auto weight_of = [&](Symbol s) -> double {
    return weights.empty() ? 1.0 : static_cast<double>(weights[s]);
  };

  if (n == 0) return assemble<double>(0, 0.0, {});

  // gap_mass[g] accumulates the total weight of symbols having a maximal gap
  // of exactly g window positions in which the symbol is absent. A gap of g
  // positions contributes (g - w + 1) missing windows of length w <= g.
  std::vector<double> gap_mass(n + 1, 0.0);
  std::vector<std::uint64_t> last(space, ~std::uint64_t{0});
  std::vector<std::uint64_t> first(space, ~std::uint64_t{0});
  double total_weight = 0.0;

  if (choose_path(dispatch, DispatchKernel::kFootprint, trace) ==
      KernelPath::kStraightLine) {
    // Straight-line pass over the flat SoA view: a repeat event's gap is 0
    // (last[s] == t - 1), so the gap_mass/total_weight additions happen at
    // exactly the positions — and in exactly the order — the run-aware pass
    // produces; the double accumulation is bit-identical.
    const std::span<const Symbol> symbols = trace.symbols();
    for (std::size_t t = 0; t < symbols.size(); ++t) {
      const Symbol s = symbols[t];
      if (last[s] == ~std::uint64_t{0}) {
        first[s] = t;
        total_weight += weight_of(s);
      } else {
        const std::uint64_t gap = t - last[s] - 1;  // positions without s
        if (gap > 0) gap_mass[gap] += weight_of(s);
      }
      last[s] = t;
    }
  } else {
    // Run-aware pass: within a run every gap is 0 (the symbol occupies each
    // consecutive position), so only the run's first event can contribute a
    // gap, and the run collapses to one O(1) update.
    std::size_t t = 0;  // event index of the current run's first event
    for (const Run& r : trace.runs()) {
      const Symbol s = r.symbol;
      if (last[s] == ~std::uint64_t{0}) {
        first[s] = t;
        total_weight += weight_of(s);
      } else {
        const std::uint64_t gap = t - last[s] - 1;  // positions without s
        if (gap > 0) gap_mass[gap] += weight_of(s);
      }
      last[s] = t + r.length - 1;
      t += r.length;
    }
    MetricsRegistry& registry = MetricsRegistry::global();
    if (registry.enabled()) {
      registry.counter("locality.footprint.runs").add(trace.run_count());
      registry.counter("locality.footprint.collapsed_events")
          .add(n - trace.run_count());
    }
  }
  for (Symbol s = 0; s < space; ++s) {
    if (first[s] == ~std::uint64_t{0}) continue;  // never accessed
    const std::uint64_t head_gap = first[s];
    if (head_gap > 0) gap_mass[head_gap] += weight_of(s);
    const std::uint64_t tail_gap = n - 1 - last[s];
    if (tail_gap > 0) gap_mass[tail_gap] += weight_of(s);
  }

  return assemble(n, total_weight, gap_mass);
}

template <class Mass>
FootprintCurve FootprintCurve::assemble(std::size_t n, double total_weight,
                                        const std::vector<Mass>& gap_mass) {
  FootprintCurve curve;
  curve.fp_.assign(n + 1, 0.0);
  if (n == 0) return curve;
  CL_CHECK(gap_mass.size() == n + 1);
  // missing(w) = sum_{g >= w} (g - w + 1) * gap_mass[g]; computed for all w
  // by two suffix accumulations, descending from w = n.
  double suffix_count = 0.0;  // sum_{g >= w} gap_mass[g]
  double missing = 0.0;       // sum_{g >= w} (g - w + 1) gap_mass[g]
  curve.fp_[0] = 0.0;
  for (std::size_t w = n; w >= 1; --w) {
    suffix_count += static_cast<double>(gap_mass[w]);
    missing += suffix_count;
    const double windows = static_cast<double>(n - w + 1);
    curve.fp_[w] = total_weight - missing / windows;
  }
  return curve;
}

template FootprintCurve FootprintCurve::assemble<double>(
    std::size_t, double, const std::vector<double>&);
template FootprintCurve FootprintCurve::assemble<std::uint32_t>(
    std::size_t, double, const std::vector<std::uint32_t>&);

FootprintBuilder::FootprintBuilder(Symbol space)
    : gap_mass_(kDenseGaps, 0),
      first_(space, ~std::uint64_t{0}),
      last_(space, ~std::uint64_t{0}) {}

void FootprintBuilder::probe(Symbol s) {
  CL_DCHECK(s < last_.size());
  if (last_[s] == ~std::uint64_t{0}) {
    first_[s] = position_;
    total_weight_ += 1.0;
  } else {
    const std::uint64_t gap = position_ - last_[s] - 1;
    if (gap > 0) {
      if (gap < kDenseGaps) {
        gap_mass_[gap] += 1;
      } else {
        large_gaps_.push_back({static_cast<std::uint32_t>(gap), 1});
      }
    }
  }
  last_[s] = position_;
  prev_ = s;
  ++position_;
}

void FootprintBuilder::span(Symbol first, std::uint32_t count,
                            std::uint64_t repeats) {
  if (count == 0 || repeats == 0) return;
  ++spans_;
  // No single gap count can exceed the pre-trim event total, so this bound
  // keeps the 32-bit histogram cells exact (checked before any increment).
  raw_events_ += std::uint64_t{count} * repeats;
  CL_CHECK_MSG(raw_events_ <= ~std::uint32_t{0},
               "footprint stream exceeds 2^32 events; widen the gap counts");
  if (count == 1) {
    // All `repeats` occurrences trim to (at most) one window position; it
    // vanishes entirely when the previous event was the same symbol.
    if (prev_ == first) {
      collapsed_events_ += repeats;
    } else {
      probe(first);
      collapsed_events_ += repeats - 1;
    }
    return;
  }
  // First repetition probes each line against whatever came before; the
  // span's leading line merges into the previous event when it repeats it
  // (exactly the event Trace::trimmed() would drop).
  const bool skip_lead = prev_ == first;
  if (skip_lead) ++collapsed_events_;
  for (std::uint32_t l = skip_lead ? 1 : 0; l < count; ++l) probe(first + l);
  if (repeats == 1) return;
  // Repetitions 2..R: the seam between repetitions never trims (the last and
  // first lines differ), so every line's reuse gap is exactly count - 1 —
  // the other lines of the span sit between consecutive occurrences — and
  // the whole tail collapses to one gap-histogram bump. Masses stay exact
  // integers, so the curve is bit-identical to probing event by event.
  const std::uint64_t gap = count - 1;
  const auto bump = static_cast<std::uint32_t>((repeats - 1) * count);
  if (gap < kDenseGaps) {
    gap_mass_[gap] += bump;
  } else {
    large_gaps_.push_back({static_cast<std::uint32_t>(gap), bump});
  }
  const std::uint64_t tail_events = (repeats - 1) * count;
  for (std::uint32_t l = 0; l < count; ++l) {
    last_[first + l] = position_ + tail_events - count + l;
  }
  position_ += tail_events;
  prev_ = first + count - 1;
  collapsed_events_ += tail_events;
}

FootprintCurve FootprintBuilder::finish() && {
  const std::uint64_t n = position_;
  // The dense prefix already is the final histogram below kDenseGaps (every
  // index above n holds zero mass — no gap exceeds n - 1); widen it to the
  // full gap range and fold in the deferred large gaps and boundary gaps.
  gap_mass_.resize(n + 1, 0);
  for (const DeferredGap& d : large_gaps_) gap_mass_[d.gap] += d.mass;
  for (Symbol s = 0; s < first_.size(); ++s) {
    if (first_[s] == ~std::uint64_t{0}) continue;  // never streamed
    const std::uint64_t head_gap = first_[s];
    if (head_gap > 0) gap_mass_[head_gap] += 1;
    const std::uint64_t tail_gap = n - 1 - last_[s];
    if (tail_gap > 0) gap_mass_[tail_gap] += 1;
  }
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter("locality.footprint.builder_spans").add(spans_);
    registry.counter("locality.footprint.builder_collapsed_events")
        .add(collapsed_events_);
  }
  return FootprintCurve::assemble(n, total_weight_, gap_mass_);
}

double FootprintCurve::at(double w) const {
  const double n = static_cast<double>(trace_length());
  if (w <= 0.0) return 0.0;
  if (w >= n) return fp_.back();
  const auto lo = static_cast<std::size_t>(w);
  const double frac = w - static_cast<double>(lo);
  return fp_[lo] * (1.0 - frac) + fp_[lo + 1] * frac;
}

double FootprintCurve::fill_time(double capacity) const {
  if (capacity <= 0.0) return 0.0;
  if (capacity >= fp_.back()) return static_cast<double>(trace_length());
  // fp_ is monotone non-decreasing: binary search the first w with
  // fp(w) >= capacity, then interpolate within the step.
  const auto it = std::lower_bound(fp_.begin(), fp_.end(), capacity);
  const auto w_hi = static_cast<std::size_t>(it - fp_.begin());
  if (w_hi == 0) return 0.0;
  const double lo_v = fp_[w_hi - 1];
  const double hi_v = fp_[w_hi];
  const double frac = hi_v > lo_v ? (capacity - lo_v) / (hi_v - lo_v) : 0.0;
  return static_cast<double>(w_hi - 1) + frac;
}

double FootprintCurve::derivative(double w) const {
  const double n = static_cast<double>(trace_length());
  if (n < 1.0) return 0.0;
  // Central difference with a window that widens at large w, where the curve
  // is flat and the per-step difference underflows.
  const double h = std::max(1.0, w * 0.01);
  const double lo = std::clamp(w - h, 0.0, n);
  const double hi = std::clamp(w + h, 0.0, n);
  if (hi <= lo) return 0.0;
  return (at(hi) - at(lo)) / (hi - lo);
}

}  // namespace codelayout
