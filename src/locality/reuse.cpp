#include "locality/reuse.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/registry.hpp"

namespace codelayout {
namespace {

/// Fenwick tree over access positions; marks each symbol's latest access.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t pos, int delta) {
    for (std::size_t i = pos + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of marks in positions [0, pos).
  [[nodiscard]] std::int64_t prefix(std::size_t pos) const {
    std::int64_t s = 0;
    for (std::size_t i = pos; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

  [[nodiscard]] std::int64_t total() const {
    return prefix(tree_.size() - 1);
  }

 private:
  std::vector<std::int64_t> tree_;
};

/// Calls on_access(distance, time, count) once per run segment: the run's
/// first event (count 1), then its remaining events as one bulk segment.
///
/// Run-aware collapse: within a run of length r, events 2..r each reuse the
/// symbol at the immediately preceding position, so their reuse distance is 0
/// and reuse time is 1 — no Fenwick query needed. The symbol's mark moves
/// straight to the run's last position, preserving the flat-scan invariant
/// (one mark per seen symbol, at its latest access) at every run boundary, so
/// the first-event query of the next run sees the exact flat-scan state.
/// O((R + D) log N) for R runs and D distinct symbols instead of O(N log N).
template <typename PerAccess>
void scan_reuse(const Trace& trace, PerAccess&& on_access) {
  const Symbol space = trace.symbol_space();
  Fenwick marks(trace.size());
  std::vector<std::uint64_t> last(space, kColdReuse);

  std::size_t t = 0;  // event index of the current run's first event
  std::uint64_t collapsed = 0;  // events served by the run collapse
  for (const Run& r : trace.runs()) {
    const std::uint64_t prev = last[r.symbol];
    std::uint64_t distance = kColdReuse;
    std::uint64_t time = kColdReuse;
    if (prev != kColdReuse) {
      // Distinct symbols accessed strictly after prev: marks in (prev, t).
      distance = static_cast<std::uint64_t>(marks.total() -
                                            marks.prefix(prev + 1));
      time = t - prev;
      marks.add(prev, -1);
    }
    const std::size_t t_last = t + r.length - 1;
    marks.add(t_last, +1);
    last[r.symbol] = t_last;
    on_access(distance, time, std::uint64_t{1});
    if (r.length > 1) {
      on_access(0, 1, r.length - 1);
      collapsed += r.length - 1;
    }
    t += r.length;
  }
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter("locality.reuse.runs").add(trace.run_count());
    registry.counter("locality.reuse.collapsed_events").add(collapsed);
  }
}

}  // namespace

double ReuseProfile::miss_ratio_at(std::uint64_t capacity) const {
  if (total_accesses == 0) return 0.0;
  std::uint64_t misses = cold_accesses;
  for (std::uint64_t d = capacity; d < distance_histogram.size(); ++d) {
    misses += distance_histogram[d];
  }
  return static_cast<double>(misses) / static_cast<double>(total_accesses);
}

double ReuseProfile::mean_distance() const {
  std::uint64_t n = 0;
  double sum = 0.0;
  for (std::uint64_t d = 0; d < distance_histogram.size(); ++d) {
    n += distance_histogram[d];
    sum += static_cast<double>(d) * static_cast<double>(distance_histogram[d]);
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

ReuseProfile compute_reuse(const Trace& trace) {
  ReuseProfile profile;
  profile.total_accesses = trace.size();
  scan_reuse(trace, [&](std::uint64_t distance, std::uint64_t time,
                        std::uint64_t count) {
    if (distance == kColdReuse) {
      profile.cold_accesses += count;
      return;
    }
    if (profile.distance_histogram.size() <= distance) {
      profile.distance_histogram.resize(distance + 1, 0);
    }
    profile.distance_histogram[distance] += count;
    if (profile.time_histogram.size() <= time) {
      profile.time_histogram.resize(time + 1, 0);
    }
    profile.time_histogram[time] += count;
  });
  return profile;
}

std::vector<std::uint64_t> per_access_reuse_distances(const Trace& trace) {
  std::vector<std::uint64_t> out;
  out.reserve(trace.size());
  scan_reuse(trace,
             [&](std::uint64_t distance, std::uint64_t, std::uint64_t count) {
               out.insert(out.end(), count, distance);
             });
  return out;
}

}  // namespace codelayout
