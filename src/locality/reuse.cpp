#include "locality/reuse.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/registry.hpp"

namespace codelayout {
namespace {

/// Fenwick tree over access positions; marks each symbol's latest access.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t pos, int delta) {
    for (std::size_t i = pos + 1; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  /// Sum of marks in positions [0, pos).
  [[nodiscard]] std::int64_t prefix(std::size_t pos) const {
    std::int64_t s = 0;
    for (std::size_t i = pos; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

  /// add(from, -1) and add(to, +1) fused: both ancestor walks ascend, so
  /// once they merge every remaining update cancels (+1 with -1) and the
  /// shared ancestors are never touched. Cancellation is exact integer
  /// arithmetic, so queries see the same tree as two separate adds.
  void move_mark(std::size_t from, std::size_t to) {
    std::size_t i = from + 1;
    std::size_t j = to + 1;
    const std::size_t n = tree_.size();
    // The smaller index steps; i < j implies i < n (else j > i >= n and the
    // loop condition already failed), and symmetrically for j.
    while ((i < n || j < n) && i != j) {
      if (i < j) {
        tree_[i] -= 1;
        i += i & (~i + 1);
      } else {
        tree_[j] += 1;
        j += j & (~j + 1);
      }
    }
  }

 private:
  std::vector<std::int64_t> tree_;
};

/// Calls on_access(distance, time, count) once per run segment: the run's
/// first event (count 1), then its remaining events as one bulk segment.
///
/// Run-aware collapse: within a run of length r, events 2..r each reuse the
/// symbol at the immediately preceding position, so their reuse distance is 0
/// and reuse time is 1 — no Fenwick query needed. The symbol's mark moves
/// straight to the run's last position, preserving the flat-scan invariant
/// (one mark per seen symbol, at its latest access) at every run boundary, so
/// the first-event query of the next run sees the exact flat-scan state.
/// O((R + D) log N) for R runs and D distinct symbols instead of O(N log N).
/// Both scans track the live mark count in a scalar instead of querying the
/// Fenwick total: exactly one mark exists per seen symbol, so `active` is
/// the same integer marks.total() would return, without the O(log n) walk.
template <typename PerAccess>
void scan_reuse(const Trace& trace, PerAccess&& on_access) {
  const Symbol space = trace.symbol_space();
  Fenwick marks(trace.size());
  std::vector<std::uint64_t> last(space, kColdReuse);
  std::uint64_t active = 0;  // distinct symbols seen == marks in the tree

  std::size_t t = 0;  // event index of the current run's first event
  std::uint64_t collapsed = 0;  // events served by the run collapse
  for (const Run& r : trace.runs()) {
    const std::uint64_t prev = last[r.symbol];
    std::uint64_t distance = kColdReuse;
    std::uint64_t time = kColdReuse;
    const std::size_t t_last = t + r.length - 1;
    if (prev != kColdReuse) {
      // Distinct symbols accessed strictly after prev: marks in (prev, t).
      distance = active - static_cast<std::uint64_t>(marks.prefix(prev + 1));
      time = t - prev;
      marks.move_mark(prev, t_last);
    } else {
      marks.add(t_last, +1);
      ++active;
    }
    last[r.symbol] = t_last;
    on_access(distance, time, std::uint64_t{1});
    if (r.length > 1) {
      on_access(0, 1, r.length - 1);
      collapsed += r.length - 1;
    }
    t += r.length;
  }
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter("locality.reuse.runs").add(trace.run_count());
    registry.counter("locality.reuse.collapsed_events").add(collapsed);
  }
}

/// Straight-line twin of scan_reuse: one Fenwick transaction per event over
/// the flat SoA view, no run bookkeeping. Emits the identical (distance,
/// time) sequence — a run's repeat events see prev == t - 1, whose window
/// (prev, t) is empty, so their distance/time come out 0/1 exactly like the
/// collapse — making every downstream accumulation bit-identical.
template <typename PerAccess>
void scan_reuse_flat(const Trace& trace, PerAccess&& on_access) {
  const std::span<const Symbol> symbols = trace.symbols();
  Fenwick marks(trace.size());
  std::vector<std::uint64_t> last(trace.symbol_space(), kColdReuse);
  std::uint64_t active = 0;

  for (std::size_t t = 0; t < symbols.size(); ++t) {
    const Symbol s = symbols[t];
    const std::uint64_t prev = last[s];
    if (prev == kColdReuse) {
      marks.add(t, +1);
      ++active;
      last[s] = t;
      on_access(kColdReuse, kColdReuse, std::uint64_t{1});
      continue;
    }
    const std::uint64_t distance =
        active - static_cast<std::uint64_t>(marks.prefix(prev + 1));
    marks.move_mark(prev, t);
    last[s] = t;
    on_access(distance, t - prev, std::uint64_t{1});
  }
}

/// Dispatch shim: one decision per trace, then the chosen scan.
template <typename PerAccess>
void scan_reuse_dispatch(const Trace& trace, const AnalysisDispatch& dispatch,
                         PerAccess&& on_access) {
  if (choose_path(dispatch, DispatchKernel::kReuse, trace) ==
      KernelPath::kStraightLine) {
    scan_reuse_flat(trace, on_access);
  } else {
    scan_reuse(trace, on_access);
  }
}

}  // namespace

double ReuseProfile::miss_ratio_at(std::uint64_t capacity) const {
  if (total_accesses == 0) return 0.0;
  std::uint64_t misses = cold_accesses;
  for (std::uint64_t d = capacity; d < distance_histogram.size(); ++d) {
    misses += distance_histogram[d];
  }
  return static_cast<double>(misses) / static_cast<double>(total_accesses);
}

double ReuseProfile::mean_distance() const {
  std::uint64_t n = 0;
  double sum = 0.0;
  for (std::uint64_t d = 0; d < distance_histogram.size(); ++d) {
    n += distance_histogram[d];
    sum += static_cast<double>(d) * static_cast<double>(distance_histogram[d]);
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

ReuseProfile compute_reuse(const Trace& trace,
                           const AnalysisDispatch& dispatch) {
  ReuseProfile profile;
  profile.total_accesses = trace.size();
  scan_reuse_dispatch(
      trace, dispatch,
      [&](std::uint64_t distance, std::uint64_t time, std::uint64_t count) {
        if (distance == kColdReuse) {
          profile.cold_accesses += count;
          return;
        }
        if (profile.distance_histogram.size() <= distance) {
          profile.distance_histogram.resize(distance + 1, 0);
        }
        profile.distance_histogram[distance] += count;
        if (profile.time_histogram.size() <= time) {
          profile.time_histogram.resize(time + 1, 0);
        }
        profile.time_histogram[time] += count;
      });
  return profile;
}

std::vector<std::uint64_t> per_access_reuse_distances(
    const Trace& trace, const AnalysisDispatch& dispatch) {
  std::vector<std::uint64_t> out;
  out.reserve(trace.size());
  scan_reuse_dispatch(
      trace, dispatch,
      [&](std::uint64_t distance, std::uint64_t, std::uint64_t count) {
        out.insert(out.end(), count, distance);
      });
  return out;
}

}  // namespace codelayout
