// Reuse distance and reuse time analysis (paper Sec. II-A).
//
// Reuse distance (LRU stack distance, Mattson et al. 1970) is computed with
// the Bennett–Kruskal method: a Fenwick tree over access timestamps counts
// the distinct symbols touched since the previous access — O(N log N) total.
// Reuse time is simply the gap between consecutive accesses to a symbol.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "trace/dispatch.hpp"
#include "trace/trace.hpp"

namespace codelayout {

/// Marks an access with no previous occurrence (a cold access).
inline constexpr std::uint64_t kColdReuse =
    std::numeric_limits<std::uint64_t>::max();

struct ReuseProfile {
  /// distance_histogram[d] = number of accesses with reuse distance d
  /// (distinct symbols between consecutive accesses, exclusive).
  std::vector<std::uint64_t> distance_histogram;
  /// time_histogram[t] = number of accesses with reuse time t (index gap
  /// between consecutive accesses to the same symbol; min 1).
  std::vector<std::uint64_t> time_histogram;
  std::uint64_t cold_accesses = 0;
  std::uint64_t total_accesses = 0;

  /// Fraction of (non-cold) accesses whose reuse distance exceeds `capacity`
  /// distinct symbols — the fully-associative LRU miss ratio at that
  /// capacity, cold misses included in the numerator.
  [[nodiscard]] double miss_ratio_at(std::uint64_t capacity) const;

  /// Mean reuse distance over non-cold accesses.
  [[nodiscard]] double mean_distance() const;
};

/// Computes both histograms in one pass. Dispatches between the run-aware
/// collapse and a straight-line flat-view scan (trace/dispatch.hpp); the
/// histograms are bit-identical on both paths.
ReuseProfile compute_reuse(const Trace& trace,
                           const AnalysisDispatch& dispatch = {});

/// Per-access reuse distances (kColdReuse for cold accesses); used by
/// property tests to cross-check the histogram path.
std::vector<std::uint64_t> per_access_reuse_distances(
    const Trace& trace, const AnalysisDispatch& dispatch = {});

}  // namespace codelayout
