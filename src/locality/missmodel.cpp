#include "locality/missmodel.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace codelayout {

double solo_miss_ratio(const FootprintCurve& self, double capacity) {
  CL_CHECK(capacity > 0.0);
  if (self.trace_length() == 0) return 0.0;
  if (self.max_footprint() <= capacity) {
    // Whole program fits; only cold misses, amortized away over the run.
    return 0.0;
  }
  return self.derivative(self.fill_time(capacity));
}

double corun_miss_ratio(const FootprintCurve& self, const FootprintCurve& peer,
                        double capacity, double peer_speed) {
  CL_CHECK(capacity > 0.0);
  CL_CHECK(peer_speed > 0.0);
  if (self.trace_length() == 0) return 0.0;

  // The combined demand self.fp(w) + peer.fp(s*w) is monotone in w; find the
  // window at which the two programs together fill the cache.
  const double n = static_cast<double>(self.trace_length());
  auto demand = [&](double w) {
    return self.at(w) + peer.at(peer_speed * w);
  };
  if (demand(n) <= capacity) return 0.0;  // both fit entirely

  double lo = 0.0, hi = n;
  for (int iter = 0; iter < 64 && hi - lo > 0.25; ++iter) {
    const double mid = 0.5 * (lo + hi);
    (demand(mid) < capacity ? lo : hi) = mid;
  }
  const double w_fill = 0.5 * (lo + hi);
  return self.derivative(w_fill);
}

SharedCacheAssessment assess_corun(const FootprintCurve& self,
                                   const FootprintCurve& peer,
                                   double capacity, double peer_speed) {
  return SharedCacheAssessment{
      .self_solo = solo_miss_ratio(self, capacity),
      .self_corun = corun_miss_ratio(self, peer, capacity, peer_speed),
      .peer_solo = solo_miss_ratio(peer, capacity),
      .peer_corun = corun_miss_ratio(peer, self, capacity,
                                     peer_speed > 0 ? 1.0 / peer_speed : 1.0),
  };
}

}  // namespace codelayout
