// LRU stack processing over symbol traces (paper Sec. II-F "Stack
// Processing").
//
// The paper implements the stack as a linked list with a hash table for O(1)
// lookup, after the Linux-kernel page-management idiom. Symbols here are
// dense, so the hash table degenerates into flat position arrays — the same
// asymptotics with better constants. The stack supports the two access
// patterns the analyses need: the affinity model reads the top-w entries at
// every access, and the TRG model enumerates exactly the entries above the
// accessed symbol (the blocks seen since its previous occurrence), optionally
// capped by a total-footprint budget in bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/check.hpp"
#include "trace/dispatch.hpp"
#include "trace/trace.hpp"

namespace codelayout {

class LruStack {
 public:
  /// `symbol_space` bounds the symbol values; `weight[s]` is the footprint
  /// weight (e.g. code bytes) of symbol s, defaulting to 1 per symbol.
  explicit LruStack(Symbol symbol_space,
                    std::span<const std::uint32_t> weights = {});

  /// Moves `s` to the top. Returns true when `s` was already resident.
  bool touch(Symbol s);

  /// Equivalent to `count` consecutive touch(s) calls in O(1): after the
  /// first touch `s` sits on top, so the remaining count-1 touches are
  /// early-return hits. Returns the number of touches that found `s`
  /// resident. No-op (returning 0) when count == 0.
  std::uint64_t touch_run(Symbol s, std::uint64_t count) {
    if (count == 0) return 0;
    const bool was_resident = touch(s);
    return (was_resident ? 1 : 0) + (count - 1);
  }

  /// Calls `fn(symbol)` for the top `k` resident symbols, topmost first
  /// (including the current top).
  template <typename Fn>
  void for_top(std::size_t k, Fn&& fn) const {
    Symbol cur = head_;
    for (std::size_t i = 0; i < k && cur != kNil; ++i, cur = next_[cur]) {
      fn(cur);
    }
  }

  /// Calls `fn(symbol)` for every resident symbol strictly above `s`
  /// (i.e. accessed since s's last occurrence). `s` must be resident.
  /// Stops early if `fn` returns false.
  template <typename Fn>
  void for_above(Symbol s, Fn&& fn) const {
    CL_DCHECK(resident(s));
    for (Symbol cur = head_; cur != kNil && cur != s; cur = next_[cur]) {
      if (!fn(cur)) return;
    }
  }

  /// Evicts from the bottom until the total resident weight is <= cap.
  void evict_to_weight(std::uint64_t cap);

  [[nodiscard]] bool resident(Symbol s) const {
    CL_DCHECK(s < present_.size());
    return present_[s] != 0;
  }
  [[nodiscard]] std::size_t resident_count() const { return count_; }
  [[nodiscard]] std::uint64_t resident_weight() const { return weight_sum_; }
  [[nodiscard]] Symbol top() const { return head_; }

  /// Number of distinct symbols above `s` (0 when s is on top); `s` must be
  /// resident. O(depth).
  [[nodiscard]] std::size_t depth_of(Symbol s) const;

  /// The resident symbols, topmost first — a portable snapshot of the stack
  /// state. restore(snapshot()) reproduces the exact state.
  [[nodiscard]] std::vector<Symbol> snapshot() const;

  /// Resets the stack to exactly `top_to_bottom` (topmost first, distinct
  /// symbols). No eviction is applied; the caller is responsible for the
  /// weight budget. Used by the sharded TRG build to warm-start a worker at a
  /// chunk boundary: the capped stack's state at any trace position is the
  /// maximal weight-<=cap prefix of the last-occurrence (recency) order of
  /// the preceding events, which a backward scan can reconstruct without
  /// replaying the prefix.
  void restore(std::span<const Symbol> top_to_bottom);

  void clear();

 private:
  static constexpr Symbol kNil = ~Symbol{0};

  void unlink(Symbol s);
  void push_front(Symbol s);

  std::vector<Symbol> next_;
  std::vector<Symbol> prev_;
  std::vector<std::uint8_t> present_;
  std::vector<std::uint32_t> weights_;
  Symbol head_ = kNil;
  Symbol tail_ = kNil;
  std::size_t count_ = 0;
  std::uint64_t weight_sum_ = 0;
};

/// Replays the whole trace through `stack` and returns the number of touches
/// that found their symbol resident. Dispatches between the run-aware
/// touch_run collapse and a straight-line per-event loop over the flat view
/// (trace/dispatch.hpp); touch_run(s, n) is defined as n consecutive
/// touch(s) calls, so the hit count and final stack state are identical on
/// both paths.
std::uint64_t replay_lru_hits(const Trace& trace, LruStack& stack,
                              const AnalysisDispatch& dispatch = {});

}  // namespace codelayout
