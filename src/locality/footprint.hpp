// All-window average footprint (paper Sec. II-A, Definition 2; Xiang et al.
// PPoPP'11 / HOTL ASPLOS'13).
//
// The footprint fp(w) is the average amount of distinct code touched over
// all length-w windows of the trace. It is computed exactly for every window
// length in O(N) after a single pass that gathers reuse-time and boundary
// histograms:
//
//   fp(w) = M - (1/(n-w+1)) * sum_e weight(e) * (#windows of length w
//                                                 that do not contain e)
//
// where the per-symbol missing-window count decomposes into the symbol's
// reuse-time gaps plus the two boundary gaps. The curve is monotonically
// non-decreasing and concave, which the property tests assert.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/dispatch.hpp"
#include "trace/trace.hpp"

namespace codelayout {

class FootprintCurve {
 public:
  /// Computes fp(w) for w = 0..trace length. `weights[s]` is the footprint
  /// contribution of symbol s (e.g. its size in cache lines or bytes);
  /// defaults to 1 (footprint in distinct symbols, as the paper
  /// approximates). The gap pass dispatches between the run-aware collapse
  /// and a straight-line flat-view scan (trace/dispatch.hpp); the double
  /// accumulation order is identical either way, so the curve is
  /// bit-identical on both paths.
  static FootprintCurve compute(const Trace& trace,
                                std::span<const std::uint32_t> weights = {},
                                const AnalysisDispatch& dispatch = {});

  /// fp at (possibly fractional) window length, linearly interpolated and
  /// clamped to [0, n].
  [[nodiscard]] double at(double w) const;

  /// Smallest window length whose footprint reaches `capacity` (the fill
  /// time ft(c) of HOTL); returns trace length when never reached.
  [[nodiscard]] double fill_time(double capacity) const;

  /// Numerical derivative dfp/dw at window length w — the HOTL miss-ratio
  /// read-out when evaluated at w = ft(cache capacity).
  [[nodiscard]] double derivative(double w) const;

  [[nodiscard]] std::size_t trace_length() const { return fp_.size() - 1; }

  /// Total weight of all distinct symbols = fp(n).
  [[nodiscard]] double max_footprint() const { return fp_.back(); }

  [[nodiscard]] std::span<const double> values() const { return fp_; }

 private:
  std::vector<double> fp_;  ///< fp_[w], w = 0..n
};

}  // namespace codelayout
