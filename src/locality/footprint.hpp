// All-window average footprint (paper Sec. II-A, Definition 2; Xiang et al.
// PPoPP'11 / HOTL ASPLOS'13).
//
// The footprint fp(w) is the average amount of distinct code touched over
// all length-w windows of the trace. It is computed exactly for every window
// length in O(N) after a single pass that gathers reuse-time and boundary
// histograms:
//
//   fp(w) = M - (1/(n-w+1)) * sum_e weight(e) * (#windows of length w
//                                                 that do not contain e)
//
// where the per-symbol missing-window count decomposes into the symbol's
// reuse-time gaps plus the two boundary gaps. The curve is monotonically
// non-decreasing and concave, which the property tests assert.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "trace/dispatch.hpp"
#include "trace/trace.hpp"

namespace codelayout {

class FootprintCurve {
 public:
  /// Computes fp(w) for w = 0..trace length. `weights[s]` is the footprint
  /// contribution of symbol s (e.g. its size in cache lines or bytes);
  /// defaults to 1 (footprint in distinct symbols, as the paper
  /// approximates). The gap pass dispatches between the run-aware collapse
  /// and a straight-line flat-view scan (trace/dispatch.hpp); the double
  /// accumulation order is identical either way, so the curve is
  /// bit-identical on both paths.
  static FootprintCurve compute(const Trace& trace,
                                std::span<const std::uint32_t> weights = {},
                                const AnalysisDispatch& dispatch = {});

  /// fp at (possibly fractional) window length, linearly interpolated and
  /// clamped to [0, n].
  [[nodiscard]] double at(double w) const;

  /// Smallest window length whose footprint reaches `capacity` (the fill
  /// time ft(c) of HOTL); returns trace length when never reached.
  [[nodiscard]] double fill_time(double capacity) const;

  /// Numerical derivative dfp/dw at window length w — the HOTL miss-ratio
  /// read-out when evaluated at w = ft(cache capacity).
  [[nodiscard]] double derivative(double w) const;

  [[nodiscard]] std::size_t trace_length() const { return fp_.size() - 1; }

  /// Total weight of all distinct symbols = fp(n).
  [[nodiscard]] double max_footprint() const { return fp_.back(); }

  [[nodiscard]] std::span<const double> values() const { return fp_; }

 private:
  friend class FootprintBuilder;

  /// Shared curve assembly: turns the gathered gap histogram into fp(w) for
  /// every window length by the two descending suffix accumulations. Mass is
  /// double for the weighted compute() pass and std::uint32_t for the
  /// builder's unit-weight counts; integer masses convert exactly, so both
  /// instantiations produce bit-identical curves for the same histogram
  /// values.
  template <class Mass>
  static FootprintCurve assemble(std::size_t n, double total_weight,
                                 const std::vector<Mass>& gap_mass);

  std::vector<double> fp_;  ///< fp_[w], w = 0..n
};

/// Streaming footprint kernel over the *trimmed* trace (Definition 1) for
/// callers that can describe the stream as consecutive-symbol spans instead
/// of materializing it: perfmodel's solo profiles feed cache-line fetch
/// streams straight from the fetch plan's per-block line spans. Consecutive
/// duplicate symbols collapse to one window position exactly as
/// Trace::trimmed() would drop them, and gap masses are exact integer-valued
/// doubles (unit weights), so the finished curve is bit-identical to
/// FootprintCurve::compute over the trimmed flat trace — the span collapse
/// only changes the order exact integers are summed in.
///
///   FootprintBuilder builder(space);
///   for (run : block_trace.runs())
///     builder.span(plan.first_line, plan.line_count, run.length);
///   FootprintCurve curve = std::move(builder).finish();
class FootprintBuilder {
 public:
  /// `space` bounds the symbol values that will be streamed (= dense symbol
  /// space of the virtual trace).
  explicit FootprintBuilder(Symbol space);

  /// Appends `repeats` back-to-back occurrences of the `count` consecutive
  /// symbols [first, first + count): the line sequence of one code block
  /// executed `repeats` times. A repeated multi-line span collapses to one
  /// O(count) update — after trimming, every line's reuse gap inside the
  /// repetition is exactly count - 1 — and a single-symbol span collapses to
  /// at most one window position, so the kernel runs in O(runs * span_width),
  /// independent of repeat counts.
  void span(Symbol first, std::uint32_t count, std::uint64_t repeats);

  /// Trimmed window positions streamed so far (the virtual trace length).
  [[nodiscard]] std::uint64_t positions() const { return position_; }

  /// Seals the stream: boundary gaps plus the suffix assembly. Records the
  /// `locality.footprint.builder_spans` / `builder_collapsed_events` registry
  /// counters when metrics are enabled.
  [[nodiscard]] FootprintCurve finish() &&;

 private:
  /// Dense-histogram span: gaps below this land in a 128 KiB cache-resident
  /// array (the overwhelming majority — reuse gaps cluster near the working
  /// set size); larger ones defer to a side list merged at finish(). The
  /// histogram update is the kernel's hot spot, and keeping it out of a
  /// trace-length-sized array keeps the stream compute-bound.
  static constexpr std::uint64_t kDenseGaps = 32768;

  struct DeferredGap {
    std::uint32_t gap;
    std::uint32_t mass;
  };

  void probe(Symbol s);

  std::uint64_t position_ = 0;
  std::uint64_t prev_ = ~std::uint64_t{0};  ///< last streamed symbol
  std::uint64_t raw_events_ = 0;  ///< pre-trim events, bounds any gap count
  double total_weight_ = 0.0;
  std::uint64_t spans_ = 0;
  std::uint64_t collapsed_events_ = 0;
  /// Unit-weight masses are exact counts; 32-bit cells halve the histogram's
  /// random-write traffic and cannot overflow while raw_events_ fits
  /// (checked per span).
  std::vector<std::uint32_t> gap_mass_;   ///< gaps < kDenseGaps
  std::vector<DeferredGap> large_gaps_;   ///< gaps >= kDenseGaps, unmerged
  std::vector<std::uint64_t> first_;
  std::vector<std::uint64_t> last_;
};

}  // namespace codelayout
