// Lightweight precondition / invariant checking for the codelayout library.
//
// CL_CHECK is always on (it guards API contracts and is cheap relative to the
// analyses it protects). CL_DCHECK compiles away in NDEBUG builds and is used
// inside hot simulation loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace codelayout {

/// Thrown when a CL_CHECK contract is violated.
class ContractError : public std::logic_error {
 public:
  explicit ContractError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "contract violated: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractError(os.str());
}

}  // namespace detail
}  // namespace codelayout

#define CL_CHECK(expr)                                                      \
  do {                                                                      \
    if (!(expr))                                                            \
      ::codelayout::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (false)

#define CL_CHECK_MSG(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream cl_check_os_;                                      \
      cl_check_os_ << msg;                                                  \
      ::codelayout::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                         cl_check_os_.str());               \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define CL_DCHECK(expr) ((void)0)
#else
#define CL_DCHECK(expr) CL_CHECK(expr)
#endif
