// Help-first parallel task sets for the analysis front end.
//
// A ParallelTaskSet runs `count` independent indexed tasks using an optional
// shared ThreadPool for helpers while the *calling thread participates*:
// wait(i) runs unclaimed tasks inline until task i has finished. That
// discipline makes the primitive safe to use from inside a task already
// running on the same pool — the configuration the Lab creates when a layout
// cell fans its analysis out — because progress never depends on a queued
// helper being scheduled: if every pool worker is busy, the caller simply
// computes the whole set itself, degrading to the serial order instead of
// deadlocking. (Blocking on queued subtasks from inside a pool task is the
// classic nested-fork-join deadlock; see the ThreadPool header for why the
// memo tables get away with blocking and this primitive must not.)
//
// Completion of task i happens-before wait(i) returning, so tasks may write
// results into caller-owned slots without further synchronization. The
// destructor cancels unclaimed tasks and joins claimed ones, so tasks may
// also capture stack locals by reference. Queued helpers that only get
// scheduled after cancellation see the cancel flag through the shared state
// (kept alive by the helper's own reference) and return without touching the
// task function.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace codelayout {

class ThreadPool;

class ParallelTaskSet {
 public:
  using TaskFn = std::function<void(std::size_t)>;

  /// Starts `count` tasks, indices 0..count-1, claimed in ascending index
  /// order. `pool` may be null (everything then runs on the calling thread
  /// inside wait); helpers are submitted up to min(pool->size(), count).
  ParallelTaskSet(ThreadPool* pool, std::size_t count, TaskFn fn);

  /// Cancels unclaimed tasks and joins claimed ones.
  ~ParallelTaskSet();

  ParallelTaskSet(const ParallelTaskSet&) = delete;
  ParallelTaskSet& operator=(const ParallelTaskSet&) = delete;

  /// Blocks until task `index` has finished, running unclaimed tasks on the
  /// calling thread while it waits. Rethrows the task's exception.
  void wait(std::size_t index);

  /// wait() over every task, ascending. Rethrows the first failure by index.
  void wait_all();

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace codelayout
