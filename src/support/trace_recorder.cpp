#include "support/trace_recorder.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace codelayout {

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder();
    const char* env = std::getenv("CODELAYOUT_TRACE");
    if (env != nullptr && std::string_view(env) != "0") r->enable();
    return r;
  }();
  return *recorder;
}

namespace {
std::atomic<std::uint64_t> next_recorder_id{1};

thread_local JobContext g_job_context;
}  // namespace

JobContext current_job_context() { return g_job_context; }

ScopedJobContext::ScopedJobContext(JobContext context)
    : saved_(g_job_context) {
  g_job_context = context;
}

ScopedJobContext::~ScopedJobContext() { g_job_context = saved_; }

TraceRecorder::TraceRecorder()
    : recorder_id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      base_nanos_(wall_nanos_now()) {}

void TraceRecorder::enable() { enabled_.store(true, std::memory_order_relaxed); }

void TraceRecorder::set_ring_capacity(std::size_t spans) {
  CL_CHECK(spans > 0);
  std::scoped_lock lock(registry_mutex_);
  ring_capacity_ = spans;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  // The thread-local shared_ptr keeps the buffer alive across thread exit
  // order; the recorder's vector keeps it exportable afterwards. `owner_id`
  // guards against another recorder instance on the same thread (tests) —
  // compared by id, not address, so a new recorder reusing a destroyed one's
  // address is still detected.
  thread_local std::uint64_t owner_id = 0;
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer || owner_id != recorder_id_) {
    buffer = std::make_shared<ThreadBuffer>();
    owner_id = recorder_id_;
    std::scoped_lock lock(registry_mutex_);
    buffer->tid = next_tid_++;
    buffer->capacity = ring_capacity_;
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void TraceRecorder::record_span(const char* name, const char* category,
                                std::uint64_t start_nanos,
                                std::uint64_t duration_nanos,
                                std::vector<SpanArg> args) {
  // Cross-process correlation: spans recorded under an ambient job context
  // carry the propagated trace id, so a merged two-process export joins on
  // it.
  if (g_job_context.trace_id != 0) {
    args.emplace_back("trace_id", std::to_string(g_job_context.trace_id));
    if (g_job_context.span_id != 0) {
      args.emplace_back("span_id", std::to_string(g_job_context.span_id));
    }
  }
  ThreadBuffer& buf = local_buffer();
  std::scoped_lock lock(buf.mutex);
  Span span{name, category, start_nanos, duration_nanos, std::move(args)};
  if (buf.ring.size() < buf.capacity) {
    buf.ring.push_back(std::move(span));
  } else {
    // Flight-recorder wrap: overwrite the oldest span.
    buf.ring[buf.pushed % buf.capacity] = std::move(span);
  }
  ++buf.pushed;
}

void TraceRecorder::set_thread_name(std::string name) {
  ThreadBuffer& buf = local_buffer();
  std::scoped_lock lock(buf.mutex);
  buf.name = std::move(name);
}

std::uint64_t TraceRecorder::dropped_spans() const {
  std::scoped_lock registry_lock(registry_mutex_);
  std::uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    std::scoped_lock lock(buf->mutex);
    dropped += buf->pushed - buf->ring.size();
  }
  return dropped;
}

std::uint64_t TraceRecorder::recorded_spans() const {
  std::scoped_lock registry_lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) {
    std::scoped_lock lock(buf->mutex);
    total += buf->ring.size();
  }
  return total;
}

void TraceRecorder::clear() {
  std::scoped_lock registry_lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::scoped_lock lock(buf->mutex);
    buf->ring.clear();
    buf->pushed = 0;
  }
}

std::string TraceRecorder::export_chrome_trace(
    const TraceExportOptions& options) const {
  std::scoped_lock registry_lock(registry_mutex_);
  const std::uint64_t pid = options.pid;
  const std::uint64_t base = options.absolute_timestamps ? 0 : base_nanos_;
  JsonWriter json;
  json.field("displayTimeUnit", "ns");

  std::uint64_t dropped = 0;
  json.begin_array("traceEvents");
  if (!options.process_name.empty()) {
    json.begin_object()
        .field("name", "process_name")
        .field("ph", "M")
        .field("pid", pid)
        .begin_object("args")
        .field("name", options.process_name)
        .end_object()
        .end_object();
  }
  for (const auto& buf : buffers_) {
    std::scoped_lock lock(buf->mutex);
    dropped += buf->pushed - buf->ring.size();

    const std::string track_name =
        buf->name.empty() ? "thread-" + std::to_string(buf->tid) : buf->name;
    json.begin_object()
        .field("name", "thread_name")
        .field("ph", "M")
        .field("pid", pid)
        .field("tid", std::uint64_t{buf->tid})
        .begin_object("args")
        .field("name", track_name)
        .end_object()
        .end_object();

    // Oldest-first: after a wrap the ring's logical start is pushed % cap.
    const std::size_t count = buf->ring.size();
    const std::size_t start =
        buf->pushed > count ? buf->pushed % buf->capacity : 0;
    for (std::size_t i = 0; i < count; ++i) {
      const Span& span = buf->ring[(start + i) % count];
      json.begin_object()
          .field("name", span.name)
          .field("cat", span.category)
          .field("ph", "X")
          .field("ts", static_cast<double>(span.start_nanos - base) / 1e3)
          .field("dur", static_cast<double>(span.duration_nanos) / 1e3)
          .field("pid", pid)
          .field("tid", std::uint64_t{buf->tid});
      if (!span.args.empty()) {
        json.begin_object("args");
        for (const SpanArg& arg : span.args) json.field(arg.key, arg.value);
        json.end_object();
      }
      json.end_object();
    }
  }
  json.end_array();
  json.begin_object("otherData")
      .field("dropped_spans", dropped)
      .end_object();
  return json.finish();
}

namespace {

/// Locates the contents of `"traceEvents":[ ... ]` inside a self-produced
/// Chrome trace document: a string- and escape-aware scan, not a JSON
/// parser, but exact on anything JsonWriter (or any standards-compliant
/// serializer) emits.
std::string_view trace_events_slice(std::string_view doc) {
  static constexpr std::string_view kKey = "\"traceEvents\":";
  std::size_t at = doc.find(kKey);
  CL_CHECK_MSG(at != std::string_view::npos,
               "merge_chrome_traces: no traceEvents array");
  at += kKey.size();
  while (at < doc.size() &&
         (doc[at] == ' ' || doc[at] == '\t' || doc[at] == '\n')) {
    ++at;
  }
  CL_CHECK_MSG(at < doc.size() && doc[at] == '[',
               "merge_chrome_traces: traceEvents is not an array");
  const std::size_t open = at;
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = open; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '[' || c == '{') {
      ++depth;
    } else if (c == ']' || c == '}') {
      --depth;
      if (depth == 0) {
        CL_CHECK_MSG(c == ']',
                     "merge_chrome_traces: unbalanced traceEvents array");
        return doc.substr(open + 1, i - open - 1);
      }
    }
  }
  CL_CHECK_MSG(false, "merge_chrome_traces: unterminated traceEvents array");
  return {};  // unreachable
}

std::uint64_t dropped_spans_of(std::string_view doc) {
  static constexpr std::string_view kKey = "\"dropped_spans\":";
  const std::size_t at = doc.find(kKey);
  if (at == std::string_view::npos) return 0;
  std::uint64_t value = 0;
  for (std::size_t i = at + kKey.size();
       i < doc.size() && doc[i] >= '0' && doc[i] <= '9'; ++i) {
    value = value * 10 + static_cast<std::uint64_t>(doc[i] - '0');
  }
  return value;
}

}  // namespace

std::string merge_chrome_traces(std::string_view a, std::string_view b) {
  const std::string_view events_a = trace_events_slice(a);
  const std::string_view events_b = trace_events_slice(b);
  std::string out;
  out.reserve(a.size() + b.size());
  out += R"({"displayTimeUnit":"ns","traceEvents":[)";
  out += events_a;
  if (!events_a.empty() && !events_b.empty()) out += ',';
  out += events_b;
  out += R"(],"otherData":{"dropped_spans":)";
  out += std::to_string(dropped_spans_of(a) + dropped_spans_of(b));
  out += "}}";
  return out;
}

void TraceRecorder::write_chrome_trace(const std::string& path,
                                       const TraceExportOptions& options) const {
  const std::string doc = export_chrome_trace(options);
  std::FILE* file = std::fopen(path.c_str(), "w");
  CL_CHECK_MSG(file != nullptr, "cannot open trace output " << path);
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), file);
  std::fputc('\n', file);
  const int close_rc = std::fclose(file);
  CL_CHECK_MSG(written == doc.size() && close_rc == 0,
               "short write to trace output " << path);
}

}  // namespace codelayout
