#include "support/trace_recorder.hpp"

#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"

namespace codelayout {

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* recorder = [] {
    auto* r = new TraceRecorder();
    const char* env = std::getenv("CODELAYOUT_TRACE");
    if (env != nullptr && std::string_view(env) != "0") r->enable();
    return r;
  }();
  return *recorder;
}

namespace {
std::atomic<std::uint64_t> next_recorder_id{1};
}  // namespace

TraceRecorder::TraceRecorder()
    : recorder_id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed)),
      base_nanos_(wall_nanos_now()) {}

void TraceRecorder::enable() { enabled_.store(true, std::memory_order_relaxed); }

void TraceRecorder::set_ring_capacity(std::size_t spans) {
  CL_CHECK(spans > 0);
  std::scoped_lock lock(registry_mutex_);
  ring_capacity_ = spans;
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  // The thread-local shared_ptr keeps the buffer alive across thread exit
  // order; the recorder's vector keeps it exportable afterwards. `owner_id`
  // guards against another recorder instance on the same thread (tests) —
  // compared by id, not address, so a new recorder reusing a destroyed one's
  // address is still detected.
  thread_local std::uint64_t owner_id = 0;
  thread_local std::shared_ptr<ThreadBuffer> buffer;
  if (!buffer || owner_id != recorder_id_) {
    buffer = std::make_shared<ThreadBuffer>();
    owner_id = recorder_id_;
    std::scoped_lock lock(registry_mutex_);
    buffer->tid = next_tid_++;
    buffer->capacity = ring_capacity_;
    buffers_.push_back(buffer);
  }
  return *buffer;
}

void TraceRecorder::record_span(const char* name, const char* category,
                                std::uint64_t start_nanos,
                                std::uint64_t duration_nanos,
                                std::vector<SpanArg> args) {
  ThreadBuffer& buf = local_buffer();
  std::scoped_lock lock(buf.mutex);
  Span span{name, category, start_nanos, duration_nanos, std::move(args)};
  if (buf.ring.size() < buf.capacity) {
    buf.ring.push_back(std::move(span));
  } else {
    // Flight-recorder wrap: overwrite the oldest span.
    buf.ring[buf.pushed % buf.capacity] = std::move(span);
  }
  ++buf.pushed;
}

void TraceRecorder::set_thread_name(std::string name) {
  ThreadBuffer& buf = local_buffer();
  std::scoped_lock lock(buf.mutex);
  buf.name = std::move(name);
}

std::uint64_t TraceRecorder::dropped_spans() const {
  std::scoped_lock registry_lock(registry_mutex_);
  std::uint64_t dropped = 0;
  for (const auto& buf : buffers_) {
    std::scoped_lock lock(buf->mutex);
    dropped += buf->pushed - buf->ring.size();
  }
  return dropped;
}

std::uint64_t TraceRecorder::recorded_spans() const {
  std::scoped_lock registry_lock(registry_mutex_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) {
    std::scoped_lock lock(buf->mutex);
    total += buf->ring.size();
  }
  return total;
}

void TraceRecorder::clear() {
  std::scoped_lock registry_lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::scoped_lock lock(buf->mutex);
    buf->ring.clear();
    buf->pushed = 0;
  }
}

std::string TraceRecorder::export_chrome_trace() const {
  std::scoped_lock registry_lock(registry_mutex_);
  JsonWriter json;
  json.field("displayTimeUnit", "ns");

  std::uint64_t dropped = 0;
  json.begin_array("traceEvents");
  for (const auto& buf : buffers_) {
    std::scoped_lock lock(buf->mutex);
    dropped += buf->pushed - buf->ring.size();

    const std::string track_name =
        buf->name.empty() ? "thread-" + std::to_string(buf->tid) : buf->name;
    json.begin_object()
        .field("name", "thread_name")
        .field("ph", "M")
        .field("pid", std::uint64_t{1})
        .field("tid", std::uint64_t{buf->tid})
        .begin_object("args")
        .field("name", track_name)
        .end_object()
        .end_object();

    // Oldest-first: after a wrap the ring's logical start is pushed % cap.
    const std::size_t count = buf->ring.size();
    const std::size_t start =
        buf->pushed > count ? buf->pushed % buf->capacity : 0;
    for (std::size_t i = 0; i < count; ++i) {
      const Span& span = buf->ring[(start + i) % count];
      json.begin_object()
          .field("name", span.name)
          .field("cat", span.category)
          .field("ph", "X")
          .field("ts",
                 static_cast<double>(span.start_nanos - base_nanos_) / 1e3)
          .field("dur", static_cast<double>(span.duration_nanos) / 1e3)
          .field("pid", std::uint64_t{1})
          .field("tid", std::uint64_t{buf->tid});
      if (!span.args.empty()) {
        json.begin_object("args");
        for (const SpanArg& arg : span.args) json.field(arg.key, arg.value);
        json.end_object();
      }
      json.end_object();
    }
  }
  json.end_array();
  json.begin_object("otherData")
      .field("dropped_spans", dropped)
      .end_object();
  return json.finish();
}

void TraceRecorder::write_chrome_trace(const std::string& path) const {
  const std::string doc = export_chrome_trace();
  std::FILE* file = std::fopen(path.c_str(), "w");
  CL_CHECK_MSG(file != nullptr, "cannot open trace output " << path);
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), file);
  std::fputc('\n', file);
  const int close_rc = std::fclose(file);
  CL_CHECK_MSG(written == doc.size() && close_rc == 0,
               "short write to trace output " << path);
}

}  // namespace codelayout
