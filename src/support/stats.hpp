// Small statistics helpers shared by the evaluation harness and tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace codelayout {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of a span; 0 for empty input.
double mean_of(std::span<const double> xs);

/// Geometric mean of strictly positive values; 0 for empty input.
double geomean_of(std::span<const double> xs);

/// p-th percentile (0..100) by linear interpolation on a copy.
double percentile_of(std::span<const double> xs, double p);

/// Fixed-bin histogram over [lo, hi); out-of-range values clamp to end bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bin) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;
  /// Value below which `q` (0..1) of the mass lies, estimated from bins.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace codelayout
