#include "support/thread_pool.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "support/metrics.hpp"
#include "support/registry.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = std::max(1u, threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  Item item{std::packaged_task<void()>(std::move(task)), 0,
            current_job_context()};
  if (TraceRecorder::instance().enabled() ||
      MetricsRegistry::global().enabled()) {
    item.enqueue_nanos = wall_nanos_now();
  }
  std::future<void> future = item.task.get_future();
  {
    std::scoped_lock lock(mutex_);
    queue_.push(std::move(item));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop(unsigned index) {
  bool track_named = false;
  for (;;) {
    Item item;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: submitted futures must resolve.
      if (queue_.empty()) return;
      item = std::move(queue_.front());
      queue_.pop();
    }

    if (item.enqueue_nanos == 0) {
      if (item.context.active()) {
        ScopedJobContext scope(item.context);
        item.task();  // exceptions land in the task's future
      } else {
        item.task();
      }
      continue;
    }

    // Instrumented path: the enqueue stamp rode in with the task. The
    // submitter's context is installed before the spans are recorded so that
    // queue-wait/task spans carry the originating job's trace id too.
    std::optional<ScopedJobContext> scope;
    if (item.context.active()) scope.emplace(item.context);
    TraceRecorder& recorder = TraceRecorder::instance();
    MetricsRegistry& registry = MetricsRegistry::global();
    if (recorder.enabled() && !track_named) {
      recorder.set_thread_name("worker-" + std::to_string(index + 1));
      track_named = true;
    }
    const std::uint64_t start = wall_nanos_now();
    const std::uint64_t wait = start - item.enqueue_nanos;
    item.task();
    const std::uint64_t run = wall_nanos_now() - start;
    if (registry.enabled()) {
      registry.counter("threadpool.tasks").add(1);
      registry.histogram("threadpool.queue_wait_ns").record(wait);
      registry.histogram("threadpool.run_ns").record(run);
    }
    if (recorder.enabled()) {
      recorder.record_span("queue-wait", "threadpool", item.enqueue_nanos,
                           wait, {});
      recorder.record_span("task", "threadpool", start, run, {});
    }
  }
}

unsigned ThreadPool::default_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace codelayout
