#include "support/thread_pool.hpp"

#include <algorithm>

namespace codelayout {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned count = std::max(1u, threads);
  workers_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::scoped_lock lock(mutex_);
    queue_.push(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: submitted futures must resolve.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the task's future
  }
}

unsigned ThreadPool::default_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace codelayout
