#include "support/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace codelayout {

struct ParallelTaskSet::State {
  TaskFn fn;
  std::size_t count = 0;

  std::mutex mu;
  std::condition_variable cv;
  // All guarded by mu. Claims go through the mutex rather than an atomic so
  // cancellation has a clean boundary: once `cancelled` is set no new claim
  // can start, and `finished == next` means every claimed task has settled.
  std::size_t next = 0;
  std::size_t finished = 0;
  bool cancelled = false;
  std::vector<std::uint8_t> done;
  std::vector<std::exception_ptr> errors;

  /// Claims and runs one task. Returns false when nothing was left to claim.
  bool run_one() {
    std::size_t index;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (cancelled || next >= count) return false;
      index = next++;
    }
    std::exception_ptr error;
    try {
      fn(index);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      done[index] = 1;
      errors[index] = std::move(error);
      ++finished;
    }
    cv.notify_all();
    return true;
  }
};

ParallelTaskSet::ParallelTaskSet(ThreadPool* pool, std::size_t count,
                                 TaskFn fn)
    : state_(std::make_shared<State>()) {
  state_->fn = std::move(fn);
  state_->count = count;
  state_->done.assign(count, 0);
  state_->errors.assign(count, nullptr);
  if (pool == nullptr || count < 2) return;
  const std::size_t helpers =
      std::min<std::size_t>(pool->size(), count);
  for (std::size_t h = 0; h < helpers; ++h) {
    // The helper holds its own reference to the state, so a helper that is
    // dequeued only after this set was destroyed still finds live memory,
    // observes the cancel flag, and returns. The future is intentionally
    // dropped: run_one never lets an exception escape.
    std::shared_ptr<State> state = state_;
    pool->submit([state] {
      while (state->run_one()) {
      }
    });
  }
}

ParallelTaskSet::~ParallelTaskSet() {
  State& s = *state_;
  std::unique_lock<std::mutex> lock(s.mu);
  s.cancelled = true;
  // Claimed tasks are actively running on some thread, so this wait is
  // bounded by their own progress — it never depends on pool scheduling.
  s.cv.wait(lock, [&] { return s.finished == s.next; });
}

void ParallelTaskSet::wait(std::size_t index) {
  State& s = *state_;
  CL_CHECK(index < s.count);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(s.mu);
      if (s.done[index]) {
        if (s.errors[index]) std::rethrow_exception(s.errors[index]);
        return;
      }
    }
    if (!s.run_one()) {
      // Everything is claimed; the owner of `index` is actively computing.
      std::unique_lock<std::mutex> lock(s.mu);
      s.cv.wait(lock, [&] { return s.done[index] != 0; });
      if (s.errors[index]) std::rethrow_exception(s.errors[index]);
      return;
    }
  }
}

void ParallelTaskSet::wait_all() {
  for (std::size_t i = 0; i < state_->count; ++i) wait(i);
}

}  // namespace codelayout
