#include "support/metrics.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace codelayout {

std::uint64_t wall_nanos_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t thread_cpu_nanos_now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

StageSnapshot StageSnapshot::from(const StageCounters& counters) {
  StageSnapshot out;
  out.hits = counters.hits.load(std::memory_order_relaxed);
  out.computed = counters.computed.load(std::memory_order_relaxed);
  out.waited = counters.waited.load(std::memory_order_relaxed);
  out.wall_nanos = counters.wall_nanos.load(std::memory_order_relaxed);
  out.cpu_nanos = counters.cpu_nanos.load(std::memory_order_relaxed);
  return out;
}

JsonWriter::JsonWriter() {
  out_ += '{';
  needs_comma_.push_back(false);
}

void JsonWriter::comma() {
  if (needs_comma_.back()) out_ += ',';
  needs_comma_.back() = true;
}

void JsonWriter::write_key(std::string_view key) {
  out_ += '"';
  out_.append(key);
  out_ += "\":";
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  comma();
  write_key(key);
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t value) {
  comma();
  write_key(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, unsigned value) {
  return field(key, static_cast<std::uint64_t>(value));
}

JsonWriter& JsonWriter::field(std::string_view key, double value) {
  comma();
  write_key(key);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  comma();
  write_key(key);
  out_ += '"';
  for (const char c : value) {
    if (c == '"' || c == '\\') out_ += '\\';
    out_ += c;
  }
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  comma();
  write_key(key);
  out_ += value ? "true" : "false";
  return *this;
}

std::string JsonWriter::finish() {
  while (!needs_comma_.empty()) {
    out_ += '}';
    needs_comma_.pop_back();
  }
  return out_;
}

}  // namespace codelayout
