#include "support/metrics.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace codelayout {

std::uint64_t wall_nanos_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t thread_cpu_nanos_now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  }
#endif
  return 0;
}

StageSnapshot StageSnapshot::from(const StageCounters& counters) {
  StageSnapshot out;
  out.hits = counters.hits.load(std::memory_order_relaxed);
  out.computed = counters.computed.load(std::memory_order_relaxed);
  out.waited = counters.waited.load(std::memory_order_relaxed);
  out.wall_nanos = counters.wall_nanos.load(std::memory_order_relaxed);
  out.cpu_nanos = counters.cpu_nanos.load(std::memory_order_relaxed);
  return out;
}

JsonWriter::JsonWriter() {
  out_ += '{';
  frames_.push_back(Frame{'}', false});
}

void JsonWriter::comma() {
  if (frames_.back().needs_comma) out_ += ',';
  frames_.back().needs_comma = true;
}

void JsonWriter::write_key(std::string_view key) {
  write_string(key);
  out_ += ':';
}

void JsonWriter::write_string(std::string_view s) {
  out_ += '"';
  for (const char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out_ += "\\\""; continue;
      case '\\': out_ += "\\\\"; continue;
      case '\b': out_ += "\\b"; continue;
      case '\f': out_ += "\\f"; continue;
      case '\n': out_ += "\\n"; continue;
      case '\r': out_ += "\\r"; continue;
      case '\t': out_ += "\\t"; continue;
      default: break;
    }
    if (byte < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", byte);
      out_ += buf;
    } else {
      out_ += c;
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object(std::string_view key) {
  comma();
  write_key(key);
  out_ += '{';
  frames_.push_back(Frame{'}', false});
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  frames_.push_back(Frame{'}', false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  frames_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array(std::string_view key) {
  comma();
  write_key(key);
  out_ += '[';
  frames_.push_back(Frame{']', false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  frames_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t value) {
  comma();
  write_key(key);
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, unsigned value) {
  return field(key, static_cast<std::uint64_t>(value));
}

JsonWriter& JsonWriter::field(std::string_view key, double value) {
  comma();
  write_key(key);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  comma();
  write_key(key);
  write_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}

JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  comma();
  write_key(key);
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  write_string(v);
  return *this;
}

std::string JsonWriter::finish() {
  while (!frames_.empty()) {
    out_ += frames_.back().close;
    frames_.pop_back();
  }
  return out_;
}

}  // namespace codelayout
