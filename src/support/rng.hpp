// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng so that every workload,
// trace and experiment is reproducible from a single 64-bit seed. The
// generator is xoshiro256** seeded through splitmix64, which is both fast and
// statistically strong enough for workload synthesis.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "support/check.hpp"

namespace codelayout {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes two 64-bit values into one; order-sensitive.
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// Deterministic xoshiro256** generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Derives an independent child stream; `stream_id` distinguishes children.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const {
    Rng child(hash_combine(state_[0] ^ state_[3], stream_id));
    return child;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    CL_DCHECK(bound > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0ULL - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    CL_DCHECK(lo <= hi);
    const auto width = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(width));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Geometric number of successes before failure; mean = p/(1-p) for the
  /// standard parameterization, here mean iterations for a loop whose
  /// back-edge is taken with probability p.
  std::uint64_t geometric(double back_edge_prob, std::uint64_t cap) {
    std::uint64_t n = 0;
    while (n < cap && chance(back_edge_prob)) ++n;
    return n;
  }

  /// Samples an index proportionally to `weights` (all non-negative, at least
  /// one positive).
  std::size_t weighted(std::span<const double> weights);

  /// Zipf-like rank sample over [0, n) with exponent s (s=0 is uniform).
  std::size_t zipf(std::size_t n, double s);

  /// Returns a random permutation of [0, n).
  std::vector<std::uint32_t> permutation(std::uint32_t n);

  /// Fisher–Yates shuffle of a vector-like container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[below(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace codelayout
