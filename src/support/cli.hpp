// Typed command-line options shared by every bench binary, the service
// daemon, and the load-generator client.
//
// Replaces the per-binary ad-hoc argv loops: flags are declared once with a
// type, a value range, and a help line; parsing accepts both "--flag VALUE"
// and "--flag=VALUE", rejects unknown flags and out-of-range values with a
// usage error naming the offender, and renders --help from the declarations.
// Binaries that front another parser (google-benchmark's --benchmark_*
// family) collect unrecognized arguments through passthrough() instead of
// erroring.
//
//   CliOptions cli("bench_foo", "regenerates Table I");
//   cli.flag("--json", &args.json, "append a JSON metrics line");
//   cli.option_uint("--threads", &args.threads, 1, 4096, "N", "engine width");
//   cli.parse_or_exit(argc, argv);   // --help / unknown flag handled here
//
// parse() is the exit-free core (returns the error message) so tests and
// embedding binaries can observe failures without dying.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace codelayout {

class CliOptions {
 public:
  /// `program` names the binary in usage output; `summary` is the first
  /// --help line (may be empty).
  explicit CliOptions(std::string program, std::string summary = "");

  /// Boolean switch: present = true. `*out` is untouched when absent.
  CliOptions& flag(std::string name, bool* out, std::string help);

  /// String-valued option; rejects an empty value.
  CliOptions& option(std::string name, std::string* out,
                     std::string value_name, std::string help);

  /// Strict unsigned option: digits only, range-checked against [min, max].
  CliOptions& option_uint(std::string name, unsigned* out, unsigned min,
                          unsigned max, std::string value_name,
                          std::string help);
  CliOptions& option_u64(std::string name, std::uint64_t* out,
                         std::uint64_t min, std::uint64_t max,
                         std::string value_name, std::string help);

  /// Strict finite double in [min, max].
  CliOptions& option_double(std::string name, double* out, double min,
                            double max, std::string value_name,
                            std::string help);

  /// Collect unrecognized arguments into `sink` instead of failing (for
  /// binaries that hand leftovers to another parser).
  CliOptions& passthrough(std::vector<std::string>* sink);

  /// Parses argv[1..). Returns the empty string on success, the error
  /// message otherwise. "--help"/"-h" sets help_requested() and returns
  /// success without consuming further arguments.
  [[nodiscard]] std::string parse(int argc, char** argv);
  [[nodiscard]] bool help_requested() const { return help_requested_; }

  /// parse(), then: --help prints help() and exits 0; an error prints the
  /// message plus usage() to stderr and exits 2.
  void parse_or_exit(int argc, char** argv);

  /// "usage: prog [--flag] [--opt VALUE] ..." on one line.
  [[nodiscard]] std::string usage() const;
  /// Full help: summary, usage, one aligned line per declared option.
  [[nodiscard]] std::string help() const;

 private:
  struct Spec {
    std::string name;
    bool takes_value = false;
    std::string value_name;
    std::string help;
    /// Applies a parsed occurrence; returns an error message or "".
    std::function<std::string(const std::string& value)> apply;
  };

  CliOptions& add(Spec spec);
  [[nodiscard]] const Spec* find(const std::string& name) const;

  std::string program_;
  std::string summary_;
  std::vector<Spec> specs_;
  std::vector<std::string>* passthrough_ = nullptr;
  bool help_requested_ = false;
};

}  // namespace codelayout
