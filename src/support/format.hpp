// Text formatting helpers and a plain-text table renderer used by the
// experiment harness, the bench binaries and the examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace codelayout {

/// "12.34%" with the given number of decimals.
std::string fmt_pct(double fraction, int decimals = 2);

/// Signed percent: "+4.20%" / "-1.10%".
std::string fmt_signed_pct(double fraction, int decimals = 2);

/// Fixed-point double.
std::string fmt_fixed(double value, int decimals = 2);

/// Human-readable byte count ("86.91K", "1.90M").
std::string fmt_bytes(std::uint64_t bytes);

/// Human-readable count with thousands grouping ("1,937,320").
std::string fmt_count(std::uint64_t n);

/// Simple monospaced table: first row is the header; columns are padded to
/// their widest cell, numeric-looking cells right-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Renders with a rule under the header.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a horizontal ASCII bar chart: one line per (label, value).
/// Values may be negative; bars are scaled to `width` characters.
std::string ascii_bars(const std::vector<std::pair<std::string, double>>& data,
                       int width = 40, const std::string& unit = "");

}  // namespace codelayout
