// Central metrics registry: named counters, gauges, and log-bucketed latency
// histograms shared by the evaluation engine, the thread pool, and the
// run-aware analysis kernels.
//
// Registration (name -> instrument) takes a mutex once per call site; every
// update after that is a relaxed atomic on the cached reference, so the hot
// paths never contend. The whole registry is gated by a runtime flag
// (set_enabled / the CODELAYOUT_METRICS environment variable): call sites
// batch their updates locally and flush only `if (registry.enabled())`, so a
// disabled registry costs one predictable branch per kernel invocation.
// Instruments have stable addresses for the registry's lifetime.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace codelayout {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins signed level (queue depths, widths, ...).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Latency distribution over power-of-two buckets: bucket i counts samples
/// with floor(log2(v)) == i (v in nanoseconds; v == 0 lands in bucket 0).
/// Quantiles interpolate linearly inside the selected bucket, so p50/p90/p99
/// carry at most ~2x bucket-relative error — plenty for "where does the time
/// go" questions, at the cost of 64 relaxed-atomic words.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t nanos);

  struct Summary {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;

    [[nodiscard]] double mean() const {
      return count ? static_cast<double>(sum) / static_cast<double>(count)
                   : 0.0;
    }
  };
  /// Consistent-enough snapshot: buckets are read relaxed, so a summary taken
  /// mid-update can be off by in-flight samples (never torn per bucket).
  [[nodiscard]] Summary summary() const;

  /// Relaxed snapshot of the raw per-bucket counts (bucket i counts samples
  /// in [2^i, 2^{i+1}), bucket 0 in [0, 2)). Feeds the Prometheus cumulative
  /// bucket exposition.
  [[nodiscard]] std::array<std::uint64_t, kBuckets> bucket_counts() const;

 private:
  [[nodiscard]] double quantile_from(
      const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t total,
      double q) const;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry. Enabled at startup when the
  /// CODELAYOUT_METRICS environment variable is set (and non-"0").
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Finds or creates the named instrument. References stay valid for the
  /// registry's lifetime; cache them at hot call sites.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// Zeroes nothing but forgets every instrument (tests only: outstanding
  /// cached references dangle, so never call this mid-measurement).
  void reset();

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{name:
  /// {count,min,max,mean,p50,p90,p99,sum_ns,*_ms...}}}. Histogram times are
  /// dumped in both raw nanoseconds and milliseconds.
  [[nodiscard]] std::string to_json(std::string_view name = {}) const;

  /// to_json() + trailing newline written to `path`; throws ContractError on
  /// IO failure.
  void write_json(const std::string& path, std::string_view name = {}) const;

  /// Prometheus text exposition (format version 0.0.4). Counters become
  /// `<prefix>_<name>_total`, gauges `<prefix>_<name>`, histograms the
  /// standard cumulative-bucket triplet (`_bucket{le="..."}` at power-of-two
  /// boundaries up to the highest populated bucket plus `+Inf`, `_sum`,
  /// `_count`), all in nanoseconds. Instrument names are sanitized to the
  /// Prometheus charset (every other byte becomes '_').
  [[nodiscard]] std::string dump_prometheus(
      std::string_view prefix = "codelayout") const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  // std::map keeps the JSON dump deterministically sorted by name.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

}  // namespace codelayout
