// Metrics primitives for the evaluation engine: monotonic clocks, lock-free
// per-stage counters, and a minimal JSON object writer for the bench
// binaries' `--json` dumps.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace codelayout {

/// Monotonic wall-clock nanoseconds (steady_clock).
std::uint64_t wall_nanos_now();

/// CPU time consumed by the calling thread, in nanoseconds; 0 where the
/// platform offers no per-thread CPU clock.
std::uint64_t thread_cpu_nanos_now();

/// Lock-free counters for one memoized evaluation stage. `computed` counts
/// cells this stage actually executed, `hits` lookups served from a finished
/// cell, and `waited` lookups deduplicated against a cell another thread was
/// computing at that moment.
struct StageCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> computed{0};
  std::atomic<std::uint64_t> waited{0};
  std::atomic<std::uint64_t> wall_nanos{0};
  std::atomic<std::uint64_t> cpu_nanos{0};

  void record_hit() { hits.fetch_add(1, std::memory_order_relaxed); }
  void record_wait() { waited.fetch_add(1, std::memory_order_relaxed); }
  void record_compute(std::uint64_t wall, std::uint64_t cpu) {
    computed.fetch_add(1, std::memory_order_relaxed);
    wall_nanos.fetch_add(wall, std::memory_order_relaxed);
    cpu_nanos.fetch_add(cpu, std::memory_order_relaxed);
  }
};

/// Plain-value copy of StageCounters at one point in time.
struct StageSnapshot {
  std::uint64_t hits = 0;
  std::uint64_t computed = 0;
  std::uint64_t waited = 0;
  std::uint64_t wall_nanos = 0;
  std::uint64_t cpu_nanos = 0;

  [[nodiscard]] std::uint64_t lookups() const {
    return hits + computed + waited;
  }
  static StageSnapshot from(const StageCounters& counters);
};

/// Minimal streaming JSON writer: one root object, nested objects and
/// arrays, scalar fields. Strings are escaped (quotes, backslashes, and
/// every control byte < 0x20 as \u00XX); doubles print with 6 significant
/// digits. Inside an array, use the key-less begin_object()/value()
/// overloads for the elements.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object(std::string_view key);
  /// Key-less object — an array element.
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array(std::string_view key);
  JsonWriter& end_array();
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, unsigned value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::string_view value);
  /// Without this overload, string literals would convert pointer-to-bool
  /// and silently pick field(key, bool).
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, bool value);
  /// Key-less scalars — array elements.
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(double v);
  JsonWriter& value(std::string_view v);

  /// Closes all open objects/arrays and returns the document.
  [[nodiscard]] std::string finish();

 private:
  void comma();
  void write_key(std::string_view key);
  void write_string(std::string_view s);

  std::string out_;
  /// One frame per open container: '}' or ']' to emit on close, plus the
  /// needs-comma state of that container.
  struct Frame {
    char close;
    bool needs_comma;
  };
  std::vector<Frame> frames_;
};

}  // namespace codelayout
