// Metrics primitives for the evaluation engine: monotonic clocks, lock-free
// per-stage counters, and a minimal JSON object writer for the bench
// binaries' `--json` dumps.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace codelayout {

/// Monotonic wall-clock nanoseconds (steady_clock).
std::uint64_t wall_nanos_now();

/// CPU time consumed by the calling thread, in nanoseconds; 0 where the
/// platform offers no per-thread CPU clock.
std::uint64_t thread_cpu_nanos_now();

/// Lock-free counters for one memoized evaluation stage. `computed` counts
/// cells this stage actually executed, `hits` lookups served from a finished
/// cell, and `waited` lookups deduplicated against a cell another thread was
/// computing at that moment.
struct StageCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> computed{0};
  std::atomic<std::uint64_t> waited{0};
  std::atomic<std::uint64_t> wall_nanos{0};
  std::atomic<std::uint64_t> cpu_nanos{0};

  void record_hit() { hits.fetch_add(1, std::memory_order_relaxed); }
  void record_wait() { waited.fetch_add(1, std::memory_order_relaxed); }
  void record_compute(std::uint64_t wall, std::uint64_t cpu) {
    computed.fetch_add(1, std::memory_order_relaxed);
    wall_nanos.fetch_add(wall, std::memory_order_relaxed);
    cpu_nanos.fetch_add(cpu, std::memory_order_relaxed);
  }
};

/// Plain-value copy of StageCounters at one point in time.
struct StageSnapshot {
  std::uint64_t hits = 0;
  std::uint64_t computed = 0;
  std::uint64_t waited = 0;
  std::uint64_t wall_nanos = 0;
  std::uint64_t cpu_nanos = 0;

  [[nodiscard]] std::uint64_t lookups() const {
    return hits + computed + waited;
  }
  static StageSnapshot from(const StageCounters& counters);
};

/// Minimal streaming JSON writer: one root object, nested objects, scalar
/// fields. Strings are escaped; doubles print with 6 significant digits.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter& begin_object(std::string_view key);
  JsonWriter& end_object();
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, unsigned value);
  JsonWriter& field(std::string_view key, double value);
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, bool value);

  /// Closes all open objects and returns the document.
  [[nodiscard]] std::string finish();

 private:
  void comma();
  void write_key(std::string_view key);

  std::string out_;
  std::vector<bool> needs_comma_;
};

}  // namespace codelayout
