// Flat open-addressing hash map for nonzero 64-bit keys.
//
// The analysis kernels key their accumulators by packed symbol pairs
// ((lo << 32) | hi with lo < hi, so a key is never 0) and hammer them once
// per event-pair. std::unordered_map spends that budget on allocation and
// pointer chasing; this table keeps (key, value) slots in one contiguous
// array with linear probing, so the hot upsert path is one multiply-shift
// hash plus a short scan of adjacent memory. Growth doubles the slot array
// at ~0.62 load. Value references are invalidated by any insert.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace codelayout {

/// SplitMix64 finalizer: a cheap full-avalanche mix for packed pair keys,
/// whose low bits are one raw symbol and would otherwise cluster probes.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

template <typename Value>
class FlatKeyMap {
 public:
  FlatKeyMap() = default;
  explicit FlatKeyMap(std::size_t expected) { reserve(expected); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Ensures capacity for `expected` entries without rehashing en route.
  void reserve(std::size_t expected) {
    std::size_t cap = 16;
    while (expected * 8 > cap * 5) cap *= 2;
    if (cap > slots_.size()) rehash(cap);
  }

  /// Inserts a value-initialized entry when absent. `key` must be nonzero.
  /// The reference is invalidated by the next insert.
  Value& operator[](std::uint64_t key) {
    CL_DCHECK(key != 0);
    if ((size_ + 1) * 8 > slots_.size() * 5) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    Slot& slot = slots_[probe(key)];
    if (slot.key == 0) {
      slot.key = key;
      ++size_;
    }
    return slot.value;
  }

  [[nodiscard]] const Value* find(std::uint64_t key) const {
    if (slots_.empty()) return nullptr;
    const Slot& slot = slots_[probe(key)];
    return slot.key == 0 ? nullptr : &slot.value;
  }

  /// Calls fn(key, const Value&) for every entry, in internal slot order
  /// (callers needing determinism must sort what they extract).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.key != 0) fn(slot.key, slot.value);
    }
  }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    Value value{};
  };

  [[nodiscard]] std::size_t probe(std::uint64_t key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = mix64(key) & mask;
    while (slots_[i].key != 0 && slots_[i].key != key) i = (i + 1) & mask;
    return i;
  }

  void rehash(std::size_t capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    for (Slot& slot : old) {
      if (slot.key == 0) continue;
      const std::size_t mask = slots_.size() - 1;
      std::size_t i = mix64(slot.key) & mask;
      while (slots_[i].key != 0) i = (i + 1) & mask;
      slots_[i] = std::move(slot);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace codelayout
