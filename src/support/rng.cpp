#include "support/rng.hpp"

#include <cmath>
#include <numeric>

namespace codelayout {

std::size_t Rng::weighted(std::span<const double> weights) {
  CL_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CL_CHECK_MSG(w >= 0.0, "negative weight " << w);
    total += w;
  }
  CL_CHECK_MSG(total > 0.0, "all weights zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slack lands on the last bin
}

std::size_t Rng::zipf(std::size_t n, double s) {
  CL_CHECK(n > 0);
  if (s <= 0.0) return below(n);
  // Inverse-CDF over the harmonic weights; n is small in our uses (<= a few
  // thousand), so the linear scan is acceptable and exact.
  double norm = 0.0;
  for (std::size_t k = 1; k <= n; ++k) norm += 1.0 / std::pow(double(k), s);
  double r = uniform() * norm;
  for (std::size_t k = 1; k <= n; ++k) {
    r -= 1.0 / std::pow(double(k), s);
    if (r < 0.0) return k - 1;
  }
  return n - 1;
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> p(n);
  std::iota(p.begin(), p.end(), 0u);
  shuffle(p);
  return p;
}

}  // namespace codelayout
