#include "support/format.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace codelayout {

std::string fmt_pct(double fraction, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << fraction * 100.0 << '%';
  return os.str();
}

std::string fmt_signed_pct(double fraction, int decimals) {
  std::ostringstream os;
  os << (fraction >= 0 ? "+" : "") << std::fixed << std::setprecision(decimals)
     << fraction * 100.0 << '%';
  return os.str();
}

std::string fmt_fixed(double value, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << value;
  return os.str();
}

std::string fmt_bytes(std::uint64_t bytes) {
  const char* suffix[] = {"", "K", "M", "G"};
  double v = static_cast<double>(bytes);
  int s = 0;
  while (v >= 1024.0 && s < 3) {
    v /= 1024.0;
    ++s;
  }
  std::ostringstream os;
  if (s == 0) {
    os << bytes;
  } else {
    os << std::fixed << std::setprecision(2) << v << suffix[s];
  }
  return os.str();
}

std::string fmt_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run == 3) {
      out.push_back(',');
      run = 0;
    }
    out.push_back(*it);
    ++run;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t digits = 0;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  return digits * 2 >= s.size();
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CL_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  CL_CHECK_MSG(row.size() == header_.size(),
               "row has " << row.size() << " cells, header has "
                          << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      const bool right = align_numeric && looks_numeric(row[c]);
      os << (right ? std::setiosflags(std::ios::right)
                   : std::setiosflags(std::ios::left))
         << std::setw(static_cast<int>(widths[c])) << row[c]
         << std::resetiosflags(std::ios::adjustfield);
    }
    os << '\n';
  };
  emit(header_, false);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row, true);
  return os.str();
}

std::string ascii_bars(const std::vector<std::pair<std::string, double>>& data,
                       int width, const std::string& unit) {
  double max_abs = 0.0;
  std::size_t label_w = 0;
  for (const auto& [label, value] : data) {
    max_abs = std::max(max_abs, std::fabs(value));
    label_w = std::max(label_w, label.size());
  }
  if (max_abs == 0.0) max_abs = 1.0;

  std::ostringstream os;
  for (const auto& [label, value] : data) {
    const int len =
        static_cast<int>(std::lround(std::fabs(value) / max_abs * width));
    os << std::left << std::setw(static_cast<int>(label_w)) << label << " |"
       << (value < 0 ? std::string(static_cast<std::size_t>(len), '-')
                     : std::string(static_cast<std::size_t>(len), '#'))
       << ' ' << fmt_fixed(value, 3) << unit << '\n';
  }
  return os.str();
}

}  // namespace codelayout
