#include "support/registry.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/check.hpp"
#include "support/metrics.hpp"

namespace codelayout {

void LatencyHistogram::record(std::uint64_t nanos) {
  const std::size_t bucket =
      nanos == 0 ? 0 : static_cast<std::size_t>(std::bit_width(nanos) - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(nanos, std::memory_order_relaxed);
  // Relaxed CAS loops: min/max only tighten, so lost races re-try.
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (nanos < cur &&
         !min_.compare_exchange_weak(cur, nanos, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (nanos > cur &&
         !max_.compare_exchange_weak(cur, nanos, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::quantile_from(
    const std::array<std::uint64_t, kBuckets>& buckets, std::uint64_t total,
    double q) const {
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double seen = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const auto in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (seen + in_bucket >= target) {
      // Interpolate inside [2^i, 2^(i+1)); bucket 0 spans [0, 2).
      const double lo = i == 0 ? 0.0 : static_cast<double>(std::uint64_t{1} << i);
      const double hi = static_cast<double>(std::uint64_t{1} << (i + 1));
      const double frac = (target - seen) / in_bucket;
      return lo + frac * (hi - lo);
    }
    seen += in_bucket;
  }
  return static_cast<double>(max_.load(std::memory_order_relaxed));
}

LatencyHistogram::Summary LatencyHistogram::summary() const {
  Summary out;
  std::array<std::uint64_t, kBuckets> snap{};
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  out.count = total;
  out.sum = sum_.load(std::memory_order_relaxed);
  out.min = total ? min_.load(std::memory_order_relaxed) : 0;
  out.max = max_.load(std::memory_order_relaxed);
  out.p50 = quantile_from(snap, total, 0.50);
  out.p90 = quantile_from(snap, total, 0.90);
  out.p99 = quantile_from(snap, total, 0.99);
  return out;
}

std::array<std::uint64_t, LatencyHistogram::kBuckets>
LatencyHistogram::bucket_counts() const {
  std::array<std::uint64_t, kBuckets> snap{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    const char* env = std::getenv("CODELAYOUT_METRICS");
    if (env != nullptr && std::string_view(env) != "0") r->set_enabled(true);
    return r;
  }();
  return *registry;
}

namespace {

template <typename Map, typename Value>
Value& find_or_create(std::mutex& mutex, Map& map, std::string_view name) {
  std::scoped_lock lock(mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<Value>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  return find_or_create<decltype(counters_), Counter>(mutex_, counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return find_or_create<decltype(gauges_), Gauge>(mutex_, gauges_, name);
}

LatencyHistogram& MetricsRegistry::histogram(std::string_view name) {
  return find_or_create<decltype(histograms_), LatencyHistogram>(
      mutex_, histograms_, name);
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::to_json(std::string_view name) const {
  std::scoped_lock lock(mutex_);
  JsonWriter json;
  if (!name.empty()) json.field("name", name);
  json.begin_object("counters");
  for (const auto& [key, counter] : counters_) json.field(key, counter->value());
  json.end_object();
  json.begin_object("gauges");
  for (const auto& [key, gauge] : gauges_) {
    json.field(key, static_cast<double>(gauge->value()));
  }
  json.end_object();
  json.begin_object("histograms");
  for (const auto& [key, histogram] : histograms_) {
    const LatencyHistogram::Summary s = histogram->summary();
    json.begin_object(key)
        .field("count", s.count)
        .field("min_ns", s.min)
        .field("max_ns", s.max)
        .field("mean_ns", s.mean())
        .field("p50_ns", s.p50)
        .field("p90_ns", s.p90)
        .field("p99_ns", s.p99)
        .field("sum_ns", s.sum)
        .field("sum_ms", static_cast<double>(s.sum) / 1e6)
        .end_object();
  }
  json.end_object();
  return json.finish();
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; anything else maps to '_'.
std::string prom_name(std::string_view prefix, std::string_view name,
                      std::string_view suffix = {}) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size() + suffix.size());
  out.append(prefix);
  out.push_back('_');
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  out.append(suffix);
  return out;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out.append(buf);
}

}  // namespace

std::string MetricsRegistry::dump_prometheus(std::string_view prefix) const {
  std::scoped_lock lock(mutex_);
  std::string out;
  for (const auto& [key, counter] : counters_) {
    const std::string name = prom_name(prefix, key, "_total");
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counter->value()) + "\n";
  }
  for (const auto& [key, gauge] : gauges_) {
    const std::string name = prom_name(prefix, key);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(gauge->value()) + "\n";
  }
  for (const auto& [key, histogram] : histograms_) {
    const std::string name = prom_name(prefix, key);
    out += "# TYPE " + name + " histogram\n";
    const auto buckets = histogram->bucket_counts();
    std::size_t highest = 0;
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      total += buckets[i];
      if (buckets[i] != 0) highest = i;
    }
    std::uint64_t cumulative = 0;
    // Cumulative le boundaries at bucket upper edges: bucket i covers
    // [2^i, 2^{i+1}), so its le is 2^{i+1}. Emit up to the highest populated
    // bucket; +Inf carries the grand total.
    for (std::size_t i = 0; total != 0 && i <= highest; ++i) {
      cumulative += buckets[i];
      out += name + "_bucket{le=\"";
      append_double(out, std::ldexp(1.0, static_cast<int>(i) + 1));
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(total) + "\n";
    const LatencyHistogram::Summary s = histogram->summary();
    out += name + "_sum " + std::to_string(s.sum) + "\n";
    out += name + "_count " + std::to_string(total) + "\n";
  }
  return out;
}

void MetricsRegistry::write_json(const std::string& path,
                                 std::string_view name) const {
  const std::string doc = to_json(name);
  std::FILE* file = std::fopen(path.c_str(), "w");
  CL_CHECK_MSG(file != nullptr, "cannot open metrics output " << path);
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), file);
  std::fputc('\n', file);
  const int close_rc = std::fclose(file);
  CL_CHECK_MSG(written == doc.size() && close_rc == 0,
               "short write to metrics output " << path);
}

}  // namespace codelayout
