#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace codelayout {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : xs) {
    CL_CHECK_MSG(x > 0.0, "geomean requires positive values, got " << x);
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(xs.size()));
}

double percentile_of(std::span<const double> xs, double p) {
  CL_CHECK(!xs.empty());
  CL_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins) {
  CL_CHECK(bins > 0);
  CL_CHECK(hi > lo);
}

void Histogram::add(double x, std::uint64_t weight) {
  auto bin = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width_));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
  total_ += weight;
}

std::uint64_t Histogram::count(std::size_t bin) const {
  CL_CHECK(bin < counts_.size());
  return counts_[bin];
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

double Histogram::quantile(double q) const {
  CL_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return lo_;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double next = cum + static_cast<double>(counts_[b]);
    if (next >= target) {
      const double frac =
          counts_[b] ? (target - cum) / static_cast<double>(counts_[b]) : 0.0;
      return bin_low(b) + frac * width_;
    }
    cum = next;
  }
  return bin_high(counts_.size() - 1);
}

}  // namespace codelayout
