// A fixed-size worker pool shared by the evaluation engine.
//
// Tasks are opaque callables; submit() returns a future observing completion
// or the task's exception. Tasks are allowed to *block* on values being
// computed by other tasks (the Lab's memo cells do exactly that): the
// claim-and-compute-inline discipline there guarantees that every in-progress
// cell is actively being computed by some thread, so blocked workers always
// wait on a thread that is making progress and the pool cannot deadlock.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace codelayout {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. The returned future rethrows the task's exception.
  std::future<void> submit(std::function<void()> task);

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// One worker per hardware thread, with a floor of 1.
  static unsigned default_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace codelayout
