// A fixed-size worker pool shared by the evaluation engine.
//
// Tasks are opaque callables; submit() returns a future observing completion
// or the task's exception. Tasks are allowed to *block* on values being
// computed by other tasks (the Lab's memo cells do exactly that): the
// claim-and-compute-inline discipline there guarantees that every in-progress
// cell is actively being computed by some thread, so blocked workers always
// wait on a thread that is making progress and the pool cannot deadlock.
//
// Observability: when tracing/metrics are enabled, each task is stamped at
// enqueue and the dequeuing worker records queue-wait and run time — as
// "queue-wait"/"task" spans on the worker's trace track and as the
// "threadpool.queue_wait_ns" / "threadpool.run_ns" latency histograms (plus
// the "threadpool.tasks" counter). Disabled, the stamp collapses to one
// branch per submit/dequeue.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/trace_recorder.hpp"

namespace codelayout {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. The returned future rethrows the task's exception.
  std::future<void> submit(std::function<void()> task);

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// One worker per hardware thread, with a floor of 1.
  static unsigned default_threads();

 private:
  struct Item {
    std::packaged_task<void()> task;
    /// Wall clock at submit; 0 when observability was off at enqueue.
    std::uint64_t enqueue_nanos = 0;
    /// The submitter's ambient JobContext, re-installed around the task so
    /// trace ids and cost accumulators survive the hop onto a pool thread.
    /// Captured unconditionally: cost attribution works with tracing off.
    JobContext context;
  };

  void worker_loop(unsigned index);

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<Item> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace codelayout
