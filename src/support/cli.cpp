#include "support/cli.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "support/check.hpp"

namespace codelayout {
namespace {

bool all_digits(const std::string& text) {
  if (text.empty()) return false;
  for (const char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string range_error(const std::string& flag, const std::string& value,
                        const std::string& expectation) {
  return "invalid " + flag + " value '" + value + "': expected " + expectation;
}

std::string parse_u64(const std::string& flag, const std::string& value,
                      std::uint64_t min, std::uint64_t max,
                      std::uint64_t* out) {
  const std::string expectation = "an integer in [" + std::to_string(min) +
                                  ", " + std::to_string(max) + "]";
  if (!all_digits(value)) return range_error(flag, value, expectation);
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), nullptr, 10);
  if (errno != 0 || parsed < min || parsed > max) {
    return range_error(flag, value, expectation);
  }
  *out = static_cast<std::uint64_t>(parsed);
  return "";
}

}  // namespace

CliOptions::CliOptions(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

CliOptions& CliOptions::add(Spec spec) {
  CL_CHECK_MSG(spec.name.rfind("--", 0) == 0,
               "option names start with '--': " << spec.name);
  CL_CHECK_MSG(find(spec.name) == nullptr,
               "duplicate option declared: " << spec.name);
  specs_.push_back(std::move(spec));
  return *this;
}

const CliOptions::Spec* CliOptions::find(const std::string& name) const {
  for (const Spec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

CliOptions& CliOptions::flag(std::string name, bool* out, std::string help) {
  CL_CHECK(out != nullptr);
  Spec spec;
  spec.name = std::move(name);
  spec.takes_value = false;
  spec.help = std::move(help);
  spec.apply = [out](const std::string&) {
    *out = true;
    return std::string();
  };
  return add(std::move(spec));
}

CliOptions& CliOptions::option(std::string name, std::string* out,
                               std::string value_name, std::string help) {
  CL_CHECK(out != nullptr);
  Spec spec;
  spec.name = std::move(name);
  spec.takes_value = true;
  spec.value_name = std::move(value_name);
  spec.help = std::move(help);
  const std::string flag_name = spec.name;
  spec.apply = [out, flag_name](const std::string& value) {
    if (value.empty()) return flag_name + " requires a value";
    *out = value;
    return std::string();
  };
  return add(std::move(spec));
}

CliOptions& CliOptions::option_uint(std::string name, unsigned* out,
                                    unsigned min, unsigned max,
                                    std::string value_name, std::string help) {
  CL_CHECK(out != nullptr);
  Spec spec;
  spec.name = std::move(name);
  spec.takes_value = true;
  spec.value_name = std::move(value_name);
  spec.help = std::move(help);
  const std::string flag_name = spec.name;
  spec.apply = [out, flag_name, min, max](const std::string& value) {
    std::uint64_t parsed = 0;
    const std::string error = parse_u64(flag_name, value, min, max, &parsed);
    if (error.empty()) *out = static_cast<unsigned>(parsed);
    return error;
  };
  return add(std::move(spec));
}

CliOptions& CliOptions::option_u64(std::string name, std::uint64_t* out,
                                   std::uint64_t min, std::uint64_t max,
                                   std::string value_name, std::string help) {
  CL_CHECK(out != nullptr);
  Spec spec;
  spec.name = std::move(name);
  spec.takes_value = true;
  spec.value_name = std::move(value_name);
  spec.help = std::move(help);
  const std::string flag_name = spec.name;
  spec.apply = [out, flag_name, min, max](const std::string& value) {
    return parse_u64(flag_name, value, min, max, out);
  };
  return add(std::move(spec));
}

CliOptions& CliOptions::option_double(std::string name, double* out,
                                      double min, double max,
                                      std::string value_name,
                                      std::string help) {
  CL_CHECK(out != nullptr);
  Spec spec;
  spec.name = std::move(name);
  spec.takes_value = true;
  spec.value_name = std::move(value_name);
  spec.help = std::move(help);
  const std::string flag_name = spec.name;
  spec.apply = [out, flag_name, min, max](const std::string& value) {
    const std::string expectation =
        "a number in [" + std::to_string(min) + ", " + std::to_string(max) +
        "]";
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() || errno != 0 ||
        !std::isfinite(parsed) || parsed < min || parsed > max) {
      return range_error(flag_name, value, expectation);
    }
    *out = parsed;
    return std::string();
  };
  return add(std::move(spec));
}

CliOptions& CliOptions::passthrough(std::vector<std::string>* sink) {
  CL_CHECK(sink != nullptr);
  passthrough_ = sink;
  return *this;
}

std::string CliOptions::parse(int argc, char** argv) {
  help_requested_ = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return "";
    }
    std::string name = arg;
    std::string inline_value;
    bool has_inline_value = false;
    const std::size_t eq = arg.find('=');
    if (arg.rfind("--", 0) == 0 && eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
      has_inline_value = true;
    }
    const Spec* spec = find(name);
    if (spec == nullptr) {
      if (passthrough_ != nullptr) {
        passthrough_->push_back(arg);
        continue;
      }
      return "unknown argument: " + arg;
    }
    std::string value;
    if (spec->takes_value) {
      if (has_inline_value) {
        value = inline_value;
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return spec->name + " requires a value";
      }
      if (value.empty()) return spec->name + " requires a value";
    } else if (has_inline_value) {
      return spec->name + " does not take a value";
    }
    const std::string error = spec->apply(value);
    if (!error.empty()) return error;
  }
  return "";
}

void CliOptions::parse_or_exit(int argc, char** argv) {
  const std::string error = parse(argc, argv);
  if (help_requested_) {
    std::printf("%s", help().c_str());
    std::exit(0);
  }
  if (!error.empty()) {
    std::fprintf(stderr, "%s: %s\n%s\n", program_.c_str(), error.c_str(),
                 usage().c_str());
    std::exit(2);
  }
}

std::string CliOptions::usage() const {
  std::string out = "usage: " + program_;
  for (const Spec& spec : specs_) {
    out += " [" + spec.name;
    if (spec.takes_value) out += " " + spec.value_name;
    out += "]";
  }
  return out;
}

std::string CliOptions::help() const {
  std::string out;
  if (!summary_.empty()) out += program_ + " — " + summary_ + "\n\n";
  out += usage() + "\n";
  std::size_t width = 0;
  std::vector<std::string> heads;
  heads.reserve(specs_.size());
  for (const Spec& spec : specs_) {
    std::string head = "  " + spec.name;
    if (spec.takes_value) head += " " + spec.value_name;
    width = std::max(width, head.size());
    heads.push_back(std::move(head));
  }
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    out += heads[i];
    out.append(width - heads[i].size() + 2, ' ');
    out += specs_[i].help + "\n";
  }
  return out;
}

}  // namespace codelayout
