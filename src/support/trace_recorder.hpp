// Flight recorder: a thread-safe, low-overhead scoped-span tracer whose
// output loads directly in Perfetto / chrome://tracing.
//
//   CODELAYOUT_SPAN("solo", "lab", {"workload", name}, {"optimizer", opt});
//
// Each thread appends completed spans to its own fixed-capacity ring buffer
// (a true flight recorder: when the ring wraps, the oldest spans are
// overwritten and counted as dropped). Buffers register once per thread
// under the recorder mutex; recording afterwards takes only that thread's
// buffer lock, which is uncontended except against an in-flight export.
//
// The disabled path is a single relaxed atomic load + branch per span site:
// span names, argument strings, and timestamps are only materialized when
// tracing is on (the macro defers argument construction behind the enabled
// check). Tracing never perturbs results — it reads clocks and writes side
// buffers, so deterministic outputs (golden checksums) are identical with
// tracing on and off.
//
// Export serializes every buffered span as Chrome trace-event JSON
// ("traceEvents" complete events, ph:"X", microsecond timestamps) with one
// track per recorded thread, plus thread_name metadata.
//
// Cross-process stitching (ISSUE 8): a thread can carry an ambient
// JobContext — a client-assigned trace id / span id plus an optional
// per-job cost accumulator. record_span tags every span recorded while a
// context is active with its trace id, the thread pool re-installs the
// submitter's context inside its workers, and exports can be parameterized
// with a pid / process name / absolute timestamps so two processes' traces
// merge (merge_chrome_traces) into one Perfetto file whose spans line up on
// the shared steady clock and join on the propagated trace id.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/metrics.hpp"
#include "support/registry.hpp"

namespace codelayout {

/// One key/value annotation on a span. Keys are expected to be string
/// literals; values are stringified eagerly (the macro only builds SpanArgs
/// when tracing is enabled).
struct SpanArg {
  SpanArg(const char* k, std::string v) : key(k), value(std::move(v)) {}
  SpanArg(const char* k, std::string_view v) : key(k), value(v) {}
  SpanArg(const char* k, const char* v) : key(k), value(v) {}
  SpanArg(const char* k, std::uint64_t v) : key(k), value(std::to_string(v)) {}
  SpanArg(const char* k, unsigned v) : key(k), value(std::to_string(v)) {}
  SpanArg(const char* k, int v) : key(k), value(std::to_string(v)) {}

  const char* key;
  std::string value;
};

/// Per-job cost accumulator. Atomic because one job's work fans out over
/// pool threads that all report into the same accumulator; the owner must
/// outlive every task submitted while it was ambient (the Lab's batch calls
/// block until their tasks finish, so a stack-allocated accumulator around
/// an executor call is safe).
struct CostCounters {
  std::atomic<std::uint64_t> memo_hits{0};    ///< memo lookups served cached
  std::atomic<std::uint64_t> memo_misses{0};  ///< memo cells computed
  // Adaptive-dispatch attribution (trace/dispatch.hpp): decisions per path,
  // plus the event/run totals of the dispatched traces — the service receipt
  // derives its run_compression field from their ratio.
  std::atomic<std::uint64_t> dispatch_run{0};   ///< run-aware path chosen
  std::atomic<std::uint64_t> dispatch_flat{0};  ///< straight-line path chosen
  std::atomic<std::uint64_t> dispatch_events{0};
  std::atomic<std::uint64_t> dispatch_runs{0};
  // Analytic co-run screening attribution (perfmodel/corun_predictor.hpp):
  // closed-form predictions evaluated for this job, and how many of the solo
  // profiles they consumed came from the Lab's memo instead of a fresh
  // kernel pass.
  std::atomic<std::uint64_t> predict_calls{0};
  std::atomic<std::uint64_t> predict_profile_hits{0};
};

/// Ambient per-thread job identity: the trace id / span id a client stamped
/// on the request, plus an optional cost accumulator. Installed with
/// ScopedJobContext; the thread pool captures the submitter's context at
/// submit() and re-installs it around the task, so spans recorded deep in
/// the Lab's fan-out still carry the originating job's trace id.
struct JobContext {
  std::uint64_t trace_id = 0;  ///< 0 = no trace context
  std::uint64_t span_id = 0;
  CostCounters* cost = nullptr;

  [[nodiscard]] bool active() const {
    return trace_id != 0 || cost != nullptr;
  }
};

/// The calling thread's ambient context (all-defaults when none installed).
[[nodiscard]] JobContext current_job_context();

/// RAII install/restore of the ambient JobContext (nests).
class ScopedJobContext {
 public:
  explicit ScopedJobContext(JobContext context);
  ~ScopedJobContext();

  ScopedJobContext(const ScopedJobContext&) = delete;
  ScopedJobContext& operator=(const ScopedJobContext&) = delete;

 private:
  JobContext saved_;
};

/// Knobs for export_chrome_trace. The defaults reproduce the classic
/// single-process export byte for byte.
struct TraceExportOptions {
  /// The pid stamped on every event (Perfetto groups tracks by process).
  std::uint32_t pid = 1;
  /// Emitted as a process_name metadata event when non-empty.
  std::string process_name;
  /// false: ts is relative to this recorder's construction. true: ts is the
  /// raw steady-clock reading — two processes on one machine share that
  /// clock, so their absolute-timestamp exports align when merged.
  bool absolute_timestamps = false;
};

class TraceRecorder {
 public:
  /// Default ring capacity per thread, in spans.
  static constexpr std::size_t kDefaultRingCapacity = std::size_t{1} << 16;

  /// The process-wide recorder. Enabled at startup when the CODELAYOUT_TRACE
  /// environment variable is set (and non-"0").
  static TraceRecorder& instance();

  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void enable();
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Applies to thread buffers registered after the call (tests shrink it to
  /// exercise the wrap path).
  void set_ring_capacity(std::size_t spans);

  /// Records one completed span on the calling thread's ring. When the
  /// calling thread carries an ambient JobContext with a trace id, the span
  /// gains "trace_id" (and, when nonzero, "span_id") args automatically.
  void record_span(const char* name, const char* category,
                   std::uint64_t start_nanos, std::uint64_t duration_nanos,
                   std::vector<SpanArg> args);

  /// Names the calling thread's track in the exported trace ("worker-3").
  void set_thread_name(std::string name);

  /// Spans overwritten by ring wrap-around, across all threads.
  [[nodiscard]] std::uint64_t dropped_spans() const;
  /// Buffered (exportable) spans across all threads.
  [[nodiscard]] std::uint64_t recorded_spans() const;

  /// Empties every registered ring (thread registrations survive).
  void clear();

  /// The full Chrome trace-event / Perfetto JSON document.
  [[nodiscard]] std::string export_chrome_trace(
      const TraceExportOptions& options = {}) const;

  /// export_chrome_trace() written to `path`; throws ContractError on IO
  /// failure.
  void write_chrome_trace(const std::string& path,
                          const TraceExportOptions& options = {}) const;

 private:
  struct Span {
    const char* name;
    const char* category;
    std::uint64_t start_nanos;
    std::uint64_t duration_nanos;
    std::vector<SpanArg> args;
  };

  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<Span> ring;
    std::size_t capacity = kDefaultRingCapacity;
    std::uint64_t pushed = 0;  ///< lifetime spans; ring holds the newest
    std::string name;
    std::uint32_t tid = 0;
  };

  ThreadBuffer& local_buffer();

  std::atomic<bool> enabled_{false};
  /// Process-unique (never reused, unlike `this`): lets the thread-local
  /// buffer cache detect that it belongs to a different, possibly destroyed
  /// recorder instance.
  const std::uint64_t recorder_id_;
  const std::uint64_t base_nanos_;  ///< ts origin: recorder construction
  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 1;
  std::size_t ring_capacity_ = kDefaultRingCapacity;
};

/// Splices the "traceEvents" arrays of two exported Chrome trace documents
/// into one (e.g. a client-side export and a daemon-side export fetched over
/// the introspection surface) and sums their dropped-span counts. Export
/// both sides with distinct pids and absolute timestamps so the merged file
/// shows two aligned process tracks. Throws ContractError when either
/// document lacks a well-formed traceEvents array.
[[nodiscard]] std::string merge_chrome_traces(std::string_view a,
                                              std::string_view b);

/// RAII span: captures the start time at construction and records the
/// completed span at destruction. Inactive (one boolean test) when the
/// recorder is disabled at construction time.
class ScopedSpan {
 public:
  /// `args_fn() -> std::vector<SpanArg>` is only invoked when tracing is
  /// enabled, keeping the disabled path free of string construction.
  template <typename ArgsFn>
  ScopedSpan(const char* name, const char* category, ArgsFn&& args_fn) {
    if (!TraceRecorder::instance().enabled()) return;
    name_ = name;
    category_ = category;
    args_ = args_fn();
    start_nanos_ = wall_nanos_now();
  }
  ScopedSpan(const char* name, const char* category)
      : ScopedSpan(name, category, [] { return std::vector<SpanArg>{}; }) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (name_ == nullptr) return;
    TraceRecorder::instance().record_span(name_, category_, start_nanos_,
                                          wall_nanos_now() - start_nanos_,
                                          std::move(args_));
  }

  [[nodiscard]] bool active() const { return name_ != nullptr; }

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t start_nanos_ = 0;
  std::vector<SpanArg> args_;
};

/// Scoped span + latency histogram in one: the same measured interval feeds
/// the named MetricsRegistry histogram (when metrics are enabled) and the
/// trace (when tracing is enabled). Two branches when both are off.
class ScopedPhase {
 public:
  template <typename ArgsFn>
  ScopedPhase(const char* name, const char* category,
              const char* histogram_name, ArgsFn&& args_fn) {
    const bool trace = TraceRecorder::instance().enabled();
    const bool metrics = MetricsRegistry::global().enabled();
    if (!trace && !metrics) return;
    name_ = name;
    category_ = category;
    histogram_name_ = histogram_name;
    trace_ = trace;
    if (trace) args_ = args_fn();
    start_nanos_ = wall_nanos_now();
  }
  ScopedPhase(const char* name, const char* category,
              const char* histogram_name)
      : ScopedPhase(name, category, histogram_name,
                    [] { return std::vector<SpanArg>{}; }) {}

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  ~ScopedPhase() {
    if (name_ == nullptr) return;
    const std::uint64_t duration = wall_nanos_now() - start_nanos_;
    if (MetricsRegistry::global().enabled()) {
      MetricsRegistry::global().histogram(histogram_name_).record(duration);
    }
    if (trace_) {
      TraceRecorder::instance().record_span(name_, category_, start_nanos_,
                                            duration, std::move(args_));
    }
  }

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  const char* histogram_name_ = nullptr;
  bool trace_ = false;
  std::uint64_t start_nanos_ = 0;
  std::vector<SpanArg> args_;
};

#define CL_SPAN_CONCAT_IMPL(a, b) a##b
#define CL_SPAN_CONCAT(a, b) CL_SPAN_CONCAT_IMPL(a, b)

/// Scoped trace span. Arguments after the category are {key, value} pairs,
/// built only when tracing is enabled:
///   CODELAYOUT_SPAN("solo", "lab", {"workload", name}, {"optimizer", opt});
#define CODELAYOUT_SPAN(name, category, ...)                        \
  ::codelayout::ScopedSpan CL_SPAN_CONCAT(cl_span_, __LINE__)(      \
      name, category, [&] {                                         \
        return std::vector<::codelayout::SpanArg>{__VA_ARGS__};     \
      })

/// Scoped span + latency histogram (histogram named "phase.<name>_ns" style
/// is up to the caller). Same deferred-args contract as CODELAYOUT_SPAN.
#define CODELAYOUT_PHASE(name, category, histogram, ...)            \
  ::codelayout::ScopedPhase CL_SPAN_CONCAT(cl_phase_, __LINE__)(    \
      name, category, histogram, [&] {                              \
        return std::vector<::codelayout::SpanArg>{__VA_ARGS__};     \
      })

}  // namespace codelayout
