// Adaptive kernel dispatch (DESIGN.md §15).
//
// Every analysis kernel exists in two exact forms: a run-aware pass over the
// RLE run decomposition (O(runs) per-run work, a big win on loop-heavy
// traces) and a straight-line pass over the flat SoA event buffer (smaller
// per-event constants, a win on incompressible traces where runs == events
// and the run machinery is pure overhead). The two forms are bit-identical
// by construction — the run-aware passes were proven equal to per-event
// replay when they were introduced, and the straight-line passes *are*
// per-event replay restated over the cached flat view — so choosing between
// them is purely a performance decision.
//
// The choice is a one-shot comparison against the trace's run-compression
// ratio (events per run, O(1) to read): a kernel takes its run-aware path
// when the trace compresses at least as well as the kernel's threshold,
// and the straight-line path otherwise. Thresholds are per kernel because
// the run collapse saves different amounts of work per kernel (an O(1)
// collapsed Fenwick query is worth more than a skipped LRU touch).
//
// Observability: every decision bumps a lab.dispatch.<kernel>.{run,flat}
// registry counter and, when a JobContext cost accumulator is ambient, the
// per-job dispatch counters the service CostReceipt reports (including the
// event/run totals its run_compression field derives from).
//
// CODELAYOUT_FORCE_PATH=run|flat overrides every default-constructed
// AnalysisDispatch — the golden suite runs under both values in CI, which is
// the standing cross-path bit-identity proof over real workloads.
#pragma once

#include <optional>
#include <string_view>

#include "trace/trace.hpp"

namespace codelayout {

/// Which implementation of a kernel runs.
enum class KernelPath : std::uint8_t {
  kRunAware = 0,      ///< RLE pass over Trace::runs()
  kStraightLine = 1,  ///< pre-RLE pass over the flat Trace::symbols() buffer
};

[[nodiscard]] const char* kernel_path_name(KernelPath path);  // "run" / "flat"

/// Dispatch override: kAuto compares compression against the kernel
/// threshold; kRun / kFlat force one path everywhere (bench --force-path,
/// CODELAYOUT_FORCE_PATH, cross-path tests).
enum class ForcedPath : std::uint8_t { kAuto = 0, kRun = 1, kFlat = 2 };

/// Parses "run" / "flat" / "auto"; nullopt on anything else.
[[nodiscard]] std::optional<ForcedPath> parse_forced_path(std::string_view s);

/// The process-wide default force, read once from CODELAYOUT_FORCE_PATH
/// (unset or unparseable = kAuto) and cached.
[[nodiscard]] ForcedPath forced_path_from_env();

/// The kernels that dispatch. Values index the threshold table.
enum class DispatchKernel : std::uint8_t {
  kLruStack = 0,
  kReuse = 1,
  kFootprint = 2,
  kAffinity = 3,
  kTrg = 4,
  kIcacheSolo = 5,
};
inline constexpr std::size_t kDispatchKernelCount = 6;

[[nodiscard]] const char* dispatch_kernel_name(DispatchKernel kernel);

/// Per-kernel dispatch thresholds plus the force override. A kernel takes
/// its run-aware path when trace.run_compression() >= its threshold. The
/// defaults were measured on the 29-workload bench suite: each sits between
/// the compression where the straight-line pass stops winning and the point
/// where the run collapse clearly pays, with enough margin that dispatch
/// stays within 0.95x of the better path on every workload (the floor
/// bench_compare.py enforces in CI).
struct AnalysisDispatch {
  ForcedPath force = forced_path_from_env();

  /// touch_run collapse vs per-event touch: both near-free, crossover low.
  double lru_stack = 1.05;
  /// The run-aware scan (collapsed Fenwick query + move_mark) measures at
  /// or slightly above the flat restatement even at compression 1.0 across
  /// the 29-workload suite, so reuse always takes the run path.
  double reuse = 1.0;
  /// One O(1) gap update per run vs per event.
  double footprint = 1.10;
  /// Affinity scans trimmed traces (compression exactly 1), yet the
  /// run-aware loop paces at or slightly above the flat restatement on
  /// every suite workload — the kernel is compute-bound per event (top-w
  /// window updates), so the flat buffer's narrower loads never pay.
  /// Threshold exactly 1: affinity is always run-aware.
  double affinity = 1.0;
  /// Repeat events are LRU no-ops either way; the run path only saves the
  /// no-op touches, the flat path only the narrower loads.
  double trg = 1.02;
  /// The solo collapse bulk-counts a run's hits, worth ~20% per event in
  /// overhead when nothing collapses.
  double icache_solo = 1.25;

  [[nodiscard]] double threshold(DispatchKernel kernel) const;

  /// Every threshold finite and >= 1 (a trace never compresses below 1).
  [[nodiscard]] bool valid() const;

  friend bool operator==(const AnalysisDispatch&,
                         const AnalysisDispatch&) = default;
};

/// The dispatch decision for one kernel invocation over `trace`. Bumps the
/// lab.dispatch.<kernel>.{run,flat} counters and the ambient JobContext cost
/// accumulator (when one is installed); pure otherwise.
[[nodiscard]] KernelPath choose_path(const AnalysisDispatch& dispatch,
                                     DispatchKernel kernel,
                                     const Trace& trace);

}  // namespace codelayout
