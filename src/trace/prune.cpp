#include "trace/prune.hpp"

#include <algorithm>
#include <unordered_set>

namespace codelayout {

PruneResult prune_to_hot(const Trace& trace, std::size_t top_k) {
  CL_CHECK(top_k > 0);
  const auto counts = trace.occurrence_counts();

  std::vector<Symbol> order;
  order.reserve(counts.size());
  for (Symbol s = 0; s < counts.size(); ++s) {
    if (counts[s] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](Symbol a, Symbol b) {
    if (counts[a] != counts[b]) return counts[a] > counts[b];
    return a < b;
  });
  if (order.size() > top_k) order.resize(top_k);

  std::unordered_set<Symbol> hot(order.begin(), order.end());

  PruneResult result{.trace = Trace(trace.granularity()),
                     .hot_set = std::move(order),
                     .kept_events = 0,
                     .total_events = trace.size()};
  result.trace.reserve(trace.size());
  for (Symbol s : trace.symbols()) {
    if (hot.contains(s)) {
      result.trace.push_symbol(s);
      ++result.kept_events;
    }
  }
  result.trace = result.trace.trimmed();
  return result;
}

Trace sample_windows(const Trace& trace, std::size_t window_len,
                     std::size_t stride) {
  CL_CHECK(window_len > 0);
  CL_CHECK(stride >= window_len);
  Trace out(trace.granularity());
  const auto symbols = trace.symbols();
  out.reserve(symbols.size() / stride * window_len + window_len);
  for (std::size_t start = 0; start < symbols.size(); start += stride) {
    const std::size_t end = std::min(start + window_len, symbols.size());
    for (std::size_t i = start; i < end; ++i) out.push_symbol(symbols[i]);
  }
  return out.trimmed();
}

}  // namespace codelayout
