#include "trace/prune.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/registry.hpp"

namespace codelayout {

PruneResult prune_to_hot(const Trace& trace, std::size_t top_k) {
  CL_CHECK(top_k > 0);
  const auto counts = trace.occurrence_counts();

  std::vector<Symbol> order;
  order.reserve(counts.size());
  for (Symbol s = 0; s < counts.size(); ++s) {
    if (counts[s] > 0) order.push_back(s);
  }
  std::sort(order.begin(), order.end(), [&](Symbol a, Symbol b) {
    if (counts[a] != counts[b]) return counts[a] > counts[b];
    return a < b;
  });
  if (order.size() > top_k) order.resize(top_k);

  std::unordered_set<Symbol> hot(order.begin(), order.end());

  PruneResult result{.trace = Trace(trace.granularity()),
                     .hot_set = std::move(order),
                     .kept_events = 0,
                     .total_events = trace.size()};
  result.trace.reserve(trace.run_count());
  // Single-pass run transducer: each run is kept or dropped whole (one hot-set
  // probe per run), and push_run re-coalesces across dropped gaps.
  std::uint64_t runs_kept = 0;
  for (const Run& r : trace.runs()) {
    if (hot.contains(r.symbol)) {
      result.trace.push_run(r.symbol, r.length);
      result.kept_events += r.length;
      ++runs_kept;
    }
  }
  result.trace = result.trace.trimmed();
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter("trace.prune.runs_kept").add(runs_kept);
    registry.counter("trace.prune.runs_dropped")
        .add(trace.run_count() - runs_kept);
  }
  return result;
}

Trace sample_windows(const Trace& trace, std::size_t window_len,
                     std::size_t stride) {
  CL_CHECK(window_len > 0);
  CL_CHECK(stride >= window_len);
  Trace out(trace.granularity());
  out.reserve(trace.run_count());
  // Run transducer over [start, start + window_len) windows: walk runs once,
  // clipping each run to the window it overlaps. Because stride >= window_len
  // the windows are disjoint and ordered, so one forward pass suffices.
  std::size_t run_start = 0;           // event index of the current run
  std::size_t window_start = 0;        // event index of the current window
  for (const Run& r : trace.runs()) {
    const std::size_t run_end = run_start + r.length;
    while (window_start < run_end) {
      const std::size_t window_end =
          std::min(window_start + window_len, trace.size());
      const std::size_t lo = std::max(run_start, window_start);
      const std::size_t hi = std::min(run_end, window_end);
      if (lo < hi) out.push_run(r.symbol, hi - lo);
      if (run_end < window_end) break;  // run exhausted inside this window
      window_start += stride;
    }
    run_start = run_end;
  }
  return out.trimmed();
}

}  // namespace codelayout
