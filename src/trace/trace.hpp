// Dynamic code-block traces (paper Sec. II-B, Definition 1).
//
// A Trace is a sequence of code-block symbols at either basic-block or
// function granularity. Symbols are the dense BlockId/FuncId values of the
// profiled Module, stored untyped so the locality analyses can share one
// implementation across both granularities; the typed push/at accessors keep
// granularity mix-ups out of client code.
//
// Storage is run-length encoded: the event sequence is kept as maximal
// (symbol, length) runs, the representation the paper's loop-heavy I-cache
// traces compress well under (Sec. II-F records gcc's test-input trace at
// 8 GB flat). Push paths coalesce repeats in O(1), every analysis kernel
// iterates runs() and collapses a run of length r into O(1) work, and the
// serialization in trace/io writes the runs directly. symbols() remains as a
// compatibility view that materializes the flat sequence on first use.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ir/ids.hpp"
#include "support/check.hpp"

namespace codelayout {

/// Untyped code-block symbol; the value of a BlockId or FuncId.
using Symbol = std::uint32_t;

/// One maximal run of a trace: `length` consecutive events of `symbol`.
struct Run {
  Symbol symbol;
  std::uint32_t length;

  friend bool operator==(const Run&, const Run&) = default;
};

class Trace {
 public:
  enum class Granularity { kBlock, kFunction };

  /// Longest representable run; longer repeats split into adjacent runs.
  static constexpr std::uint32_t kMaxRunLength = ~std::uint32_t{0};

  explicit Trace(Granularity g) : granularity_(g) {}

  [[nodiscard]] Granularity granularity() const { return granularity_; }
  [[nodiscard]] bool is_block() const {
    return granularity_ == Granularity::kBlock;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// The run-length decomposition of the event sequence. Runs are maximal
  /// (adjacent runs carry distinct symbols) except across kMaxRunLength
  /// splits, and every length is >= 1.
  [[nodiscard]] std::span<const Run> runs() const { return runs_; }
  [[nodiscard]] std::size_t run_count() const { return runs_.size(); }

  /// Events per run — the RLE compression ratio of this trace (1.0 when no
  /// symbol repeats consecutively; large for loop-heavy traces).
  [[nodiscard]] double run_compression() const {
    return runs_.empty() ? 1.0
                         : static_cast<double>(size_) /
                               static_cast<double>(runs_.size());
  }

  /// Flat compatibility view of the event sequence, materialized lazily on
  /// first use and cached. Concurrent calls on a const Trace are safe;
  /// mutation invalidates the cache and must be externally exclusive, like
  /// any other write.
  [[nodiscard]] std::span<const Symbol> symbols() const;

  void reserve(std::size_t n) { runs_.reserve(n); }
  void clear() {
    runs_.clear();
    size_ = 0;
    flat_.reset();
  }

  void push(BlockId b) {
    CL_DCHECK(granularity_ == Granularity::kBlock);
    CL_DCHECK(b.valid());
    push_symbol(b.value);
  }
  void push(FuncId f) {
    CL_DCHECK(granularity_ == Granularity::kFunction);
    CL_DCHECK(f.valid());
    push_symbol(f.value);
  }
  void push_symbol(Symbol s) {
    if (flat_) flat_.reset();
    ++size_;
    if (!runs_.empty()) {
      Run& back = runs_.back();
      if (back.symbol == s && back.length != kMaxRunLength) {
        ++back.length;
        return;
      }
    }
    runs_.push_back(Run{s, 1});
  }

  /// Appends `count` consecutive events of `s` in O(1) (plus splits for
  /// counts beyond kMaxRunLength). No-op when count == 0.
  void push_run(Symbol s, std::uint64_t count);

  [[nodiscard]] BlockId block_at(std::size_t i) const {
    CL_DCHECK(granularity_ == Granularity::kBlock);
    return BlockId(symbols()[i]);
  }
  [[nodiscard]] FuncId function_at(std::size_t i) const {
    CL_DCHECK(granularity_ == Granularity::kFunction);
    return FuncId(symbols()[i]);
  }

  /// Trimmed trace (Definition 1): collapses runs of the same symbol.
  /// O(run_count).
  [[nodiscard]] Trace trimmed() const;

  /// True when no two consecutive symbols are equal (every run has length 1).
  [[nodiscard]] bool is_trimmed() const;

  /// Number of distinct symbols.
  [[nodiscard]] std::size_t distinct_count() const;

  /// Largest symbol value + 1 (0 for an empty trace); the dense symbol space.
  [[nodiscard]] Symbol symbol_space() const;

  /// occurrence_counts()[s] = number of events of symbol s; indexed to
  /// symbol_space().
  [[nodiscard]] std::vector<std::uint64_t> occurrence_counts() const;

  /// Event-sequence equality. The run decomposition is canonical for any
  /// trace built through the push/push_run API, so this compares runs.
  friend bool operator==(const Trace& a, const Trace& b) {
    return a.granularity_ == b.granularity_ && a.size_ == b.size_ &&
           a.runs_ == b.runs_;
  }

 private:
  Granularity granularity_;
  std::vector<Run> runs_;
  std::size_t size_ = 0;
  /// Lazily materialized flat view (see symbols()). Copies share the cache;
  /// mutation drops only the mutated trace's reference.
  mutable std::shared_ptr<const std::vector<Symbol>> flat_;
};

/// Projects a block trace to the function trace of the same run (trimmed per
/// Definition 1: consecutive blocks of the same function collapse to one
/// function event).
class Module;  // fwd (ir/module.hpp)
Trace project_to_functions(const Trace& block_trace, const Module& module);

}  // namespace codelayout
