// Dynamic code-block traces (paper Sec. II-B, Definition 1).
//
// A Trace is a sequence of code-block symbols at either basic-block or
// function granularity. Symbols are the dense BlockId/FuncId values of the
// profiled Module, stored untyped so the locality analyses can share one
// implementation across both granularities; the typed push/at accessors keep
// granularity mix-ups out of client code.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ir/ids.hpp"
#include "support/check.hpp"

namespace codelayout {

/// Untyped code-block symbol; the value of a BlockId or FuncId.
using Symbol = std::uint32_t;

class Trace {
 public:
  enum class Granularity { kBlock, kFunction };

  explicit Trace(Granularity g) : granularity_(g) {}

  [[nodiscard]] Granularity granularity() const { return granularity_; }
  [[nodiscard]] bool is_block() const {
    return granularity_ == Granularity::kBlock;
  }

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::span<const Symbol> symbols() const { return events_; }

  void reserve(std::size_t n) { events_.reserve(n); }
  void clear() { events_.clear(); }

  void push(BlockId b) {
    CL_DCHECK(granularity_ == Granularity::kBlock);
    CL_DCHECK(b.valid());
    events_.push_back(b.value);
  }
  void push(FuncId f) {
    CL_DCHECK(granularity_ == Granularity::kFunction);
    CL_DCHECK(f.valid());
    events_.push_back(f.value);
  }
  void push_symbol(Symbol s) { events_.push_back(s); }

  [[nodiscard]] BlockId block_at(std::size_t i) const {
    CL_DCHECK(granularity_ == Granularity::kBlock);
    return BlockId(events_[i]);
  }
  [[nodiscard]] FuncId function_at(std::size_t i) const {
    CL_DCHECK(granularity_ == Granularity::kFunction);
    return FuncId(events_[i]);
  }

  /// Trimmed trace (Definition 1): collapses runs of the same symbol.
  [[nodiscard]] Trace trimmed() const;

  /// True when no two consecutive symbols are equal.
  [[nodiscard]] bool is_trimmed() const;

  /// Number of distinct symbols.
  [[nodiscard]] std::size_t distinct_count() const;

  /// Largest symbol value + 1 (0 for an empty trace); the dense symbol space.
  [[nodiscard]] Symbol symbol_space() const;

  /// occurrence_counts()[s] = number of events of symbol s; indexed to
  /// symbol_space().
  [[nodiscard]] std::vector<std::uint64_t> occurrence_counts() const;

  friend bool operator==(const Trace&, const Trace&) = default;

 private:
  Granularity granularity_;
  std::vector<Symbol> events_;
};

/// Projects a block trace to the function trace of the same run (trimmed per
/// Definition 1: consecutive blocks of the same function collapse to one
/// function event).
class Module;  // fwd (ir/module.hpp)
Trace project_to_functions(const Trace& block_trace, const Module& module);

}  // namespace codelayout
