// Trace pruning and sampling (paper Sec. II-F "Trace Pruning").
//
// Large basic-block traces (gcc's test-input trace is 8 GB in the paper) are
// pruned by keeping only the occurrences of the top-K most frequently
// executed blocks — the Hashemi-style hot-set selection — which "typically
// keeps over 90% of the original trace". Window sampling further shortens a
// trace while preserving local co-occurrence structure.
#pragma once

#include <cstddef>
#include <vector>

#include "trace/trace.hpp"

namespace codelayout {

struct PruneResult {
  Trace trace;                    ///< pruned (and re-trimmed) trace
  std::vector<Symbol> hot_set;    ///< the kept symbols, hottest first
  std::uint64_t kept_events = 0;  ///< events surviving the prune
  std::uint64_t total_events = 0;

  [[nodiscard]] double kept_fraction() const {
    return total_events ? static_cast<double>(kept_events) /
                              static_cast<double>(total_events)
                        : 1.0;
  }
};

/// Keeps only occurrences of the `top_k` most frequent symbols (ties broken
/// by symbol value for determinism), then re-trims.
PruneResult prune_to_hot(const Trace& trace, std::size_t top_k);

/// Keeps windows of `window_len` events every `stride` events (stride >=
/// window_len); preserves w-window co-occurrence statistics inside windows.
Trace sample_windows(const Trace& trace, std::size_t window_len,
                     std::size_t stride);

}  // namespace codelayout
