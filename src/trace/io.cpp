#include "trace/io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace codelayout {
namespace {

constexpr std::uint32_t kMagic = 0x434c5452;  // "CLTR"
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ostream& os, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  os.write(buf, 4);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  os.write(buf, 8);
}

std::uint32_t get_u32(std::istream& is) {
  char buf[4];
  is.read(buf, 4);
  CL_CHECK_MSG(is.gcount() == 4, "truncated trace stream");
  std::uint32_t v;
  std::memcpy(&v, buf, 4);
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  char buf[8];
  is.read(buf, 8);
  CL_CHECK_MSG(is.gcount() == 8, "truncated trace stream");
  std::uint64_t v;
  std::memcpy(&v, buf, 8);
  return v;
}

}  // namespace

std::vector<RlePair> rle_encode(const Trace& trace) {
  std::vector<RlePair> out;
  for (Symbol s : trace.symbols()) {
    if (!out.empty() && out.back().symbol == s &&
        out.back().run < ~std::uint32_t{0}) {
      ++out.back().run;
    } else {
      out.push_back(RlePair{s, 1});
    }
  }
  return out;
}

Trace rle_decode(const std::vector<RlePair>& pairs, Trace::Granularity g) {
  Trace out(g);
  std::size_t total = 0;
  for (const RlePair& p : pairs) total += p.run;
  out.reserve(total);
  for (const RlePair& p : pairs) {
    for (std::uint32_t i = 0; i < p.run; ++i) out.push_symbol(p.symbol);
  }
  return out;
}

void write_trace(std::ostream& os, const Trace& trace) {
  const auto rle = rle_encode(trace);
  put_u32(os, kMagic);
  put_u32(os, kVersion);
  put_u32(os, trace.is_block() ? 0u : 1u);
  put_u64(os, trace.size());
  put_u64(os, rle.size());
  for (const RlePair& p : rle) {
    put_u32(os, p.symbol);
    put_u32(os, p.run);
  }
  CL_CHECK_MSG(os.good(), "trace write failed");
}

Trace read_trace(std::istream& is) {
  CL_CHECK_MSG(get_u32(is) == kMagic, "bad trace magic");
  CL_CHECK_MSG(get_u32(is) == kVersion, "unsupported trace version");
  const auto gran = get_u32(is) == 0 ? Trace::Granularity::kBlock
                                     : Trace::Granularity::kFunction;
  const std::uint64_t events = get_u64(is);
  const std::uint64_t pairs = get_u64(is);
  std::vector<RlePair> rle;
  rle.reserve(pairs);
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const Symbol s = get_u32(is);
    const std::uint32_t run = get_u32(is);
    rle.push_back(RlePair{s, run});
  }
  Trace out = rle_decode(rle, gran);
  CL_CHECK_MSG(out.size() == events, "trace event count mismatch");
  return out;
}

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream f(path, std::ios::binary);
  CL_CHECK_MSG(f.is_open(), "cannot open " << path << " for writing");
  write_trace(f, trace);
}

Trace load_trace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  CL_CHECK_MSG(f.is_open(), "cannot open " << path);
  return read_trace(f);
}

}  // namespace codelayout
