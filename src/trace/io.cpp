#include "trace/io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "support/registry.hpp"

namespace codelayout {
namespace {

constexpr std::uint32_t kMagic = 0x434c5452;  // "CLTR"
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kVersionFixedPairs = 1;

void put_u32(std::ostream& os, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  os.write(buf, 4);
}

void put_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  os.write(buf, 8);
}

void put_varint(std::ostream& os, std::uint64_t v) {
  char buf[10];
  int n = 0;
  do {
    char byte = static_cast<char>(v & 0x7f);
    v >>= 7;
    if (v != 0) byte = static_cast<char>(byte | 0x80);
    buf[n++] = byte;
  } while (v != 0);
  os.write(buf, n);
}

std::uint32_t get_u32(std::istream& is) {
  char buf[4];
  is.read(buf, 4);
  CL_CHECK_MSG(is.gcount() == 4, "truncated trace stream");
  std::uint32_t v;
  std::memcpy(&v, buf, 4);
  return v;
}

std::uint64_t get_u64(std::istream& is) {
  char buf[8];
  is.read(buf, 8);
  CL_CHECK_MSG(is.gcount() == 8, "truncated trace stream");
  std::uint64_t v;
  std::memcpy(&v, buf, 8);
  return v;
}

std::uint64_t get_varint(std::istream& is) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    const int c = is.get();
    CL_CHECK_MSG(c != std::istream::traits_type::eof(),
                 "truncated varint in trace stream");
    const auto byte = static_cast<std::uint64_t>(c & 0xff);
    const std::uint64_t payload = byte & 0x7f;
    CL_CHECK_MSG(shift < 63 || payload <= 1, "varint overflow in trace stream");
    v |= payload << shift;
    if ((byte & 0x80) == 0) return v;
  }
  CL_CHECK_MSG(false, "varint overflow in trace stream");
  return 0;  // unreachable
}

/// Reads a varint that must fit a 32-bit field (symbol or run length).
std::uint32_t get_varint32(std::istream& is, const char* what) {
  const std::uint64_t v = get_varint(is);
  CL_CHECK_MSG(v <= std::numeric_limits<std::uint32_t>::max(),
               what << " overflows 32 bits in trace stream");
  return static_cast<std::uint32_t>(v);
}

}  // namespace

std::vector<RlePair> rle_encode(const Trace& trace) {
  const std::span<const Run> runs = trace.runs();
  return std::vector<RlePair>(runs.begin(), runs.end());
}

Trace rle_decode(const std::vector<RlePair>& pairs, Trace::Granularity g) {
  Trace out(g);
  out.reserve(pairs.size());
  for (const RlePair& p : pairs) {
    CL_CHECK_MSG(p.length > 0, "zero-length run in RLE stream");
    out.push_run(p.symbol, p.length);
  }
  return out;
}

void write_trace(std::ostream& os, const Trace& trace) {
  put_u32(os, kMagic);
  put_u32(os, kVersion);
  put_u32(os, trace.is_block() ? 0u : 1u);
  put_u64(os, trace.size());
  put_u64(os, trace.run_count());
  for (const Run& r : trace.runs()) {
    put_varint(os, r.symbol);
    put_varint(os, r.length);
  }
  CL_CHECK_MSG(os.good(), "trace write failed");
}

Trace read_trace(std::istream& is) {
  const std::istream::pos_type begin = is.tellg();
  CL_CHECK_MSG(get_u32(is) == kMagic, "bad trace magic");
  const std::uint32_t version = get_u32(is);
  CL_CHECK_MSG(version == kVersion || version == kVersionFixedPairs,
               "unsupported trace version");
  const auto gran = get_u32(is) == 0 ? Trace::Granularity::kBlock
                                     : Trace::Granularity::kFunction;
  const std::uint64_t events = get_u64(is);
  const std::uint64_t pairs = get_u64(is);
  // A hostile header can declare any run count; never trust it for an
  // allocation. Each pair costs >= 2 stream bytes, so a short stream runs out
  // of bytes (-> truncation error) long before the decoder allocates much.
  Trace out(gran);
  std::uint64_t decoded = 0;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    Symbol symbol;
    std::uint32_t length;
    if (version == kVersionFixedPairs) {
      symbol = get_u32(is);
      length = get_u32(is);
    } else {
      symbol = get_varint32(is, "symbol");
      length = get_varint32(is, "run length");
    }
    CL_CHECK_MSG(length > 0, "zero-length run in trace stream");
    // Guard the running sum before it can wrap: the remaining capacity check
    // also rejects streams whose true total overflows 64 bits.
    CL_CHECK_MSG(length <= events - decoded,
                 "run lengths exceed declared event count");
    out.push_run(symbol, length);
    decoded += length;
  }
  CL_CHECK_MSG(decoded == events, "trace event count mismatch");
  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    registry.counter("trace.io.traces_decoded").add(1);
    // Seekable streams (files, stringstreams — every embedder we have)
    // report exact decoded bytes; tellg() failing just skips the counter.
    const std::istream::pos_type end = is.tellg();
    if (begin != std::istream::pos_type(-1) &&
        end != std::istream::pos_type(-1) && end > begin) {
      registry.counter("trace.io.bytes_decoded")
          .add(static_cast<std::uint64_t>(end - begin));
    }
  }
  return out;
}

void save_trace(const std::string& path, const Trace& trace) {
  std::ofstream f(path, std::ios::binary);
  CL_CHECK_MSG(f.is_open(), "cannot open " << path << " for writing");
  write_trace(f, trace);
}

Trace load_trace(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  CL_CHECK_MSG(f.is_open(), "cannot open " << path);
  return read_trace(f);
}

}  // namespace codelayout
