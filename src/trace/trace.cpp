#include "trace/trace.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_set>

#include "ir/module.hpp"
#include "support/registry.hpp"

namespace codelayout {

namespace {
/// Guards flat-view materialization. A static mutex (rather than a per-trace
/// one) keeps Trace trivially copyable/movable; contention only happens on
/// the first symbols() call per trace, after which readers take the lock just
/// long enough to copy the shared_ptr.
std::mutex g_flat_mutex;
}  // namespace

std::span<const Symbol> Trace::symbols() const {
  std::lock_guard<std::mutex> lock(g_flat_mutex);
  if (!flat_) {
    auto flat = std::make_shared<std::vector<Symbol>>();
    flat->reserve(size_);
    for (const Run& r : runs_) flat->insert(flat->end(), r.length, r.symbol);
    flat_ = std::move(flat);
    // Each materialization is O(events); the bench asserts at most one per
    // workload per run (hoisted out of every timed region).
    MetricsRegistry& registry = MetricsRegistry::global();
    if (registry.enabled()) registry.counter("trace.flat_view.builds").add(1);
  }
  return *flat_;
}

void Trace::push_run(Symbol s, std::uint64_t count) {
  if (count == 0) return;
  if (flat_) flat_.reset();
  size_ += count;
  if (!runs_.empty()) {
    Run& back = runs_.back();
    if (back.symbol == s && back.length != kMaxRunLength) {
      const std::uint64_t room = kMaxRunLength - back.length;
      const std::uint32_t take =
          static_cast<std::uint32_t>(std::min<std::uint64_t>(room, count));
      back.length += take;
      count -= take;
    }
  }
  while (count > 0) {
    const std::uint32_t take = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(kMaxRunLength, count));
    runs_.push_back(Run{s, take});
    count -= take;
  }
}

Trace Trace::trimmed() const {
  Trace out(granularity_);
  out.runs_.reserve(runs_.size());
  for (const Run& r : runs_) {
    // kMaxRunLength splits can leave adjacent runs with equal symbols; they
    // still collapse to one trimmed event.
    if (!out.runs_.empty() && out.runs_.back().symbol == r.symbol) continue;
    out.runs_.push_back(Run{r.symbol, 1});
  }
  out.size_ = out.runs_.size();
  return out;
}

bool Trace::is_trimmed() const {
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].length != 1) return false;
    if (i > 0 && runs_[i].symbol == runs_[i - 1].symbol) return false;
  }
  return true;
}

std::size_t Trace::distinct_count() const {
  std::unordered_set<Symbol> seen;
  seen.reserve(runs_.size());
  for (const Run& r : runs_) seen.insert(r.symbol);
  return seen.size();
}

Symbol Trace::symbol_space() const {
  Symbol max = 0;
  for (const Run& r : runs_) max = std::max(max, r.symbol + 1);
  return max;
}

std::vector<std::uint64_t> Trace::occurrence_counts() const {
  std::vector<std::uint64_t> counts(symbol_space(), 0);
  for (const Run& r : runs_) counts[r.symbol] += r.length;
  return counts;
}

Trace project_to_functions(const Trace& block_trace, const Module& module) {
  CL_CHECK(block_trace.is_block());
  Trace out(Trace::Granularity::kFunction);
  out.reserve(block_trace.run_count() / 4);
  FuncId last;
  // Single-pass run transducer: a run of one block maps to (at most) one
  // function event regardless of its length, so the projection is
  // O(run_count) with no flat replay.
  for (const Run& r : block_trace.runs()) {
    const FuncId f = module.block(BlockId(r.symbol)).parent;
    if (!(f == last)) {
      out.push(f);
      last = f;
    }
  }
  return out;
}

}  // namespace codelayout
