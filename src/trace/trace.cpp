#include "trace/trace.hpp"

#include <unordered_set>

#include "ir/module.hpp"

namespace codelayout {

Trace Trace::trimmed() const {
  Trace out(granularity_);
  out.reserve(events_.size());
  Symbol last = ~Symbol{0};
  bool first = true;
  for (Symbol s : events_) {
    if (first || s != last) out.events_.push_back(s);
    last = s;
    first = false;
  }
  return out;
}

bool Trace::is_trimmed() const {
  for (std::size_t i = 1; i < events_.size(); ++i) {
    if (events_[i] == events_[i - 1]) return false;
  }
  return true;
}

std::size_t Trace::distinct_count() const {
  std::unordered_set<Symbol> seen(events_.begin(), events_.end());
  return seen.size();
}

Symbol Trace::symbol_space() const {
  Symbol max = 0;
  for (Symbol s : events_) max = std::max(max, s + 1);
  return max;
}

std::vector<std::uint64_t> Trace::occurrence_counts() const {
  std::vector<std::uint64_t> counts(symbol_space(), 0);
  for (Symbol s : events_) ++counts[s];
  return counts;
}

Trace project_to_functions(const Trace& block_trace, const Module& module) {
  CL_CHECK(block_trace.is_block());
  Trace out(Trace::Granularity::kFunction);
  out.reserve(block_trace.size() / 4);
  FuncId last;
  for (std::size_t i = 0; i < block_trace.size(); ++i) {
    const FuncId f = module.block(block_trace.block_at(i)).parent;
    if (!(f == last)) {
      out.push(f);
      last = f;
    }
  }
  return out;
}

}  // namespace codelayout
