// Trace serialization (paper Sec. II-F "Instrumentation" records traces and a
// symbol mapping to files between the profiling run and the analysis).
//
// Format: magic, version, granularity, event count, then varint-delta
// run-length encoded symbols. RLE exploits loop-heavy traces' repetitiveness.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace codelayout {

/// Run-length encoding of a symbol sequence: (symbol, repeat) pairs.
struct RlePair {
  Symbol symbol;
  std::uint32_t run;
};

std::vector<RlePair> rle_encode(const Trace& trace);
Trace rle_decode(const std::vector<RlePair>& pairs, Trace::Granularity g);

/// Writes/reads the binary trace format. Throws ContractError on a corrupt
/// stream (bad magic, truncated payload, wrong version).
void write_trace(std::ostream& os, const Trace& trace);
Trace read_trace(std::istream& is);

/// File-path convenience wrappers.
void save_trace(const std::string& path, const Trace& trace);
Trace load_trace(const std::string& path);

}  // namespace codelayout
