// Trace serialization (paper Sec. II-F "Instrumentation" records traces and a
// symbol mapping to files between the profiling run and the analysis).
//
// Format v2: magic, version, granularity, event count, run count, then
// LEB128-varint (symbol, length) pairs taken straight from the Trace's run
// storage — no decode/re-encode round trip on either side. RLE + varints
// exploit loop-heavy traces' repetitiveness. v1 streams (fixed-width u32
// pairs) remain readable.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace codelayout {

/// Run-length encoding of a symbol sequence. A Trace already stores its runs;
/// the serialized pair format is the same struct.
using RlePair = Run;

std::vector<RlePair> rle_encode(const Trace& trace);

/// Rebuilds a trace from RLE pairs. Throws ContractError on a zero-length
/// run (no valid encoder emits one).
Trace rle_decode(const std::vector<RlePair>& pairs, Trace::Granularity g);

/// Writes/reads the binary trace format. read_trace throws ContractError on a
/// corrupt or hostile stream: bad magic, unsupported version, truncated
/// payload or varint, varint overflow, zero-length run, or a run-length sum
/// that mismatches (or overflows past) the declared event count.
void write_trace(std::ostream& os, const Trace& trace);
Trace read_trace(std::istream& is);

/// File-path convenience wrappers.
void save_trace(const std::string& path, const Trace& trace);
Trace load_trace(const std::string& path);

}  // namespace codelayout
