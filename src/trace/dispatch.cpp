#include "trace/dispatch.hpp"

#include <cmath>
#include <cstdlib>
#include <string>

#include "support/registry.hpp"
#include "support/trace_recorder.hpp"

namespace codelayout {

const char* kernel_path_name(KernelPath path) {
  return path == KernelPath::kRunAware ? "run" : "flat";
}

std::optional<ForcedPath> parse_forced_path(std::string_view s) {
  if (s == "auto") return ForcedPath::kAuto;
  if (s == "run") return ForcedPath::kRun;
  if (s == "flat") return ForcedPath::kFlat;
  return std::nullopt;
}

ForcedPath forced_path_from_env() {
  static const ForcedPath cached = [] {
    const char* env = std::getenv("CODELAYOUT_FORCE_PATH");
    if (env == nullptr) return ForcedPath::kAuto;
    return parse_forced_path(env).value_or(ForcedPath::kAuto);
  }();
  return cached;
}

const char* dispatch_kernel_name(DispatchKernel kernel) {
  switch (kernel) {
    case DispatchKernel::kLruStack: return "lru_stack";
    case DispatchKernel::kReuse: return "reuse";
    case DispatchKernel::kFootprint: return "footprint";
    case DispatchKernel::kAffinity: return "affinity";
    case DispatchKernel::kTrg: return "trg";
    case DispatchKernel::kIcacheSolo: return "icache_solo";
  }
  return "unknown";
}

double AnalysisDispatch::threshold(DispatchKernel kernel) const {
  switch (kernel) {
    case DispatchKernel::kLruStack: return lru_stack;
    case DispatchKernel::kReuse: return reuse;
    case DispatchKernel::kFootprint: return footprint;
    case DispatchKernel::kAffinity: return affinity;
    case DispatchKernel::kTrg: return trg;
    case DispatchKernel::kIcacheSolo: return icache_solo;
  }
  return 1.0;
}

bool AnalysisDispatch::valid() const {
  for (std::size_t k = 0; k < kDispatchKernelCount; ++k) {
    const double t = threshold(static_cast<DispatchKernel>(k));
    if (!std::isfinite(t) || t < 1.0) return false;
  }
  return true;
}

KernelPath choose_path(const AnalysisDispatch& dispatch, DispatchKernel kernel,
                       const Trace& trace) {
  KernelPath path;
  switch (dispatch.force) {
    case ForcedPath::kRun: path = KernelPath::kRunAware; break;
    case ForcedPath::kFlat: path = KernelPath::kStraightLine; break;
    case ForcedPath::kAuto:
    default:
      // Boundary semantics, pinned by tests: compression exactly at the
      // threshold takes the run-aware path.
      path = trace.run_compression() >= dispatch.threshold(kernel)
                 ? KernelPath::kRunAware
                 : KernelPath::kStraightLine;
      break;
  }

  MetricsRegistry& registry = MetricsRegistry::global();
  if (registry.enabled()) {
    std::string name = "lab.dispatch.";
    name += dispatch_kernel_name(kernel);
    name += path == KernelPath::kRunAware ? ".run" : ".flat";
    registry.counter(name).add(1);
  }
  if (CostCounters* cost = current_job_context().cost; cost != nullptr) {
    auto& decisions = path == KernelPath::kRunAware ? cost->dispatch_run
                                                    : cost->dispatch_flat;
    decisions.fetch_add(1, std::memory_order_relaxed);
    cost->dispatch_events.fetch_add(trace.size(), std::memory_order_relaxed);
    cost->dispatch_runs.fetch_add(trace.run_count(),
                                  std::memory_order_relaxed);
  }
  return path;
}

}  // namespace codelayout
