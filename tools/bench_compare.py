#!/usr/bin/env python3
"""Bench regression gate: diff fresh bench JSON against a checked-in baseline.

Usage:
    bench_compare.py --baseline BENCH_x.json --fresh fresh_x.json \
                     [--baseline ... --fresh ...] [--threshold 0.5] \
                     [--dispatch-floor 0.95] [--scaling-floor 8:2]

Walks the baseline document and, for every metric it recognizes, checks the
fresh run against it:

  * keys containing "checksum" must match exactly (simulation outputs are
    deterministic: a mismatch is a correctness bug, never noise);
  * throughput keys (events_per_sec, jobs_per_sec) must satisfy
    fresh >= baseline * (1 - threshold);
  * latency keys (mean, p50, p90, p99, max, wall_seconds) must satisfy
    fresh <= baseline / (1 - threshold).

When both documents carry a top-level "host_cores" and the values differ,
throughput/latency gating is refused for that pair — absolute rates are not
comparable across machines — while checksums stay exact.

Two floors check the fresh run against itself (no baseline needed; --fresh
alone works):

  * --dispatch-floor R: adaptive dispatch is never materially slower than
    the better forced path. Gated on each kernel's paired dispatch_ratio
    (median over interleaved rounds of chosen/other path rate): the
    per-kernel median across workloads must be >= R and every single cell
    >= R - 0.05 (the tail guard — misdispatch measures far below it,
    near-tie cells wobble a few percent from code-placement luck). Older
    files without dispatch_ratio fall back to a per-cell peak-rate check;
  * --scaling-floor T:R: every swept kernel must reach R x its 1-thread
    throughput at T threads. Skipped (with a note) when the fresh host has
    fewer than max(4, T) cores — thread scaling on an oversubscribed or
    tiny host measures the scheduler, not the kernel;
  * --predictor-floor E:S: a bench_predictor document must stay within the
    model's documented error envelope (corun_err_max and solo_err_max <= E)
    and the analytic screening must beat simulating the pair matrix by at
    least S x (screening_speedup >= S). The speedup is an intra-file ratio —
    both sides ran on the same host — so it is gated even across machines.
    Skipped (with a note) for documents without the predictor fields.

Everything else (speedups, in-run baselines, nondeterministic cost wall
times) is skipped — the walk is baseline-driven, so adding fields to fresh
output never breaks the gate. Lists of objects are aligned by an identity
key (workload / self+peer / name / threads) when one exists, by index
otherwise. Exits 0 when every pair passes, 1 on any regression, 2 on bad
input. Fresh files may carry leading non-JSON lines (bench table output);
the last parseable JSON document wins.
"""

import argparse
import json
import sys

THROUGHPUT_KEYS = {"events_per_sec", "jobs_per_sec"}
LATENCY_KEYS = {"mean", "p50", "p90", "p99", "max", "wall_seconds"}
IDENTITY_KEYS = ("workload", "self", "name", "threads", "bench")


def load_json_lenient(path):
    """Parse `path` as JSON, tolerating leading table output: falls back to
    the last line that parses as a JSON document."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        pass
    for line in reversed(text.splitlines()):
        line = line.strip()
        if not line or line[0] not in "[{":
            continue
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            continue
    raise ValueError(f"{path}: no parseable JSON document found")


def identity(item):
    if not isinstance(item, dict):
        return None
    parts = [f"{k}={item[k]}" for k in IDENTITY_KEYS if k in item]
    if "peer" in item:
        parts.append(f"peer={item['peer']}")
    return "/".join(parts) if parts else None


def align(baseline_list, fresh_list):
    """Pairs baseline entries with fresh entries by identity key, falling
    back to positional alignment. Yields (label, baseline_item, fresh_item);
    fresh_item is None when the fresh run is missing the entry."""
    fresh_by_id = {}
    for item in fresh_list:
        key = identity(item)
        if key is not None:
            fresh_by_id.setdefault(key, item)
    for index, base in enumerate(baseline_list):
        key = identity(base)
        if key is not None and key in fresh_by_id:
            yield key, base, fresh_by_id[key]
        elif key is None and index < len(fresh_list):
            yield f"[{index}]", base, fresh_list[index]
        else:
            yield key or f"[{index}]", base, None


def host_cores(doc):
    return doc.get("host_cores") if isinstance(doc, dict) else None


def iter_kernels(doc):
    """Yields (group_label, kernel_dict) from an analysis-perf document
    ({"workloads": [{"kernels": [...]}]}), a corun document
    ({"pairs": [{"kernels": [...]}]}), or a bare list of either."""
    if isinstance(doc, dict):
        groups = doc.get("workloads") or doc.get("pairs")
    else:
        groups = doc
    if not isinstance(groups, list):
        return
    for group in groups:
        if not isinstance(group, dict):
            continue
        if "workload" in group:
            label = group["workload"]
        elif "self" in group:
            label = f"{group['self']} vs {group.get('peer', '?')}"
        else:
            label = "?"
        for kernel in group.get("kernels", []):
            if isinstance(kernel, dict):
                yield label, kernel


class Gate:
    def __init__(self, threshold):
        self.threshold = threshold
        self.failures = []
        self.checked = 0
        self.skipped = 0
        self.notes = []
        # Per-pair: cleared when baseline and fresh ran on different core
        # counts (cross-machine throughput is not comparable).
        self.rates_comparable = True

    def compare(self, path, base, fresh):
        if isinstance(base, dict):
            if not isinstance(fresh, dict):
                self.failures.append(f"{path}: fresh is not an object")
                return
            for key, value in base.items():
                if key in fresh:
                    self.compare_leaf(f"{path}.{key}", key, value, fresh[key])
                elif isinstance(value, (dict, list)) or self.gated(key):
                    self.failures.append(f"{path}.{key}: missing from fresh run")
            return
        if isinstance(base, list):
            if not isinstance(fresh, list):
                self.failures.append(f"{path}: fresh is not a list")
                return
            for label, base_item, fresh_item in align(base, fresh):
                if fresh_item is None:
                    self.failures.append(f"{path}[{label}]: missing from fresh run")
                else:
                    self.compare(f"{path}[{label}]", base_item, fresh_item)

    def gated(self, key):
        return ("checksum" in key or key in THROUGHPUT_KEYS
                or key in LATENCY_KEYS)

    def compare_leaf(self, path, key, base, fresh):
        if isinstance(base, (dict, list)):
            self.compare(path, base, fresh)
            return
        if "checksum" in key:
            self.checked += 1
            if base != fresh:
                self.failures.append(
                    f"{path}: checksum mismatch (baseline {base}, fresh {fresh})")
        elif key in THROUGHPUT_KEYS and isinstance(base, (int, float)):
            if not self.rates_comparable:
                self.skipped += 1
                return
            self.checked += 1
            floor = base * (1.0 - self.threshold)
            if not isinstance(fresh, (int, float)) or fresh < floor:
                self.failures.append(
                    f"{path}: throughput regressed (baseline {base:.4g}, "
                    f"fresh {fresh}, floor {floor:.4g})")
        elif key in LATENCY_KEYS and isinstance(base, (int, float)):
            if not self.rates_comparable:
                self.skipped += 1
                return
            self.checked += 1
            ceiling = base / (1.0 - self.threshold)
            if not isinstance(fresh, (int, float)) or fresh > ceiling:
                self.failures.append(
                    f"{path}: latency regressed (baseline {base:.4g}, "
                    f"fresh {fresh}, ceiling {ceiling:.4g})")
        else:
            self.skipped += 1

    def check_dispatch_floor(self, path, doc, ratio):
        """Dispatched path >= ratio * the better forced path for every
        kernel that reports both. Intra-file, so core counts are moot.

        Prefers the bench's paired estimate (dispatch_ratio: the median
        over interleaved rounds of chosen-path rate / other-path rate) —
        adjacent samples share the host's throttle state, so the paired
        ratio is robust where comparing independently-measured peak rates
        flakes on near-ties. Paired ratios are gated two ways: the
        per-kernel *median across workloads* must clear the floor (a
        mistuned threshold drags every cell, so the median catches it
        without flaking on single-cell noise), and every individual cell
        must clear floor - 0.05 (a genuinely misdispatched cell measures
        0.3-0.8x, far below any tail guard; near-tie kernels wobble a few
        percent per workload from code-placement luck — the effect this
        codebase exists to study). Falls back to the per-cell peak-rate
        comparison for older files without the field."""
        cell_floor = ratio - 0.05
        paired_by_kernel = {}
        for label, kernel in iter_kernels(doc):
            if ("run_events_per_sec" not in kernel
                    or "flat_events_per_sec" not in kernel):
                continue
            paired = kernel.get("dispatch_ratio")
            if isinstance(paired, (int, float)):
                name = kernel.get("name", "?")
                paired_by_kernel.setdefault(name, []).append(paired)
                self.checked += 1
                if paired < cell_floor:
                    self.failures.append(
                        f"{path}[{label}].{name}: dispatched path runs at "
                        f"{paired:.3f}x the other path (tail guard "
                        f"{cell_floor:.2f}, chose "
                        f"{kernel.get('dispatch', '?')})")
                continue
            best = max(kernel["run_events_per_sec"],
                       kernel["flat_events_per_sec"])
            if best <= 0:
                continue
            # Prefer the dispatched cell measured by the same interleaved
            # harness as the forced cells; fall back to the 1-thread sweep
            # point (older files) or the headline rate.
            auto = kernel.get("auto_events_per_sec")
            if auto is None:
                sweep = kernel.get("sweep")
                if sweep:
                    auto = next((p["events_per_sec"] for p in sweep
                                 if p.get("threads") == 1), None)
                    if auto is None:
                        continue
                else:
                    auto = kernel.get("events_per_sec")
            self.checked += 1
            if not isinstance(auto, (int, float)) or auto < ratio * best:
                self.failures.append(
                    f"{path}[{label}].{kernel.get('name', '?')}: dispatched "
                    f"path {auto:.4g} ev/s below {ratio:.2f}x the better "
                    f"forced path ({best:.4g} ev/s, chose "
                    f"{kernel.get('dispatch', '?')})")
        for name, values in sorted(paired_by_kernel.items()):
            self.checked += 1
            values = sorted(values)
            med = values[len(values) // 2]
            if med < ratio:
                self.failures.append(
                    f"{path}.{name}: median dispatched/other ratio {med:.3f} "
                    f"across {len(values)} workload(s) below the "
                    f"{ratio:.2f} floor")

    def check_predictor_floor(self, path, doc, max_error, min_speedup):
        """bench_predictor fresh-file check: the analytic model's worst
        predicted-vs-simulated miss-ratio error stays within the documented
        envelope, and screening the pair matrix actually beats simulating
        it. A broken model (wrong capacity units, dropped composition term)
        blows corun_err_max out by an order of magnitude, and a profile-side
        perf regression erodes the speedup — both fail loudly here."""
        if not isinstance(doc, dict) or "corun_err_max" not in doc:
            self.notes.append(
                f"{path}: predictor floor skipped (no corun_err_max field)")
            return
        for key in ("corun_err_max", "solo_err_max"):
            value = doc.get(key)
            self.checked += 1
            if not isinstance(value, (int, float)) or value > max_error:
                self.failures.append(
                    f"{path}.{key}: prediction error {value} above the "
                    f"{max_error} envelope")
        speedup = doc.get("screening_speedup")
        self.checked += 1
        if not isinstance(speedup, (int, float)) or speedup < min_speedup:
            self.failures.append(
                f"{path}.screening_speedup: {speedup} below the "
                f"{min_speedup}x floor")

    def check_scaling_floor(self, path, doc, threads, ratio):
        """Swept kernels reach ratio x their 1-thread throughput at
        `threads` threads; skipped below max(4, threads) host cores."""
        cores = host_cores(doc)
        if cores is None or cores < max(4, threads):
            self.notes.append(
                f"{path}: scaling floor skipped (host_cores="
                f"{cores if cores is not None else 'absent'}, need >= "
                f"{max(4, threads)})")
            return
        for label, kernel in iter_kernels(doc):
            sweep = kernel.get("sweep")
            if not sweep:
                continue
            by_threads = {p.get("threads"): p.get("events_per_sec")
                          for p in sweep}
            narrow, wide = by_threads.get(1), by_threads.get(threads)
            if narrow is None or wide is None or narrow <= 0:
                continue
            self.checked += 1
            if wide < ratio * narrow:
                self.failures.append(
                    f"{path}[{label}].{kernel.get('name', '?')}: "
                    f"{wide:.4g} ev/s at {threads} threads is below "
                    f"{ratio:.2f}x the 1-thread {narrow:.4g} ev/s")


def parse_scaling_floor(text):
    threads, _, ratio = text.partition(":")
    return int(threads), float(ratio)


def parse_predictor_floor(text):
    max_error, _, min_speedup = text.partition(":")
    return float(max_error), float(min_speedup)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", action="append", default=[],
                        help="checked-in baseline JSON (repeatable; may be "
                             "omitted when only floor checks are wanted)")
    parser.add_argument("--fresh", action="append", default=[],
                        help="fresh bench output, paired with --baseline in order")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="allowed fractional regression in (0, 1); "
                             "throughput floor = baseline*(1-t), latency "
                             "ceiling = baseline/(1-t) (default 0.5)")
    parser.add_argument("--dispatch-floor", type=float, default=None,
                        metavar="R",
                        help="fresh-file check: dispatched cell >= R * "
                             "max(run, flat) for every dual-path kernel")
    parser.add_argument("--scaling-floor", type=parse_scaling_floor,
                        default=None, metavar="T:R",
                        help="fresh-file check: swept kernels reach R x "
                             "1-thread throughput at T threads (skipped "
                             "below max(4, T) host cores)")
    parser.add_argument("--predictor-floor", type=parse_predictor_floor,
                        default=None, metavar="E:S",
                        help="fresh-file check: predictor documents keep "
                             "corun/solo max abs error <= E and screening "
                             "speedup >= S")
    args = parser.parse_args()

    if not args.fresh:
        print("bench_compare: need at least one --fresh file", file=sys.stderr)
        return 2
    if args.baseline and len(args.baseline) != len(args.fresh):
        print("bench_compare: need matching --baseline/--fresh pairs",
              file=sys.stderr)
        return 2
    if not (0.0 < args.threshold < 1.0):
        print("bench_compare: --threshold must be in (0, 1)", file=sys.stderr)
        return 2
    if args.dispatch_floor is not None and not (0.0 < args.dispatch_floor <= 1.0):
        print("bench_compare: --dispatch-floor must be in (0, 1]",
              file=sys.stderr)
        return 2

    gate = Gate(args.threshold)
    baselines = args.baseline or [None] * len(args.fresh)
    for baseline_path, fresh_path in zip(baselines, args.fresh):
        try:
            fresh = load_json_lenient(fresh_path)
            baseline = (load_json_lenient(baseline_path)
                        if baseline_path is not None else None)
        except (OSError, ValueError) as err:
            print(f"bench_compare: {err}", file=sys.stderr)
            return 2
        if baseline is not None:
            base_cores, fresh_cores = host_cores(baseline), host_cores(fresh)
            gate.rates_comparable = (base_cores is None or fresh_cores is None
                                     or base_cores == fresh_cores)
            if not gate.rates_comparable:
                gate.notes.append(
                    f"{fresh_path}: throughput/latency not compared "
                    f"(baseline ran on {base_cores} cores, fresh on "
                    f"{fresh_cores}); checksums still gated")
            gate.compare(baseline_path, baseline, fresh)
            gate.rates_comparable = True
        if args.dispatch_floor is not None:
            gate.check_dispatch_floor(fresh_path, fresh, args.dispatch_floor)
        if args.scaling_floor is not None:
            threads, ratio = args.scaling_floor
            gate.check_scaling_floor(fresh_path, fresh, threads, ratio)
        if args.predictor_floor is not None:
            max_error, min_speedup = args.predictor_floor
            gate.check_predictor_floor(fresh_path, fresh, max_error,
                                       min_speedup)

    print(f"bench_compare: {gate.checked} metrics gated, "
          f"{gate.skipped} informational fields skipped, "
          f"threshold {args.threshold}")
    for note in gate.notes:
        print(f"note: {note}")
    for failure in gate.failures:
        print(f"REGRESSION {failure}", file=sys.stderr)
    if gate.failures:
        print(f"bench_compare: {len(gate.failures)} regression(s)",
              file=sys.stderr)
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
