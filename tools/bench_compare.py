#!/usr/bin/env python3
"""Bench regression gate: diff fresh bench JSON against a checked-in baseline.

Usage:
    bench_compare.py --baseline BENCH_x.json --fresh fresh_x.json \
                     [--baseline ... --fresh ...] [--threshold 0.5]

Walks the baseline document and, for every metric it recognizes, checks the
fresh run against it:

  * keys containing "checksum" must match exactly (simulation outputs are
    deterministic: a mismatch is a correctness bug, never noise);
  * throughput keys (events_per_sec, jobs_per_sec) must satisfy
    fresh >= baseline * (1 - threshold);
  * latency keys (mean, p50, p90, p99, max, wall_seconds) must satisfy
    fresh <= baseline / (1 - threshold).

Everything else (speedups, in-run baselines, nondeterministic cost wall
times) is skipped — the walk is baseline-driven, so adding fields to fresh
output never breaks the gate. Lists of objects are aligned by an identity
key (workload / self+peer / name / threads) when one exists, by index
otherwise. Exits 0 when every pair passes, 1 on any regression, 2 on bad
input. Fresh files may carry leading non-JSON lines (bench table output);
the last parseable JSON document wins.
"""

import argparse
import json
import sys

THROUGHPUT_KEYS = {"events_per_sec", "jobs_per_sec"}
LATENCY_KEYS = {"mean", "p50", "p90", "p99", "max", "wall_seconds"}
IDENTITY_KEYS = ("workload", "self", "name", "threads", "bench")


def load_json_lenient(path):
    """Parse `path` as JSON, tolerating leading table output: falls back to
    the last line that parses as a JSON document."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        pass
    for line in reversed(text.splitlines()):
        line = line.strip()
        if not line or line[0] not in "[{":
            continue
        try:
            return json.loads(line)
        except json.JSONDecodeError:
            continue
    raise ValueError(f"{path}: no parseable JSON document found")


def identity(item):
    if not isinstance(item, dict):
        return None
    parts = [f"{k}={item[k]}" for k in IDENTITY_KEYS if k in item]
    if "peer" in item:
        parts.append(f"peer={item['peer']}")
    return "/".join(parts) if parts else None


def align(baseline_list, fresh_list):
    """Pairs baseline entries with fresh entries by identity key, falling
    back to positional alignment. Yields (label, baseline_item, fresh_item);
    fresh_item is None when the fresh run is missing the entry."""
    fresh_by_id = {}
    for item in fresh_list:
        key = identity(item)
        if key is not None:
            fresh_by_id.setdefault(key, item)
    for index, base in enumerate(baseline_list):
        key = identity(base)
        if key is not None and key in fresh_by_id:
            yield key, base, fresh_by_id[key]
        elif key is None and index < len(fresh_list):
            yield f"[{index}]", base, fresh_list[index]
        else:
            yield key or f"[{index}]", base, None


class Gate:
    def __init__(self, threshold):
        self.threshold = threshold
        self.failures = []
        self.checked = 0
        self.skipped = 0

    def compare(self, path, base, fresh):
        if isinstance(base, dict):
            if not isinstance(fresh, dict):
                self.failures.append(f"{path}: fresh is not an object")
                return
            for key, value in base.items():
                if key in fresh:
                    self.compare_leaf(f"{path}.{key}", key, value, fresh[key])
                elif isinstance(value, (dict, list)) or self.gated(key):
                    self.failures.append(f"{path}.{key}: missing from fresh run")
            return
        if isinstance(base, list):
            if not isinstance(fresh, list):
                self.failures.append(f"{path}: fresh is not a list")
                return
            for label, base_item, fresh_item in align(base, fresh):
                if fresh_item is None:
                    self.failures.append(f"{path}[{label}]: missing from fresh run")
                else:
                    self.compare(f"{path}[{label}]", base_item, fresh_item)

    def gated(self, key):
        return ("checksum" in key or key in THROUGHPUT_KEYS
                or key in LATENCY_KEYS)

    def compare_leaf(self, path, key, base, fresh):
        if isinstance(base, (dict, list)):
            self.compare(path, base, fresh)
            return
        if "checksum" in key:
            self.checked += 1
            if base != fresh:
                self.failures.append(
                    f"{path}: checksum mismatch (baseline {base}, fresh {fresh})")
        elif key in THROUGHPUT_KEYS and isinstance(base, (int, float)):
            self.checked += 1
            floor = base * (1.0 - self.threshold)
            if not isinstance(fresh, (int, float)) or fresh < floor:
                self.failures.append(
                    f"{path}: throughput regressed (baseline {base:.4g}, "
                    f"fresh {fresh}, floor {floor:.4g})")
        elif key in LATENCY_KEYS and isinstance(base, (int, float)):
            self.checked += 1
            ceiling = base / (1.0 - self.threshold)
            if not isinstance(fresh, (int, float)) or fresh > ceiling:
                self.failures.append(
                    f"{path}: latency regressed (baseline {base:.4g}, "
                    f"fresh {fresh}, ceiling {ceiling:.4g})")
        else:
            self.skipped += 1


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", action="append", default=[],
                        help="checked-in baseline JSON (repeatable)")
    parser.add_argument("--fresh", action="append", default=[],
                        help="fresh bench output, paired with --baseline in order")
    parser.add_argument("--threshold", type=float, default=0.5,
                        help="allowed fractional regression in (0, 1); "
                             "throughput floor = baseline*(1-t), latency "
                             "ceiling = baseline/(1-t) (default 0.5)")
    args = parser.parse_args()

    if not args.baseline or len(args.baseline) != len(args.fresh):
        print("bench_compare: need matching --baseline/--fresh pairs",
              file=sys.stderr)
        return 2
    if not (0.0 < args.threshold < 1.0):
        print("bench_compare: --threshold must be in (0, 1)", file=sys.stderr)
        return 2

    gate = Gate(args.threshold)
    for baseline_path, fresh_path in zip(args.baseline, args.fresh):
        try:
            baseline = load_json_lenient(baseline_path)
            fresh = load_json_lenient(fresh_path)
        except (OSError, ValueError) as err:
            print(f"bench_compare: {err}", file=sys.stderr)
            return 2
        gate.compare(baseline_path, baseline, fresh)

    print(f"bench_compare: {gate.checked} metrics gated, "
          f"{gate.skipped} informational fields skipped, "
          f"threshold {args.threshold}")
    for failure in gate.failures:
        print(f"REGRESSION {failure}", file=sys.stderr)
    if gate.failures:
        print(f"bench_compare: {len(gate.failures)} regression(s)",
              file=sys.stderr)
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
