// Equivalence suite for the run-aware co-run collapse (DESIGN.md §11).
//
// The co-run engine may bulk-advance whole windows of interleaved rounds
// when every stream spins inside a run whose lines are resident. This suite
// pins the claim that the collapse is a pure evaluation-order change: a
// per-event reference engine — written out longhand against its own LRU
// cache implementation, with the same namespaces, credit arithmetic, stall
// debts, and forked RNG streams — must agree bit for bit on every SimResult
// field, including the RNG-stream-sensitive wrong-path miss counts, over
// the whole golden workload suite, many-party mixes with fractional speeds,
// and degenerate cache geometries.
#include <algorithm>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cache/icache_sim.hpp"
#include "exec/interpreter.hpp"
#include "layout/layout.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "workloads/spec.hpp"

namespace codelayout {
namespace {

// ---- Independent per-event reference engine ---------------------------------

/// A from-scratch set-associative true-LRU cache: per-set recency-ordered
/// vectors, linear probes. Shares no code with SetAssocCache.
class RefCache {
 public:
  explicit RefCache(const CacheGeometry& geom)
      : sets_(geom.sets()), assoc_(geom.associativity), ways_(geom.sets()) {}

  bool access(std::uint64_t line) { return touch(line); }
  void prefill(std::uint64_t line) { touch(line); }

 private:
  bool touch(std::uint64_t line) {
    auto& ways = ways_[line % sets_];
    const auto it = std::find(ways.begin(), ways.end(), line);
    const bool hit = it != ways.end();
    if (hit) ways.erase(it);
    ways.insert(ways.begin(), line);
    if (ways.size() > assoc_) ways.pop_back();
    return hit;
  }

  std::uint64_t sets_;
  std::size_t assoc_;
  std::vector<std::vector<std::uint64_t>> ways_;
};

/// The pre-collapse per-event co-run stream: flat symbols, module/layout
/// lookups per event, stall debt, and the stream's own forked RNG.
class RefStream {
 public:
  RefStream(const Module& module, const CodeLayout& layout, const Trace& trace,
            std::uint64_t line_namespace, const SimOptions& options,
            std::uint64_t rng_stream)
      : module_(&module),
        layout_(&layout),
        symbols_(trace.symbols()),
        namespace_(line_namespace),
        options_(options),
        rng_(Rng(options.seed).fork(rng_stream)) {}

  bool step(RefCache& cache) {
    if (debt_ >= 1.0) {
      debt_ -= 1.0;
      return false;
    }
    const BlockId b(symbols_[pos_]);
    const BasicBlock& bb = module_->block(b);
    const auto span = layout_->lines_of(b, options_.geometry().line_bytes);
    const auto& place = layout_->placement(b);
    ++stats_.blocks;
    stats_.instructions += place.bytes / kInstrBytes;
    stats_.overhead_instructions += (place.bytes - bb.size_bytes) / kInstrBytes;
    for (std::uint32_t i = 0; i < span.line_count; ++i) {
      const std::uint64_t line = namespace_ + span.first_line + i;
      ++stats_.line_probes;
      if (!cache.access(line)) {
        ++stats_.demand_misses;
        debt_ += options_.miss_stall_blocks;
        if (options_.next_line_prefetch) cache.prefill(line + 1);
      }
    }
    if (options_.wrong_path_rate > 0.0 && bb.successors.size() > 1 &&
        rng_.chance(options_.wrong_path_rate)) {
      const std::uint64_t line = namespace_ + span.first_line + span.line_count;
      if (!cache.access(line)) ++stats_.wrong_path_misses;
    }
    if (++pos_ == symbols_.size()) {
      pos_ = 0;
      return true;
    }
    return false;
  }

  [[nodiscard]] const SimResult& stats() const { return stats_; }

 private:
  const Module* module_;
  const CodeLayout* layout_;
  std::span<const Symbol> symbols_;
  std::uint64_t namespace_;
  SimOptions options_;
  Rng rng_;
  std::size_t pos_ = 0;
  double debt_ = 0.0;
  SimResult stats_;
};

struct RefParty {
  const Module* module;
  const CodeLayout* layout;
  const Trace* trace;
  double speed = 1.0;
};

std::vector<SimResult> reference_corun(const std::vector<RefParty>& parties,
                                       const SimOptions& options) {
  RefCache cache(options.geometry());
  std::vector<RefStream> streams;
  streams.reserve(parties.size());
  std::vector<double> credit(parties.size(), 0.0);
  for (std::size_t i = 0; i < parties.size(); ++i) {
    streams.emplace_back(*parties[i].module, *parties[i].layout,
                         *parties[i].trace, static_cast<std::uint64_t>(i) << 40,
                         options, /*rng_stream=*/i + 1);
  }
  for (;;) {
    const bool done = streams[0].step(cache);
    for (std::size_t i = 1; i < parties.size(); ++i) {
      credit[i] += parties[i].speed;
      while (credit[i] >= 1.0) {
        streams[i].step(cache);
        credit[i] -= 1.0;
      }
    }
    if (done) break;
  }
  std::vector<SimResult> results;
  results.reserve(streams.size());
  for (const RefStream& s : streams) results.push_back(s.stats());
  return results;
}

// ---- Fixtures ---------------------------------------------------------------

/// First `n` events of `t`, preserving the run structure.
Trace prefix_events(const Trace& t, std::size_t n) {
  Trace out(t.granularity());
  std::size_t taken = 0;
  for (const Run& r : t.runs()) {
    if (taken >= n) break;
    const auto want =
        static_cast<std::uint64_t>(std::min<std::size_t>(r.length, n - taken));
    out.push_run(r.symbol, want);
    taken += want;
  }
  return out;
}

/// A suite workload with the spin knob turned up: long same-block runs, the
/// shape the collapse is built for.
WorkloadSpec spin_variant(const std::string& base, double prob,
                          double repeat) {
  WorkloadSpec spec = find_spec(base);
  spec.name = base + "+spin";
  spec.spin_prob = prob;
  spec.spin_repeat = repeat;
  return spec;
}

struct Prepared {
  Module module;
  CodeLayout layout;
  Trace trace;

  Prepared(const WorkloadSpec& spec, std::uint64_t seed, std::uint64_t events,
           std::size_t prefix)
      : module(build_workload(spec)),
        layout(original_layout(module)),
        trace(prefix_events(
            profile(module, seed, {.max_events = events, .max_call_depth = 64})
                .block_trace,
            prefix)) {}

  [[nodiscard]] CorunParty party(double speed = 1.0) const {
    return CorunParty{&module, &layout, &trace, speed};
  }
  [[nodiscard]] RefParty ref_party(double speed = 1.0) const {
    return RefParty{&module, &layout, &trace, speed};
  }
};

void append_mismatches(std::vector<std::string>& out, const std::string& label,
                       const SimResult& got, const SimResult& want) {
  const auto check = [&](const char* what, std::uint64_t g, std::uint64_t w) {
    if (g != w) {
      out.push_back(label + ": " + what + " " + std::to_string(g) +
                    " != reference " + std::to_string(w));
    }
  };
  check("blocks", got.blocks, want.blocks);
  check("instructions", got.instructions, want.instructions);
  check("overhead_instructions", got.overhead_instructions,
        want.overhead_instructions);
  check("line_probes", got.line_probes, want.line_probes);
  check("demand_misses", got.demand_misses, want.demand_misses);
  check("wrong_path_misses", got.wrong_path_misses, want.wrong_path_misses);
}

void expect_sim_equal(const SimResult& got, const SimResult& want) {
  EXPECT_EQ(got.blocks, want.blocks);
  EXPECT_EQ(got.instructions, want.instructions);
  EXPECT_EQ(got.overhead_instructions, want.overhead_instructions);
  EXPECT_EQ(got.line_probes, want.line_probes);
  EXPECT_EQ(got.demand_misses, want.demand_misses);
  EXPECT_EQ(got.wrong_path_misses, want.wrong_path_misses);
}

// ---- Whole-suite equivalence ------------------------------------------------

TEST(CorunFast, GoldenSuiteVsSpinPeerMatchesPerEventReplay) {
  // Every suite workload co-run against one shared spin-heavy peer at a
  // fractional speed, under both measurement flavours.
  const Prepared peer(spin_variant("403.gcc", 0.7, 48.0), 77, 40'000, 12'000);
  ThreadPool pool(ThreadPool::default_threads());
  std::mutex mu;
  std::vector<std::string> failures;
  std::vector<std::future<void>> pending;

  for (const WorkloadSpec& spec : spec_suite()) {
    pending.push_back(pool.submit([&spec, &peer, &mu, &failures] {
      const Prepared self(spec, 11, 20'000, 6'000);
      std::vector<std::string> local;
      for (const bool hw : {false, true}) {
        const SimOptions options = hw ? hardware_proxy_options() : SimOptions{};
        const double peer_speed = 1.3;
        const CorunResult got =
            simulate_corun(self.module, self.layout, self.trace, peer.module,
                           peer.layout, peer.trace, options, peer_speed);
        const std::vector<SimResult> want = reference_corun(
            {self.ref_party(), peer.ref_party(peer_speed)}, options);
        const std::string label =
            spec.name + (hw ? " [hw]" : " [sim]");
        append_mismatches(local, label + " self", got.self, want[0]);
        append_mismatches(local, label + " peer", got.peer, want[1]);
      }
      if (!local.empty()) {
        const std::lock_guard<std::mutex> lock(mu);
        for (std::string& f : local) failures.push_back(std::move(f));
      }
    }));
  }
  for (auto& p : pending) p.get();
  for (const std::string& f : failures) ADD_FAILURE() << f;
}

// ---- Many-party mixes with fractional speeds --------------------------------

TEST(CorunFast, ManyPartySpinMixesMatchPerEventReplay) {
  const Prepared a(spin_variant("470.lbm", 0.7, 48.0), 21, 20'000, 5'000);
  const Prepared b(spin_variant("403.gcc", 0.6, 32.0), 22, 30'000, 10'000);
  const Prepared c(spin_variant("416.gamess", 0.5, 24.0), 23, 30'000, 10'000);
  const Prepared d(spin_variant("429.mcf", 0.7, 40.0), 24, 30'000, 10'000);
  const Prepared* peers[] = {&b, &c, &d};
  const double speeds[] = {0.5, 1.7, 0.25};

  for (const std::size_t parties : {2u, 3u, 4u}) {
    for (const bool hw : {false, true}) {
      const SimOptions options = hw ? hardware_proxy_options() : SimOptions{};
      std::vector<CorunParty> got_parties = {a.party()};
      std::vector<RefParty> ref_parties = {a.ref_party()};
      for (std::size_t i = 0; i + 1 < parties; ++i) {
        got_parties.push_back(peers[i]->party(speeds[i]));
        ref_parties.push_back(peers[i]->ref_party(speeds[i]));
      }
      CorunStats stats;
      const auto got = simulate_corun_many(got_parties, options, &stats);
      const auto want = reference_corun(ref_parties, options);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE("parties=" + std::to_string(parties) +
                     (hw ? " [hw]" : " [sim]") + " party " +
                     std::to_string(i));
        expect_sim_equal(got[i], want[i]);
      }
      // Spin-heavy mixes must actually exercise the collapse.
      EXPECT_GT(stats.rounds_fast, 0u);
      EXPECT_GT(stats.windows, 0u);
    }
  }
}

TEST(CorunFast, FastPeerSpeedMatchesPerEventReplay) {
  // speed > 1 makes peers take several steps per round; the round-replay
  // rejection has to count them exactly.
  const Prepared a(spin_variant("470.lbm", 0.7, 48.0), 31, 20'000, 4'000);
  const Prepared b(spin_variant("403.gcc", 0.7, 48.0), 32, 30'000, 12'000);
  const SimOptions options = hardware_proxy_options();
  const double speed = 3.0;
  const CorunResult got =
      simulate_corun(a.module, a.layout, a.trace, b.module, b.layout, b.trace,
                     options, speed);
  const auto want =
      reference_corun({a.ref_party(), b.ref_party(speed)}, options);
  expect_sim_equal(got.self, want[0]);
  expect_sim_equal(got.peer, want[1]);
}

// ---- Degenerate geometries --------------------------------------------------

TEST(CorunFast, DegenerateGeometriesMatchPerEventReplay) {
  const Prepared a(spin_variant("470.lbm", 0.6, 32.0), 41, 20'000, 4'000);
  const Prepared b(spin_variant("416.gamess", 0.6, 32.0), 42, 20'000, 8'000);

  const CacheGeometry geometries[] = {
      {256, 4, 64},   // a single set: everything conflicts
      {512, 1, 64},   // direct-mapped
      {1024, 8, 64},  // assoc > 4: the generic (non-packed) cache path
  };
  for (const CacheGeometry& geom : geometries) {
    for (const bool hw : {false, true}) {
      SimOptions options = hw ? hardware_proxy_options() : SimOptions{};
      options.hierarchy.l1 = geom;
      options.hierarchy.l1.validate();
      SCOPED_TRACE(std::string(hw ? "[hw]" : "[sim]") + " sets=" +
                   std::to_string(geom.sets()) +
                   " assoc=" + std::to_string(geom.associativity));
      const CorunResult got =
          simulate_corun(a.module, a.layout, a.trace, b.module, b.layout,
                         b.trace, options, 1.7);
      const auto want =
          reference_corun({a.ref_party(), b.ref_party(1.7)}, options);
      expect_sim_equal(got.self, want[0]);
      expect_sim_equal(got.peer, want[1]);
    }
  }
}

// ---- Plan-based API ---------------------------------------------------------

TEST(CorunFast, PlannedPartiesMatchModuleLayoutParties) {
  const Prepared a(spin_variant("470.lbm", 0.7, 48.0), 51, 20'000, 5'000);
  const Prepared b(spin_variant("403.gcc", 0.7, 48.0), 52, 20'000, 8'000);
  const SimOptions options = hardware_proxy_options();
  const FetchPlan plan_a(a.module, a.layout, options.geometry().line_bytes);
  const FetchPlan plan_b(b.module, b.layout, options.geometry().line_bytes);

  std::vector<CorunParty> legacy = {a.party(), b.party(1.3)};
  std::vector<PlannedParty> planned = {PlannedParty{&plan_a, &a.trace, 1.0},
                                       PlannedParty{&plan_b, &b.trace, 1.3}};
  CorunStats legacy_stats, planned_stats;
  const auto legacy_results =
      simulate_corun_many(legacy, options, &legacy_stats);
  const auto planned_results =
      simulate_corun_many(planned, options, &planned_stats);
  ASSERT_EQ(legacy_results.size(), planned_results.size());
  for (std::size_t i = 0; i < legacy_results.size(); ++i) {
    SCOPED_TRACE("party " + std::to_string(i));
    expect_sim_equal(planned_results[i], legacy_results[i]);
  }
  EXPECT_EQ(planned_stats.rounds_fast, legacy_stats.rounds_fast);
  EXPECT_EQ(planned_stats.rounds_fallback, legacy_stats.rounds_fallback);
  EXPECT_EQ(planned_stats.windows, legacy_stats.windows);

  // The two-way entry point is the same engine at two parties.
  const CorunResult pair = simulate_corun(plan_a, a.trace, plan_b, b.trace,
                                          options, 1.3);
  expect_sim_equal(pair.self, legacy_results[0]);
  expect_sim_equal(pair.peer, legacy_results[1]);
  EXPECT_EQ(pair.stats.rounds_fast, legacy_stats.rounds_fast);
}

TEST(CorunFast, MeasuredPartyMustRunAtUnitSpeed) {
  const Prepared a(spin_variant("470.lbm", 0.5, 24.0), 61, 10'000, 2'000);
  std::vector<CorunParty> parties = {a.party(0.5), a.party()};
  EXPECT_THROW(simulate_corun_many(parties, {}), ContractError);
}

}  // namespace
}  // namespace codelayout
