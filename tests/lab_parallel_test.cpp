// Tests for the Lab's parallel evaluation engine: the typed EvalKey/
// EvalRequest API, LabOptions validation, per-key once-execution under
// concurrent hammering, thread-count determinism of the experiment drivers,
// and the per-stage metrics.
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/eval.hpp"
#include "harness/experiments.hpp"
#include "harness/lab.hpp"
#include "harness/options.hpp"
#include "support/check.hpp"
#include "workloads/spec.hpp"

namespace codelayout {
namespace {

// ---- EvalKey / EvalRequest --------------------------------------------------

TEST(EvalKeyTest, EqualityAndOrdering) {
  const EvalKey a = EvalRequest::solo("429.mcf", std::nullopt,
                                      Measure::kHardware).key;
  const EvalKey b = EvalRequest::solo("429.mcf", std::nullopt,
                                      Measure::kHardware).key;
  const EvalKey c = EvalRequest::solo("429.mcf", kFuncAffinity,
                                      Measure::kHardware).key;
  const EvalKey d = EvalRequest::solo("429.mcf", std::nullopt,
                                      Measure::kSimulator).key;
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  // Keys are totally ordered, so they can live in sorted containers.
  EXPECT_TRUE(a < c || c < a);
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(EvalKeyTest, HashAgreesWithEquality) {
  const EvalKeyHash hash;
  const EvalKey a = EvalRequest::corun("458.sjeng", kBBAffinity, kProbe1,
                                       std::nullopt, Measure::kHardware).key;
  const EvalKey b = EvalRequest::corun("458.sjeng", kBBAffinity, kProbe1,
                                       std::nullopt, Measure::kHardware).key;
  const EvalKey c = EvalRequest::corun("458.sjeng", kBBAffinity, kProbe2,
                                       std::nullopt, Measure::kHardware).key;
  EXPECT_EQ(hash(a), hash(b));
  // Not guaranteed in principle, but a collision here would indicate the
  // hash ignores the peer field.
  EXPECT_NE(hash(a), hash(c));
}

TEST(EvalKeyTest, ToStringNamesEveryComponent) {
  const EvalKey solo_key =
      EvalRequest::solo("458.sjeng", kBBAffinity, Measure::kSimulator).key;
  EXPECT_EQ(solo_key.to_string(), "458.sjeng|BB Affinity|sim");
  const EvalKey corun_key =
      EvalRequest::corun("458.sjeng", std::nullopt, "403.gcc", kFuncAffinity,
                         Measure::kHardware).key;
  EXPECT_EQ(corun_key.to_string(),
            "458.sjeng|Original|vs|403.gcc|Function Affinity|hw");
}

TEST(EvalRequestTest, FactoriesPopulateStageAndKey) {
  const EvalRequest prep = EvalRequest::prepare("429.mcf");
  EXPECT_EQ(prep.stage, Stage::kPrepare);
  EXPECT_EQ(prep.key.workload, "429.mcf");
  EXPECT_FALSE(prep.key.optimizer.has_value());
  EXPECT_FALSE(prep.key.peer.has_value());

  const EvalRequest lay = EvalRequest::layout("429.mcf", kFuncTrg);
  EXPECT_EQ(lay.stage, Stage::kLayout);
  EXPECT_EQ(lay.key.optimizer, kFuncTrg);

  const EvalRequest co = EvalRequest::corun("429.mcf", kFuncAffinity,
                                            "403.gcc", std::nullopt,
                                            Measure::kSimulator);
  EXPECT_EQ(co.stage, Stage::kCorun);
  EXPECT_EQ(co.key.peer, "403.gcc");
  EXPECT_EQ(co.key.measure, Measure::kSimulator);
  EXPECT_EQ(co, EvalRequest::corun("429.mcf", kFuncAffinity, "403.gcc",
                                   std::nullopt, Measure::kSimulator));
}

TEST(StageTest, NamesAreStable) {
  EXPECT_STREQ(stage_name(Stage::kPrepare), "prepare");
  EXPECT_STREQ(stage_name(Stage::kLayout), "layout");
  EXPECT_STREQ(stage_name(Stage::kSolo), "solo");
  EXPECT_STREQ(stage_name(Stage::kCorun), "corun");
}

// ---- LabOptions validation --------------------------------------------------

TEST(LabOptionsTest, DefaultOptionsAreValid) {
  EXPECT_NO_THROW(LabOptions{}.validate());
  EXPECT_NO_THROW(Lab{});
}

TEST(LabOptionsTest, ResolvedThreads) {
  EXPECT_GE(LabOptions{}.resolved_threads(), 1u);
  EXPECT_EQ(LabOptions{}.threads(3).resolved_threads(), 3u);
}

TEST(LabOptionsTest, RejectsZeroPruneBudget) {
  PipelineConfig config;
  config.prune_top_k = 0;
  try {
    Lab lab(LabOptions{}.pipeline(config));
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("prune_top_k"), std::string::npos);
  }
}

TEST(LabOptionsTest, RejectsZeroTrgCache) {
  PipelineConfig config;
  config.trg_cache_bytes = 0;
  EXPECT_THROW(LabOptions{}.pipeline(config).validate(), ContractError);
}

TEST(LabOptionsTest, RejectsEmptyAffinityGrid) {
  PipelineConfig config;
  config.affinity.w_values.clear();
  try {
    LabOptions{}.pipeline(config).validate();
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("w_values"), std::string::npos);
  }
}

TEST(LabOptionsTest, RejectsSmtSpeedup) {
  PerfParams perf;
  perf.smt_cpi_inflation = 0.5;  // sharing a core cannot speed a thread up
  EXPECT_THROW(LabOptions{}.perf(perf).validate(), ContractError);
}

TEST(LabOptionsTest, ListsEveryProblemAtOnce) {
  PipelineConfig config;
  config.prune_top_k = 0;
  config.trg_block_bytes = 0;
  PerfParams perf;
  perf.base_cpi = 0.0;
  try {
    LabOptions{}.pipeline(config).perf(perf).validate();
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("prune_top_k"), std::string::npos);
    EXPECT_NE(what.find("trg_block_bytes"), std::string::npos);
    EXPECT_NE(what.find("base_cpi"), std::string::npos);
  }
}

// ---- Engine behaviour -------------------------------------------------------

TEST(LabEngineTest, BatchDeduplicatesIdenticalRequests) {
  Lab lab(LabOptions{}.threads(2));
  EXPECT_EQ(lab.threads(), 2u);

  const EvalRequest solo =
      EvalRequest::solo("429.mcf", std::nullopt, Measure::kHardware);
  const std::vector<EvalRequest> requests = {solo, solo, solo, solo};
  lab.evaluate_all(requests);

  const LabMetrics metrics = lab.metrics();
  EXPECT_EQ(metrics.batches, 1u);
  EXPECT_EQ(metrics.requests_submitted, 4u);
  EXPECT_EQ(metrics.solo.computed, 1u);  // one cell despite four requests
  EXPECT_EQ(metrics.prepare.computed, 1u);
  EXPECT_EQ(metrics.solo.hits + metrics.solo.waited, 3u);
  EXPECT_GT(metrics.tasks_deduplicated(), 0u);
}

TEST(LabEngineTest, ErrorsAreCachedAndRethrownToEveryRequester) {
  Lab lab(LabOptions{}.threads(1));
  EXPECT_THROW(lab.workload("not-a-benchmark"), std::exception);
  EXPECT_THROW(lab.workload("not-a-benchmark"), std::exception);
  // The failing compute ran once; the second lookup was a (cached) hit.
  const LabMetrics metrics = lab.metrics();
  EXPECT_EQ(metrics.prepare.computed, 1u);
  EXPECT_EQ(metrics.prepare.hits, 1u);
}

TEST(LabEngineTest, MetricsJsonNamesEveryStage) {
  Lab lab(LabOptions{}.threads(1));
  lab.workload("429.mcf");
  const std::string json = lab.metrics().to_json("unit_test");
  for (const char* needle :
       {"\"bench\":\"unit_test\"", "\"engine\"", "\"threads\"", "\"stages\"",
        "\"prepare\"", "\"layout\"", "\"solo\"", "\"corun\"", "\"computed\"",
        "\"tasks_executed\"", "\"tasks_deduplicated\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  }
}

// Results one thread reads for a (workload, peer) cell pair; every field is
// a deterministic function of the key, so copies must match bit-for-bit.
struct CellReadout {
  double solo_base = 0, solo_opt = 0;
  double cycles_base = 0, cycles_opt = 0;
  double corun_base = 0, corun_opt = 0;

  static CellReadout read(Lab& lab, const std::string& name) {
    CellReadout out;
    out.solo_base = lab.solo(name, std::nullopt, Measure::kHardware)
                        .miss_ratio();
    out.solo_opt = lab.solo(name, kFuncAffinity, Measure::kHardware)
                       .miss_ratio();
    out.cycles_base = lab.solo_cycles(name, std::nullopt);
    out.cycles_opt = lab.solo_cycles(name, kFuncAffinity);
    out.corun_base =
        lab.corun_self_cycles(name, std::nullopt, kProbe1, std::nullopt);
    out.corun_opt =
        lab.corun_self_cycles(name, kFuncAffinity, kProbe1, std::nullopt);
    return out;
  }

  friend bool operator==(const CellReadout&, const CellReadout&) = default;
};

TEST(LabEngineTest, ConcurrentHammeringMatchesSerialEngine) {
  const std::vector<std::string> names = {"429.mcf", "458.sjeng"};

  // Reference: the serial engine (threads == 1 computes inline, no pool).
  Lab serial(LabOptions{}.threads(1));
  std::vector<CellReadout> expected;
  for (const std::string& name : names) {
    expected.push_back(CellReadout::read(serial, name));
  }

  // N client threads hammer one parallel Lab with the same lookups.
  Lab parallel(LabOptions{}.threads(4));
  constexpr int kClients = 8;
  std::vector<std::vector<CellReadout>> observed(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&parallel, &names, &observed, i] {
        for (const std::string& name : names) {
          observed[static_cast<std::size_t>(i)].push_back(
              CellReadout::read(parallel, name));
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (const auto& per_client : observed) {
    EXPECT_EQ(per_client, expected);
  }

  // Despite 8 clients, each unique cell was computed exactly once:
  // prepare {mcf, sjeng, gcc}; FA layouts {mcf, sjeng}; solos base+FA per
  // workload; hw co-runs vs gcc base+FA per workload.
  const LabMetrics metrics = parallel.metrics();
  EXPECT_EQ(metrics.prepare.computed, 3u);
  EXPECT_EQ(metrics.layout.computed, 2u);
  EXPECT_EQ(metrics.solo.computed, 4u);
  EXPECT_EQ(metrics.corun.computed, 4u);
  EXPECT_EQ(metrics.tasks_executed(), 13u);
  EXPECT_GT(metrics.tasks_deduplicated(), 0u);
}

TEST(LabEngineTest, DriverRowsAreIdenticalAtAnyThreadCount) {
  Lab serial(LabOptions{}.threads(1));
  Lab parallel(LabOptions{}.threads(4));
  const std::vector<Fig6Cell> a = fig6_cells(serial, kFuncAffinity);
  const std::vector<Fig6Cell> b = fig6_cells(parallel, kFuncAffinity);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].program, b[i].program);
    EXPECT_EQ(a[i].probe, b[i].probe);
    // Bit-identical, not approximately equal: the engine adds no
    // nondeterminism, whatever the thread count.
    EXPECT_EQ(a[i].speedup, b[i].speedup) << a[i].program << " vs "
                                          << a[i].probe;
  }
}

// ---- evaluate_all_checked: per-cell status ----------------------------------

TEST(LabEngineTest, CheckedBatchIsolatesFailuresPerCell) {
  Lab lab(LabOptions{}.threads(2));
  const std::vector<EvalRequest> requests = {
      EvalRequest::solo("429.mcf", std::nullopt, Measure::kHardware),
      EvalRequest::prepare("no.such-benchmark"),
      EvalRequest::solo("458.sjeng", kFuncAffinity, Measure::kSimulator),
  };
  const std::vector<EvalOutcome> outcomes = lab.evaluate_all_checked(requests);
  ASSERT_EQ(outcomes.size(), requests.size());

  // Outcomes are positional: outcome[i] reports request[i].
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[0].error.empty());
  EXPECT_EQ(outcomes[0].request, requests[0]);

  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_EQ(outcomes[1].status, CellStatus::kFailed);
  EXPECT_NE(outcomes[1].error.find("no.such-benchmark"), std::string::npos)
      << outcomes[1].error;

  // The bad cell did not poison its neighbours: both good cells
  // materialized and are readable afterwards.
  EXPECT_TRUE(outcomes[2].ok());
  EXPECT_GT(lab.solo("429.mcf", std::nullopt, Measure::kHardware).instructions,
            0u);
  EXPECT_GT(
      lab.solo("458.sjeng", kFuncAffinity, Measure::kSimulator).instructions,
      0u);
}

TEST(LabEngineTest, CheckedAndThrowingBatchesAgree) {
  const std::vector<EvalRequest> requests = {
      EvalRequest::solo("429.mcf", std::nullopt, Measure::kHardware),
      EvalRequest::prepare("no.such-benchmark"),
  };
  // evaluate_all rethrows the first failure in request order...
  Lab throwing(LabOptions{}.threads(1));
  EXPECT_THROW(throwing.evaluate_all(requests), std::exception);
  // ...and a checked batch on a fresh engine reports the same failure as a
  // status instead, with identical results for the surviving cells.
  Lab checked(LabOptions{}.threads(1));
  const std::vector<EvalOutcome> outcomes =
      checked.evaluate_all_checked(requests);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_FALSE(outcomes[1].ok());
  EXPECT_EQ(throwing.solo("429.mcf", std::nullopt, Measure::kHardware),
            checked.solo("429.mcf", std::nullopt, Measure::kHardware));
}

TEST(LabEngineTest, CheckedBatchReportsMemoizedErrorToLaterRequesters) {
  Lab lab(LabOptions{}.threads(1));
  const std::vector<EvalRequest> batch = {
      EvalRequest::prepare("no.such-benchmark")};
  const std::string first_error = lab.evaluate_all_checked(batch)[0].error;
  const std::vector<EvalOutcome> again = lab.evaluate_all_checked(batch);
  EXPECT_FALSE(again[0].ok());
  EXPECT_EQ(again[0].error, first_error);
  // The failing compute ran once; the retry hit the memoized failure.
  EXPECT_EQ(lab.metrics().prepare.computed, 1u);
}

}  // namespace
}  // namespace codelayout
