// Tests for the support/cli typed options API shared by every bench binary,
// the service daemon, and the load generator.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/cli.hpp"

namespace codelayout {
namespace {

/// argv adapter: gtest strings -> the mutable char** mains receive.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    for (std::string& arg : storage_) ptrs_.push_back(arg.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(CliOptions, ParsesEveryValueKind) {
  bool json = false;
  unsigned threads = 0;
  std::uint64_t events = 0;
  double rate = 0.0;
  std::string out;

  CliOptions cli("prog");
  cli.flag("--json", &json, "emit json");
  cli.option_uint("--threads", &threads, 1, 64, "N", "width");
  cli.option_u64("--events", &events, 1, ~std::uint64_t{0}, "N", "events");
  cli.option_double("--rate", &rate, 0.0, 10.0, "X", "rate");
  cli.option("--out", &out, "FILE", "output");

  Argv args({"prog", "--json", "--threads", "8", "--events=123456789012345",
             "--rate", "2.5", "--out=result.json"});
  EXPECT_EQ(cli.parse(args.argc(), args.argv()), "");
  EXPECT_TRUE(json);
  EXPECT_EQ(threads, 8u);
  EXPECT_EQ(events, 123456789012345ull);
  EXPECT_DOUBLE_EQ(rate, 2.5);
  EXPECT_EQ(out, "result.json");
}

TEST(CliOptions, BothSpaceAndEqualsFormsWork) {
  unsigned threads = 0;
  CliOptions cli("prog");
  cli.option_uint("--threads", &threads, 1, 64, "N", "width");

  Argv space({"prog", "--threads", "4"});
  EXPECT_EQ(cli.parse(space.argc(), space.argv()), "");
  EXPECT_EQ(threads, 4u);

  Argv equals({"prog", "--threads=16"});
  EXPECT_EQ(cli.parse(equals.argc(), equals.argv()), "");
  EXPECT_EQ(threads, 16u);
}

TEST(CliOptions, RejectsUnknownArguments) {
  bool json = false;
  CliOptions cli("prog");
  cli.flag("--json", &json, "emit json");
  Argv args({"prog", "--jsn"});
  EXPECT_EQ(cli.parse(args.argc(), args.argv()), "unknown argument: --jsn");
}

TEST(CliOptions, RejectsOutOfRangeAndMalformedIntegers) {
  unsigned threads = 0;
  CliOptions cli("prog");
  cli.option_uint("--threads", &threads, 1, 64, "N", "width");

  Argv zero({"prog", "--threads", "0"});
  EXPECT_EQ(cli.parse(zero.argc(), zero.argv()),
            "invalid --threads value '0': expected an integer in [1, 64]");

  Argv word({"prog", "--threads", "many"});
  EXPECT_EQ(cli.parse(word.argc(), word.argv()),
            "invalid --threads value 'many': expected an integer in [1, 64]");

  Argv negative({"prog", "--threads", "-2"});
  EXPECT_NE(cli.parse(negative.argc(), negative.argv()), "");
}

TEST(CliOptions, RejectsMissingAndMisplacedValues) {
  unsigned threads = 0;
  bool json = false;
  CliOptions cli("prog");
  cli.option_uint("--threads", &threads, 1, 64, "N", "width");
  cli.flag("--json", &json, "emit json");

  Argv missing({"prog", "--threads"});
  EXPECT_EQ(cli.parse(missing.argc(), missing.argv()),
            "--threads requires a value");

  Argv flag_with_value({"prog", "--json=yes"});
  EXPECT_EQ(cli.parse(flag_with_value.argc(), flag_with_value.argv()),
            "--json does not take a value");
}

TEST(CliOptions, HelpRequestShortCircuitsParsing) {
  unsigned threads = 0;
  CliOptions cli("prog", "does prog things");
  cli.option_uint("--threads", &threads, 1, 64, "N", "width");
  Argv args({"prog", "--help", "--threads", "not-an-int"});
  EXPECT_EQ(cli.parse(args.argc(), args.argv()), "");
  EXPECT_TRUE(cli.help_requested());

  const std::string help = cli.help();
  EXPECT_NE(help.find("does prog things"), std::string::npos);
  EXPECT_NE(help.find("--threads N"), std::string::npos);
  EXPECT_NE(help.find("width"), std::string::npos);
  EXPECT_NE(cli.usage().find("usage: prog [--threads N]"), std::string::npos);
}

TEST(CliOptions, PassthroughCollectsUnknownArguments) {
  bool json = false;
  std::vector<std::string> leftover;
  CliOptions cli("prog");
  cli.flag("--json", &json, "emit json");
  cli.passthrough(&leftover);
  Argv args({"prog", "--benchmark_filter=corun", "--json", "positional"});
  EXPECT_EQ(cli.parse(args.argc(), args.argv()), "");
  EXPECT_TRUE(json);
  EXPECT_EQ(leftover,
            (std::vector<std::string>{"--benchmark_filter=corun",
                                      "positional"}));
}

TEST(CliOptions, RejectsBadDeclarations) {
  bool flag_out = false;
  CliOptions cli("prog");
  cli.flag("--json", &flag_out, "emit json");
  EXPECT_THROW(cli.flag("--json", &flag_out, "duplicate"), ContractError);
  EXPECT_THROW(cli.flag("json", &flag_out, "no dashes"), ContractError);
}

}  // namespace
}  // namespace codelayout
