#include <gtest/gtest.h>

#include "cache/icache_sim.hpp"
#include "exec/interpreter.hpp"
#include "ir/builder.hpp"

namespace codelayout {
namespace {

Module loop_module(std::uint32_t n_blocks, std::uint32_t block_bytes) {
  ModuleBuilder mb("loop");
  auto f = mb.function("main");
  std::vector<BlockId> blocks;
  for (std::uint32_t i = 0; i < n_blocks; ++i) {
    blocks.push_back(f.block(block_bytes));
  }
  for (std::uint32_t i = 0; i + 1 < n_blocks; ++i) {
    f.jump(blocks[i], blocks[i + 1]);
  }
  const BlockId exit = f.block(16);
  f.loop(blocks.back(), blocks.front(), exit, 0.999);
  return std::move(mb).build();
}

struct Prepared {
  Module module;
  CodeLayout layout;
  Trace trace;

  explicit Prepared(std::uint32_t blocks, std::uint64_t seed,
                    std::uint64_t events = 20'000)
      : module(loop_module(blocks, 64)),
        layout(original_layout(module)),
        trace(profile(module, seed, {.max_events = events}).block_trace) {}

  [[nodiscard]] CorunParty party(double speed = 1.0) const {
    return CorunParty{&module, &layout, &trace, speed};
  }
};

TEST(CorunMany, RequiresAtLeastTwoParties) {
  const Prepared a(16, 1);
  std::vector<CorunParty> one = {a.party()};
  EXPECT_THROW(simulate_corun_many(one, {}), ContractError);
}

TEST(CorunMany, TwoWayMatchesPairwiseSimulation) {
  const Prepared a(160, 1);
  const Prepared b(160, 2);
  const CorunResult pair = simulate_corun(a.module, a.layout, a.trace,
                                          b.module, b.layout, b.trace);
  std::vector<CorunParty> parties = {a.party(), b.party()};
  const auto many = simulate_corun_many(parties, {});
  ASSERT_EQ(many.size(), 2u);
  EXPECT_EQ(many[0].demand_misses, pair.self.demand_misses);
  EXPECT_EQ(many[0].instructions, pair.self.instructions);
  EXPECT_EQ(many[1].demand_misses, pair.peer.demand_misses);
}

TEST(CorunMany, MeasuredStreamRunsExactlyItsTrace) {
  const Prepared a(16, 1, 5'000);
  const Prepared b(16, 2, 50'000);
  const Prepared c(16, 3, 50'000);
  std::vector<CorunParty> parties = {a.party(), b.party(), c.party()};
  const auto results = simulate_corun_many(parties, {});
  EXPECT_EQ(results[0].blocks, a.trace.size());
}

TEST(CorunMany, MorePeersMoreInterference) {
  // Each loop is 10KB; 1 peer fits alongside in 32KB, 3 peers cannot.
  const Prepared a(160, 1);
  const Prepared b(160, 2);
  const Prepared c(160, 3);
  const Prepared d(160, 4);
  std::vector<CorunParty> two = {a.party(), b.party()};
  std::vector<CorunParty> four = {a.party(), b.party(), c.party(), d.party()};
  const double with_one_peer = simulate_corun_many(two, {})[0].miss_ratio();
  const double with_three_peers =
      simulate_corun_many(four, {})[0].miss_ratio();
  EXPECT_GT(with_three_peers, with_one_peer);
}

TEST(CorunMany, DistinctNamespacesPerParty) {
  // Identical programs: if namespaces collided, the shared cache would
  // dedupe lines and four 20KB programs would look like one.
  const Prepared a(320, 1);
  std::vector<CorunParty> four = {a.party(), a.party(), a.party(), a.party()};
  const auto results = simulate_corun_many(four, {});
  // 4 x 20KB in 32KB: everyone misses substantially.
  EXPECT_GT(results[0].miss_ratio(), 0.01);
}

TEST(CorunMany, SpeedScalesPeerProgress) {
  const Prepared a(16, 1, 10'000);
  const Prepared b(16, 2, 10'000);
  std::vector<CorunParty> slow = {a.party(), b.party(0.5)};
  std::vector<CorunParty> fast = {a.party(), b.party(2.0)};
  const auto r_slow = simulate_corun_many(slow, {});
  const auto r_fast = simulate_corun_many(fast, {});
  EXPECT_GT(r_fast[1].blocks, r_slow[1].blocks * 3);
}

TEST(CorunMany, RejectsBadParty) {
  const Prepared a(16, 1);
  std::vector<CorunParty> parties = {a.party(), a.party()};
  parties[1].speed = 0.0;
  EXPECT_THROW(simulate_corun_many(parties, {}), ContractError);
  parties[1].speed = 1.0;
  parties[1].trace = nullptr;
  EXPECT_THROW(simulate_corun_many(parties, {}), ContractError);
}

// ---- CorunSpec: the consolidated request struct -----------------------------

TEST(CorunSpec, ShimsAreBitIdenticalToSpec) {
  const Prepared a(160, 1);
  const Prepared b(160, 2);
  const Prepared c(160, 3);
  const SimOptions options = hardware_proxy_options();

  // Reference: the consolidated entry point with caller-built plans.
  const FetchPlan plan_a(a.module, a.layout, options.geometry().line_bytes);
  const FetchPlan plan_b(b.module, b.layout, options.geometry().line_bytes);
  const FetchPlan plan_c(c.module, c.layout, options.geometry().line_bytes);
  CorunSpec spec;
  spec.options = options;
  spec.parties = {{&plan_a, &a.trace, 1.0},
                  {&plan_b, &b.trace, 1.3},
                  {&plan_c, &c.trace, 0.8}};
  CorunStats spec_stats;
  const auto from_spec = simulate_corun(spec, &spec_stats);

  // Deprecated module/layout shim.
  std::vector<CorunParty> raw = {a.party(), b.party(1.3), c.party(0.8)};
  CorunStats raw_stats;
  const auto from_raw = simulate_corun_many(raw, options, &raw_stats);

  // Deprecated plan-based shim (PlannedParty aliases CorunSpec::Party).
  std::vector<PlannedParty> planned = spec.parties;
  CorunStats planned_stats;
  const auto from_planned =
      simulate_corun_many(planned, options, &planned_stats);

  ASSERT_EQ(from_spec.size(), 3u);
  EXPECT_EQ(from_spec, from_raw);
  EXPECT_EQ(from_spec, from_planned);
  EXPECT_EQ(spec_stats.rounds(), raw_stats.rounds());
  EXPECT_EQ(spec_stats.rounds(), planned_stats.rounds());
}

TEST(CorunSpec, ValidatesMeasuredPartySpeed) {
  const Prepared a(16, 1);
  const SimOptions options;
  const FetchPlan plan(a.module, a.layout, options.geometry().line_bytes);
  CorunSpec spec;
  spec.parties = {{&plan, &a.trace, 2.0}, {&plan, &a.trace, 1.0}};
  EXPECT_THROW(simulate_corun(spec), ContractError);
}

}  // namespace
}  // namespace codelayout
