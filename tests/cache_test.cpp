#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cache/icache_sim.hpp"
#include "cache/set_assoc.hpp"
#include "exec/interpreter.hpp"
#include "ir/builder.hpp"

namespace codelayout {
namespace {

CacheGeometry tiny_cache() {
  // 4 sets x 2 ways x 64B lines = 512B.
  return CacheGeometry{512, 2, 64};
}

TEST(CacheGeometry, DerivedQuantities) {
  EXPECT_EQ(kL1I.lines(), 512u);
  EXPECT_EQ(kL1I.sets(), 128u);
  EXPECT_NO_THROW(kL1I.validate());
}

TEST(CacheGeometry, RejectsIndivisibleSize) {
  CacheGeometry g{1000, 4, 64};
  EXPECT_THROW(g.validate(), ContractError);
}

TEST(CacheGeometry, RejectsNonPowerOfTwoSetCount) {
  // 1536B / (64B x 4 ways) = 6 sets: divisible, but not a power of two.
  // The check lives in validate() so every consumer of a geometry rejects
  // it with the same message, not just SetAssocCache's constructor.
  CacheGeometry g{1536, 4, 64};
  try {
    g.validate();
    FAIL() << "expected ContractError";
  } catch (const ContractError& e) {
    EXPECT_NE(std::string(e.what()).find("power of two"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(SetAssocCache cache(g), ContractError);
}

TEST(SetAssoc, ColdMissThenHit) {
  SetAssocCache c(tiny_cache());
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_EQ(c.accesses(), 2u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_DOUBLE_EQ(c.miss_ratio(), 0.5);
}

TEST(SetAssoc, LruEvictionWithinSet) {
  SetAssocCache c(tiny_cache());
  // Lines 0, 4, 8 all map to set 0 (4 sets); associativity 2.
  c.access(0);
  c.access(4);
  EXPECT_TRUE(c.access(0));   // 0 now MRU, 4 LRU
  c.access(8);                // evicts 4
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(4));  // was evicted
}

TEST(SetAssoc, DifferentSetsDoNotConflict) {
  SetAssocCache c(tiny_cache());
  for (std::uint64_t line = 0; line < 8; ++line) c.access(line);
  // 8 lines over 4 sets x 2 ways fit exactly.
  c.reset_stats();
  for (std::uint64_t line = 0; line < 8; ++line) EXPECT_TRUE(c.access(line));
  EXPECT_EQ(c.misses(), 0u);
}

TEST(SetAssoc, PrefillInstallsWithoutCounting) {
  SetAssocCache c(tiny_cache());
  EXPECT_FALSE(c.prefill(3));
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_TRUE(c.access(3));
}

TEST(SetAssoc, FlushEmptiesCache) {
  SetAssocCache c(tiny_cache());
  c.access(1);
  c.flush();
  EXPECT_FALSE(c.access(1));
}

TEST(SetAssoc, ResetStatsZeroesCountersKeepsResidency) {
  SetAssocCache c(tiny_cache());
  c.access(0);
  c.access(4);
  ASSERT_EQ(c.accesses(), 2u);
  ASSERT_EQ(c.misses(), 2u);
  c.reset_stats();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  // Residency (and recency) untouched: both lines still hit.
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(4));
  EXPECT_EQ(c.misses(), 0u);
}

TEST(SetAssoc, FlushPreservesStats) {
  SetAssocCache c(tiny_cache());
  c.access(0);
  c.access(0);
  c.access(4);
  ASSERT_EQ(c.accesses(), 3u);
  ASSERT_EQ(c.misses(), 2u);
  c.flush();
  // flush() models a mid-measurement invalidation: ways empty, statistics
  // intentionally keep covering the whole measurement window.
  EXPECT_EQ(c.accesses(), 3u);
  EXPECT_EQ(c.misses(), 2u);
  EXPECT_FALSE(c.access(0));  // no longer resident
  EXPECT_EQ(c.misses(), 3u);
}

TEST(SetAssoc, ContainsProbesWithoutPerturbing) {
  SetAssocCache c(tiny_cache());
  c.access(0);
  c.access(4);  // set 0: MRU=4, LRU=0
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.contains(4));
  EXPECT_FALSE(c.contains(8));
  EXPECT_EQ(c.accesses(), 2u);  // contains() never counts
  // contains(0) must not have promoted 0: installing 8 evicts the true LRU.
  c.access(8);
  EXPECT_FALSE(c.contains(0));
  EXPECT_TRUE(c.contains(4));
}

TEST(SetAssoc, WidePathMatchesPackedSemantics) {
  // Associativity 8 exceeds the 4-way packed representation; exercises the
  // byte-tag wide path with the same true-LRU behaviour.
  SetAssocCache c(CacheGeometry{/*size_bytes=*/1024, /*associativity=*/8,
                                /*line_bytes=*/64});
  // 2 sets x 8 ways. Fill set 0 with 8 lines, touch the oldest, add one.
  for (std::uint64_t i = 0; i < 8; ++i) c.access(i * 2);  // even lines: set 0
  EXPECT_TRUE(c.access(0));    // promote the oldest to MRU
  EXPECT_FALSE(c.access(16));  // evicts line 2, not line 0
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(2));
  EXPECT_TRUE(c.access(4));
}

TEST(SetAssoc, PackedAndGenericAgreeOnRandomStream) {
  // assoc 4 (packed) vs an 8-way generic cache can't be compared directly;
  // instead drive packed assoc 2 against the same geometry's semantics via
  // a pseudo-random line stream and check hit/miss equality with a model
  // kept in recency order.
  SetAssocCache c(tiny_cache());  // 4 sets x 2 ways: packed
  std::vector<std::vector<std::uint64_t>> model(4);
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 4000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t line = x % 23;
    const auto set = static_cast<std::size_t>(line & 3);
    auto& ways = model[set];
    const auto it = std::find(ways.begin(), ways.end(), line);
    const bool model_hit = it != ways.end();
    if (model_hit) ways.erase(it);
    ways.insert(ways.begin(), line);
    if (ways.size() > 2) ways.pop_back();
    ASSERT_EQ(c.access(line), model_hit) << "event " << i << " line " << line;
  }
}

/// Drives a SetAssocCache against a reference true-LRU model (per-set vectors
/// kept in recency order) on a pseudo-random line stream. Hit/miss equality
/// on every event under thrashing pins the eviction sequence exactly, so one
/// helper validates all three internal representations.
void drive_against_model(const CacheGeometry& geom,
                         std::uint64_t distinct_lines, int events) {
  SetAssocCache c(geom);
  const std::size_t sets = geom.sets();
  std::vector<std::vector<std::uint64_t>> model(sets);
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < events; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t line = x % distinct_lines;
    auto& ways = model[static_cast<std::size_t>(line % sets)];
    const auto it = std::find(ways.begin(), ways.end(), line);
    const bool model_hit = it != ways.end();
    if (model_hit) ways.erase(it);
    ways.insert(ways.begin(), line);
    if (ways.size() > geom.associativity) ways.pop_back();
    ASSERT_EQ(c.access(line), model_hit)
        << geom.to_string() << " event " << i << " line " << line;
  }
}

TEST(SetAssoc, PackedWide8WayAgreesWithModelLru) {
  // 8 ways -> the byte-tag SWAR representation (one u64 word per set).
  drive_against_model(CacheGeometry{4096, 8, 64}, 97, 8000);
}

TEST(SetAssoc, PackedWide16WayAgreesWithModelLru) {
  // 16 ways -> two tag words per set, full nibble permutation.
  drive_against_model(CacheGeometry{16384, 16, 64}, 331, 12000);
}

TEST(SetAssoc, PackedWideSingleSetFullAssocAgreesWithModelLru) {
  // One fully-associative 16-way set: every access churns the same
  // permutation word, the hardest case for the nibble promote.
  drive_against_model(CacheGeometry{1024, 16, 64}, 23, 8000);
}

TEST(SetAssoc, PackedWidePartialWordAssocAgreesWithModelLru) {
  // Associativity 5: lanes 5..7 of the tag word stay empty forever and the
  // victim is read from nibble position assoc-1 = 4, not 7.
  drive_against_model(CacheGeometry{1280, 5, 64}, 61, 8000);
}

TEST(SetAssoc, GenericAbovePackedWideAgreesWithModelLru) {
  // 17 ways exceeds the widest packed representation.
  drive_against_model(CacheGeometry{2176, 17, 64}, 61, 8000);
}

TEST(SetAssoc, NonDefaultLineSizesAgreeWithModelLru) {
  // The set count derives from line_bytes; 32B and 128B lines shift it.
  drive_against_model(CacheGeometry{2048, 8, 32}, 97, 8000);    // 8 sets
  drive_against_model(CacheGeometry{8192, 4, 128}, 97, 8000);   // 16 sets
  drive_against_model(CacheGeometry{4096, 16, 32}, 131, 8000);  // 8 sets
}

TEST(SetAssoc, PackedWideContainsAndPrefillDoNotPerturb) {
  SetAssocCache c(CacheGeometry{1024, 16, 64});  // one 16-way set
  for (std::uint64_t line = 0; line < 16; ++line) c.access(line);
  EXPECT_TRUE(c.prefill(3));  // resident: pure recency touch, no counters
  EXPECT_TRUE(c.contains(0));
  c.access(16);                // evicts the true LRU
  EXPECT_FALSE(c.contains(0));  // line 0 was LRU (prefill promoted 3, not 0)
  EXPECT_TRUE(c.contains(3));
  EXPECT_TRUE(c.contains(1));
}

TEST(SetAssoc, EvictionsCountReplacedLinesOnly) {
  SetAssocCache c(tiny_cache());
  // 3 lines cycling a 2-way set: the first two installs fill empty ways,
  // every later miss replaces a victim.
  for (int rep = 0; rep < 10; ++rep) {
    for (std::uint64_t line : {0ull, 4ull, 8ull}) c.access(line);
  }
  EXPECT_EQ(c.misses(), 30u);
  EXPECT_EQ(c.evictions(), 28u);

  // Same invariant on the wide and generic representations.
  SetAssocCache wide(CacheGeometry{512, 8, 64});  // one 8-way set
  for (std::uint64_t line = 0; line < 9; ++line) wide.access(line);
  EXPECT_EQ(wide.misses(), 9u);
  EXPECT_EQ(wide.evictions(), 1u);

  SetAssocCache generic(CacheGeometry{1088, 17, 64});  // one 17-way set
  for (std::uint64_t line = 0; line < 18; ++line) generic.access(line);
  EXPECT_EQ(generic.misses(), 18u);
  EXPECT_EQ(generic.evictions(), 1u);
}

TEST(SetAssoc, CyclicThrashInOneSet) {
  SetAssocCache c(tiny_cache());
  // 3 lines cycling through a 2-way set: LRU misses every time.
  for (int rep = 0; rep < 10; ++rep) {
    for (std::uint64_t line : {0ull, 4ull, 8ull}) c.access(line);
  }
  EXPECT_EQ(c.misses(), 30u);
}

// ---------- simulation over layouts ------------------------------------------

/// A module with one function that loops over `n_blocks` blocks of
/// `block_bytes` each.
Module loop_module(std::uint32_t n_blocks, std::uint32_t block_bytes) {
  ModuleBuilder mb("loop");
  auto f = mb.function("main");
  std::vector<BlockId> blocks;
  for (std::uint32_t i = 0; i < n_blocks; ++i) {
    blocks.push_back(f.block(block_bytes));
  }
  for (std::uint32_t i = 0; i + 1 < n_blocks; ++i) {
    f.jump(blocks[i], blocks[i + 1]);
  }
  const BlockId exit = f.block(16);
  f.loop(blocks.back(), blocks.front(), exit, 0.999);
  return std::move(mb).build();
}

TEST(IcacheSim, FittingLoopHasOnlyColdMisses) {
  const Module m = loop_module(8, 64);  // 512B + exit: fits in 32KB
  const ProfileResult r = profile(m, 1, {.max_events = 20'000});
  const SimResult sim = simulate_solo(m, original_layout(m), r.block_trace);
  EXPECT_LT(sim.miss_ratio(), 0.001);
  EXPECT_GT(sim.instructions, 0u);
  EXPECT_EQ(sim.blocks, r.block_trace.size());
}

TEST(IcacheSim, ThrashingLoopMissesEveryLine) {
  // 1024 blocks x 64B = 64KB loop in a 32KB cache: every line misses.
  const Module m = loop_module(1024, 64);
  const ProfileResult r = profile(m, 1, {.max_events = 50'000});
  const SimResult sim = simulate_solo(m, original_layout(m), r.block_trace);
  // 64B block = 16 instructions per line fetch -> miss ratio ~ 1/16.
  EXPECT_NEAR(sim.miss_ratio(), 1.0 / 16.0, 0.01);
}

TEST(IcacheSim, SmallCacheThrashesWhereBigDoesNot) {
  const Module m = loop_module(32, 64);  // 2KB loop
  const ProfileResult r = profile(m, 1, {.max_events = 20'000});
  SimOptions small;
  small.hierarchy.l1 = CacheGeometry{1024, 2, 64};
  const SimResult tight = simulate_solo(m, original_layout(m), r.block_trace,
                                        small);
  const SimResult roomy = simulate_solo(m, original_layout(m), r.block_trace);
  EXPECT_GT(tight.miss_ratio(), 0.05);
  EXPECT_LT(roomy.miss_ratio(), 0.001);
}

TEST(IcacheSim, PrefetchReducesSequentialMisses) {
  const Module m = loop_module(1024, 64);
  const ProfileResult r = profile(m, 1, {.max_events = 50'000});
  SimOptions with_pf;
  with_pf.next_line_prefetch = true;
  const SimResult base = simulate_solo(m, original_layout(m), r.block_trace);
  const SimResult pf = simulate_solo(m, original_layout(m), r.block_trace,
                                     with_pf);
  EXPECT_LT(pf.misses(), base.misses());
}

TEST(IcacheSim, WrongPathFetchAddsMisses) {
  // A branchy thrashing loop: wrong-path fetches hit cold lines.
  ModuleBuilder mb("branchy");
  auto f = mb.function("main");
  std::vector<BlockId> heads;
  for (int i = 0; i < 256; ++i) heads.push_back(f.block(128));
  for (std::size_t i = 0; i + 1 < heads.size(); ++i) {
    // Two-way branch: mostly falls through to the next head.
    f.branch(heads[i], heads[(i + 7) % heads.size()], heads[i + 1], 0.05);
  }
  const BlockId exit = f.block(16);
  f.loop(heads.back(), heads.front(), exit, 0.999);
  const Module m = std::move(mb).build();
  const ProfileResult r = profile(m, 1, {.max_events = 30'000});
  SimOptions wp;
  wp.wrong_path_rate = 0.5;
  const SimResult base = simulate_solo(m, original_layout(m), r.block_trace);
  const SimResult polluted = simulate_solo(m, original_layout(m),
                                           r.block_trace, wp);
  EXPECT_GT(polluted.wrong_path_misses, 0u);
  EXPECT_GT(polluted.misses(), base.misses());
}

TEST(IcacheSim, HardwareProxyCountsMoreThanSimulator) {
  const Module m = loop_module(700, 64);
  const ProfileResult r = profile(m, 1, {.max_events = 40'000});
  const SimResult sim = simulate_solo(m, original_layout(m), r.block_trace);
  const SimResult hw = simulate_solo(m, original_layout(m), r.block_trace,
                                     hardware_proxy_options());
  // Direction check only: the two instruments measure the same trend.
  EXPECT_GT(sim.misses(), 0u);
  EXPECT_GT(hw.misses(), 0u);
}

// ---------- co-run ------------------------------------------------------------

TEST(CorunSim, SharedCacheCausesInterference) {
  // Two identical 24KB loops: each fits solo in 32KB, together they thrash.
  const Module m1 = loop_module(384, 64);
  const Module m2 = loop_module(384, 64);
  const ProfileResult r1 = profile(m1, 1, {.max_events = 30'000});
  const ProfileResult r2 = profile(m2, 2, {.max_events = 30'000});
  const CodeLayout l1 = original_layout(m1);
  const CodeLayout l2 = original_layout(m2);
  const SimResult solo = simulate_solo(m1, l1, r1.block_trace);
  const CorunResult corun =
      simulate_corun(m1, l1, r1.block_trace, m2, l2, r2.block_trace);
  EXPECT_GT(corun.self.miss_ratio(), solo.miss_ratio() + 0.01);
  EXPECT_GT(corun.peer.miss_ratio(), 0.01);
}

TEST(CorunSim, TinyPeerBarelyInterferes) {
  const Module self = loop_module(64, 64);   // 4KB
  const Module peer = loop_module(4, 64);    // 256B
  const ProfileResult rs = profile(self, 1, {.max_events = 30'000});
  const ProfileResult rp = profile(peer, 2, {.max_events = 30'000});
  const CorunResult corun =
      simulate_corun(self, original_layout(self), rs.block_trace, peer,
                     original_layout(peer), rp.block_trace);
  EXPECT_LT(corun.self.miss_ratio(), 0.005);
}

TEST(CorunSim, SelfTraceReplayedExactlyOnce) {
  const Module self = loop_module(16, 64);
  const Module peer = loop_module(16, 64);
  const ProfileResult rs = profile(self, 1, {.max_events = 5'000});
  const ProfileResult rp = profile(peer, 2, {.max_events = 20'000});
  const CorunResult corun =
      simulate_corun(self, original_layout(self), rs.block_trace, peer,
                     original_layout(peer), rp.block_trace);
  EXPECT_EQ(corun.self.blocks, rs.block_trace.size());
}

TEST(CorunSim, PeerSpeedScalesPeerProgress) {
  const Module self = loop_module(16, 64);
  const Module peer = loop_module(16, 64);
  const ProfileResult rs = profile(self, 1, {.max_events = 10'000});
  const ProfileResult rp = profile(peer, 2, {.max_events = 10'000});
  const CodeLayout ls = original_layout(self);
  const CodeLayout lp = original_layout(peer);
  const CorunResult slow = simulate_corun(self, ls, rs.block_trace, peer, lp,
                                          rp.block_trace, {}, 0.5);
  const CorunResult fast = simulate_corun(self, ls, rs.block_trace, peer, lp,
                                          rp.block_trace, {}, 2.0);
  EXPECT_GT(fast.peer.blocks, slow.peer.blocks * 3);
}

TEST(CorunSim, NamespacesDoNotAlias) {
  // Identical programs at identical addresses: without namespacing the
  // shared cache would dedupe their lines and show zero interference even
  // when the combined footprint exceeds the cache. 20KB each: alone fits,
  // both together cannot both fit.
  const Module m = loop_module(320, 64);
  const ProfileResult r = profile(m, 1, {.max_events = 30'000});
  const CodeLayout l = original_layout(m);
  const SimResult solo = simulate_solo(m, l, r.block_trace);
  const CorunResult corun =
      simulate_corun(m, l, r.block_trace, m, l, r.block_trace);
  EXPECT_GT(corun.self.miss_ratio(), solo.miss_ratio());
}

// ---------- line traces --------------------------------------------------------

TEST(LineTrace, ExpandsBlocksToTheirLines) {
  ModuleBuilder mb("lines");
  auto f = mb.function("main");
  const BlockId big = f.block(160);   // lines 0,1,2
  const BlockId next = f.block(32);   // line 2 (shared)
  f.jump(big, next);
  const Module m = std::move(mb).build();
  Trace t(Trace::Granularity::kBlock);
  t.push(big);
  t.push(next);
  const Trace lines = line_trace(m, original_layout(m), t, 64);
  // big covers lines 0..2; next stays on line 2 (trimmed).
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines.symbols()[0], 0u);
  EXPECT_EQ(lines.symbols()[1], 1u);
  EXPECT_EQ(lines.symbols()[2], 2u);
}

}  // namespace
}  // namespace codelayout
