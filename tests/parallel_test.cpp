// ParallelTaskSet: the help-first fan-out primitive under the parallel
// analysis kernels. The properties pinned here are the ones the kernels'
// exactness depends on: every task runs exactly once, completion of task i
// happens-before wait(i) returning, exceptions surface at the waiter, the
// destructor never leaves a claimed task running against dead stack frames,
// and the whole thing is safe to use from inside a task already running on
// the same pool (the Lab's configuration).
#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "support/parallel.hpp"
#include "support/thread_pool.hpp"

namespace codelayout {
namespace {

TEST(ParallelTaskSet, NullPoolRunsEveryTaskInline) {
  std::vector<int> results(16, 0);
  ParallelTaskSet tasks(nullptr, results.size(),
                        [&](std::size_t i) { results[i] = static_cast<int>(i) + 1; });
  tasks.wait_all();
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i) + 1);
  }
}

TEST(ParallelTaskSet, PoolRunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> runs(64);
  ParallelTaskSet tasks(&pool, runs.size(), [&](std::size_t i) {
    runs[i].fetch_add(1, std::memory_order_relaxed);
  });
  tasks.wait_all();
  for (auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(ParallelTaskSet, WaitMakesTaskResultVisible) {
  ThreadPool pool(2);
  std::vector<std::uint64_t> slots(32, 0);
  ParallelTaskSet tasks(&pool, slots.size(),
                        [&](std::size_t i) { slots[i] = i * i + 7; });
  // Out-of-order waits: each wait(i) must establish happens-before with
  // task i's write regardless of which thread ran it.
  for (std::size_t i = slots.size(); i-- > 0;) {
    tasks.wait(i);
    EXPECT_EQ(slots[i], i * i + 7);
  }
}

TEST(ParallelTaskSet, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  ParallelTaskSet tasks(&pool, 8, [&](std::size_t i) {
    if (i == 3) throw std::runtime_error("task 3 failed");
  });
  EXPECT_THROW(tasks.wait(3), std::runtime_error);
  // Other tasks are unaffected, and re-waiting rethrows again.
  tasks.wait(0);
  EXPECT_THROW(tasks.wait(3), std::runtime_error);
}

TEST(ParallelTaskSet, DestructorCancelsUnclaimedTasks) {
  // A single-worker pool that is kept busy guarantees the set's tasks stay
  // queued; destroying the set without waiting must not run them later
  // against the destroyed frame.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  auto blocker = pool.submit([&] {
    while (!release.load(std::memory_order_acquire)) {
    }
  });
  {
    ParallelTaskSet tasks(&pool, 4, [&](std::size_t) {
      ran.fetch_add(1, std::memory_order_relaxed);
    });
    // No wait: destructor cancels while every task is still unclaimed.
  }
  release.store(true, std::memory_order_release);
  blocker.get();
  EXPECT_EQ(ran.load(), 0);
}

TEST(ParallelTaskSet, NestedInsidePoolTaskCannotDeadlock) {
  // The Lab's shape: a task running *on* the pool fans a child set onto the
  // same pool and waits. With one worker there is no second thread to help,
  // so this only terminates because wait() computes unclaimed tasks inline.
  ThreadPool pool(1);
  std::atomic<int> total{0};
  auto outer = pool.submit([&] {
    ParallelTaskSet inner(&pool, 8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
    inner.wait_all();
  });
  outer.get();
  EXPECT_EQ(total.load(), 8);
}

TEST(ParallelTaskSet, ManyConcurrentSetsOnOneSharedPool) {
  ThreadPool pool(4);
  constexpr int kSets = 16;
  constexpr std::size_t kTasks = 32;
  std::vector<std::future<void>> outers;
  std::atomic<int> total{0};
  outers.reserve(kSets);
  for (int s = 0; s < kSets; ++s) {
    outers.push_back(pool.submit([&] {
      ParallelTaskSet inner(&pool, kTasks, [&](std::size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
      inner.wait_all();
    }));
  }
  for (auto& f : outers) f.get();
  EXPECT_EQ(total.load(), kSets * static_cast<int>(kTasks));
}

}  // namespace
}  // namespace codelayout
