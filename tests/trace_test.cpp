#include <sstream>

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "ir/builder.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "trace/io.hpp"
#include "trace/prune.hpp"
#include "trace/trace.hpp"

namespace codelayout {
namespace {

using testing::make_trace;

TEST(Trace, TrimmingRemovesConsecutiveDuplicates) {
  const Trace t = make_trace({1, 1, 2, 2, 2, 3, 1, 1});
  const Trace trimmed = t.trimmed();
  EXPECT_EQ(trimmed, make_trace({1, 2, 3, 1}));
  EXPECT_TRUE(trimmed.is_trimmed());
  EXPECT_FALSE(t.is_trimmed());
}

TEST(Trace, TrimmedOfEmptyIsEmpty) {
  const Trace t(Trace::Granularity::kBlock);
  EXPECT_TRUE(t.trimmed().empty());
  EXPECT_TRUE(t.is_trimmed());
}

TEST(Trace, TrimIsIdempotent) {
  const Trace t = make_trace({5, 5, 1, 3, 3, 5});
  EXPECT_EQ(t.trimmed(), t.trimmed().trimmed());
}

TEST(Trace, DistinctAndSymbolSpace) {
  const Trace t = make_trace({0, 7, 3, 7, 0});
  EXPECT_EQ(t.distinct_count(), 3u);
  EXPECT_EQ(t.symbol_space(), 8u);
  EXPECT_EQ(Trace(Trace::Granularity::kBlock).symbol_space(), 0u);
}

TEST(Trace, OccurrenceCounts) {
  const Trace t = make_trace({2, 0, 2, 2});
  const auto counts = t.occurrence_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 3u);
}

TEST(Trace, TypedAccessors) {
  Trace t(Trace::Granularity::kFunction);
  t.push(FuncId(4));
  EXPECT_EQ(t.function_at(0), FuncId(4));
  EXPECT_FALSE(t.is_block());
}

TEST(Trace, ProjectToFunctionsCollapsesRuns) {
  ModuleBuilder mb("p");
  auto f = mb.function("f");
  const auto fb = f.chain(2, 16);
  auto g = mb.function("g");
  const auto gb = g.chain(1, 16);
  const Module m = std::move(mb).build();

  Trace blocks(Trace::Granularity::kBlock);
  blocks.push(fb[0]);
  blocks.push(fb[1]);  // same function: collapses
  blocks.push(gb[0]);
  blocks.push(fb[0]);
  const Trace funcs = project_to_functions(blocks, m);
  ASSERT_EQ(funcs.size(), 3u);
  EXPECT_EQ(funcs.function_at(0), m.find_function("f"));
  EXPECT_EQ(funcs.function_at(1), m.find_function("g"));
  EXPECT_EQ(funcs.function_at(2), m.find_function("f"));
}

// ---------- pruning -----------------------------------------------------------

TEST(Prune, KeepsHottestSymbols) {
  // 1 appears 4x, 2 appears 3x, 3 appears 1x.
  const Trace t = make_trace({1, 2, 1, 3, 1, 2, 1, 2});
  const PruneResult r = prune_to_hot(t, 2);
  EXPECT_EQ(r.hot_set, (std::vector<Symbol>{1, 2}));
  EXPECT_EQ(r.kept_events, 7u);
  EXPECT_EQ(r.total_events, 8u);
  EXPECT_NEAR(r.kept_fraction(), 7.0 / 8, 1e-12);
  // 3 is gone; result re-trimmed.
  for (Symbol s : r.trace.symbols()) EXPECT_NE(s, 3u);
}

TEST(Prune, TieBreaksBySymbolValue) {
  const Trace t = make_trace({5, 4, 5, 4});
  const PruneResult r = prune_to_hot(t, 1);
  EXPECT_EQ(r.hot_set, (std::vector<Symbol>{4}));
}

TEST(Prune, BudgetLargerThanAlphabetKeepsEverything) {
  const Trace t = make_trace({1, 2, 3});
  const PruneResult r = prune_to_hot(t, 100);
  EXPECT_DOUBLE_EQ(r.kept_fraction(), 1.0);
  EXPECT_EQ(r.trace, t);
}

TEST(Prune, ResultIsTrimmed) {
  // Removing 9 makes the two 1s adjacent; they must collapse.
  const Trace t = make_trace({1, 9, 1, 2});
  const PruneResult r = prune_to_hot(t, 2);
  EXPECT_TRUE(r.trace.is_trimmed());
  EXPECT_EQ(r.trace, make_trace({1, 2}));
}

TEST(Prune, PaperClaimHoldsOnSkewedTrace) {
  // On a hot-loop dominated trace, a small hot set keeps >90% of events
  // (Sec. II-F).
  Rng rng(7);
  Trace t(Trace::Granularity::kBlock);
  for (int i = 0; i < 20000; ++i) {
    t.push_symbol(static_cast<Symbol>(rng.zipf(500, 2.0)));
  }
  const PruneResult r = prune_to_hot(t, 50);
  EXPECT_GT(r.kept_fraction(), 0.9);
}

// ---------- sampling ----------------------------------------------------------

TEST(Sample, StrideEqualWindowKeepsAll) {
  const Trace t = make_trace({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(sample_windows(t, 3, 3).size(), 6u);
}

TEST(Sample, KeepsWindowsOnly) {
  const Trace t = make_trace({1, 2, 3, 4, 5, 6, 7, 8});
  const Trace s = sample_windows(t, 2, 4);
  // windows [0,1] and [4,5]: 1 2 5 6
  EXPECT_EQ(s, make_trace({1, 2, 5, 6}));
}

TEST(Sample, RejectsStrideBelowWindow) {
  const Trace t = make_trace({1, 2});
  EXPECT_THROW(sample_windows(t, 4, 2), ContractError);
}

// ---------- RLE & IO ----------------------------------------------------------

TEST(Rle, EncodeDecodeRoundtrip) {
  const Trace t = make_trace({1, 1, 1, 2, 3, 3, 1});
  const auto rle = rle_encode(t);
  ASSERT_EQ(rle.size(), 4u);
  EXPECT_EQ(rle[0].symbol, 1u);
  EXPECT_EQ(rle[0].length, 3u);
  EXPECT_EQ(rle_decode(rle, Trace::Granularity::kBlock), t);
}

TEST(Rle, EmptyTrace) {
  const Trace t(Trace::Granularity::kBlock);
  EXPECT_TRUE(rle_encode(t).empty());
  EXPECT_TRUE(rle_decode({}, Trace::Granularity::kBlock).empty());
}

TEST(TraceIo, StreamRoundtrip) {
  Trace t(Trace::Granularity::kFunction);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    t.push_symbol(static_cast<Symbol>(rng.below(64)));
  }
  std::stringstream ss;
  write_trace(ss, t);
  const Trace back = read_trace(ss);
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.granularity(), Trace::Granularity::kFunction);
}

TEST(TraceIo, RejectsBadMagic) {
  std::stringstream ss;
  ss << "not a trace file at all";
  EXPECT_THROW(read_trace(ss), ContractError);
}

TEST(TraceIo, RejectsTruncatedStream) {
  Trace t(Trace::Granularity::kBlock);
  for (int i = 0; i < 100; ++i) t.push_symbol(static_cast<Symbol>(i));
  std::stringstream ss;
  write_trace(ss, t);
  const std::string full = ss.str();
  std::stringstream cut(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_trace(cut), ContractError);
}

TEST(TraceIo, FileRoundtrip) {
  const Trace t = make_trace({9, 9, 1, 2});
  const std::string path = ::testing::TempDir() + "/trace.bin";
  save_trace(path, t);
  EXPECT_EQ(load_trace(path), t);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace("/nonexistent/dir/trace.bin"), ContractError);
}

// ---------- hostile streams ---------------------------------------------------
//
// Hand-crafted byte streams probing every validation path of read_trace: the
// decoder must reject them with ContractError instead of over-allocating,
// looping, or silently mis-decoding.

void append_u32(std::string& s, std::uint32_t v) {
  s.append(reinterpret_cast<const char*>(&v), 4);
}

void append_u64(std::string& s, std::uint64_t v) {
  s.append(reinterpret_cast<const char*>(&v), 8);
}

void append_varint(std::string& s, std::uint64_t v) {
  do {
    char byte = static_cast<char>(v & 0x7f);
    v >>= 7;
    if (v != 0) byte = static_cast<char>(byte | 0x80);
    s.push_back(byte);
  } while (v != 0);
}

/// Trace-stream header: magic "CLTR", version, granularity, event and run
/// counts (matching write_trace's layout).
std::string header(std::uint32_t version, std::uint64_t events,
                   std::uint64_t pairs) {
  std::string s;
  append_u32(s, 0x434c5452);
  append_u32(s, version);
  append_u32(s, 0);  // block granularity
  append_u64(s, events);
  append_u64(s, pairs);
  return s;
}

std::string thrown_message(const std::string& bytes) {
  std::stringstream ss(bytes);
  try {
    read_trace(ss);
  } catch (const ContractError& e) {
    return e.what();
  }
  return "";
}

TEST(TraceIoHostile, TruncatedVarintThrows) {
  std::string s = header(2, 5, 1);
  s.push_back('\x85');  // continuation bit set, then EOF
  EXPECT_NE(thrown_message(s).find("truncated varint"), std::string::npos);
}

TEST(TraceIoHostile, VarintOverflowThrows) {
  std::string s = header(2, 5, 1);
  // 10th byte carries payload > 1: the value needs more than 64 bits.
  for (int i = 0; i < 9; ++i) s.push_back('\xff');
  s.push_back('\x7f');
  EXPECT_NE(thrown_message(s).find("varint overflow"), std::string::npos);
}

TEST(TraceIoHostile, NeverEndingVarintThrows) {
  std::string s = header(2, 5, 1);
  for (int i = 0; i < 16; ++i) s.push_back('\x80');
  EXPECT_NE(thrown_message(s).find("varint overflow"), std::string::npos);
}

TEST(TraceIoHostile, SymbolWiderThan32BitsThrows) {
  std::string s = header(2, 5, 1);
  append_varint(s, std::uint64_t{1} << 32);
  append_varint(s, 5);
  EXPECT_NE(thrown_message(s).find("overflows 32 bits"), std::string::npos);
}

TEST(TraceIoHostile, ZeroLengthRunThrows) {
  std::string s = header(2, 5, 1);
  append_varint(s, 1);  // symbol
  append_varint(s, 0);  // length
  EXPECT_NE(thrown_message(s).find("zero-length run"), std::string::npos);
}

TEST(TraceIoHostile, RunLengthsExceedingEventCountThrow) {
  std::string s = header(2, /*events=*/3, /*pairs=*/1);
  append_varint(s, 1);
  append_varint(s, 5);  // 5 events in a 3-event trace
  EXPECT_NE(thrown_message(s).find("exceed declared event count"),
            std::string::npos);
}

TEST(TraceIoHostile, RunLengthSumOverflowIsRejected) {
  // Two near-max runs whose true sum wraps 64 bits; the remaining-capacity
  // check must fire instead of the sum silently wrapping past `events`.
  std::string s = header(2, ~std::uint64_t{0} - 2, 2);
  append_varint(s, 1);
  append_varint(s, ~std::uint32_t{0});
  append_varint(s, 2);
  append_varint(s, ~std::uint32_t{0});
  std::stringstream ss(s);
  EXPECT_THROW(read_trace(ss), ContractError);
}

TEST(TraceIoHostile, EventCountMismatchThrows) {
  std::string s = header(2, /*events=*/10, /*pairs=*/1);
  append_varint(s, 1);
  append_varint(s, 5);  // only 5 of the declared 10 events
  EXPECT_NE(thrown_message(s).find("event count mismatch"), std::string::npos);
}

TEST(TraceIoHostile, HugeDeclaredRunCountDoesNotPreallocate) {
  // A header declaring ~10^18 runs followed by almost no data: the decoder
  // must hit the truncation check, not allocate by the declared count.
  std::string s = header(2, 1'000'000'000'000'000'000ull,
                         1'000'000'000'000'000'000ull);
  append_varint(s, 1);
  append_varint(s, 1);
  std::stringstream ss(s);
  EXPECT_THROW(read_trace(ss), ContractError);
}

TEST(TraceIoHostile, UnsupportedVersionThrows) {
  const std::string s = header(3, 0, 0);
  EXPECT_NE(thrown_message(s).find("unsupported trace version"),
            std::string::npos);
}

TEST(TraceIo, VersionOneFixedPairStreamsStillReadable) {
  // The pre-varint v1 format: fixed little-endian u32 (symbol, length) pairs.
  std::string s = header(1, /*events=*/7, /*pairs=*/3);
  append_u32(s, 4);
  append_u32(s, 3);
  append_u32(s, 9);
  append_u32(s, 1);
  append_u32(s, 4);
  append_u32(s, 3);
  std::stringstream ss(s);
  EXPECT_EQ(read_trace(ss), make_trace({4, 4, 4, 9, 4, 4, 4}));
}

}  // namespace
}  // namespace codelayout
