#include <set>

#include <gtest/gtest.h>

#include "harness/pipeline.hpp"

namespace codelayout {
namespace {

/// A fast-to-prepare spec for pipeline tests.
WorkloadSpec small_spec() {
  WorkloadSpec s = find_spec("429.mcf");
  s.profile_events = 20'000;
  s.eval_events = 20'000;
  return s;
}

TEST(Optimizer, Names) {
  EXPECT_EQ(kFuncAffinity.name(), "Function Affinity");
  EXPECT_EQ(kBBAffinity.name(), "BB Affinity");
  EXPECT_EQ(kFuncTrg.name(), "Function TRG");
  EXPECT_EQ(kBBTrg.name(), "BB TRG");
}

TEST(Pipeline, PrepareIsDeterministic) {
  const WorkloadSpec spec = small_spec();
  const PreparedWorkload a = prepare_workload(spec);
  const PreparedWorkload b = prepare_workload(spec);
  EXPECT_EQ(a.profile_blocks, b.profile_blocks);
  EXPECT_EQ(a.eval_blocks, b.eval_blocks);
  EXPECT_EQ(a.eval_instructions, b.eval_instructions);
}

TEST(Pipeline, ProfileAndEvalUseDifferentInputs) {
  const PreparedWorkload w = prepare_workload(small_spec());
  // Test input (profile) and reference input (eval) differ by seed; their
  // traces must differ while covering the same program.
  EXPECT_NE(w.profile_blocks, w.eval_blocks);
}

TEST(Pipeline, ProfileTraceIsTrimmedAndPruned) {
  const PreparedWorkload w = prepare_workload(small_spec());
  EXPECT_TRUE(w.profile_blocks.is_trimmed());
  EXPECT_TRUE(w.profile_functions.is_trimmed());
  EXPECT_GT(w.prune_kept_fraction, 0.9);  // the paper's Sec. II-F claim
}

TEST(Pipeline, ModelSequencesCoverTheHotSymbols) {
  const PreparedWorkload w = prepare_workload(small_spec());
  for (const Optimizer opt : kAllOptimizers) {
    const auto seq = model_sequence(w, opt);
    const Trace& trace = opt.granularity == Granularity::kFunction
                             ? w.profile_functions
                             : w.profile_blocks;
    std::set<Symbol> in_seq(seq.begin(), seq.end());
    std::set<Symbol> in_trace(trace.symbols().begin(), trace.symbols().end());
    EXPECT_EQ(in_seq, in_trace) << opt.name();
    EXPECT_EQ(in_seq.size(), seq.size()) << opt.name() << ": duplicates";
  }
}

TEST(Pipeline, AllFourOptimizersProduceCompleteLayouts) {
  const PreparedWorkload w = prepare_workload(small_spec());
  for (const Optimizer opt : kAllOptimizers) {
    const CodeLayout layout = optimize_layout(w, opt);
    EXPECT_EQ(layout.block_order().size(), w.module.block_count())
        << opt.name();
  }
}

TEST(Pipeline, FunctionReorderingAddsNoBytes) {
  const PreparedWorkload w = prepare_workload(small_spec());
  const CodeLayout layout = optimize_layout(w, kFuncAffinity);
  // Function reordering inserts no spaces (Sec. II-D) and no trampolines;
  // only fall-through fix-ups may add bytes, and whole-function moves keep
  // intra-function adjacency, so overhead stays zero.
  EXPECT_EQ(layout.overhead_bytes(), 0u);
}

TEST(Pipeline, BBReorderingChargesTrampolines) {
  const PreparedWorkload w = prepare_workload(small_spec());
  const CodeLayout layout = optimize_layout(w, kBBAffinity);
  EXPECT_GE(layout.overhead_bytes(),
            w.module.function_count() * kJumpBytes);
}

TEST(Pipeline, OptimizedLayoutsDifferFromOriginal) {
  const PreparedWorkload w = prepare_workload(small_spec());
  const CodeLayout opt = optimize_layout(w, kBBAffinity);
  bool any_moved = false;
  for (const auto& block : w.module.blocks()) {
    if (opt.placement(block.id).address !=
        w.original.placement(block.id).address) {
      any_moved = true;
      break;
    }
  }
  EXPECT_TRUE(any_moved);
}

}  // namespace
}  // namespace codelayout
