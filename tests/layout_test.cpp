#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "affinity/analysis.hpp"
#include "exec/interpreter.hpp"
#include "ir/builder.hpp"
#include "layout/layout.hpp"

namespace codelayout {
namespace {

/// Two functions and a main; f and g each have two blocks.
Module two_function_module() {
  ModuleBuilder mb("two");
  auto f = mb.function("f");
  f.chain(2, 32);
  auto g = mb.function("g");
  g.chain(2, 32);
  auto main_fn = mb.function("main");
  const BlockId entry = main_fn.block(16);
  main_fn.call(entry, f.id());
  main_fn.call(entry, g.id());
  Module m = std::move(mb).build();
  m.set_entry_function(*m.find_function("main"));
  return m;
}

TEST(OriginalLayout, SequentialAddressesInProgramOrder) {
  const Module m = two_function_module();
  const CodeLayout layout = original_layout(m);
  std::uint64_t expected = 0;
  for (BlockId b : layout.block_order()) {
    EXPECT_EQ(layout.placement(b).address, expected);
    expected += layout.placement(b).bytes;
  }
  EXPECT_EQ(layout.total_bytes(), expected);
  // Program order: f's blocks, g's blocks, main.
  EXPECT_EQ(layout.block_order()[0], m.function(FuncId(0)).blocks[0]);
}

TEST(OriginalLayout, NoOverheadWhenFallthroughsAdjacent) {
  const Module m = two_function_module();
  const CodeLayout layout = original_layout(m);
  EXPECT_EQ(layout.overhead_bytes(), 0u);
  EXPECT_EQ(layout.fixup_count(), 0u);
  EXPECT_EQ(layout.total_bytes(), m.static_bytes());
}

TEST(FunctionReordering, PermutesWholeFunctions) {
  const Module m = two_function_module();
  // Order: g (id 1), f (id 0); main unlisted follows.
  const std::vector<Symbol> order = {1, 0};
  const CodeLayout layout = function_reordering(m, order);
  const auto& g_blocks = m.function(FuncId(1)).blocks;
  const auto& f_blocks = m.function(FuncId(0)).blocks;
  EXPECT_EQ(layout.placement(g_blocks[0]).address, 0u);
  EXPECT_LT(layout.placement(g_blocks[1]).address,
            layout.placement(f_blocks[0]).address);
  // Blocks inside each function stay in source order.
  EXPECT_LT(layout.placement(f_blocks[0]).address,
            layout.placement(f_blocks[1]).address);
}

TEST(FunctionReordering, UnlistedFunctionsFollowInProgramOrder) {
  const Module m = two_function_module();
  const CodeLayout layout = function_reordering(m, std::vector<Symbol>{2});
  // main (id 2) first, then f, then g.
  const BlockId main_entry = m.function(FuncId(2)).entry;
  EXPECT_EQ(layout.placement(main_entry).address, 0u);
}

TEST(FunctionReordering, DuplicatesIgnored) {
  const Module m = two_function_module();
  const CodeLayout layout =
      function_reordering(m, std::vector<Symbol>{1, 1, 0, 1});
  EXPECT_EQ(layout.block_order().size(), m.block_count());
}

TEST(FunctionReordering, OutOfRangeSymbolRejected) {
  const Module m = two_function_module();
  EXPECT_THROW(function_reordering(m, std::vector<Symbol>{9}), ContractError);
}

TEST(BBReordering, EntryStubsCharged) {
  const Module m = two_function_module();
  // Keep source order: no fall-through breaks, but every function entry
  // gains a trampoline jump.
  std::vector<Symbol> order;
  for (const auto& b : m.blocks()) order.push_back(b.id.value);
  const CodeLayout layout = bb_reordering(m, order);
  EXPECT_EQ(layout.overhead_bytes(),
            m.function_count() * kJumpBytes + layout.fixup_count() * kJumpBytes);
}

TEST(BBReordering, BrokenFallthroughGetsJump) {
  ModuleBuilder mb("ft");
  auto f = mb.function("f");
  const BlockId a = f.block(16);
  const BlockId b = f.block(16);
  const BlockId c = f.block(16);
  f.jump(a, b, /*fallthrough=*/true);
  f.jump(b, c, /*fallthrough=*/true);
  const Module m = std::move(mb).build();
  // Layout a, c, b: a's fall-through (b) is no longer adjacent; b's (c) is
  // not adjacent either (b is last). The chain window would normally repair
  // this, so force the order through the CodeLayout constructor directly.
  const CodeLayout layout(m, {a, c, b}, /*with_entry_stubs=*/false);
  EXPECT_EQ(layout.fixup_count(), 2u);
  EXPECT_EQ(layout.placement(a).bytes, 16u + kJumpBytes);
}

TEST(BBReordering, ChainingKeepsHotFallthroughsAdjacent) {
  ModuleBuilder mb("chain");
  auto f = mb.function("f");
  const auto blocks = f.chain(6, 16);
  const Module m = std::move(mb).build();
  // The model emits a scrambled-but-nearby order; chaining should restore
  // fall-through adjacency and avoid fix-ups entirely.
  const std::vector<Symbol> scrambled = {
      blocks[0].value, blocks[2].value, blocks[1].value,
      blocks[3].value, blocks[5].value, blocks[4].value};
  const CodeLayout layout = bb_reordering(m, scrambled);
  EXPECT_EQ(layout.fixup_count(), 0u);
  // Order follows the chain from block 0.
  EXPECT_EQ(layout.block_order().front(), blocks[0]);
}

TEST(BBReordering, ColdBlocksAppendedGroupedByFunction) {
  const Module m = two_function_module();
  // Only main's entry is "hot".
  const BlockId main_entry = m.function(FuncId(2)).entry;
  const CodeLayout layout =
      bb_reordering(m, std::vector<Symbol>{main_entry.value});
  EXPECT_EQ(layout.block_order().front(), main_entry);
  // All blocks are still placed exactly once.
  std::set<std::uint32_t> seen;
  for (BlockId b : layout.block_order()) seen.insert(b.value);
  EXPECT_EQ(seen.size(), m.block_count());
}

TEST(Layout, LinesOfSpansCorrectLines) {
  const Module m = two_function_module();
  const CodeLayout layout = original_layout(m);
  // First block: 32 bytes at address 0 -> one 64B line.
  const auto span0 = layout.lines_of(layout.block_order()[0], 64);
  EXPECT_EQ(span0.first_line, 0u);
  EXPECT_EQ(span0.line_count, 1u);
  // Second block: 32 bytes at address 32 -> still line 0.
  const auto span1 = layout.lines_of(layout.block_order()[1], 64);
  EXPECT_EQ(span1.first_line, 0u);
  EXPECT_EQ(span1.line_count, 1u);
  // A block crossing a boundary.
  const auto span2 = layout.lines_of(layout.block_order()[2], 64);
  EXPECT_EQ(span2.first_line, 1u);
}

TEST(Layout, DescribeListsBlocks) {
  const Module m = two_function_module();
  const CodeLayout layout = original_layout(m);
  const std::string desc = layout.describe(m);
  EXPECT_NE(desc.find("f.bb0"), std::string::npos);
  EXPECT_NE(desc.find("0x0"), std::string::npos);
}

TEST(Layout, IncompleteOrderRejected) {
  const Module m = two_function_module();
  EXPECT_THROW(CodeLayout(m, {m.function(FuncId(0)).blocks[0]}, false),
               ContractError);
}

TEST(RandomLayout, IsValidPermutation) {
  const Module m = two_function_module();
  const CodeLayout layout = random_layout(m, 99);
  std::set<std::uint32_t> seen;
  for (BlockId b : layout.block_order()) seen.insert(b.value);
  EXPECT_EQ(seen.size(), m.block_count());
  // Deterministic for a seed.
  const CodeLayout again = random_layout(m, 99);
  EXPECT_TRUE(std::equal(layout.block_order().begin(),
                         layout.block_order().end(),
                         again.block_order().begin()));
}

// ---------- the paper's Figure 3 example -------------------------------------

/// Builds the Fig. 3 program: main loops calling X then Y; X branches to
/// X2 (b=1) or X3 (b=2); Y branches on b, so X2,Y2 and X3,Y3 always execute
/// together.
TEST(Fig3, InterProceduralReorderingExtractsCorrelatedHalves) {
  ModuleBuilder mb("fig3");
  auto x = mb.function("X");
  const BlockId x1 = x.block(16, "X1");
  const BlockId x2 = x.block(16, "X2");
  const BlockId x3 = x.block(16, "X3");
  x.branch(x1, x3, x2, 0.5);  // X2 is the fall-through (then) side

  auto y = mb.function("Y");
  const BlockId y1 = y.block(16, "Y1");
  const BlockId y2 = y.block(16, "Y2");
  const BlockId y3 = y.block(16, "Y3");
  y.branch(y1, y3, y2, 0.5);

  auto main_fn = mb.function("main");
  const BlockId loop = main_fn.block(16, "loop");
  const BlockId done = main_fn.block(16, "done");
  main_fn.call(loop, x.id());
  main_fn.call(loop, y.id());
  main_fn.loop(loop, loop, done, 0.99);
  Module m = std::move(mb).build();
  m.set_entry_function(*m.find_function("main"));

  // In the real program X's branch outcome decides Y's; emulate the
  // correlated trace directly (the probabilistic CFG cannot express the
  // global variable): 100 iterations alternating the b=1 and b=2 paths.
  Trace trace(Trace::Granularity::kBlock);
  for (int i = 0; i < 100; ++i) {
    trace.push(loop);
    trace.push(x1);
    trace.push(i % 2 ? x2 : x3);
    trace.push(y1);
    trace.push(i % 2 ? y2 : y3);
  }

  // BB affinity over the correlated trace groups (X2,Y2) and (X3,Y3).
  const auto order = analyze_affinity(trace).layout_order();
  auto pos = [&](BlockId b) {
    return std::find(order.begin(), order.end(), b.value) - order.begin();
  };
  // The correlated pairs are adjacent in the optimized order.
  EXPECT_EQ(std::abs(pos(x2) - pos(y2)), 1);
  EXPECT_EQ(std::abs(pos(x3) - pos(y3)), 1);

  // And the transformation places them adjacently in memory.
  const CodeLayout layout = bb_reordering(m, order);
  const auto px2 = layout.placement(x2);
  const auto py2 = layout.placement(y2);
  EXPECT_EQ(std::min(px2.address, py2.address) +
                layout.placement(px2.address < py2.address ? x2 : y2).bytes,
            std::max(px2.address, py2.address));
}

}  // namespace
}  // namespace codelayout
