// Regenerates tests/golden_suite.inc — the pre-refactor golden checksums the
// run-equivalence suite (trace_runs_test) compares against.
//
// The table currently checked in was captured from the flat-vector Trace
// implementation (seed state, before the run-length-encoded core), so the
// golden test proves the run-aware kernels reproduce the original outputs bit
// for bit. Only regenerate this table when an intentional behaviour change
// lands (and say so in the commit): `./tests/golden_capture >
// tests/golden_suite.inc`.
#include <cstdio>

#include "cache/icache_sim.hpp"
#include "exec/interpreter.hpp"
#include "harness/pipeline.hpp"
#include "helpers.hpp"
#include "layout/layout.hpp"
#include "locality/footprint.hpp"
#include "locality/reuse.hpp"
#include "trace/prune.hpp"
#include "trg/graph.hpp"
#include "workloads/spec.hpp"

namespace {

using namespace codelayout;
using namespace codelayout::testing;

/// The three pipeline-golden workloads: small, mid, and the busiest probe.
const char* kPipelineWorkloads[] = {"429.mcf", "458.sjeng", "403.gcc"};

void emit_workload_rows() {
  const PipelineConfig config;
  std::printf("inline constexpr GoldenWorkload kGoldenWorkloads[] = {\n");
  for (const WorkloadSpec& spec : spec_suite()) {
    const Module module = build_workload(spec);
    const ExecLimits profile_limits{.max_events = spec.profile_events,
                                    .max_call_depth = 64};
    const ProfileResult prof =
        profile(module, config.profile_seed, profile_limits);
    const Trace functions = project_to_functions(prof.block_trace, module);
    const ExecLimits eval_limits{.max_events = spec.eval_events,
                                 .max_call_depth = 64};
    const ProfileResult eval =
        profile(module, config.eval_seed, eval_limits);
    const PruneResult pruned =
        prune_to_hot(prof.block_trace, config.prune_top_k);

    const ReuseProfile reuse = compute_reuse(prof.block_trace);
    const FootprintCurve fp = FootprintCurve::compute(prof.block_trace);
    const Trg trg = Trg::build(
        pruned.trace,
        TrgConfig{.window_entries =
                      trg_window_entries(config.trg_cache_bytes,
                                         config.trg_block_bytes)});
    const CodeLayout original = original_layout(module);
    const SimResult solo_sim =
        simulate_solo(module, original, eval.block_trace);
    const SimResult solo_hw = simulate_solo(module, original, eval.block_trace,
                                            hardware_proxy_options());

    std::printf(
        "    {\"%s\",\n"
        "     0x%016llxull, 0x%016llxull, 0x%016llxull,\n"
        "     0x%016llxull, %lluull,\n"
        "     0x%016llxull, 0x%016llxull, 0x%016llxull,\n"
        "     0x%016llxull, 0x%016llxull},\n",
        spec.name.c_str(),
        static_cast<unsigned long long>(hash_symbols(prof.block_trace)),
        static_cast<unsigned long long>(hash_symbols(functions)),
        static_cast<unsigned long long>(hash_symbols(eval.block_trace)),
        static_cast<unsigned long long>(hash_symbols(pruned.trace)),
        static_cast<unsigned long long>(pruned.kept_events),
        static_cast<unsigned long long>(hash_reuse(reuse)),
        static_cast<unsigned long long>(hash_footprint(fp)),
        static_cast<unsigned long long>(hash_trg(trg)),
        static_cast<unsigned long long>(hash_sim(solo_sim)),
        static_cast<unsigned long long>(hash_sim(solo_hw)));
  }
  std::printf("};\n\n");
}

void emit_pipeline_rows() {
  std::printf("inline constexpr GoldenPipeline kGoldenPipelines[] = {\n");
  for (const char* name : kPipelineWorkloads) {
    const PreparedWorkload prepared = prepare_workload(find_spec(name));
    std::printf("    {\"%s\",\n     {", name);
    for (const Optimizer opt : kAllOptimizers) {
      std::printf("0x%016llxull, ",
                  static_cast<unsigned long long>(
                      hash_sequence(model_sequence(prepared, opt))));
    }
    std::printf("},\n     {");
    for (const Optimizer opt : kAllOptimizers) {
      const CodeLayout layout = optimize_layout(prepared, opt);
      const SimResult sim =
          simulate_solo(prepared.module, layout, prepared.eval_blocks);
      std::printf("0x%016llxull, ",
                  static_cast<unsigned long long>(hash_sim(sim)));
    }
    std::printf("}},\n");
  }
  std::printf("};\n");
}

}  // namespace

int main() {
  std::printf(
      "// Golden checksums captured from the pre-refactor (flat-vector Trace)\n"
      "// implementation. Regenerate only on intentional behaviour changes:\n"
      "//   ./tests/golden_capture > tests/golden_suite.inc\n"
      "// See tests/golden_capture.cpp.\n\n");
  emit_workload_rows();
  emit_pipeline_rows();
  return 0;
}
