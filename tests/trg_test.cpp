#include <algorithm>

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "support/rng.hpp"
#include "trg/graph.hpp"
#include "trg/reduction.hpp"

namespace codelayout {
namespace {

using testing::make_trace;

// ---------- construction (Definition 6) --------------------------------------

TEST(TrgBuild, InterleavedReuseCountsConflict) {
  // A B A: B occurs between two successive occurrences of A -> edge(A,B)=1.
  const Trg g = Trg::build(make_trace({1, 2, 1}));
  EXPECT_EQ(g.edge_weight(1, 2), 1u);
  EXPECT_EQ(g.edge_weight(2, 1), 1u);  // undirected
}

TEST(TrgBuild, NoReuseNoEdge) {
  // A B: no successive occurrence of either -> no conflicts.
  const Trg g = Trg::build(make_trace({1, 2}));
  EXPECT_EQ(g.edge_weight(1, 2), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_EQ(g.node_count(), 2u);
}

TEST(TrgBuild, RepeatedInterleavingAccumulates) {
  // A B A B A: edge grows with each interleaved reuse.
  const Trg g = Trg::build(make_trace({1, 2, 1, 2, 1}));
  // A reused at positions 2 (B above) and 4 (B above): 2 credits from A.
  // B reused at position 3 (A above): 1 credit. Total edge weight 3.
  EXPECT_EQ(g.edge_weight(1, 2), 3u);
}

TEST(TrgBuild, MultipleIntermediatesEachGetAnEdge) {
  // A B C A: both B and C interleave A's reuse.
  const Trg g = Trg::build(make_trace({1, 2, 3, 1}));
  EXPECT_EQ(g.edge_weight(1, 2), 1u);
  EXPECT_EQ(g.edge_weight(1, 3), 1u);
  EXPECT_EQ(g.edge_weight(2, 3), 0u);
}

TEST(TrgBuild, WindowCapsCoOccurrence) {
  // With a 2-entry window, A is evicted before its reuse: no edge.
  const Trace t = make_trace({1, 2, 3, 1});
  const Trg capped = Trg::build(t, TrgConfig{.window_entries = 2});
  EXPECT_EQ(capped.edge_weight(1, 2), 0u);
  EXPECT_EQ(capped.edge_weight(1, 3), 0u);
  const Trg wide = Trg::build(t, TrgConfig{.window_entries = 16});
  EXPECT_GT(wide.edge_weight(1, 3), 0u);
}

TEST(TrgBuild, TrimsInternally) {
  const Trg a = Trg::build(make_trace({1, 1, 2, 2, 1}));
  const Trg b = Trg::build(make_trace({1, 2, 1}));
  EXPECT_EQ(a.edge_weight(1, 2), b.edge_weight(1, 2));
}

TEST(TrgBuild, NodesInFirstAppearanceOrder) {
  const Trg g = Trg::build(make_trace({5, 3, 9, 3, 5}));
  const auto nodes = g.nodes();
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_EQ(nodes[0], 5u);
  EXPECT_EQ(nodes[1], 3u);
  EXPECT_EQ(nodes[2], 9u);
}

TEST(TrgBuild, EdgesByWeightSortedDeterministically) {
  Trg g;
  g.add_edge(1, 2, 10);
  g.add_edge(3, 4, 10);
  g.add_edge(1, 3, 50);
  const auto edges = g.edges_by_weight();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].weight, 50u);
  EXPECT_EQ(edges[1].a, 1u);  // ties break by (a, b)
  EXPECT_EQ(edges[2].a, 3u);
}

TEST(TrgBuild, NeighborsThrowsForUnknown) {
  const Trg g = Trg::build(make_trace({1, 2, 1}));
  EXPECT_THROW((void)g.neighbors(42), ContractError);
}

// ---------- geometry helpers -------------------------------------------------

TEST(TrgGeometry, SlotCountPaperConfiguration) {
  // 32KB, 4-way, 64B lines -> 128 sets; 64B blocks occupy 1 set-group.
  EXPECT_EQ(trg_slot_count(32 * 1024, 4, 64, 64), 128u);
  // 512-byte functions: ceil(512/256) = 2 set-groups -> 64 slots.
  EXPECT_EQ(trg_slot_count(32 * 1024, 4, 64, 512), 64u);
}

TEST(TrgGeometry, WindowEntriesIsTwiceCacheOverBlock) {
  EXPECT_EQ(trg_window_entries(32 * 1024, 64), 1024u);
  EXPECT_EQ(trg_window_entries(32 * 1024, 512), 128u);
}

TEST(TrgGeometry, RejectsOversizedBlock) {
  EXPECT_THROW(trg_slot_count(1024, 4, 64, 8192), ContractError);
}

// ---------- reduction (Algorithm 2, Figure 2) --------------------------------

/// The Figure 2 instance (weights reconstructed so the narrated reduction
/// holds): heaviest edge <A,B> splits A and B into slots 1 and 2; <E,F>
/// sends E to the empty slot 3 and F joins A (its least-conflict slot),
/// removing E<B,F>; then C joins E. Final: (A F)(B)(E C) -> A B E F C.
/// Symbols: A=0 B=1 C=2 E=3 F=4.
Trg fig2_graph() {
  Trg g;
  g.add_edge(0, 1, 40);  // A-B
  g.add_edge(3, 4, 35);  // E-F
  g.add_edge(2, 0, 30);  // C-A
  g.add_edge(1, 4, 15);  // B-F
  g.add_edge(2, 1, 12);  // C-B
  g.add_edge(2, 3, 10);  // C-E
  g.add_edge(0, 4, 10);  // A-F
  return g;
}

TEST(TrgReduce, Fig2SlotAssignment) {
  const TrgReduction r = reduce_trg(fig2_graph(), 3);
  ASSERT_EQ(r.slots.size(), 3u);
  EXPECT_EQ(r.slots[0], (std::vector<Symbol>{0, 4}));  // A F
  EXPECT_EQ(r.slots[1], (std::vector<Symbol>{1}));     // B
  EXPECT_EQ(r.slots[2], (std::vector<Symbol>{3, 2}));  // E C
}

TEST(TrgReduce, Fig2OutputSequence) {
  const TrgReduction r = reduce_trg(fig2_graph(), 3);
  // Round-robin over slot heads: A B E F C.
  EXPECT_EQ(r.order, (std::vector<Symbol>{0, 1, 3, 4, 2}));
}

TEST(TrgReduce, EveryNodeAppearsExactlyOnce) {
  Rng rng(3);
  Trace raw(Trace::Granularity::kBlock);
  for (int i = 0; i < 4000; ++i) {
    raw.push_symbol(static_cast<Symbol>(rng.zipf(60, 0.7)));
  }
  const Trace t = raw.trimmed();
  const Trg g = Trg::build(t);
  const TrgReduction r = reduce_trg(g, 8);
  auto sorted = r.order;
  std::sort(sorted.begin(), sorted.end());
  auto nodes = std::vector<Symbol>(g.nodes().begin(), g.nodes().end());
  std::sort(nodes.begin(), nodes.end());
  EXPECT_EQ(sorted, nodes);
}

TEST(TrgReduce, Deterministic) {
  Rng rng(9);
  Trace raw(Trace::Granularity::kBlock);
  for (int i = 0; i < 2000; ++i) {
    raw.push_symbol(static_cast<Symbol>(rng.below(30)));
  }
  const Trace t = raw.trimmed();
  const Trg g = Trg::build(t);
  EXPECT_EQ(reduce_trg(g, 16).order, reduce_trg(g, 16).order);
}

TEST(TrgReduce, IsolatedNodesStillPlaced) {
  Trg g;
  g.add_edge(0, 1, 5);
  // Nodes 7 and 8 exist only through a no-conflict trace build.
  const Trg with_isolated = Trg::build(make_trace({0, 1, 0, 7, 8}));
  const TrgReduction r = reduce_trg(with_isolated, 4);
  EXPECT_EQ(r.order.size(), 4u);
  EXPECT_NE(std::find(r.order.begin(), r.order.end(), 7u), r.order.end());
  EXPECT_NE(std::find(r.order.begin(), r.order.end(), 8u), r.order.end());
}

TEST(TrgReduce, SingleSlotDegeneratesToOneList) {
  const TrgReduction r = reduce_trg(fig2_graph(), 1);
  ASSERT_EQ(r.slots.size(), 1u);
  EXPECT_EQ(r.slots[0].size(), 5u);
  EXPECT_EQ(r.order.size(), 5u);
}

TEST(TrgReduce, ConflictingNodesLandInDifferentSlots) {
  // Two heavy-conflict nodes must not share a slot when slots are free.
  Trg g;
  g.add_edge(10, 11, 100);
  const TrgReduction r = reduce_trg(g, 2);
  // Each slot holds exactly one of them.
  ASSERT_EQ(r.slots.size(), 2u);
  EXPECT_EQ(r.slots[0].size(), 1u);
  EXPECT_EQ(r.slots[1].size(), 1u);
}

TEST(TrgReduce, ZeroSlotsRejected) {
  EXPECT_THROW(reduce_trg(fig2_graph(), 0), ContractError);
}

}  // namespace
}  // namespace codelayout
