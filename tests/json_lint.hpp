// Minimal recursive-descent JSON validator for tests: checks that a document
// is one well-formed JSON value (RFC 8259 grammar, no extensions). Not a
// parser — it builds nothing — but it rejects trailing garbage, unbalanced
// containers, bad escapes, and raw control bytes inside strings.
#pragma once

#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>

namespace codelayout::testing {

class JsonLinter {
 public:
  explicit JsonLinter(std::string_view text) : text_(text) {}

  /// True when the whole input is exactly one valid JSON value.
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing garbage");
    return true;
  }

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  bool fail(const char* what) {
    if (error_.empty()) {
      error_ = std::string(what) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected '\"'");
    ++pos_;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("raw control byte in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return fail("bad \\u escape");
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape");
        }
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start + (text_[start] == '-' ? 1u : 0u)) {
      return fail("expected digits");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("digits must follow '.'");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return fail("digits must follow exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    return true;
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool value() {
    if (pos_ >= text_.size()) return fail("expected a value");
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

inline bool json_is_valid(std::string_view text, std::string* error = nullptr) {
  JsonLinter lint(text);
  const bool ok = lint.valid();
  if (error != nullptr) *error = lint.error();
  return ok;
}

}  // namespace codelayout::testing
