// End-to-end integration tests over the real workload suite: these assert
// the paper's qualitative findings (directions and rough factors), using a
// small subset of programs to stay fast.
#include <gtest/gtest.h>

#include "harness/experiments.hpp"
#include "harness/lab.hpp"
#include "workloads/spec.hpp"

namespace codelayout {
namespace {

class LabTest : public ::testing::Test {
 protected:
  Lab lab_;
};

TEST_F(LabTest, SelectedBenchmarkSoloRatiosInPaperRange) {
  // Table I solo column: all below 5%, gobmk the highest of the eight,
  // mcf essentially zero.
  double gobmk = 0, mcf = 1;
  for (const auto& name : selected_benchmarks()) {
    const double ratio =
        lab_.solo(name, std::nullopt, Measure::kHardware).miss_ratio();
    EXPECT_LT(ratio, 0.06) << name;
    if (name == "445.gobmk") gobmk = ratio;
    if (name == "429.mcf") mcf = ratio;
  }
  EXPECT_LT(mcf, 0.002);
  EXPECT_GT(gobmk, 0.015);
}

TEST_F(LabTest, GamessProbeWorseThanGccProbe) {
  // The intro table: co-run 2 (gamess) inflates more than co-run 1 (gcc).
  for (const std::string name : {"458.sjeng", "471.omnetpp"}) {
    const double solo =
        lab_.solo(name, std::nullopt, Measure::kHardware).miss_ratio();
    const double with_gcc =
        lab_.corun(name, std::nullopt, kProbe1, std::nullopt,
                   Measure::kHardware)
            .self.miss_ratio();
    const double with_gamess =
        lab_.corun(name, std::nullopt, kProbe2, std::nullopt,
                   Measure::kHardware)
            .self.miss_ratio();
    EXPECT_GT(with_gcc, solo * 1.5) << name;
    EXPECT_GT(with_gamess, with_gcc) << name;
  }
}

TEST_F(LabTest, AffinityOptimizersReduceSoloMisses) {
  // Fig. 5(b): dramatic miss reductions for the affinity optimizers.
  const std::string name = "458.sjeng";
  const double base =
      lab_.solo(name, std::nullopt, Measure::kHardware).miss_ratio();
  for (const Optimizer opt : {kFuncAffinity, kBBAffinity}) {
    const double reduced = lab_.solo(name, opt, Measure::kHardware).miss_ratio();
    EXPECT_LT(reduced, base * 0.9) << opt.name();
  }
}

TEST_F(LabTest, SoloSpeedupsAreModest) {
  // Fig. 5(a): layout optimization changes solo runtime by a few percent
  // at most, even when miss reductions are dramatic.
  const std::string name = "458.sjeng";
  const double base = lab_.solo_cycles(name, std::nullopt);
  for (const Optimizer opt : {kFuncAffinity, kBBAffinity}) {
    const double s = base / lab_.solo_cycles(name, opt);
    EXPECT_GT(s, 0.97) << opt.name();
    EXPECT_LT(s, 1.10) << opt.name();
  }
}

TEST_F(LabTest, CorunSpeedupExceedsSoloSpeedupForSensitivePrograms) {
  // The paper's point 5: optimizations that barely move solo performance
  // improve co-run performance (sjeng/omnetpp class programs).
  const std::string name = "471.omnetpp";
  const double solo_speedup = lab_.solo_cycles(name, std::nullopt) /
                              lab_.solo_cycles(name, kBBAffinity);
  const double corun_base =
      lab_.corun_self_cycles(name, std::nullopt, kProbe2, std::nullopt);
  const double corun_opt =
      lab_.corun_self_cycles(name, kBBAffinity, kProbe2, std::nullopt);
  const double corun_speedup = corun_base / corun_opt;
  EXPECT_GT(corun_speedup, solo_speedup);
  EXPECT_GT(corun_speedup, 1.01);
}

TEST_F(LabTest, HardwareReductionsTrackSimulatedReductions) {
  // Sec. III-C: hardware-counted and simulated reductions show the same
  // trend (both positive here), with simulation typically larger.
  const std::string name = "458.sjeng";
  const double hw0 = lab_.corun(name, std::nullopt, kProbe1, std::nullopt,
                                Measure::kHardware)
                         .self.miss_ratio();
  const double hw1 =
      lab_.corun(name, kBBAffinity, kProbe1, std::nullopt, Measure::kHardware)
          .self.miss_ratio();
  const double sim0 = lab_.corun(name, std::nullopt, kProbe1, std::nullopt,
                                 Measure::kSimulator)
                          .self.miss_ratio();
  const double sim1 = lab_.corun(name, kBBAffinity, kProbe1, std::nullopt,
                                 Measure::kSimulator)
                          .self.miss_ratio();
  const double hw_red = 1.0 - hw1 / hw0;
  const double sim_red = 1.0 - sim1 / sim0;
  EXPECT_GT(hw_red, 0.0);
  EXPECT_GT(sim_red, 0.0);
}

TEST_F(LabTest, HyperThreadingThroughputGainInPaperRange) {
  // Fig. 7(a): co-running two programs beats running them back to back,
  // by roughly 15-30%.
  const std::string a = "458.sjeng";
  const std::string b = "429.mcf";
  const double solo_a = lab_.solo_cycles(a, std::nullopt);
  const double solo_b = lab_.solo_cycles(b, std::nullopt);
  const double corun_a =
      lab_.corun_self_cycles(a, std::nullopt, b, std::nullopt);
  const double corun_b =
      lab_.corun_self_cycles(b, std::nullopt, a, std::nullopt);
  const auto r = corun_throughput(solo_a, corun_a, solo_b, corun_b);
  EXPECT_GT(r.improvement(), 0.05);
  EXPECT_LT(r.improvement(), 0.45);
}

TEST_F(LabTest, OptimizingThePeerTooAddsLittle) {
  // Sec. III-F: optimized+optimized is at most marginally better than
  // optimized+baseline, and not slower.
  const std::string a = "458.sjeng";
  const std::string b = "471.omnetpp";
  const double base = lab_.corun_self_cycles(a, std::nullopt, b, std::nullopt);
  const double opt_base = lab_.corun_self_cycles(a, kFuncAffinity, b,
                                                 std::nullopt);
  const double opt_opt =
      lab_.corun_self_cycles(a, kFuncAffinity, b, kFuncAffinity);
  const double additional = opt_base / opt_opt - 1.0;
  EXPECT_GT(base / opt_base, 1.0);       // the optimization itself helps
  // "Negligible" both ways: our SMT fetch model lets an optimized (less
  // stalled) peer issue slightly more pressure, so a small negative is
  // tolerated where the paper reports "no slowdown".
  EXPECT_GT(additional, -0.05);
  EXPECT_LT(additional, 0.05);
}

TEST_F(LabTest, BBReorderingNAForPerlbenchAndPovray) {
  EXPECT_FALSE(Lab::bb_reordering_supported("400.perlbench"));
  EXPECT_FALSE(Lab::bb_reordering_supported("453.povray"));
  EXPECT_TRUE(Lab::bb_reordering_supported("403.gcc"));
}

TEST_F(LabTest, LayoutAndSimCachingReturnsSameObject) {
  const SimResult& a = lab_.solo("429.mcf", std::nullopt, Measure::kHardware);
  const SimResult& b = lab_.solo("429.mcf", std::nullopt, Measure::kHardware);
  EXPECT_EQ(&a, &b);
  const CodeLayout& l1 = lab_.layout("429.mcf", kFuncAffinity);
  const CodeLayout& l2 = lab_.layout("429.mcf", kFuncAffinity);
  EXPECT_EQ(&l1, &l2);
}

TEST_F(LabTest, PrepareAllWarmsTheCache) {
  lab_.prepare_all({"429.mcf", "458.sjeng"});
  const PreparedWorkload& w = lab_.workload("429.mcf");
  EXPECT_EQ(w.spec.name, "429.mcf");
}

}  // namespace
}  // namespace codelayout
