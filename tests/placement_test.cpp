#include <gtest/gtest.h>

#include "cache/icache_sim.hpp"
#include "exec/interpreter.hpp"
#include "ir/builder.hpp"
#include "trg/placement.hpp"

namespace codelayout {
namespace {

Module loop_module(std::uint32_t n_blocks) {
  ModuleBuilder mb("loop");
  auto f = mb.function("main");
  std::vector<BlockId> blocks;
  for (std::uint32_t i = 0; i < n_blocks; ++i) blocks.push_back(f.block(64));
  for (std::uint32_t i = 0; i + 1 < n_blocks; ++i) {
    f.jump(blocks[i], blocks[i + 1]);
  }
  const BlockId exit = f.block(16);
  f.loop(blocks.back(), blocks.front(), exit, 0.999);
  return std::move(mb).build();
}

TEST(FromAddresses, HonorsExplicitAddressesAndGaps) {
  ModuleBuilder mb("gaps");
  auto f = mb.function("main");
  const BlockId a = f.block(32);
  const BlockId b = f.block(32);
  f.jump(a, b, /*fallthrough=*/false);
  const Module m = std::move(mb).build();
  const CodeLayout layout = CodeLayout::from_addresses(
      m, {{a, 0}, {b, 4096}}, /*with_entry_stubs=*/false);
  EXPECT_EQ(layout.placement(a).address, 0u);
  EXPECT_EQ(layout.placement(b).address, 4096u);
  EXPECT_EQ(layout.total_bytes(), 4096u + 32u);
}

TEST(FromAddresses, ChargesFixupForNonAdjacentFallthrough) {
  ModuleBuilder mb("fix");
  auto f = mb.function("main");
  const BlockId a = f.block(32);
  const BlockId b = f.block(32);
  f.jump(a, b, /*fallthrough=*/true);
  const Module m = std::move(mb).build();
  const CodeLayout apart = CodeLayout::from_addresses(
      m, {{a, 0}, {b, 256}}, /*with_entry_stubs=*/false);
  EXPECT_EQ(apart.fixup_count(), 1u);
  const CodeLayout adjacent = CodeLayout::from_addresses(
      m, {{a, 0}, {b, 32}}, /*with_entry_stubs=*/false);
  EXPECT_EQ(adjacent.fixup_count(), 0u);
}

TEST(FromAddresses, RejectsOverlap) {
  ModuleBuilder mb("overlap");
  auto f = mb.function("main");
  const BlockId a = f.block(64);
  const BlockId b = f.block(64);
  f.jump(a, b, /*fallthrough=*/false);
  const Module m = std::move(mb).build();
  EXPECT_THROW(CodeLayout::from_addresses(m, {{a, 0}, {b, 16}}, false),
               ContractError);
}

TEST(FromAddresses, RejectsIncompleteCover) {
  const Module m = loop_module(4);
  EXPECT_THROW(
      CodeLayout::from_addresses(m, {{m.function(FuncId(0)).blocks[0], 0}},
                                 false),
      ContractError);
}

TEST(GloySmith, EveryBlockPlacedWithoutOverlap) {
  const Module m = loop_module(64);
  const ProfileResult r = profile(m, 1, {.max_events = 20'000});
  const Trg graph = Trg::build(r.block_trace.trimmed());
  const PlacementResult placed = gloy_smith_placement(m, graph);
  // from_addresses validates non-overlap; also check total coverage.
  EXPECT_EQ(placed.layout.block_order().size(), m.block_count());
}

TEST(GloySmith, AlignedBlocksStartAtChosenSets) {
  // With padding, hot blocks in a thrashing loop should spread across sets
  // rather than pile up; the layout is at least as large as the packed one.
  const Module m = loop_module(700);  // ~44KB of hot code
  const ProfileResult r = profile(m, 1, {.max_events = 40'000});
  const Trg graph = Trg::build(r.block_trace.trimmed());
  const PlacementResult placed = gloy_smith_placement(m, graph);
  const CodeLayout packed = original_layout(m);
  EXPECT_GE(placed.layout.total_bytes(),
            packed.total_bytes() + placed.padding_bytes / 2);
  EXPECT_GT(placed.padding_bytes, 0u);
}

TEST(GloySmith, SimulatableLayout) {
  const Module m = loop_module(64);
  const ProfileResult r = profile(m, 1, {.max_events = 10'000});
  const Trg graph = Trg::build(r.block_trace.trimmed());
  const PlacementResult placed = gloy_smith_placement(m, graph);
  const SimResult sim = simulate_solo(m, placed.layout, r.block_trace);
  EXPECT_EQ(sim.blocks, r.block_trace.size());
  // A 4KB hot loop fits the 32KB cache regardless of alignment.
  EXPECT_LT(sim.miss_ratio(), 0.01);
}

}  // namespace
}  // namespace codelayout
