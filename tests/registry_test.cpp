// MetricsRegistry tests: counter/gauge semantics, concurrent updates,
// log-bucketed histogram summaries, and the JSON dump.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_lint.hpp"
#include "support/registry.hpp"

namespace codelayout {
namespace {

using testing::json_is_valid;

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAddAreSigned) {
  Gauge g;
  g.set(10);
  g.add(-25);
  EXPECT_EQ(g.value(), -15);
}

TEST(LatencyHistogramTest, SingleValueSummaryIsExact) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(1000);
  const LatencyHistogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 1000u * 1000u);
  EXPECT_EQ(s.min, 1000u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 1000.0);
  // All samples land in the [512, 1024) bucket; interpolated quantiles must
  // stay inside it and be ordered.
  EXPECT_GE(s.p50, 512.0);
  EXPECT_LT(s.p50, 1024.0);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LT(s.p99, 1024.0);
}

TEST(LatencyHistogramTest, ZeroLandsInBucketZero) {
  LatencyHistogram h;
  h.record(0);
  h.record(1);
  const LatencyHistogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1u);
  EXPECT_LT(s.p50, 2.0);
}

TEST(LatencyHistogramTest, QuantilesSeparateTwoModes) {
  LatencyHistogram h;
  // 90 fast samples (~1us) and 10 slow ones (~1ms): p50 must sit near the
  // fast mode and p99 near the slow mode, a decade-plus apart.
  for (int i = 0; i < 90; ++i) h.record(1000);
  for (int i = 0; i < 10; ++i) h.record(1'000'000);
  const LatencyHistogram::Summary s = h.summary();
  EXPECT_LT(s.p50, 2048.0);
  EXPECT_GE(s.p99, 524288.0);
  EXPECT_EQ(s.min, 1000u);
  EXPECT_EQ(s.max, 1'000'000u);
}

TEST(LatencyHistogramTest, EmptySummaryIsAllZero) {
  LatencyHistogram h;
  const LatencyHistogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(MetricsRegistryTest, InstrumentsHaveStableIdentity) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &registry.counter("y"));
  LatencyHistogram& h = registry.histogram("x");  // separate namespace
  EXPECT_EQ(&h, &registry.histogram("x"));
}

TEST(MetricsRegistryTest, ConcurrentAddsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Mix of cached-reference and by-name updates, plus histogram records,
      // to exercise registration races.
      Counter& cached = registry.counter("events");
      for (int i = 0; i < kAddsPerThread; ++i) {
        cached.add();
        registry.counter("lookups").add(2);
        registry.histogram("lat").record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("events").value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(registry.counter("lookups").value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread * 2);
  EXPECT_EQ(registry.histogram("lat").summary().count,
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricsRegistryTest, JsonDumpIsValidAndSorted) {
  MetricsRegistry registry;
  registry.counter("zeta").add(3);
  registry.counter("alpha").add(1);
  registry.gauge("width").set(8);
  registry.histogram("stage.wall_ns").record(1500);
  const std::string doc = registry.to_json("unit");
  std::string error;
  EXPECT_TRUE(json_is_valid(doc, &error)) << error << "\n" << doc;
  EXPECT_NE(doc.find(R"("alpha":1)"), std::string::npos);
  EXPECT_NE(doc.find(R"("zeta":3)"), std::string::npos);
  EXPECT_NE(doc.find(R"("width":8)"), std::string::npos);
  EXPECT_NE(doc.find(R"("stage.wall_ns")"), std::string::npos);
  EXPECT_NE(doc.find(R"("p99_ns")"), std::string::npos);
  // std::map ordering: "alpha" dumps before "zeta".
  EXPECT_LT(doc.find("\"alpha\""), doc.find("\"zeta\""));
}

TEST(MetricsRegistryTest, ResetForgetsInstruments) {
  MetricsRegistry registry;
  registry.counter("gone").add(7);
  registry.reset();
  EXPECT_EQ(registry.counter("gone").value(), 0u);
}

TEST(MetricsRegistryTest, DisabledByDefault) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.enabled());
  registry.set_enabled(true);
  EXPECT_TRUE(registry.enabled());
}

}  // namespace
}  // namespace codelayout
