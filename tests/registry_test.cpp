// MetricsRegistry tests: counter/gauge semantics, concurrent updates,
// log-bucketed histogram summaries, the JSON dump, and the Prometheus text
// exposition.
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json_lint.hpp"
#include "prom_lint.hpp"
#include "support/registry.hpp"

namespace codelayout {
namespace {

using testing::json_is_valid;

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAddAreSigned) {
  Gauge g;
  g.set(10);
  g.add(-25);
  EXPECT_EQ(g.value(), -15);
}

TEST(LatencyHistogramTest, SingleValueSummaryIsExact) {
  LatencyHistogram h;
  for (int i = 0; i < 1000; ++i) h.record(1000);
  const LatencyHistogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 1000u * 1000u);
  EXPECT_EQ(s.min, 1000u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 1000.0);
  // All samples land in the [512, 1024) bucket; interpolated quantiles must
  // stay inside it and be ordered.
  EXPECT_GE(s.p50, 512.0);
  EXPECT_LT(s.p50, 1024.0);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LT(s.p99, 1024.0);
}

TEST(LatencyHistogramTest, ZeroLandsInBucketZero) {
  LatencyHistogram h;
  h.record(0);
  h.record(1);
  const LatencyHistogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1u);
  EXPECT_LT(s.p50, 2.0);
}

TEST(LatencyHistogramTest, QuantilesSeparateTwoModes) {
  LatencyHistogram h;
  // 90 fast samples (~1us) and 10 slow ones (~1ms): p50 must sit near the
  // fast mode and p99 near the slow mode, a decade-plus apart.
  for (int i = 0; i < 90; ++i) h.record(1000);
  for (int i = 0; i < 10; ++i) h.record(1'000'000);
  const LatencyHistogram::Summary s = h.summary();
  EXPECT_LT(s.p50, 2048.0);
  EXPECT_GE(s.p99, 524288.0);
  EXPECT_EQ(s.min, 1000u);
  EXPECT_EQ(s.max, 1'000'000u);
}

TEST(LatencyHistogramTest, EmptySummaryIsAllZero) {
  LatencyHistogram h;
  const LatencyHistogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(MetricsRegistryTest, InstrumentsHaveStableIdentity) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &registry.counter("y"));
  LatencyHistogram& h = registry.histogram("x");  // separate namespace
  EXPECT_EQ(&h, &registry.histogram("x"));
}

TEST(MetricsRegistryTest, ConcurrentAddsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Mix of cached-reference and by-name updates, plus histogram records,
      // to exercise registration races.
      Counter& cached = registry.counter("events");
      for (int i = 0; i < kAddsPerThread; ++i) {
        cached.add();
        registry.counter("lookups").add(2);
        registry.histogram("lat").record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("events").value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
  EXPECT_EQ(registry.counter("lookups").value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread * 2);
  EXPECT_EQ(registry.histogram("lat").summary().count,
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(MetricsRegistryTest, JsonDumpIsValidAndSorted) {
  MetricsRegistry registry;
  registry.counter("zeta").add(3);
  registry.counter("alpha").add(1);
  registry.gauge("width").set(8);
  registry.histogram("stage.wall_ns").record(1500);
  const std::string doc = registry.to_json("unit");
  std::string error;
  EXPECT_TRUE(json_is_valid(doc, &error)) << error << "\n" << doc;
  EXPECT_NE(doc.find(R"("alpha":1)"), std::string::npos);
  EXPECT_NE(doc.find(R"("zeta":3)"), std::string::npos);
  EXPECT_NE(doc.find(R"("width":8)"), std::string::npos);
  EXPECT_NE(doc.find(R"("stage.wall_ns")"), std::string::npos);
  EXPECT_NE(doc.find(R"("p99_ns")"), std::string::npos);
  // std::map ordering: "alpha" dumps before "zeta".
  EXPECT_LT(doc.find("\"alpha\""), doc.find("\"zeta\""));
}

TEST(MetricsRegistryTest, JsonHistogramDumpCarriesCountAndSum) {
  MetricsRegistry registry;
  registry.histogram("stage.wall_ns").record(100);
  registry.histogram("stage.wall_ns").record(300);
  const std::string doc = registry.to_json("unit");
  // Prometheus histogram semantics surface in the JSON dump too: the raw
  // sample count and nanosecond sum, not just derived quantiles.
  EXPECT_NE(doc.find(R"("count":2)"), std::string::npos) << doc;
  EXPECT_NE(doc.find(R"("sum_ns":400)"), std::string::npos) << doc;
}

TEST(MetricsRegistryTest, PrometheusDumpIsValidAndSanitized) {
  MetricsRegistry registry;
  registry.counter("service.jobs.ok").add(7);
  registry.gauge("queue-depth").set(-3);
  registry.histogram("job.wall_ns").record(5);  // bucket [4, 8) -> le="8"
  registry.histogram("job.wall_ns").record(6);
  registry.histogram("job.wall_ns").record(100);  // bucket [64, 128)
  const std::string dump = registry.dump_prometheus();
  std::string error;
  EXPECT_TRUE(testing::prom_is_valid(dump, &error)) << error << "\n" << dump;
  // Dots and dashes sanitize to underscores; counters grow a _total suffix.
  EXPECT_NE(dump.find("codelayout_service_jobs_ok_total 7\n"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("codelayout_queue_depth -3\n"), std::string::npos);
  // Cumulative buckets at power-of-two upper edges, then +Inf == _count.
  EXPECT_NE(dump.find("codelayout_job_wall_ns_bucket{le=\"8\"} 2\n"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("codelayout_job_wall_ns_bucket{le=\"128\"} 3\n"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("codelayout_job_wall_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("codelayout_job_wall_ns_sum 111\n"), std::string::npos);
  EXPECT_NE(dump.find("codelayout_job_wall_ns_count 3\n"), std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusEmptyHistogramStillHasInfBucket) {
  MetricsRegistry registry;
  registry.histogram("idle_ns");
  const std::string dump = registry.dump_prometheus();
  std::string error;
  EXPECT_TRUE(testing::prom_is_valid(dump, &error)) << error << "\n" << dump;
  EXPECT_NE(dump.find("codelayout_idle_ns_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("codelayout_idle_ns_count 0\n"), std::string::npos);
}

TEST(MetricsRegistryTest, QuantilesExactUnderConcurrentRecording) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  // Every thread records the same known distribution: 90% at ~1us, 9% at
  // ~100us, 1% at ~10ms. The merged histogram must place p50/p90/p99 in the
  // buckets those modes land in, regardless of interleaving.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      LatencyHistogram& h = registry.histogram("lat");
      for (int i = 0; i < kPerThread; ++i) {
        if (i % 100 == 99) {
          h.record(10'000'000);
        } else if (i % 10 == 9) {
          h.record(100'000);
        } else {
          h.record(1'000);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const LatencyHistogram::Summary s = registry.histogram("lat").summary();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.sum, static_cast<std::uint64_t>(kThreads) *
                       (900u * 1'000u + 90u * 100'000u + 10u * 10'000'000u));
  // p50 in the ~1us mode's bucket [1024, 2048); p90 at the fast/medium mode
  // boundary (rank 0.9 falls exactly at the top of the fast mode); p99 in
  // the ~100us bucket [65536, 131072) since 10ms only starts at rank 0.99.
  EXPECT_GE(s.p50, 512.0);
  EXPECT_LT(s.p50, 2048.0);
  EXPECT_LT(s.p90, 131072.0);
  EXPECT_GE(s.p99, 65536.0);
  EXPECT_LE(s.p99, 16'777'216.0);
}

TEST(MetricsRegistryTest, PrometheusDumpStaysConsistentMidRecording) {
  MetricsRegistry registry;
  std::atomic<bool> stop{false};
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &stop] {
      std::uint64_t v = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        registry.histogram("lat").record(v);
        registry.counter("ops").add();
        v = v * 2654435761u + 1;  // cheap LCG over the full bucket range
      }
    });
  }
  // Dumps taken mid-update must still be lint-clean: buckets cumulative,
  // +Inf == _count (both derive from one bucket snapshot).
  for (int i = 0; i < 50; ++i) {
    const std::string dump = registry.dump_prometheus();
    std::string error;
    ASSERT_TRUE(testing::prom_is_valid(dump, &error)) << error << "\n" << dump;
  }
  stop.store(true);
  for (std::thread& t : threads) t.join();
}

TEST(MetricsRegistryTest, ResetForgetsInstruments) {
  MetricsRegistry registry;
  registry.counter("gone").add(7);
  registry.reset();
  EXPECT_EQ(registry.counter("gone").value(), 0u);
}

TEST(MetricsRegistryTest, DisabledByDefault) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.enabled());
  registry.set_enabled(true);
  EXPECT_TRUE(registry.enabled());
}

}  // namespace
}  // namespace codelayout
