// Direct unit coverage of the AffinityHierarchy container (the dendrogram),
// independent of the analyses that build it.
#include <gtest/gtest.h>

#include "affinity/hierarchy.hpp"

namespace codelayout {
namespace {

/// Hand-built forest mirroring the paper's Figure 1(b):
///   node0..node4 = leaves B1,B4,B2,B3,B5 (ids 0..4)
///   node5 = (B3,B5) @ w=2; node6 = (B1,B4) @ w=3;
///   node7 = (B2,B3,B5) @ w=4; node8 = all @ w=5.
AffinityHierarchy fig1_forest() {
  std::vector<AffinityGroup> nodes(9);
  const Symbol syms[5] = {1, 4, 2, 3, 5};
  const std::uint64_t first[5] = {0, 1, 2, 5, 6};
  const std::uint64_t occ[5] = {2, 3, 2, 1, 1};
  for (std::uint32_t i = 0; i < 5; ++i) {
    nodes[i] = AffinityGroup{.id = i,
                             .formed_at_w = 1,
                             .members = {syms[i]},
                             .children = {},
                             .first_occurrence = first[i],
                             .occurrences = occ[i]};
  }
  nodes[5] = AffinityGroup{.id = 5,
                           .formed_at_w = 2,
                           .members = {3, 5},
                           .children = {3, 4},
                           .first_occurrence = 5,
                           .occurrences = 2};
  nodes[6] = AffinityGroup{.id = 6,
                           .formed_at_w = 3,
                           .members = {1, 4},
                           .children = {0, 1},
                           .first_occurrence = 0,
                           .occurrences = 5};
  nodes[7] = AffinityGroup{.id = 7,
                           .formed_at_w = 4,
                           .members = {2, 3, 5},
                           .children = {2, 5},
                           .first_occurrence = 2,
                           .occurrences = 4};
  nodes[8] = AffinityGroup{.id = 8,
                           .formed_at_w = 5,
                           .members = {1, 4, 2, 3, 5},
                           .children = {6, 7},
                           .first_occurrence = 0,
                           .occurrences = 9};
  return AffinityHierarchy(std::move(nodes), {8});
}

TEST(HierarchyContainer, PartitionDescendsToLevel) {
  const AffinityHierarchy h = fig1_forest();
  EXPECT_EQ(h.partition_at(1).size(), 5u);
  EXPECT_EQ(h.partition_at(2).size(), 4u);
  EXPECT_EQ(h.partition_at(3).size(), 3u);
  EXPECT_EQ(h.partition_at(4).size(), 2u);
  EXPECT_EQ(h.partition_at(5).size(), 1u);
  EXPECT_EQ(h.partition_at(100).size(), 1u);
}

TEST(HierarchyContainer, PartitionOrderedByFirstOccurrence) {
  const AffinityHierarchy h = fig1_forest();
  const auto p4 = h.partition_at(4);
  ASSERT_EQ(p4.size(), 2u);
  EXPECT_EQ(h.node(p4[0]).members, (std::vector<Symbol>{1, 4}));
  EXPECT_EQ(h.node(p4[1]).members, (std::vector<Symbol>{2, 3, 5}));
}

TEST(HierarchyContainer, LayoutOrderBottomUp) {
  const AffinityHierarchy h = fig1_forest();
  EXPECT_EQ(h.layout_order(), (std::vector<Symbol>{1, 4, 2, 3, 5}));
}

TEST(HierarchyContainer, HotnessOrderSortsByOccurrences) {
  const AffinityHierarchy h = fig1_forest();
  // Under the root: (B1,B4) has 5 occurrences and leads; inside it the
  // hotter leaf B4 (3 occurrences) now precedes B1 (2); ties elsewhere
  // break by first occurrence.
  const auto order = h.layout_order(AffinityHierarchy::Order::kHotness);
  EXPECT_EQ(order, (std::vector<Symbol>{4, 1, 2, 3, 5}));
}

TEST(HierarchyContainer, SymbolCountSumsRoots) {
  EXPECT_EQ(fig1_forest().symbol_count(), 5u);
}

TEST(HierarchyContainer, MultiRootForest) {
  std::vector<AffinityGroup> nodes(2);
  nodes[0] = AffinityGroup{.id = 0,
                           .formed_at_w = 1,
                           .members = {7},
                           .children = {},
                           .first_occurrence = 10,
                           .occurrences = 1};
  nodes[1] = AffinityGroup{.id = 1,
                           .formed_at_w = 1,
                           .members = {3},
                           .children = {},
                           .first_occurrence = 2,
                           .occurrences = 1};
  const AffinityHierarchy h(std::move(nodes), {0, 1});
  // Roots ordered by first occurrence in the layout: 3 before 7.
  EXPECT_EQ(h.layout_order(), (std::vector<Symbol>{3, 7}));
  EXPECT_EQ(h.partition_at(1).size(), 2u);
  EXPECT_EQ(h.symbol_count(), 2u);
}

TEST(HierarchyContainer, BadRootRejected) {
  std::vector<AffinityGroup> nodes(1);
  nodes[0].id = 0;
  nodes[0].members = {1};
  EXPECT_THROW(AffinityHierarchy(std::move(nodes), {5}), ContractError);
}

TEST(HierarchyContainer, NodeAccessorBoundsChecked) {
  const AffinityHierarchy h = fig1_forest();
  EXPECT_THROW((void)h.node(99), ContractError);
  EXPECT_EQ(h.node(8).members.size(), 5u);
}

TEST(HierarchyContainer, ToStringShowsNesting) {
  const std::string s = fig1_forest().to_string();
  EXPECT_NE(s.find("(w=5)"), std::string::npos);
  EXPECT_NE(s.find("  (w=3)"), std::string::npos);  // indented child
}

}  // namespace
}  // namespace codelayout
