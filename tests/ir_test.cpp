#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/module.hpp"
#include "support/check.hpp"

namespace codelayout {
namespace {

TEST(Ids, InvalidByDefault) {
  BlockId b;
  FuncId f;
  EXPECT_FALSE(b.valid());
  EXPECT_FALSE(f.valid());
}

TEST(Ids, Comparisons) {
  EXPECT_LT(BlockId(1), BlockId(2));
  EXPECT_EQ(FuncId(3), FuncId(3));
}

TEST(Module, AddFunctionAndBlocks) {
  Module m("test");
  const FuncId f = m.add_function("foo");
  const BlockId b0 = m.add_block(f, 32);
  const BlockId b1 = m.add_block(f, 64, "custom");
  EXPECT_EQ(m.function_count(), 1u);
  EXPECT_EQ(m.block_count(), 2u);
  EXPECT_EQ(m.function(f).entry, b0);
  EXPECT_EQ(m.block(b0).label, "foo.bb0");
  EXPECT_EQ(m.block(b1).label, "custom");
  EXPECT_EQ(m.block(b1).instructions(), 16u);
  EXPECT_EQ(m.static_bytes(), 96u);
}

TEST(Module, FirstFunctionBecomesEntry) {
  Module m;
  const FuncId f0 = m.add_function("main");
  m.add_function("other");
  EXPECT_EQ(m.entry_function(), f0);
}

TEST(Module, FindFunction) {
  Module m;
  m.add_function("alpha");
  const FuncId beta = m.add_function("beta");
  EXPECT_EQ(m.find_function("beta"), beta);
  EXPECT_FALSE(m.find_function("gamma").has_value());
}

TEST(Module, BadIdsThrow) {
  Module m;
  m.add_function("f");
  EXPECT_THROW((void)m.block(BlockId(0)), ContractError);
  EXPECT_THROW((void)m.function(FuncId(7)), ContractError);
  EXPECT_THROW((void)m.function(FuncId{}), ContractError);
}

TEST(Module, EdgeAcrossFunctionsRejected) {
  Module m;
  const FuncId f = m.add_function("f");
  const FuncId g = m.add_function("g");
  const BlockId bf = m.add_block(f, 16);
  const BlockId bg = m.add_block(g, 16);
  EXPECT_THROW(m.add_edge(bf, bg, 1.0), ContractError);
}

TEST(Module, SecondFallthroughRejected) {
  Module m;
  const FuncId f = m.add_function("f");
  const BlockId a = m.add_block(f, 16);
  const BlockId b = m.add_block(f, 16);
  const BlockId c = m.add_block(f, 16);
  m.add_edge(a, b, 0.5, /*fallthrough=*/true);
  EXPECT_THROW(m.add_edge(a, c, 0.5, /*fallthrough=*/true), ContractError);
}

TEST(Module, ValidateAcceptsWellFormed) {
  Module m("ok");
  const FuncId f = m.add_function("main");
  const BlockId a = m.add_block(f, 16);
  const BlockId b = m.add_block(f, 16);
  m.add_edge(a, b, 1.0, true);
  EXPECT_NO_THROW(m.validate());
}

TEST(Module, ValidateRejectsBadProbabilitySum) {
  Module m;
  const FuncId f = m.add_function("main");
  const BlockId a = m.add_block(f, 16);
  const BlockId b = m.add_block(f, 16);
  m.add_edge(a, b, 0.4);
  EXPECT_THROW(m.validate(), ContractError);
}

TEST(Module, ValidateRejectsEmptyFunction) {
  Module m;
  m.add_function("empty");
  EXPECT_THROW(m.validate(), ContractError);
}

TEST(Module, ValidateRejectsMisalignedBlock) {
  Module m;
  const FuncId f = m.add_function("main");
  m.add_block(f, 18);  // not a multiple of kInstrBytes
  EXPECT_THROW(m.validate(), ContractError);
}

TEST(Module, AddEdgeRejectsBadProbability) {
  Module m;
  const FuncId f = m.add_function("main");
  const BlockId a = m.add_block(f, 16);
  const BlockId b = m.add_block(f, 16);
  EXPECT_THROW(m.add_edge(a, b, 0.0), ContractError);
  EXPECT_THROW(m.add_edge(a, b, 1.5), ContractError);
}

TEST(Module, CallSitesRecorded) {
  Module m;
  const FuncId f = m.add_function("caller");
  const FuncId g = m.add_function("callee");
  m.add_block(g, 16);
  const BlockId b = m.add_block(f, 16);
  m.add_call(b, g, 0.5);
  ASSERT_EQ(m.block(b).calls.size(), 1u);
  EXPECT_EQ(m.block(b).calls[0].callee, g);
  EXPECT_DOUBLE_EQ(m.block(b).calls[0].probability, 0.5);
}

TEST(Module, DotContainsLabelsAndEdges) {
  Module m("dotted");
  const FuncId f = m.add_function("main");
  const BlockId a = m.add_block(f, 16);
  const BlockId b = m.add_block(f, 16);
  m.add_edge(a, b, 1.0, true);
  const std::string dot = m.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("main.bb0"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

// ---------- builder ----------------------------------------------------------

TEST(Builder, ChainConnectsSequentially) {
  ModuleBuilder mb("chain");
  auto f = mb.function("main");
  const auto ids = f.chain(4, 16);
  const Module m = std::move(mb).build();
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    const auto& succ = m.block(ids[i]).successors;
    ASSERT_EQ(succ.size(), 1u);
    EXPECT_EQ(succ[0].target, ids[i + 1]);
  }
  EXPECT_TRUE(m.block(ids.back()).is_return());
}

TEST(Builder, BranchSplitsProbability) {
  ModuleBuilder mb("branch");
  auto f = mb.function("main");
  const BlockId head = f.block(16);
  const BlockId taken = f.block(16);
  const BlockId fall = f.block(16);
  f.branch(head, taken, fall, 0.3);
  const Module m = std::move(mb).build();
  const auto& succ = m.block(head).successors;
  ASSERT_EQ(succ.size(), 2u);
  // Fall-through edge is stored first.
  EXPECT_EQ(succ[0].target, fall);
  EXPECT_DOUBLE_EQ(succ[0].probability, 0.7);
  EXPECT_EQ(succ[1].target, taken);
  EXPECT_TRUE(m.block(head).has_fallthrough);
}

TEST(Builder, FanNormalizesWeights) {
  ModuleBuilder mb("fan");
  auto f = mb.function("main");
  const BlockId head = f.block(16);
  const BlockId a = f.block(16);
  const BlockId b = f.block(16);
  const BlockId c = f.block(16);
  f.fan(head, {a, b, c}, {2.0, 1.0, 1.0});
  const Module m = std::move(mb).build();
  const auto& succ = m.block(head).successors;
  ASSERT_EQ(succ.size(), 3u);
  double sum = 0;
  for (const auto& e : succ) sum += e.probability;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(succ[0].probability, 0.5, 1e-12);
}

TEST(Builder, LoopBackEdge) {
  ModuleBuilder mb("loop");
  auto f = mb.function("main");
  const BlockId head = f.block(16);
  const BlockId latch = f.block(16);
  const BlockId exit = f.block(16);
  f.jump(head, latch);
  f.loop(latch, head, exit, 0.9);
  const Module m = std::move(mb).build();
  const auto& succ = m.block(latch).successors;
  ASSERT_EQ(succ.size(), 2u);
  EXPECT_EQ(succ[0].target, exit);   // fall-through exit
  EXPECT_NEAR(succ[0].probability, 0.1, 1e-12);
  EXPECT_EQ(succ[1].target, head);   // back edge
}

TEST(Builder, BuildValidates) {
  ModuleBuilder mb("invalid");
  auto f = mb.function("main");
  const BlockId a = f.block(16);
  const BlockId b = f.block(16);
  mb.module().add_edge(a, b, 0.25);  // probabilities will not sum to 1
  EXPECT_THROW(std::move(mb).build(), ContractError);
}

}  // namespace
}  // namespace codelayout
